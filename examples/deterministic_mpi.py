#!/usr/bin/env python3
"""The paper's conclusion (§8): Deterministic MPI on ordered communicators.

    "A deterministic version of MPI could even be proposed, built around
    ordered communicators where a sender always precedes its receiver(s)."

Sixteen ranks form a pipeline: rank r receives from rank r-1, adds its
own contribution, and sends to rank r+1 — every send goes to a strictly
higher rank, so the communication graph follows the referential
sequential order, is deadlock-free by construction, and the whole run is
cycle-deterministic (we prove it by running twice).

Run:  python examples/deterministic_mpi.py
"""

from repro.compiler import compile_to_program
from repro.detomp.dmpi import pipeline_expected, pipeline_source
from repro.machine import LBP, Params

RANKS = 16
CORES = 4


def run():
    program = compile_to_program(pipeline_source(RANKS), "dmpi.c")
    machine = LBP(Params(num_cores=CORES)).load(program)
    stats = machine.run(max_cycles=20_000_000)
    return machine.read_word(program.symbol("pipeline_out")), stats


def main():
    result_a, stats_a = run()
    result_b, stats_b = run()
    print("pipeline over %d ranks on %d cores" % (RANKS, CORES))
    print("  result   : %d (expected %d)" % (result_a, pipeline_expected(RANKS)))
    print("  cycles   : %d" % stats_a.cycles)
    print("  retired  : %d" % stats_a.retired)
    assert result_a == result_b == pipeline_expected(RANKS)
    assert (stats_a.cycles, stats_a.retired) == (stats_b.cycles, stats_b.retired)
    print("  re-run   : identical cycles and result — deterministic MPI")


if __name__ == "__main__":
    main()
