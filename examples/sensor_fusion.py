#!/usr/bin/env python3
"""The paper's figure-16 real-time application: sensor fusion on LBP.

Four sensors respond in a non-deterministic order; four harts poll them
in parallel (LBP takes no interrupts — inputs are active waits), the
hardware join orders the fusion after all four samples, and the fused
value is written to an actuator.

Two runs are shown:

1. *scripted* sensors — the whole machine is cycle-deterministic: the
   actuator receives each fused value at an exactly repeatable cycle;
2. *seeded-random* sensors — arrival times differ per seed (external
   nondeterminism), yet every round's fused output is exactly the fusion
   of that round's four samples: the referential sequential order
   guarantees round r fuses the four round-r samples no matter in which
   order they arrive.

Run:  python examples/sensor_fusion.py
"""

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.machine.io import RandomInput
from repro.workloads.sensors import (
    attach_sensors,
    expected_fusions,
    sensors_source,
)

ROUNDS = 4
CORES = 4


def run(schedules):
    program = compile_to_program(sensors_source(CORES, ROUNDS), "sensors.c")
    machine = LBP(Params(num_cores=CORES)).load(program)
    _sensors, actuator = attach_sensors(machine, CORES, schedules)
    stats = machine.run(max_cycles=5_000_000)
    return actuator.writes, stats


def main():
    print("--- scripted sensors (fully deterministic) ---")
    scripted = [
        [(120 * (r + 1) + 17 * i, 100 * r + 10 + i) for r in range(ROUNDS)]
        for i in range(4)
    ]
    writes_a, stats_a = run(scripted)
    writes_b, _ = run(scripted)
    for (cycle, value) in writes_a:
        print("  actuator <- %5d at cycle %6d" % (value, cycle))
    assert writes_a == writes_b
    print("  second run identical, cycle for cycle (determinism)")
    print("  expected fusions:", expected_fusions(scripted, ROUNDS))

    print("--- seeded-random sensors (external nondeterminism) ---")
    baseline = None
    for seed in (1, 2, 3):
        schedules = [RandomInput(seed * 10 + i, ROUNDS, max_gap=400) for i in range(4)]
        writes, stats = run(schedules)
        values = [value for _cycle, value in writes]
        cycles = [cycle for cycle, _value in writes]
        expected = expected_fusions(schedules, ROUNDS)
        assert values == expected, (values, expected)
        print("  seed %d: fused %s  (actuator cycles %s, total %d)"
              % (seed, values, cycles, stats.cycles))
        if baseline is None:
            baseline = values
    print("  arrival times differ per seed; the per-round fusion values are")
    print("  always round-correct: the referential sequential order holds.")


if __name__ == "__main__":
    main()
