#!/usr/bin/env python3
"""Reproduce the paper's matrix-multiplication experiment (figures 19-21).

Examples:
    # figure 19 (4-core, full paper scale), cycle-accurate
    python examples/matmul_experiment.py --figure 19

    # figure 20 (16-core) at reduced work, cycle-accurate
    python examples/matmul_experiment.py --figure 20 --scale 8

    # figure 21 (64-core) on the fast simulator
    python examples/matmul_experiment.py --figure 21 --scale 32 --sim fast

    # one version, custom machine
    python examples/matmul_experiment.py --h 32 --cores 8 --version tiled
"""

import argparse

from repro.eval import (
    PAPER_FIG19,
    PAPER_FIG20,
    PAPER_FIG21,
    format_rows,
    run_matmul_figure,
)
from repro.workloads.matmul import MATMUL_VERSIONS

FIGURES = {
    "19": (16, 4, "cycle", 1, PAPER_FIG19),
    "20": (64, 16, "cycle", 4, PAPER_FIG20),
    "21": (256, 64, "fast", 16, PAPER_FIG21),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=sorted(FIGURES), default=None,
                        help="reproduce one of the paper's figures")
    parser.add_argument("--h", type=int, default=16, help="hart count")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--scale", type=int, default=None,
                        help="work divisor (1 = full paper scale)")
    parser.add_argument("--sim", choices=("cycle", "fast"), default=None)
    parser.add_argument("--version", choices=MATMUL_VERSIONS, action="append",
                        help="restrict to specific versions (repeatable)")
    args = parser.parse_args()

    if args.figure is not None:
        h, cores, sim, scale, paper = FIGURES[args.figure]
        sim = args.sim or sim
        scale = args.scale if args.scale is not None else scale
        title = "Figure %s — %d-core LBP (%d harts), h=%d, scale=1/%d, %s simulator" % (
            args.figure, cores, cores * 4, h, scale, sim)
    else:
        h, cores = args.h, args.cores
        sim = args.sim or "cycle"
        scale = args.scale if args.scale is not None else 1
        paper = None
        title = "%d-core LBP (%d harts), h=%d, scale=1/%d, %s simulator" % (
            cores, cores * 4, h, scale, sim)

    versions = tuple(args.version) if args.version else MATMUL_VERSIONS
    rows = run_matmul_figure(h, cores, scale=scale, simulator=sim, versions=versions)
    print(format_rows(rows, paper, title))


if __name__ == "__main__":
    main()
