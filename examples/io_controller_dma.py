#!/usr/bin/env python3
"""The paper's §6 I/O patterns: a controller hart and a DMA unit.

LBP has no interrupts.  Part 1 runs figure 17's request/response scheme:
worker harts write a request word into the controller's bank and block on
``p_lwre``; a dedicated controller hart polls the device and forwards
each value over the intercore backward line with ``p_swre`` — "within a
few cycles it is received by the requesting hart".

Part 2 runs the DMA pattern: the controller streams a block of data from
the device into every core's own bank, then releases each consumer with
a ``p_swre`` completion token; consumers then crunch purely core-local
data.  The synchronisation is a register dependency resolved by the
out-of-order engines — no interrupt handler anywhere.

Run:  python examples/io_controller_dma.py
"""

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.machine.io import ScriptedInput, attach_input
from repro.workloads.iopatterns import (
    controller_source,
    dma_source,
    stream_device_addr,
)

CORES = 4


def run(source, values, period):
    program = compile_to_program(source, "io.c")
    machine = LBP(Params(num_cores=CORES)).load(program)
    device = ScriptedInput([(period * (i + 1), v) for i, v in enumerate(values)])
    attach_input(machine, stream_device_addr(CORES), device)
    stats = machine.run(max_cycles=20_000_000)
    return program, machine, device, stats


def main():
    print("--- figure 17: request/response through a controller hart ---")
    workers = 6
    values = [1000 + 11 * i for i in range(workers)]
    program, machine, device, stats = run(
        controller_source(CORES, workers), values, period=300)
    base = program.symbol("results")
    for w in range(workers):
        print("  worker %d received %d" % (w, machine.read_word(base + 4 * w)))
    lags = [consumed - ready for consumed, (ready, _v)
            in zip(device.consumed_at, device.events)]
    print("  controller picked each value up %s cycles after it was ready"
          % lags)
    print("  total: %d cycles, %d retired" % (stats.cycles, stats.retired))

    print("--- §6: DMA fill + token synchronisation ---")
    words = 8
    stream = [100 * c + i for c in range(CORES) for i in range(words)]
    program, machine, _device, stats = run(
        dma_source(CORES, words), stream, period=15)
    base = program.symbol("sums")
    for c in range(CORES):
        print("  consumer %d: local-chunk sum = %d"
              % (c, machine.read_word(base + 4 * c)))
    print("  total: %d cycles, %d retired, %d remote accesses"
          % (stats.cycles, stats.retired, stats.remote_accesses))
    print("  (the consumers' data reads were all core-local after the DMA)")


if __name__ == "__main__":
    main()
