#!/usr/bin/env python3
"""Quickstart: compile a Deterministic OpenMP program and run it on LBP.

The program is the paper's canonical pattern (figure 1): include
``det_omp.h`` instead of ``omp.h``, and the ``parallel for`` becomes a
hardware-forked team of harts — no OS, no locks, cycle-deterministic.

Run:  python examples/quickstart.py
"""

from repro.compiler import compile_to_program
from repro.machine import LBP, Params

SOURCE = r"""
#include <det_omp.h>
#define NUM_HART 8

int squares[NUM_HART];
int total;

void thread(int t) {
    squares[t] = t * t;
}

void main() {
    int t;
    omp_set_num_threads(NUM_HART);

    #pragma omp parallel for
    for (t = 0; t < NUM_HART; t++)
        thread(t);

    /* the hardware barrier (ordered p_ret chain) separates the phases */
    total = 0;
    for (t = 0; t < NUM_HART; t++)
        total += squares[t];
}
"""


def main():
    program = compile_to_program(SOURCE, "quickstart.c")
    machine = LBP(Params(num_cores=2)).load(program)
    stats = machine.run()

    base = program.symbol("squares")
    values = [machine.read_word(base + 4 * i) for i in range(8)]
    print("squares :", values)
    print("total   :", machine.read_word(program.symbol("total")))
    print("cycles  :", stats.cycles)
    print("retired :", stats.retired)
    print("IPC     : %.2f (peak %d)" % (stats.ipc, 2))
    print("forks   :", stats.forks, " joins:", stats.joins)

    # run it again: cycle determinism means *identical* numbers
    again = LBP(Params(num_cores=2)).load(compile_to_program(SOURCE, "quickstart.c"))
    stats2 = again.run()
    assert (stats2.cycles, stats2.retired) == (stats.cycles, stats.retired)
    print("re-run  : identical cycles and retired count (deterministic)")


if __name__ == "__main__":
    main()
