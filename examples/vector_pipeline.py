#!/usr/bin/env python3
"""The paper's figure-4 two-phase vector pipeline: locality + hardware barrier.

A *set* team initialises per-hart vector chunks; a *get* team consumes
them.  Both teams are placed identically (hart k of phase 2 lands on the
same core as hart k of phase 1) and each chunk lives in that core's own
shared bank, so **every data access is core-local** — and the phases are
ordered purely by the hardware barrier (the ordered p_ret commit chain),
with no OS synchronisation and no cache-coherence protocol.

Run:  python examples/vector_pipeline.py
"""

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.workloads.setget import expected_sum, setget_source, verify_setget

H = 16          # harts = one team member per hart of a 4-core LBP
CHUNK = 64      # words per chunk


def main():
    program = compile_to_program(setget_source(H, CHUNK), "setget.c")
    machine = LBP(Params(num_cores=H // 4)).load(program)
    stats = machine.run(max_cycles=10_000_000)

    verify_setget(machine, H, CHUNK)
    print("all %d chunk sums correct (e.g. chunk 5 = %d)" % (H, expected_sum(5, CHUNK)))
    print("cycles          :", stats.cycles)
    print("retired         :", stats.retired)
    print("IPC             : %.2f (peak %d)" % (stats.ipc, H // 4))
    print("local accesses  :", stats.local_accesses)
    print("remote accesses :", stats.remote_accesses)
    print()
    print("the get phase read values the set phase wrote on the same core,")
    print("separated only by the hardware barrier — and no data access ever")
    print("crossed the interconnect (remote accesses: %d)." % stats.remote_accesses)


if __name__ == "__main__":
    main()
