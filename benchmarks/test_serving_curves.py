"""Serving workload: throughput/latency curves and the E-series
determinism contrast.

Per core count (1, 2, 4): run the deterministic request/response server
at a fixed seeded request schedule, self-check every response against
the Python reference, recover the dispatch-to-completion latency of each
request from the trace, and record p50/p99/max latency plus throughput
(requests per kilocycle) into the BENCH_perf.json trajectory.

Then the baseline contrast (EXPERIMENTS.md, E-series): the same logical
tasks — the per-hart retired instruction counts of the LBP run — timed
on the ClassicSMP model (seeded OS-scheduling nondeterminism: a
min/avg/max *spread*) and on the Deterministic Consistency model
(quantum barriers + deterministic write-buffer merge: one repeatable
number, like LBP itself).
"""

import time

import pytest

from repro.baselines import ClassicSMP, DetCon
from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.workloads.serving import ServingWorkload

CORE_COUNTS = (1, 2, 4)
REQUESTS = 48
SEED = 11
MAX_CYCLES = 50_000_000

#: ClassicSMP timeslice for the contrast: server task slices retire a
#: few thousand instructions each, so the default 10k-cycle slice would
#: never preempt them (and hide the scheduling spread this experiment
#: exists to show)
CLASSIC_TIMESLICE = 300


def _run_serving(cores, requests=REQUESTS, seed=SEED):
    workload = ServingWorkload(cores=cores, num_requests=requests, seed=seed)
    program = compile_to_program(workload.source, "serving%d.c" % cores)
    machine = LBP(Params(num_cores=cores, trace_enabled=True)).load(program)
    stats = machine.run(max_cycles=MAX_CYCLES)
    assert machine.halted
    workload.verify(machine, program)
    return workload, machine, program, stats


@pytest.mark.parametrize("cores", CORE_COUNTS)
def test_serving_throughput_latency_curve(cores, perf_record):
    t0 = time.perf_counter()
    workload, machine, program, stats = _run_serving(cores)
    wall = time.perf_counter() - t0
    summary = workload.latency_summary(machine, program, stats)
    assert summary["requests"] == REQUESTS
    assert 0 < summary["lat_p50"] <= summary["lat_p99"] <= summary["lat_max"]
    assert summary["throughput_rpkc"] > 0
    perf_record(wall, {"cycles": stats.cycles, "retired": stats.retired},
                extra=dict(summary, workload="serving", cores=cores,
                           requests=REQUESTS, seed=SEED))


def test_serving_curve_is_run_to_run_identical():
    """The curve itself is an LBP determinism claim: same seed, same
    cycle count and latency percentiles, every run."""
    first = _run_serving(2)
    second = _run_serving(2)
    assert first[3].cycles == second[3].cycles
    assert (first[0].latency_summary(first[1], first[2], first[3])
            == second[0].latency_summary(second[1], second[2], second[3]))


def test_serving_lbp_vs_classic_vs_detcon(perf_record):
    """E-series contrast on the serving tasks: LBP and DC each produce
    one repeatable cycle count; ClassicSMP produces a seed spread."""
    t0 = time.perf_counter()
    workload, machine, program, stats = _run_serving(2)
    counts = [h.retired for core in stats.harts for h in core if h.retired]
    assert len(counts) == workload.harts  # every worker + the controller ran

    classic = ClassicSMP(2, timeslice=CLASSIC_TIMESLICE)
    c_min, c_avg, c_max = classic.run_many(counts, runs=12)
    assert c_min < c_max  # a real spread: timing is schedule-dependent

    detcon = DetCon(2)
    d_min, d_avg, d_max = detcon.run_many(counts, runs=12)
    assert d_min == d_max  # DC, like LBP, is repeatable by construction

    wall = time.perf_counter() - t0
    perf_record(wall, {"cycles": stats.cycles, "retired": stats.retired},
                extra={"workload": "serving", "cores": 2,
                       "requests": REQUESTS, "seed": SEED,
                       "lbp_cycles": stats.cycles,
                       "classic_min": c_min, "classic_avg": round(c_avg),
                       "classic_max": c_max, "detcon_cycles": d_min})
