"""Tracing overhead guard: spans-on serving wall <= 1.15x spans-off.

The span subsystem's budget (DESIGN.md §14): with tracing on, every
submission mints an admission span and every execution ships a span
payload up the progress pipe — none of which may cost real serving
throughput.  This benchmark drives the same hit-heavy load (the span-
densest path per unit of work: admission + cache_probe spans with no
simulation to hide behind) through two identical daemons, tracing on
and off, and holds the wall-clock ratio under a fixed ceiling.

Best-of-2 walls per mode, modes interleaved, so one scheduler hiccup
cannot fabricate (or mask) a regression on a noisy 1-CPU CI host.

Env knobs: ``LBP_TRACE_OVERHEAD_JOBS`` scales the storm (default 300),
``LBP_TRACE_MAX_RATIO`` overrides the ceiling.
"""

import os
import time

from repro.serve import ServeConfig, ServerThread
from repro.serve.loadgen import run_load

TOTAL_JOBS = int(os.environ.get("LBP_TRACE_OVERHEAD_JOBS", "300"))
MAX_RATIO = float(os.environ.get("LBP_TRACE_MAX_RATIO", "1.15"))
KEYS = 8
CONNECTIONS = 16
ROUNDS = 2  # best-of per mode

ASM = """
main:
    li   t1, 40
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
"""


def _job(inputs):
    return {"source": ASM, "filename": "job.s",
            "params": {"num_cores": 2}, "inputs": inputs}


def _storm_wall(root, trace):
    """One fresh daemon, prewarmed keys, then a timed all-hit storm."""
    os.makedirs(root, exist_ok=True)
    config = ServeConfig(unix_path=os.path.join(root, "serve.sock"),
                         cache_root=os.path.join(root, "cache"),
                         workers=2, trace=trace)
    address = {"unix_path": config.unix_path}
    with ServerThread(config) as handle:
        prewarm = [{"kind": "prewarm", "job": _job(n)} for n in range(KEYS)]
        run_load(address, prewarm, concurrency=4)

        plan = [{"kind": "hit", "job": _job(n % KEYS)}
                for n in range(TOTAL_JOBS)]
        t0 = time.perf_counter()
        samples = run_load(address, plan, concurrency=CONNECTIONS)
        wall = time.perf_counter() - t0

        assert all(sample["http_status"] == 200 for sample in samples)
        assert all(sample["status"] == "hit" for sample in samples)
        if trace:
            # the measured run really recorded spans — prewarm + storm
            # each minted at least one admission span per submission
            assert handle.server.spans.started >= KEYS + TOTAL_JOBS
        else:
            assert handle.server.spans is None
    return wall


def test_trace_overhead_ratio(tmp_path, perf_record):
    walls = {True: [], False: []}
    for attempt in range(ROUNDS):
        for trace in (False, True):
            label = "%s-%d" % ("on" if trace else "off", attempt)
            walls[trace].append(_storm_wall(str(tmp_path / label), trace))

    best_off = min(walls[False])
    best_on = min(walls[True])
    ratio = best_on / best_off
    perf_record(best_on, extra={
        "traced": True,
        "trace_overhead": {
            "jobs": TOTAL_JOBS,
            "connections": CONNECTIONS,
            "wall_on_s": round(best_on, 6),
            "wall_off_s": round(best_off, 6),
            "ratio": round(ratio, 4),
            "max_ratio": MAX_RATIO,
        },
    })
    print("\ntrace overhead: %d hit-jobs, spans-on %.3fs vs spans-off %.3fs "
          "(ratio %.3f, budget %.2f)"
          % (TOTAL_JOBS, best_on, best_off, ratio, MAX_RATIO))
    assert ratio <= MAX_RATIO, (
        "tracing costs %.1f%% serving wall (budget %.0f%%)"
        % ((ratio - 1) * 100, (MAX_RATIO - 1) * 100))
