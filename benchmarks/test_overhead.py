"""Experiment E5 — claim (2): the overhead to parallelize a run is low.

We compare the retired-instruction count of the parallel base matmul
(team creation, CV transfers, join chain) against the same computation in
a plain sequential loop, and also report the speedup the parallel version
achieves.  The paper's accounting at h=16: 16722 retired parallel vs
14336 for the bare inner loops — the team machinery costs a few percent.
"""

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.workloads.matmul import (
    matmul_sequential_source,
    matmul_source,
    verify_matmul,
)

H = 16
CORES = 4


def _run(source, cores):
    program = compile_to_program(source, "mm.c")
    machine = LBP(Params(num_cores=cores)).load(program)
    stats = machine.run(max_cycles=50_000_000)
    return program, machine, stats


def test_parallelization_overhead(once):
    def experiment():
        _prog_s, _m_s, seq = _run(matmul_sequential_source(H), CORES)
        prog_p, m_p, par = _run(matmul_source("base", H), CORES)
        verify_matmul(m_p, prog_p, "base", H)
        return seq, par

    seq, par = once(experiment)
    overhead = par.retired / seq.retired - 1.0
    speedup = seq.cycles / par.cycles
    print()
    print("sequential: %7d retired, %7d cycles" % (seq.retired, seq.cycles))
    print("parallel  : %7d retired, %7d cycles" % (par.retired, par.cycles))
    print("overhead  : %+5.1f%% retired instructions" % (100 * overhead))
    print("speedup   : %.2fx on %d cores / %d harts" % (speedup, CORES, 4 * CORES))

    # the team machinery costs little (paper: ~2.4k instr on 16.7k, ~14%;
    # at h=16 one fork per member is amortised over 128 MACs each)
    assert 0.0 <= overhead < 0.15, overhead
    # and parallelism pays: at 16 harts the run is many times faster
    assert speedup > 4.0, speedup


def test_metrics_overhead(once):
    """Telemetry is zero-perturbation in simulated time and cheap in wall
    time: the metered run's cycle count and retired count are identical to
    the unmetered run, and the stall breakdown rides into BENCH_perf.json
    via the row's ``stalls`` key."""
    import time

    from repro.eval.figures import run_matmul_experiment

    def experiment():
        return run_matmul_experiment("base", H, CORES, metrics=True)

    t0 = time.perf_counter()
    bare = run_matmul_experiment("base", H, CORES)
    bare_wall = time.perf_counter() - t0

    t1 = time.perf_counter()
    metered = once(experiment)
    metered_wall = time.perf_counter() - t1

    # zero perturbation: the simulated machine is unaware of the observer
    assert metered["cycles"] == bare["cycles"]
    assert metered["retired"] == bare["retired"]
    # accounting identity: every non-retiring stage-cycle is attributed
    stage_cycles = CORES * metered["cycles"]
    assert metered["retired"] + metered["stall_cycles"] == stage_cycles

    slowdown = metered_wall / bare_wall if bare_wall > 1e-6 else 1.0
    print()
    print("unmetered : %.3fs" % bare_wall)
    print("metered   : %.3fs (%.2fx)" % (metered_wall, slowdown))
    top = sorted(metered["stalls"].items(), key=lambda kv: -kv[1])[:3]
    for reason, count in top:
        print("  stall %-18s %8d (%.1f%% of stage-cycles)"
              % (reason, count, 100.0 * count / stage_cycles))
    # loose wall-clock bound: observation must stay a modest constant
    # factor, not change the complexity of the hot loop
    assert slowdown < 3.0, slowdown
