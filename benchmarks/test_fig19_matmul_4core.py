"""Figure 19 — the five matmul versions on a 4-core / 16-hart LBP.

Full paper scale (h=16: X 16×8 · Y 8×16) on the cycle-accurate simulator.

Shape asserted (paper §7):
* base is the fastest version, about twice as fast as tiled;
* tiled has the highest IPC, close to the peak of 4;
* every version verifies (Z = h/2 everywhere).
"""

from repro.eval import PAPER_FIG19, format_rows, run_matmul_figure

H = 16
CORES = 4


def test_fig19_matmul_4core(once):
    rows = once(run_matmul_figure, H, CORES, 1, "cycle")
    print()
    print(format_rows(rows, PAPER_FIG19,
                      "Figure 19 — 4-core LBP (16 harts), h=16, full scale"))

    cycles = {v: rows[v]["cycles"] for v in rows}
    ipc = {v: rows[v]["ipc"] for v in rows}

    # base (or its copy variant) wins at 4 cores; tiled is clearly slower
    fastest = min(cycles, key=cycles.get)
    assert fastest in ("base", "copy"), cycles
    assert cycles["tiled"] > 1.3 * cycles[fastest], cycles

    # the machine runs close to its 4-IPC peak with 16 active harts
    assert all(value <= 4.0 + 1e-9 for value in ipc.values()), ipc
    assert ipc["tiled"] >= 3.5, ipc

    # tiling pays extra control instructions (paper: +23% at 64 cores)
    assert rows["tiled"]["retired"] > rows["base"]["retired"]
