"""The content-addressed run cache: warm sweep vs cold sweep.

A figure sweep repeated with an unchanged toolchain should cost almost
nothing: every task's content key (program + params + inputs +
SIM_VERSION) is unchanged, so the second pass is pure cache hits.  The
benchmark times both passes of the Figure-19 sweep through
``run_experiments`` and asserts the warm one is measurably faster and
byte-identical.
"""

import json
import time

from conftest import _record_perf, bench_jobs, bench_scale
from repro.eval import run_matmul_experiment
from repro.workloads.matmul import MATMUL_VERSIONS

H = 16
CORES = 4


def test_cache_sweep_warm_vs_cold(tmp_path, request):
    from repro.eval.runner import run_experiments
    from repro.snapshot import RunCache

    scale = bench_scale(1)
    tasks = [(version, run_matmul_experiment,
              (version, H, CORES, scale, "cycle"))
             for version in MATMUL_VERSIONS]
    cache = RunCache(str(tmp_path / "cache"))

    t0 = time.perf_counter()
    cold = run_experiments(tasks, jobs=bench_jobs(), cache=cache)
    cold_wall = time.perf_counter() - t0
    assert cache.misses == len(tasks) and cache.hits == 0

    t0 = time.perf_counter()
    warm = run_experiments(tasks, jobs=bench_jobs(), cache=cache)
    warm_wall = time.perf_counter() - t0
    assert cache.hits == len(tasks)

    assert json.dumps(warm, sort_keys=True) == json.dumps(cold, sort_keys=True)
    # "measurably faster": a hit reads one small JSON file per task
    assert warm_wall < cold_wall / 5, (cold_wall, warm_wall)

    _record_perf("cache_sweep_cold_h%d_c%d" % (H, CORES), cold_wall, cold)
    _record_perf("cache_sweep_warm_h%d_c%d" % (H, CORES), warm_wall, warm)
    print("\ncold sweep: %.3fs (%d misses)  warm sweep: %.3fs (%d hits), "
          "speedup %.0fx"
          % (cold_wall, cache.misses, warm_wall, cache.hits,
             cold_wall / warm_wall if warm_wall else float("inf")))
