"""Figure 21 — the five matmul versions on a 64-core / 256-hart LBP,
plus the Xeon-Phi-class baseline for the tiled version.

h=256 runs on the fast simulator (validated against the cycle-accurate
model; see tests/integration/test_fastsim_validation.py).  Default work
scale is 1/16; ``LBP_BENCH_SCALE=1`` reproduces the paper's full 59 M+
retired instructions if you have the patience.

Shape asserted (paper §7):
* tiled is the fastest version — clearly ahead of distributed, and by
  a large factor over base (paper: 2x and 4x, per its figure);
* tiled runs close to the 64-IPC peak (paper: 61.7) — the interconnect
  sustains the demand;
* tiling costs extra retired instructions over base (paper: +23%);
* the Xeon-Phi model needs ~2-3x fewer cycles and ~2.3x fewer
  instructions, but achieves a far lower fraction of its peak IPC.
"""

from conftest import bench_scale

from repro.baselines import XeonPhiModel
from repro.eval import PAPER_FIG21, format_rows, run_matmul_figure

H = 256
CORES = 64


def test_fig21_matmul_64core(once):
    scale = bench_scale(16)
    rows = once(run_matmul_figure, H, CORES, scale, "fast")
    xeon = XeonPhiModel().tiled_matmul(H)
    print()
    print(format_rows(
        rows, PAPER_FIG21,
        "Figure 21 — 64-core LBP (256 harts), h=256, scale=1/%d, fast sim" % scale))
    print("xeon-phi      %12d %8.2f %12d   (analytic model, full scale; "
          "%.0f%% of 6-IPC peak)"
          % (xeon["cycles"], xeon["ipc"], xeon["retired"],
             100 * xeon["peak_fraction"]))

    cycles = {v: rows[v]["cycles"] for v in rows}
    ipc = {v: rows[v]["ipc"] for v in rows}

    # tiled is the best (or within 10% of the best) placement-aware
    # version — at larger scales our leaner memory mix (a compute-heavier
    # compiled inner loop than gcc -O2's 7 instructions) lets distributed
    # catch up to tiled, while the base-vs-placement gap stays put
    best = min(cycles.values())
    assert cycles["tiled"] <= 1.1 * best, cycles
    # base pays for its bank-0 concentration: several times slower
    assert cycles["tiled"] * 2.0 < cycles["base"], cycles
    assert max(cycles, key=cycles.get) == "base", cycles

    # tiled runs near the 64-IPC peak (interconnect sustains the demand)
    assert ipc["tiled"] >= 45.0, ipc
    assert ipc["tiled"] > ipc["base"], ipc

    # tiling overhead in retired instructions (paper: +23%)
    assert rows["tiled"]["retired"] > 1.05 * rows["base"]["retired"], rows

    # Xeon shape: fewer instructions, fewer cycles, lower peak fraction.
    # (compare per-MAC, since our runs are scaled)
    lbp_full_retired = rows["tiled"]["retired"] * scale
    assert xeon["retired"] < lbp_full_retired
    assert xeon["peak_fraction"] < 0.35
    lbp_peak_fraction = ipc["tiled"] / 64.0
    assert lbp_peak_fraction > 0.7
