"""Experiment E7 — figure 4: aligned placement makes every data access local.

The set and get teams are placed identically, the chunks live in the
processing core's own bank, and the hardware barrier orders the phases.
As the data grows, local accesses grow with it while remote accesses stay
at zero — there is nothing to keep coherent and nothing to flush.
"""

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.workloads.setget import setget_source, verify_setget

H = 16
CORES = 4


def _run(chunk):
    program = compile_to_program(setget_source(H, chunk), "setget.c")
    machine = LBP(Params(num_cores=CORES)).load(program)
    stats = machine.run(max_cycles=50_000_000)
    verify_setget(machine, H, chunk)
    return stats


def test_setget_all_accesses_local(once):
    stats = once(_run, 64)
    print()
    print("chunk=64 : %6d local, %d remote accesses, %d cycles"
          % (stats.local_accesses, stats.remote_accesses, stats.cycles))
    assert stats.remote_accesses == 0
    assert stats.local_accesses > 0


def test_setget_locality_scales(once):
    def sweep():
        return {chunk: _run(chunk) for chunk in (16, 64, 256)}

    results = {
        chunk: (stats.local_accesses, stats.remote_accesses, stats.cycles)
        for chunk, stats in once(sweep).items()
    }
    print()
    for chunk, (local, remote, cycles) in results.items():
        print("chunk=%-4d: %6d local, %d remote, %d cycles"
              % (chunk, local, remote, cycles))
    # data traffic scales, interconnect traffic does not
    assert results[256][0] > results[64][0] > results[16][0]
    assert all(remote == 0 for _loc, remote, _cyc in results.values())
    # the barrier is correct at every size (verify_setget ran inside _run)
