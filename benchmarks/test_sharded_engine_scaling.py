"""Space-sharded engine: full-scale cycle-accurate E2/E3 and shard scaling.

Three measurements, all recorded in BENCH_perf.json:

* **E2 at full scale** (Figure 20's machine: 16 cores / 64 harts,
  ``scale=1``) — the base matmul version simulated cycle-accurately,
  once in-process and once under ``shards=4``, asserting the result
  rows are bit-identical and recording the wall-clock speedup.  On a
  multi-core runner the sharded run is expected to be >= 2x faster; on
  a single-CPU box the recorded "speedup" is honestly < 1 (the workers
  time-slice one core and pay the barrier overhead on top).
* **E3 cycle-accurate** (Figure 21's machine: 64 cores / 256 harts) —
  the first cycle-accurate run of the paper's headline machine in this
  repo; previously E3 was only reachable through the instruction-level
  fast simulator.  Runs the tiled version at ``scale=16`` by default
  (``LBP_BENCH_SCALE`` overrides), sharded.
* **Shard-count scaling** — one mid-size workload swept over shards
  1/2/4/8 so EXPERIMENTS.md's "Simulator performance" section can track
  the scaling curve runner by runner.

* **Transport ratio** — the same sharded workload under the pipe and
  the shm epoch transports; ``LBP_SHM_MIN_RATIO`` (CI on shm hosts)
  asserts a floor on ``wall_pipe / wall_shm`` so regressions in ring
  epoch overhead fail fast.

Env knobs: ``LBP_BENCH_SHARDS`` (default 4) for the E2/E3 shard count,
``LBP_BENCH_SCALE`` as everywhere else, ``LBP_SHM_MIN_RATIO`` for the
transport floor.
"""

import os
import time

import pytest
from conftest import _record_perf, bench_scale

from repro.eval import run_matmul_experiment
from repro.parsim import shm_available


def bench_shards(default=4):
    value = os.environ.get("LBP_BENCH_SHARDS")
    return int(value) if value else default


def _timed(**kwargs):
    t0 = time.perf_counter()
    row = run_matmul_experiment(**kwargs)
    return row, time.perf_counter() - t0


def test_e2_full_scale_sharded_speedup():
    shards = bench_shards()
    scale = bench_scale(1)
    seq, wall_seq = _timed(version="base", h=64, num_cores=16,
                           scale=scale, simulator="cycle")
    shd, wall_shd = _timed(version="base", h=64, num_cores=16,
                           scale=scale, simulator="cycle", shards=shards)
    assert seq == shd, "sharded E2 must be bit-identical to in-process"
    speedup = wall_seq / wall_shd
    _record_perf("e2_matmul16_base_full_seq", wall_seq, seq,
                 extra={"scale": scale})
    _record_perf("e2_matmul16_base_full_shards%d" % shards, wall_shd, shd,
                 extra={"scale": scale, "shards": shards,
                        "speedup_vs_seq": round(speedup, 3)})
    print()
    print("E2 full-scale base: seq %.2fs, shards=%d %.2fs -> %.2fx"
          % (wall_seq, shards, wall_shd, speedup))
    # the >=2x acceptance bar is unconditional on shm-capable hosts
    # with a CPU per shard (plus anywhere LBP_REQUIRE_SHARD_SPEEDUP is
    # set); a single-CPU box can only record the honest slowdown.
    if ((os.environ.get("LBP_REQUIRE_SHARD_SPEEDUP") or shm_available())
            and len(os.sched_getaffinity(0)) >= shards):
        assert speedup >= 2.0, (
            "sharded E2 speedup %.2fx below the 2x bar on a %d-CPU runner"
            % (speedup, len(os.sched_getaffinity(0))))


def test_e3_matmul64_cycle_accurate():
    shards = bench_shards()
    scale = bench_scale(16)
    row, wall = _timed(version="tiled", h=256, num_cores=64,
                       scale=scale, simulator="cycle", shards=shards)
    _record_perf("e3_matmul64_tiled_cycle_shards%d" % shards, wall, row,
                 extra={"scale": scale, "shards": shards})
    print()
    print("E3 cycle-accurate tiled: %d cycles, ipc %.2f, %.2fs "
          "(scale=1/%d, shards=%d)"
          % (row["cycles"], row["ipc"], wall, scale, shards))
    # the run completed and was verified (verify_matmul ran inside);
    # sanity-pin the shape: tiled keeps the 64-core machine busy
    assert row["cores"] == 64 and row["cycles"] > 0
    assert row["ipc"] > 30.0, row


def test_shm_transport_ratio_guard():
    """Pipe vs shm epoch transport on one mid-size sharded workload.

    Both walls land in BENCH_perf.json with an explicit ``transport``
    tag; when ``LBP_SHM_MIN_RATIO`` is set (CI on multi-CPU shm hosts)
    the test asserts ``wall_pipe / wall_shm >= floor`` so epoch-overhead
    regressions in the ring transport fail fast instead of silently
    eroding the sharding win.
    """
    if not shm_available():
        pytest.skip("host has no usable shared memory")
    scale = bench_scale(8)
    walls = {}
    rows = {}
    for transport in ("pipe", "shm"):
        os.environ["LBP_SHARD_TRANSPORT"] = transport
        try:
            rows[transport], walls[transport] = _timed(
                version="base", h=64, num_cores=16, scale=scale,
                simulator="cycle", shards=2)
        finally:
            os.environ.pop("LBP_SHARD_TRANSPORT", None)
        _record_perf("transport_matmul16_shards2_%s" % transport,
                     walls[transport], rows[transport],
                     extra={"scale": scale, "shards": 2,
                            "transport": transport})
    assert rows["pipe"] == rows["shm"], \
        "the two transports must produce the identical result row"
    ratio = walls["pipe"] / walls["shm"]
    print()
    print("transport: pipe %.2fs, shm %.2fs -> ratio %.2fx"
          % (walls["pipe"], walls["shm"], ratio))
    floor = os.environ.get("LBP_SHM_MIN_RATIO")
    if floor:
        assert ratio >= float(floor), (
            "shm transport ratio %.2fx below the %s floor"
            % (ratio, floor))


def test_shard_count_scaling_curve():
    scale = bench_scale(8)
    walls = {}
    rows = {}
    for shards in (1, 2, 4, 8):
        rows[shards], walls[shards] = _timed(
            version="base", h=64, num_cores=16, scale=scale,
            simulator="cycle", shards=shards)
        _record_perf("shard_scaling_matmul16_shards%d" % shards,
                     walls[shards], rows[shards],
                     extra={"scale": scale, "shards": shards,
                            "speedup_vs_seq":
                                round(walls[1] / walls[shards], 3)})
    assert len({tuple(sorted(r.items())) for r in rows.values()}) == 1, \
        "every shard count must produce the identical result row"
    print()
    for shards in sorted(walls):
        print("shards=%d  %.2fs  (%.2fx vs in-process)"
              % (shards, walls[shards], walls[1] / walls[shards]))
