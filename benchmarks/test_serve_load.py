"""Load test for `repro serve`: hit/miss latency under concurrent fire.

The serving claim (DESIGN.md §11): over a warm cache, answering a job is
a key derivation plus a disk read — milliseconds — while a miss pays one
simulation, exactly one, however many clients ask for it concurrently.
This benchmark drives a real daemon (unix socket, the production stack)
with a thousand-odd mixed submissions and verifies the claim three ways:

* **single-flight** — executions counted by the server equal the number
  of *unique* keys submitted, never the number of submissions;
* **byte-identity** — every response for one key carries byte-identical
  canonical JSON;
* **latency split** — warm-hit p50 stays under 10 ms (measured in a
  dedicated low-concurrency phase, so the number is a latency, not a
  queueing artifact); hit vs miss percentiles land in BENCH_perf.json.

``LBP_SERVE_LOAD_JOBS`` scales the storm (CI smoke uses 200; the default
1000 satisfies the acceptance bar).
"""

import json
import os
import time

from repro.serve import ServeConfig, ServerThread
from repro.serve.loadgen import run_load, summarize

#: storm size (mixed phase); env override for CI smoke runs
TOTAL_JOBS = int(os.environ.get("LBP_SERVE_LOAD_JOBS", "1000"))
WARM_KEYS = 16          # distinct keys prewarmed, then hammered as hits
COLD_KEYS = 24          # distinct keys first seen mid-storm (the misses)
HIT_SHARE = 0.7         # of the mixed storm
STORM_CONNECTIONS = 100
PROBE_CONNECTIONS = 8   # low-concurrency phase: measures latency, not queueing
HIT_P50_BUDGET_MS = 10.0

ASM = """
main:
    li   t1, 40
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
"""


def _job(inputs):
    return {"source": ASM, "filename": "job.s",
            "params": {"num_cores": 2}, "inputs": inputs}


def _plan_mixed(total):
    """Deterministic interleave: ~HIT_SHARE warm keys, the rest cold.

    Cold submissions cycle over COLD_KEYS unique keys, so most cold keys
    are submitted several times concurrently — the single-flight path,
    not just the miss path, is under load.
    """
    hits = int(total * HIT_SHARE)
    plan = []
    for n in range(total):
        if n % 10 < HIT_SHARE * 10:
            plan.append({"kind": "hit",
                         "job": _job(["warm", n % WARM_KEYS])})
        else:
            plan.append({"kind": "miss",
                         "job": _job(["cold", n % COLD_KEYS])})
    return plan, hits


def test_serve_load_hit_miss_percentiles(tmp_path, perf_record):
    config = ServeConfig(unix_path=str(tmp_path / "serve.sock"),
                         cache_root=str(tmp_path / "cache"), workers=2)
    address = {"unix_path": config.unix_path}
    with ServerThread(config) as handle:
        # phase 0 — prewarm: one execution per warm key
        prewarm = [{"kind": "prewarm", "job": _job(["warm", n])}
                   for n in range(WARM_KEYS)]
        run_load(address, prewarm, concurrency=4)

        # phase 1 — warm-hit latency probe at low concurrency
        probe = [{"kind": "hit", "job": _job(["warm", n % WARM_KEYS])}
                 for n in range(20 * PROBE_CONNECTIONS)]
        probe_samples = run_load(address, probe,
                                 concurrency=PROBE_CONNECTIONS)

        # phase 2 — the mixed storm
        plan, _ = _plan_mixed(TOTAL_JOBS)
        t0 = time.perf_counter()
        storm_samples = run_load(address, plan,
                                 concurrency=STORM_CONNECTIONS)
        storm_wall = time.perf_counter() - t0

        stats = handle.server.stats()
        handle.stop()  # clean drain is part of the acceptance criteria
        after = handle.server.stats()

    # ---- single-flight: executions == unique keys, full stop --------------
    jobs = stats["jobs"]
    assert jobs["executed"] == WARM_KEYS + COLD_KEYS
    assert jobs["completed"] == jobs["executed"]
    assert jobs["failed"] == 0 and jobs["job_timeouts"] == 0

    # ---- every answer for a key is byte-identical --------------------------
    samples = probe_samples + storm_samples
    assert len(storm_samples) == TOTAL_JOBS
    by_key = {}
    for sample in samples:
        assert sample["http_status"] == 200, sample
        assert sample["status"] in ("hit", "done"), sample
        assert sample["value_bytes"], "every submission returns the value"
        by_key.setdefault(sample["key"], set()).add(sample["value_bytes"])
    assert len(by_key) == WARM_KEYS + COLD_KEYS
    divergent = {key for key, blobs in by_key.items() if len(blobs) != 1}
    assert not divergent, "keys with non-identical payloads: %s" % divergent

    # ---- drain was clean ----------------------------------------------------
    assert after["draining"] is True
    assert after["queue"] == {"depth": 0, "running": 0}
    assert handle.server.table.inflight == {}

    # ---- the latency split --------------------------------------------------
    probe_summary = summarize(probe_samples)
    storm_summary = summarize(storm_samples, wall_s=storm_wall)
    warm_p50 = probe_summary["hit"]["p50_ms"]
    assert warm_p50 < HIT_P50_BUDGET_MS, (
        "warm-hit p50 %.3fms blows the %.0fms budget"
        % (warm_p50, HIT_P50_BUDGET_MS))

    perf_record(storm_wall, extra={
        "serve_load": {
            "total_jobs": TOTAL_JOBS,
            "connections": STORM_CONNECTIONS,
            "unique_keys": WARM_KEYS + COLD_KEYS,
            "executed": jobs["executed"],
            "warm_hit_probe": probe_summary["hit"],
            "storm": storm_summary,
        },
    })
    print("\nserve load: %d jobs / %.2fs (%.0f jobs/s), warm-hit p50 %.2fms"
          % (TOTAL_JOBS, storm_wall,
             storm_summary["_total"]["jobs_per_s"], warm_p50))
    print(json.dumps(storm_summary, indent=2, sort_keys=True))
