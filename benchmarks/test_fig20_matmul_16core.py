"""Figure 20 — the five matmul versions on a 16-core / 64-hart LBP.

Cycle-accurate simulation at h=64.  Default work scale is 1/2 — raised
from 1/4 by the hot-path overhaul (active-core gating + pre-lowered
decode), which bought back enough wall clock to double the default work
(set ``LBP_BENCH_SCALE=1`` for the full paper size); the scale shrinks
the columns each thread computes, not the placement or team structure.

Shape asserted (paper §7):
* copy is the fastest version and beats base by a clear margin
  (paper: 16%) — copying the X line to the local stack removes repeated
  remote reads;
* base loses IPC (paper: 12.7) while copy stays near peak (paper: >15).
"""

from conftest import bench_scale

from repro.eval import PAPER_FIG20, format_rows, run_matmul_figure

H = 64
CORES = 16


def test_fig20_matmul_16core(once):
    scale = bench_scale(2)
    rows = once(run_matmul_figure, H, CORES, scale, "cycle")
    print()
    print(format_rows(
        rows, PAPER_FIG20,
        "Figure 20 — 16-core LBP (64 harts), h=64, scale=1/%d" % scale))

    cycles = {v: rows[v]["cycles"] for v in rows}
    ipc = {v: rows[v]["ipc"] for v in rows}

    # copy beats base by a clear margin (the paper's headline: 16%)
    assert cycles["copy"] < 0.95 * cycles["base"], cycles

    # peak is 16; the best versions run close to it
    assert all(value <= 16.0 + 1e-9 for value in ipc.values()), ipc
    assert ipc["copy"] >= 13.0, ipc

    # copy's instruction overhead over base is moderate (paper: ~1.5%;
    # ours is higher — a non-optimising compiler — but still small)
    overhead = rows["copy"]["retired"] / rows["base"]["retired"] - 1.0
    assert -0.2 < overhead < 0.2, overhead
