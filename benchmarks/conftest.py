"""Shared benchmark configuration.

Scale policy: the cycle-accurate simulator is pure Python, so the bigger
configurations run, by default, with each thread computing a fraction of
its Z columns (placement and parallel structure unchanged — see
DESIGN.md).  Set ``LBP_BENCH_SCALE=1`` for full paper scale (slow) or any
other divisor to trade fidelity for time.

Perf trajectory: every measurement taken through the ``once`` or
``fanout`` fixtures is appended to ``BENCH_perf.json`` at the repo root —
wall time plus cycles/sec and retired/sec extracted from the result —
so successive PRs can track the simulator's perf curve (see
EXPERIMENTS.md, "Simulator performance").
"""

import json
import os
import time

import pytest

_PERF_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "BENCH_perf.json")


def bench_scale(default):
    """Scale divisor for the heavy figures (env LBP_BENCH_SCALE overrides)."""
    value = os.environ.get("LBP_BENCH_SCALE")
    return int(value) if value else default


def bench_jobs():
    """Worker count for the fan-out fixture (env LBP_BENCH_JOBS overrides)."""
    value = os.environ.get("LBP_BENCH_JOBS")
    return int(value) if value else None  # None → one worker per CPU


# ---- perf trajectory (BENCH_perf.json) -------------------------------------


def _extract_counts(result):
    """Total (cycles, retired) found in a benchmark's result value.

    Understands stats objects (``.cycles``/``.retired`` attributes),
    result rows (dicts with ``cycles``/``retired`` keys), and containers
    of either; anything else contributes nothing.
    """
    cycles = getattr(result, "cycles", None)
    retired = getattr(result, "retired", None)
    if isinstance(cycles, int) and isinstance(retired, int):
        return cycles, retired
    if isinstance(result, dict):
        if isinstance(result.get("cycles"), int):
            return result["cycles"], result.get("retired", 0)
        result = result.values()
    if isinstance(result, (list, tuple)) or not isinstance(result, str) \
            and hasattr(result, "__iter__"):
        total_c = total_r = 0
        for item in result:
            c, r = _extract_counts(item)
            total_c += c
            total_r += r
        return total_c, total_r
    return 0, 0


def _extract_stalls(result):
    """Merged stall breakdown found in a benchmark's result value.

    Result rows produced under stall attribution (``metrics=True``) carry
    a ``stalls`` dict; sum them across whatever container shape the
    benchmark returned.  Returns ``{}`` when the run was unmetered.
    """
    merged = {}
    if isinstance(result, dict):
        stalls = result.get("stalls")
        if isinstance(stalls, dict):
            for reason, count in stalls.items():
                merged[reason] = merged.get(reason, 0) + count
            return merged
        result = result.values()
    if isinstance(result, (list, tuple)) or not isinstance(result, str) \
            and hasattr(result, "__iter__"):
        for item in result:
            for reason, count in _extract_stalls(item).items():
                merged[reason] = merged.get(reason, 0) + count
    return merged


def _extract_backend(result):
    """The execution backend recorded in a benchmark's result rows.

    Cycle-simulator rows carry a ``backend`` key (see
    :func:`repro.eval.figures.run_matmul_experiment`); the first one
    found wins (a benchmark never mixes backends).  None when absent.
    """
    if isinstance(result, dict):
        backend = result.get("backend")
        if isinstance(backend, str):
            return backend
        result = result.values()
    if isinstance(result, (list, tuple)) or not isinstance(result, str) \
            and hasattr(result, "__iter__"):
        for item in result:
            backend = _extract_backend(item)
            if backend is not None:
                return backend
    return None


def _extract_workload(result):
    """The workload name recorded in a benchmark's result rows.

    Experiment rows stamped at the source (see
    :func:`repro.eval.figures.run_matmul_experiment`) carry a
    ``workload`` key; the first one found wins.  None when absent.
    """
    if isinstance(result, dict):
        workload = result.get("workload")
        if isinstance(workload, str):
            return workload
        result = result.values()
    if isinstance(result, (list, tuple)) or not isinstance(result, str) \
            and hasattr(result, "__iter__"):
        for item in result:
            workload = _extract_workload(item)
            if workload is not None:
                return workload
    return None


#: experiment-name fallbacks for benchmarks whose results don't carry a
#: ``workload`` key — first substring match wins
_WORKLOAD_BY_NAME = (
    ("serve_load", "job_service"),
    ("trace_overhead", "job_service"),
    ("serving", "serving"),
    ("matmul", "matmul"),
    ("setget", "setget"),
    ("io_", "iopatterns"),
    ("router", "matmul"),
    ("cycle_determinism", "matmul"),
    ("classic_smp", "synthetic"),
    ("overhead", "matmul"),
    ("cache_sweep", "matmul"),
    ("backend", "matmul"),
    ("shard", "matmul"),
    ("shm_transport", "matmul"),
    ("pipeline", "alu_micro"),
)


def _infer_workload(experiment):
    for needle, workload in _WORKLOAD_BY_NAME:
        if needle in experiment:
            return workload
    return "unknown"


def _sharded_transport():
    """The epoch transport a sharded run resolves on this host/env."""
    try:
        from repro.parsim import choose_transport

        return choose_transport()
    except Exception:
        return None


def _record_perf(experiment, wall, result, jobs=None, extra=None):
    cycles, retired = _extract_counts(result)
    stalls = _extract_stalls(result)
    backend = _extract_backend(result)
    # a wall time at (or below) the clock's resolution is noise — a warm
    # cache hit, say — and dividing by it fabricates absurd throughput;
    # record the raw time at microsecond precision and null the rates
    resolution = time.get_clock_info("perf_counter").resolution
    floor = max(resolution, 1e-6)
    measurable = wall > floor
    # a result with no simulation counters at all (an OS-jitter spread,
    # a bare IPC curve) is a wall-time row, not a throughput sample:
    # mark it non_perf and null the rates so it cannot drag aggregate
    # cycles/sec trends toward zero
    simulated = cycles > 0 or retired > 0
    entry = {
        "experiment": experiment,
        # never record 0.0: an immeasurably fast run clamps to the floor
        "wall_s": round(wall, 6) if measurable else floor,
        "cycles": cycles,
        "retired": retired,
        "cycles_per_s": round(cycles / wall) if measurable and simulated
        else None,
        "retired_per_s": round(retired / wall) if measurable and simulated
        else None,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        # every trajectory row names its workload so per-workload perf
        # curves can be separated out; result rows win over inference,
        # and an explicit ``extra`` key (merged below) wins over both
        "workload": _extract_workload(result) or _infer_workload(experiment),
    }
    # whether span recording was live during the measured run (PR 10):
    # rows default to the untraced hot path; trace-overhead benchmarks
    # override via ``extra`` so traced and untraced samples never mix in
    # one trend line
    entry["traced"] = False
    if not simulated:
        entry["non_perf"] = True
    if stalls:
        entry["stalls"] = stalls
    if backend is not None:
        entry["backend"] = backend
    if jobs is not None:
        entry["jobs"] = jobs
    if extra:
        entry.update(extra)
    if entry.get("shards") not in (None, 0, 1):
        # sharded rows name their epoch transport so the perf trajectory
        # stays attributable across the pipe -> shm transition
        entry.setdefault("transport", _sharded_transport())
    try:
        with open(_PERF_PATH) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        data = {"runs": []}
    data["runs"].append(entry)
    with open(_PERF_PATH, "w") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")


# ---- fixtures ---------------------------------------------------------------


@pytest.fixture
def once(benchmark, request):
    """Run a callable exactly once under pytest-benchmark timing.

    Also appends the measurement to the BENCH_perf.json trajectory.
    """

    def runner(fn, *args, **kwargs):
        t0 = time.perf_counter()
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    iterations=1, rounds=1)
        _record_perf(request.node.name, time.perf_counter() - t0, result)
        return result

    return runner


@pytest.fixture
def perf_record(request):
    """Append one custom measurement row to BENCH_perf.json.

    For benchmarks whose primary product is not a simulation result —
    the serve load test records latency percentiles, for example —
    ``perf_record(wall_s, result, extra={...})`` writes the trajectory
    row directly; *extra* keys merge into the entry.
    """

    def record(wall_s, result=None, jobs=None, extra=None):
        _record_perf(request.node.name, wall_s, result, jobs=jobs,
                     extra=extra)

    return record


@pytest.fixture
def fanout(request):
    """Run independent simulation tasks through the parallel runner.

    ``fanout(tasks, jobs=None)`` forwards to
    :func:`repro.eval.runner.run_experiments` (tasks are ``(key, fn,
    args, kwargs)`` tuples, merged in task order), times the batch, and
    appends the measurement to BENCH_perf.json.  ``jobs`` defaults to
    ``LBP_BENCH_JOBS`` or one worker per CPU; the merged results are
    byte-identical whatever the worker count.
    """
    from repro.eval.runner import run_experiments

    def run(tasks, jobs=None):
        if jobs is None:
            jobs = bench_jobs()
        t0 = time.perf_counter()
        results = run_experiments(tasks, jobs=jobs)
        # record the job count the runner actually resolved, not the
        # request (None means "runner's default")
        resolved = getattr(results, "meta", {}).get("jobs", jobs)
        _record_perf(request.node.name, time.perf_counter() - t0,
                     results, jobs=resolved)
        return results

    return run
