"""Shared benchmark configuration.

Scale policy: the cycle-accurate simulator is pure Python, so the bigger
configurations run, by default, with each thread computing a fraction of
its Z columns (placement and parallel structure unchanged — see
DESIGN.md).  Set ``LBP_BENCH_SCALE=1`` for full paper scale (slow) or any
other divisor to trade fidelity for time.
"""

import os

import pytest


def bench_scale(default):
    """Scale divisor for the heavy figures (env LBP_BENCH_SCALE overrides)."""
    value = os.environ.get("LBP_BENCH_SCALE")
    return int(value) if value else default


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return runner
