"""Ablation A2 — §5.3: interconnect sizing and the value of placement.

We sweep the per-hop link latency of the r1/r2/r3 tree on the 16-core
machine and re-run the base (all data in bank 0, remote-heavy) and d+c
(distributed + copied, placement-aware) matmul versions.  A slower
interconnect hurts the placement-unaware version much more — quantifying
the paper's argument that Deterministic OpenMP's explicit mapping is what
keeps remote traffic, and thus the interconnect requirement, low.
"""

from conftest import bench_scale

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.workloads.matmul import matmul_source, verify_matmul

H = 64
CORES = 16


def _run(version, hop_latency, scale):
    program = compile_to_program(matmul_source(version, H, scale=scale), "mm.c")
    params = Params(num_cores=CORES, link_hop_latency=hop_latency)
    machine = LBP(params).load(program)
    stats = machine.run(max_cycles=100_000_000)
    verify_matmul(machine, program, version, H, scale=scale)
    return stats.cycles


def test_router_latency_sweep(fanout):
    scale = bench_scale(8)
    hops = (1, 2, 4)
    versions = ("base", "d+c")

    points = fanout([
        ("%s/hop%d" % (version, hop), _run, (version, hop, scale))
        for version in versions for hop in hops
    ])
    results = {
        version: [points["%s/hop%d" % (version, hop)] for hop in hops]
        for version in versions
    }
    print()
    print("16-core machine, link hop latency swept over", list(hops))
    for version, cycles in results.items():
        print("  %-5s cycles   :" % version, cycles)

    base = results["base"]
    dandc = results["d+c"]
    # slower links cost cycles for the remote-heavy version
    assert base[0] < base[1] < base[2], base
    # relative degradation: placement-aware suffers much less
    base_penalty = base[-1] / base[0]
    dandc_penalty = dandc[-1] / dandc[0]
    print("  base penalty %.2fx vs d+c penalty %.2fx" % (base_penalty, dandc_penalty))
    assert base_penalty > dandc_penalty, (base_penalty, dandc_penalty)
    assert base_penalty > 1.05, base_penalty
