"""Backend throughput guard: SoA vs interpreter on the E1 smoke sweep.

Times the same Figure-19 matmul (tiled, h=16, 4 cores) under
``backend="interp"`` and ``backend="soa"`` — bit-identical results by
construction (``tests/integration/test_backend_parity.py``) — and
asserts the SoA backend's retired/s stays at or above the floor ratio.

The floor defaults to 0.95: a *regression* guard, not the speedup the
backend was sized for.  PR 1 already flattened the interpreter's hot
loop (pre-lowered decode, inlined stages), so the SoA restructuring
buys ~1.0–1.25× depending on workload shape rather than the 3× the
original plan assumed against a naive tick — see DESIGN.md §10 for the
measured numbers and where the remaining time goes.  Override with
``LBP_SOA_MIN_RATIO`` (e.g. ``3.0`` on a runner where the vectorized
lane dominates) to give the guard more bite.
"""

import os
import time

from conftest import _record_perf
from repro.eval import run_matmul_experiment

H = 16
CORES = 4
VERSION = "tiled"
REPS = 3


def _best_of(backend):
    best = None
    row = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        row = run_matmul_experiment(VERSION, H, CORES, 1, "cycle",
                                    backend=backend)
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    return row, best


def test_soa_backend_keeps_pace_with_interp():
    floor = float(os.environ.get("LBP_SOA_MIN_RATIO", "0.95"))

    interp_row, interp_wall = _best_of("interp")
    soa_row, soa_wall = _best_of("soa")

    # identical simulations, so identical counters — only wall differs
    assert soa_row["cycles"] == interp_row["cycles"]
    assert soa_row["retired"] == interp_row["retired"]

    _record_perf("e1_backend_interp_%s_h%d_c%d" % (VERSION, H, CORES),
                 interp_wall, interp_row)
    _record_perf("e1_backend_soa_%s_h%d_c%d" % (VERSION, H, CORES),
                 soa_wall, soa_row)

    ratio = interp_wall / soa_wall
    print("\nE1 backend ratio: interp %.3fs, soa %.3fs -> soa is %.2fx "
          "(floor %.2fx)" % (interp_wall, soa_wall, ratio, floor))
    assert ratio >= floor, (
        "soa backend fell below %.2fx of interp retired/s: %.2fx"
        % (floor, ratio))
