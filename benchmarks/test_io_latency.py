"""Experiment E6 — figure 16/17: bounded, repeatable I/O response time.

LBP takes no interrupts: the sensor team actively polls, the join orders
the fusion, the actuator write follows within a bounded number of cycles
of the *last* sensor becoming ready.  We measure, for every round,

    response(r) = actuator_write_cycle(r) - max_i sensor_ready(i, r)

and assert it is tightly bounded and identical across repeated runs —
the paper's contrast with "interrupt handler + thread wake up + thread
running" whose response time "is very hard to bound".
"""

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.workloads.sensors import attach_sensors, expected_fusions, sensors_source

CORES = 4
ROUNDS = 5


def _run(schedules):
    program = compile_to_program(sensors_source(CORES, ROUNDS), "sensors.c")
    machine = LBP(Params(num_cores=CORES)).load(program)
    _sensors, actuator = attach_sensors(machine, CORES, schedules)
    machine.run(max_cycles=10_000_000)
    return actuator.writes


def test_io_response_time_bounded(once):
    # one event every 800 cycles: beyond the round's processing time, so
    # the system reaches a steady state (an oversubscribed period would
    # make responses grow round over round — also a useful property to
    # know, covered in tests/)
    schedules = [
        [(800 * (r + 1) + 29 * i, 1000 * r + i) for r in range(ROUNDS)]
        for i in range(4)
    ]
    writes = once(_run, schedules)
    assert [value for _c, value in writes] == expected_fusions(schedules, ROUNDS)

    responses = []
    for r, (cycle, _value) in enumerate(writes):
        last_ready = max(schedules[i][r][0] for i in range(4))
        responses.append(cycle - last_ready)
    print()
    print("per-round response times (cycles):", responses)

    # bounded: polling + fusion + join, a small constant
    assert all(0 < response < 400 for response in responses), responses
    # steady: round-to-round variation stays within one polling-loop
    # period (the ready moment lands at a different phase of the active
    # wait each round; everything else is constant)
    assert max(responses) - min(responses) <= 32, responses

    # and fully deterministic across runs
    writes_again = _run(schedules)
    assert writes_again == writes
