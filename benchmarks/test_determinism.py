"""Experiment E4 — claim (1): LBP runs are cycle-by-cycle deterministic.

Repeated runs of the same Deterministic OpenMP program on the same LBP
machine produce *identical full event traces* — every fork, memory
request, link transfer, join and p_ret happens at the same cycle on the
same core and hart ("at cycle 467171, core 55, hart 2 sends a memory
request..." holds for any run).

The classic-SMP baseline makes the contrast: the same logical work under
an interrupt-driven OS scheduler produces a different timeline on every
run (seed), even though the results are the same — which is exactly why
the paper's Xeon measurements needed 1000 runs and a minimum.
"""

from repro.baselines import ClassicSMP
from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.workloads.matmul import matmul_source, verify_matmul

H = 16
CORES = 4


def _traced_run():
    program = compile_to_program(matmul_source("base", H), "mm.c")
    machine = LBP(Params(num_cores=CORES, trace_enabled=True)).load(program)
    stats = machine.run(max_cycles=10_000_000)
    verify_matmul(machine, program, "base", H)
    return stats, machine.trace.events


def test_lbp_cycle_determinism(fanout):
    # the two repeats run in separate worker processes through the
    # parallel runner — determinism must hold across process boundaries
    results = fanout([("run_a", _traced_run), ("run_b", _traced_run)],
                     jobs=2)
    (stats_a, trace_a) = results["run_a"]
    (stats_b, trace_b) = results["run_b"]
    print()
    print("run A: %d cycles, %d retired, %d trace events"
          % (stats_a.cycles, stats_a.retired, len(trace_a)))
    print("run B: %d cycles, %d retired, %d trace events"
          % (stats_b.cycles, stats_b.retired, len(trace_b)))
    assert stats_a.cycles == stats_b.cycles
    assert stats_a.retired == stats_b.retired
    assert trace_a == trace_b, "event traces differ between identical runs"
    print("traces identical, event for event (cycle determinism)")


def test_classic_smp_is_not_repeatable(once):
    # the same 16 tasks of ~30k instructions each, 8 runs
    tasks = [30_000] * 16
    model = ClassicSMP(num_cores=CORES, seed=100)
    lowest, average, highest = once(model.run_many, tasks, 8)
    print()
    print("classic SMP, 8 runs of the same work: min=%d avg=%.0f max=%d"
          % (lowest, average, highest))
    assert highest > lowest, "OS-scheduled runs should differ run to run"
    spread = (highest - lowest) / lowest
    assert spread > 0.005, spread

    # but the model itself is seed-deterministic (it is a simulation)
    again = ClassicSMP(num_cores=CORES, seed=100).run_tasks(tasks)
    first = ClassicSMP(num_cores=CORES, seed=100).run_tasks(tasks)
    assert again.cycles == first.cycles
