"""Perf-regression guard: compare E1 throughput against the baseline.

Reads the most recent ``test_fig19_matmul_4core`` entry appended to
``BENCH_perf.json`` (run ``pytest benchmarks/test_fig19_matmul_4core.py``
first) and compares its ``cycles_per_s`` against the committed
``benchmarks/perf_baseline.json``:

* **below** baseline by more than the tolerance (default 30%) → exit 1.
  That is the loud failure the guard exists for: a hot-path regression.
* **above** baseline by more than the tolerance → exit 0 with a nudge to
  refresh the baseline (faster runner or a genuine speedup — either way
  the committed number is stale and the guard has lost its bite).

The baseline is runner-dependent; refresh it on the reference runner
with::

    PYTHONPATH=src python -m pytest benchmarks/test_fig19_matmul_4core.py -q
    PYTHONPATH=src python benchmarks/check_perf_baseline.py --refresh
"""

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
PERF_PATH = os.path.join(HERE, os.pardir, "BENCH_perf.json")
BASELINE_PATH = os.path.join(HERE, "perf_baseline.json")
EXPERIMENT = "test_fig19_matmul_4core"


def latest_measurement():
    with open(PERF_PATH) as handle:
        runs = json.load(handle)["runs"]
    rows = [r for r in runs
            if r["experiment"] == EXPERIMENT and r.get("cycles_per_s")]
    if not rows:
        sys.exit("no measurable %r entry in %s — run the E1 bench first"
                 % (EXPERIMENT, PERF_PATH))
    return rows[-1]


def main(argv):
    measured = latest_measurement()
    rate = measured["cycles_per_s"]

    if "--refresh" in argv:
        baseline = {
            "experiment": EXPERIMENT,
            "cycles_per_s": rate,
            "tolerance": 0.30,
            "measured": measured["date"],
            "note": "refresh on the reference runner with "
                    "check_perf_baseline.py --refresh after running the "
                    "E1 bench",
        }
        with open(BASELINE_PATH, "w") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print("baseline refreshed: %d cycles/s" % rate)
        return 0

    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    reference = baseline["cycles_per_s"]
    tolerance = baseline.get("tolerance", 0.30)
    ratio = rate / reference
    print("E1 throughput: measured %d cycles/s, baseline %d (%.0f%%, "
          "tolerance ±%.0f%%)"
          % (rate, reference, 100 * ratio, 100 * tolerance))
    if ratio < 1 - tolerance:
        print("FAIL: hot-path regression — E1 simulation throughput fell "
              "more than %.0f%% below the committed baseline"
              % (100 * tolerance))
        return 1
    if ratio > 1 + tolerance:
        print("note: measured throughput is well above the baseline; "
              "refresh perf_baseline.json so the guard keeps its bite")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
