"""Ablation A1 — §5.2: multithreading hides latency; ≥2 harts fill a core.

LBP has no branch predictor: a hart is suspended after every fetch until
its next pc is known, so a single hart cannot exceed ~0.5 IPC.  The
paper's design point is that the pipeline bubbles are filled by the other
harts of the same application: with 2+ active harts the core approaches
its 1-IPC peak.

We run an arithmetic team of n = 1..4 members on one core and chart IPC.
"""

from repro.asm import assemble
from repro.detomp import runtime_asm, start_stub_asm, worker_asm
from repro.detomp.runtime import omp_globals_asm
from repro.machine import LBP, Params

_BODY = """
__omp_body_0:
    li t1, 2000
    li t2, 0
body_loop:
    addi t2, t2, 1
    addi t2, t2, 2
    addi t2, t2, 3
    addi t2, t2, 4
    addi t1, t1, -1
    bnez t1, body_loop
    ret
"""


def _team_program(members):
    source = start_stub_asm() + """
main:
    addi sp, sp, -16
    sw ra, 0(sp)
    la a0, __omp_worker_0
    li a1, 0
    li a2, %d
    jal LBP_parallel_start
    lw ra, 0(sp)
    addi sp, sp, 16
    ret
""" % members + _BODY + worker_asm("__omp_worker_0", "__omp_body_0") \
        + runtime_asm() + omp_globals_asm()
    return assemble(source, "harts%d.s" % members)


def _ipc(members):
    machine = LBP(Params(num_cores=1)).load(_team_program(members))
    stats = machine.run(max_cycles=10_000_000)
    return stats.ipc


def test_multithreading_fills_the_pipeline(fanout):
    curve = fanout([(members, _ipc, (members,)) for members in (1, 2, 3, 4)])
    print()
    for members, value in curve.items():
        print("  %d active hart(s): IPC %.3f  %s"
              % (members, value, "#" * int(40 * value)))

    # one hart alone is fetch-bound near 0.5 IPC
    assert curve[1] < 0.62, curve
    # two harts roughly double it; four saturate the 1-IPC core
    assert curve[2] > 1.55 * curve[1], curve
    assert curve[4] > 0.9, curve
    # monotone non-decreasing
    assert curve[1] < curve[2] <= curve[3] + 0.05 <= curve[4] + 0.1, curve
