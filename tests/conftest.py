"""Make the shared test helpers importable from every test package."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
