"""Shared test helpers: compile DetC and run it on a simulator."""

from repro.compiler import compile_to_program
from repro.fastsim import FastLBP
from repro.isa.semantics import to_signed
from repro.machine import LBP, Params


def run_c(source, cores=1, simulator="cycle", max_cycles=5_000_000, **params):
    """Compile *source*, run it; returns (program, machine, stats)."""
    program = compile_to_program(source, "test.c")
    machine_params = Params(num_cores=cores, **params)
    if simulator == "cycle":
        machine = LBP(machine_params)
    else:
        machine = FastLBP(machine_params)
    machine.load(program)
    stats = machine.run(max_cycles=max_cycles)
    return program, machine, stats


def word(machine, program, name, index=0):
    """Signed value of global *name* (word *index*)."""
    return to_signed(machine.read_word(program.symbol(name) + 4 * index))


def uword(machine, program, name, index=0):
    """Unsigned value of global *name* (word *index*)."""
    return machine.read_word(program.symbol(name) + 4 * index)
