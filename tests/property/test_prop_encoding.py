"""Property: binary encode/decode round-trips for every instruction."""

from hypothesis import given, settings, strategies as st

from repro.isa import INSTR_SPECS, Instruction, decode_word, encode_instruction

_SPECS = sorted(INSTR_SPECS.values(), key=lambda s: s.mnemonic)

regs = st.integers(min_value=0, max_value=31)


def _imm_strategy(spec):
    if spec.mnemonic in ("slli", "srli", "srai"):
        return st.integers(0, 31)
    if spec.fmt == "I" or spec.fmt == "S":
        return st.integers(-2048, 2047)
    if spec.fmt == "B":
        return st.integers(-2048, 2047).map(lambda v: v * 2)
    if spec.fmt == "U":
        return st.integers(0, (1 << 20) - 1)
    if spec.fmt == "J":
        return st.integers(-(1 << 19), (1 << 19) - 1).map(lambda v: v * 2)
    return st.just(0)


@st.composite
def instructions(draw):
    spec = draw(st.sampled_from(_SPECS))
    if spec.opcode == 0b1110011:  # SYSTEM has fixed operands
        return Instruction(spec.mnemonic, spec=spec)
    shape = spec.operands
    ins = Instruction(spec.mnemonic, spec=spec)
    if "rd" in shape:
        ins.rd = draw(regs)
    if "rs1" in shape:
        ins.rs1 = draw(regs)
    if "rs2" in shape:
        ins.rs2 = draw(regs)
    if "imm" in shape or "label" in shape:
        ins.imm = draw(_imm_strategy(spec))
    return ins


@given(instructions())
@settings(max_examples=400)
def test_encode_decode_round_trip(ins):
    word = encode_instruction(ins)
    assert 0 <= word < (1 << 32)
    decoded = decode_word(word)
    assert decoded == ins


@given(instructions(), instructions())
@settings(max_examples=200)
def test_distinct_instructions_encode_distinctly(a, b):
    if a != b:
        assert encode_instruction(a) != encode_instruction(b)
