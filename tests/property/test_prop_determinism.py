"""Property: every randomly shaped team program is cycle-deterministic.

Hypothesis generates random parallel workloads (team size, per-member
work mix, shared-memory access patterns); each one must produce identical
full event traces on two runs, and correct per-member results.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler import compile_to_program
from repro.machine import LBP, Params


@st.composite
def team_programs(draw):
    members = draw(st.integers(2, 12))
    work = draw(st.integers(1, 20))
    mix = draw(st.sampled_from(["alu", "mem", "mul", "mixed"]))
    if mix == "alu":
        body = "acc += t + i;"
    elif mix == "mem":
        body = "scratch[t] = acc; acc += scratch[t] + 1;"
    elif mix == "mul":
        body = "acc += (t + 1) * i;"
    else:
        body = "scratch[t] += i; acc += scratch[t] * t;"
    source = """
#include <det_omp.h>
int scratch[16];
int results[16];
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < %(members)d; t++) {
        int i;
        int acc = 0;
        for (i = 0; i < %(work)d; i++) {
            %(body)s
        }
        results[t] = acc;
    }
}
""" % {"members": members, "work": work, "body": body}
    return source, members, work, mix


def _reference(members, work, mix):
    scratch = [0] * 16
    results = [0] * 16
    for t in range(members):
        acc = 0
        for i in range(work):
            if mix == "alu":
                acc += t + i
            elif mix == "mem":
                scratch[t] = acc
                acc += scratch[t] + 1
            elif mix == "mul":
                acc += (t + 1) * i
            else:
                scratch[t] += i
                acc += scratch[t] * t
        results[t] = acc
    return results[:members]


@given(team_programs())
@settings(max_examples=25, deadline=None)
def test_random_team_programs_deterministic_and_correct(case):
    source, members, work, mix = case
    traces = []
    for _ in range(2):
        program = compile_to_program(source, "team.c")
        machine = LBP(Params(num_cores=3, trace_enabled=True)).load(program)
        machine.run(max_cycles=5_000_000)
        traces.append((machine.stats.cycles, list(machine.trace.events)))
        base = program.symbol("results")
        got = [machine.read_word(base + 4 * t) for t in range(members)]
        expected = [v & 0xFFFFFFFF for v in _reference(members, work, mix)]
        assert got == expected, (mix, members, work)
    assert traces[0] == traces[1]
