"""Property: the 32-bit ALU semantics against Python big-int references."""

from hypothesis import given, settings, strategies as st

from repro.isa.semantics import ALU_OPS, BRANCH_OPS, to_signed, to_unsigned

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


@given(u32, u32)
@settings(max_examples=300)
def test_wrapping_ops(a, b):
    assert ALU_OPS["add"](a, b) == (a + b) % (1 << 32)
    assert ALU_OPS["sub"](a, b) == (a - b) % (1 << 32)
    assert ALU_OPS["mul"](a, b) == (a * b) % (1 << 32)
    assert ALU_OPS["and"](a, b) == a & b
    assert ALU_OPS["or"](a, b) == a | b
    assert ALU_OPS["xor"](a, b) == a ^ b


@given(u32, st.integers(0, 31))
@settings(max_examples=200)
def test_shifts_reference(a, sh):
    assert ALU_OPS["sll"](a, sh) == (a << sh) % (1 << 32)
    assert ALU_OPS["srl"](a, sh) == a >> sh
    assert ALU_OPS["sra"](a, sh) == to_unsigned(to_signed(a) >> sh)


@given(u32, u32)
@settings(max_examples=300)
def test_signed_division_reference(a, b):
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        assert ALU_OPS["div"](a, b) == 0xFFFFFFFF
        assert ALU_OPS["rem"](a, b) == a
    elif sa == -(1 << 31) and sb == -1:
        assert ALU_OPS["div"](a, b) == 0x80000000
        assert ALU_OPS["rem"](a, b) == 0
    else:
        # C-style truncation toward zero
        quotient = int(sa / sb)
        remainder = sa - quotient * sb
        assert to_signed(ALU_OPS["div"](a, b)) == quotient
        assert to_signed(ALU_OPS["rem"](a, b)) == remainder


@given(u32, u32)
@settings(max_examples=200)
def test_unsigned_division_reference(a, b):
    if b == 0:
        assert ALU_OPS["divu"](a, b) == 0xFFFFFFFF
        assert ALU_OPS["remu"](a, b) == a
    else:
        assert ALU_OPS["divu"](a, b) == a // b
        assert ALU_OPS["remu"](a, b) == a % b


@given(u32, u32)
@settings(max_examples=200)
def test_mulh_identity(a, b):
    """(mulh << 32) | mul reconstructs the full signed product."""
    full = to_signed(a) * to_signed(b)
    high = ALU_OPS["mulh"](a, b)
    low = ALU_OPS["mul"](a, b)
    assert (to_signed(high) << 32) | low == full


@given(u32, u32)
@settings(max_examples=200)
def test_branch_consistency(a, b):
    assert BRANCH_OPS["beq"](a, b) == (not BRANCH_OPS["bne"](a, b))
    assert BRANCH_OPS["blt"](a, b) == (not BRANCH_OPS["bge"](a, b))
    assert BRANCH_OPS["bltu"](a, b) == (not BRANCH_OPS["bgeu"](a, b))
    assert BRANCH_OPS["blt"](a, b) == (to_signed(a) < to_signed(b))
    assert BRANCH_OPS["bltu"](a, b) == (a < b)


@given(u32)
@settings(max_examples=200)
def test_sign_conversions_inverse(a):
    assert to_unsigned(to_signed(a)) == a
