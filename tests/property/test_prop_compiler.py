"""Property: random expression programs compile and compute correctly.

Random C expression trees over small integer variables are compiled by
DetC, assembled, executed on the cycle-accurate LBP machine, and the
resulting value is compared against a Python reference interpreter that
uses the architecture's own 32-bit semantics (:mod:`repro.isa.semantics`).
One failing case would implicate the whole pipeline — preprocessor,
parser, register allocation, assembler, encoder, or pipeline model.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.semantics import ALU_OPS, to_signed
from helpers import run_c, word

VARS = {"a": 13, "b": -7, "c": 100000, "d": 3}

_BINS = {
    "+": "add", "-": "sub", "*": "mul",
    "&": "and", "|": "or", "^": "xor",
}


@st.composite
def exprs(draw, depth=0):
    """(source_text, reference_value) pairs."""
    if depth >= 4 or draw(st.booleans()) and depth > 1:
        choice = draw(st.integers(0, 1))
        if choice == 0:
            value = draw(st.integers(-100, 100))
            return str(value) if value >= 0 else "(%d)" % value, value & 0xFFFFFFFF
        name = draw(st.sampled_from(sorted(VARS)))
        return name, VARS[name] & 0xFFFFFFFF
    kind = draw(st.sampled_from(["bin", "shift", "cmp", "neg", "ternary"]))
    if kind == "bin":
        op = draw(st.sampled_from(sorted(_BINS)))
        lhs_text, lhs_val = draw(exprs(depth + 1))
        rhs_text, rhs_val = draw(exprs(depth + 1))
        value = ALU_OPS[_BINS[op]](lhs_val, rhs_val)
        return "(%s %s %s)" % (lhs_text, op, rhs_text), value
    if kind == "shift":
        lhs_text, lhs_val = draw(exprs(depth + 1))
        amount = draw(st.integers(0, 15))
        op = draw(st.sampled_from(["<<", ">>"]))
        fn = "sll" if op == "<<" else "sra"  # ints are signed in the source
        value = ALU_OPS[fn](lhs_val, amount)
        return "(%s %s %d)" % (lhs_text, op, amount), value
    if kind == "cmp":
        op = draw(st.sampled_from(["<", ">", "<=", ">=", "==", "!="]))
        lhs_text, lhs_val = draw(exprs(depth + 1))
        rhs_text, rhs_val = draw(exprs(depth + 1))
        sl, sr = to_signed(lhs_val), to_signed(rhs_val)
        value = int({
            "<": sl < sr, ">": sl > sr, "<=": sl <= sr,
            ">=": sl >= sr, "==": sl == sr, "!=": sl != sr,
        }[op])
        return "(%s %s %s)" % (lhs_text, op, rhs_text), value
    if kind == "neg":
        text, val = draw(exprs(depth + 1))
        return "(-%s)" % text, (-val) & 0xFFFFFFFF
    # ternary
    cond_text, cond_val = draw(exprs(depth + 1))
    then_text, then_val = draw(exprs(depth + 1))
    else_text, else_val = draw(exprs(depth + 1))
    value = then_val if cond_val else else_val
    return "(%s ? %s : %s)" % (cond_text, then_text, else_text), value


@given(exprs())
@settings(max_examples=60, deadline=None)
def test_random_expressions_end_to_end(case):
    text, expected = case
    decls = "".join("    int %s = %d;\n" % (n, v) for n, v in VARS.items())
    source = "int out;\nvoid main() {\n%s    out = %s;\n}\n" % (decls, text)
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == to_signed(expected), text


@given(st.integers(-(1 << 31), (1 << 31) - 1))
@settings(max_examples=80, deadline=None)
def test_li_round_trip_any_constant(value):
    source = "int out;\nvoid main() { out = %s; }\n" % (
        str(value) if value >= 0 else "(%d)" % value)
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == value


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_array_sum_loop(values):
    init = ", ".join(str(v) for v in values)
    source = """
int v[%d] = {%s};
int out;
void main() {
    int i;
    int acc = 0;
    for (i = 0; i < %d; i++)
        acc += v[i];
    out = acc;
}
""" % (len(values), init, len(values))
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == sum(values)
