"""Differential fuzzing: four executions of one random program agree.

Hypothesis generates small race-free Deterministic-OpenMP programs
(random team size, work mix, read-only cross-bank traffic, optional
serial reduction).  Each program is compiled once and executed four
ways:

* the functional fast simulator (``FastLBP``),
* the cycle-accurate interpreter backend with the race detector
  attached (``LBP(sanitize=True, backend="interp")``),
* the SoA execution backend (``LBP(backend="soa")``), and
* the space-sharded cycle engine running SoA cores
  (``shards=2, backend="soa"``) — over the shared-memory ring transport
  when the host supports it, the pipe transport otherwise, fuzzing the
  epoch data plane (seqlock rings, spill frames, fast-forward horizons)
  against random cross-shard traffic shapes.

All four must agree on every global memory word and on the boot hart's
final register file; the three cycle-accurate runs must agree on cycle
count and on the *full event trace* digest — which simultaneously fuzzes
the claim that sanitize=True is observation-only and that the SoA
backend's restructured tick is unobservable, since the sanitized
interpreter run's trace must match both SoA traces bit for bit.  The
detector must also come out clean on every generated program (they are
race-free by construction), fuzzing the happens-before machinery for
false positives across random fork/join shapes.
"""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.compiler import compile_to_program
from repro.fastsim import FastLBP
from repro.machine import LBP, Params
from repro.parsim import shm_available
from repro.workloads import (HistogramWorkload, ReductionWorkload,
                             ServingWorkload, SortWorkload, StencilWorkload)

CORES = 4
MASK = 0xFFFFFFFF

#: per-member loop bodies and their Python references
#: (name, C body, fn(state, t, i) -> new acc)
BODIES = {
    "alu": ("acc += t + i;",
            lambda s, t, i: (s["acc"] + t + i) & MASK),
    "mul": ("acc += (t + 1) * i;",
            lambda s, t, i: (s["acc"] + (t + 1) * i) & MASK),
    "own": ("scratch[t] += i; acc += scratch[t];",
            None),  # handled in _reference (mutates scratch)
    "ro":  ("acc += init[(t + i) & 15];",
            None),
    "mix": ("scratch[t] = acc + i; acc += scratch[t] ^ t;",
            None),
}


@st.composite
def programs(draw):
    members = draw(st.integers(2, 8))
    work = draw(st.integers(1, 10))
    mix = draw(st.sampled_from(sorted(BODIES)))
    init = draw(st.lists(st.integers(-100, 100), min_size=16, max_size=16))
    reduce_after = draw(st.booleans())
    body = BODIES[mix][0]
    tail = ""
    if reduce_after:
        tail = ("    for (t = 0; t < %d; t++)\n"
                "        total += results[t];\n" % members)
    source = """
#include <det_omp.h>
int init[16] = {%(init)s};
int scratch[16];
int results[16];
int total;
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < %(members)d; t++) {
        int i;
        int acc = 0;
        for (i = 0; i < %(work)d; i++) {
            %(body)s
        }
        results[t] = acc;
    }
%(tail)s}
""" % {"init": ", ".join(str(v) for v in init), "members": members,
       "work": work, "body": body, "tail": tail}
    return source, members, work, mix, init, reduce_after


def _reference(members, work, mix, init):
    init = [v & MASK for v in init]
    scratch = [0] * 16
    results = [0] * 16
    for t in range(members):
        acc = 0
        for i in range(work):
            if mix == "own":
                scratch[t] = (scratch[t] + i) & MASK
                acc = (acc + scratch[t]) & MASK
            elif mix == "ro":
                acc = (acc + init[(t + i) & 15]) & MASK
            elif mix == "mix":
                scratch[t] = (acc + i) & MASK
                acc = (acc + (scratch[t] ^ t)) & MASK
            else:
                acc = BODIES[mix][1]({"acc": acc}, t, i)
        results[t] = acc
    total = 0
    for t in range(members):
        total = (total + results[t]) & MASK
    return init, scratch, results, total


def _digest(events):
    h = hashlib.sha256()
    for event in events:
        h.update(repr(event).encode())
    return h.hexdigest()


def _globals(machine, program, members):
    out = {}
    for name, count in (("init", 16), ("scratch", 16), ("results", 16),
                        ("total", 1)):
        base = program.symbol(name)
        out[name] = [machine.read_word(base + 4 * i) for i in range(count)]
    return out


@given(programs())
@settings(max_examples=15, deadline=None)
def test_four_engines_agree(case):
    source, members, work, mix, init, reduce_after = case
    program = compile_to_program(source, "diff.c")

    fast = FastLBP(Params(num_cores=CORES)).load(program)
    fast.run(max_cycles=5_000_000)

    cycle = LBP(Params(num_cores=CORES, trace_enabled=True),
                sanitize=True, backend="interp").load(program)
    cycle_stats = cycle.run(max_cycles=5_000_000)

    soa = LBP(Params(num_cores=CORES, trace_enabled=True),
              backend="soa").load(program)
    soa_stats = soa.run(max_cycles=5_000_000)

    sharded = LBP(Params(num_cores=CORES, trace_enabled=True),
                  shards=2, backend="soa").load(program)
    if shm_available():
        # fuzz the shared-memory epoch transport whenever the host has
        # one; pipe-only hosts still fuzz the sharded engine itself
        sharded.transport = "shm"
    sharded_stats = sharded.run(max_cycles=5_000_000)

    # 1. all four engines computed the same memory image
    mem = _globals(cycle, program, members)
    assert _globals(fast, program, members) == mem
    assert _globals(soa, program, members) == mem
    assert _globals(sharded, program, members) == mem

    # 2. ... and the right one
    ref_init, ref_scratch, ref_results, ref_total = _reference(
        members, work, mix, init)
    assert mem["init"] == ref_init
    assert mem["scratch"] == ref_scratch
    assert mem["results"][:members] == ref_results[:members]
    if reduce_after:
        assert mem["total"] == [ref_total]

    # 3. the boot hart retired to the same architectural register state
    assert cycle.cores[0].harts[0].regs == fast.harts[0].regs
    assert soa.cores[0].harts[0].regs == fast.harts[0].regs

    # 4. the three cycle-accurate runs are bit-exact — same cycle count,
    #    same full event trace — even though one carried the race
    #    detector (observation must not perturb the machine) and two ran
    #    the restructured SoA tick (unobservable by construction)
    digest = _digest(cycle.trace.events)
    assert cycle_stats.cycles == soa_stats.cycles == sharded_stats.cycles
    assert cycle_stats.retired == soa_stats.retired == sharded_stats.retired
    assert _digest(soa.trace.events) == digest
    assert _digest(sharded.trace.events) == digest

    # 5. generated programs are race-free by construction; the detector
    #    must agree (no false positives on random fork/join shapes)
    report = cycle.race_report()
    assert report.clean, report.format()
    assert report.blocked == 0


@st.composite
def scenario_workloads(draw):
    """A random member of the scenario-diversity families at a random
    (small) size and data seed: serving request mixes, sort/reduction
    trees, stencil neighbour exchanges, histogram private counters."""
    family = draw(st.sampled_from(
        ["serving", "sort", "stencil", "reduction", "histogram"]))
    seed = draw(st.integers(0, 1 << 16))
    if family == "serving":
        cores = draw(st.sampled_from([1, 2]))
        requests = draw(st.integers(4, 10))
        return ServingWorkload(cores=cores, num_requests=requests,
                               seed=seed), cores
    h = draw(st.sampled_from([2, 4, 8]))
    cores = (h + 3) // 4
    if family == "sort":
        return SortWorkload(h, chunk=draw(st.integers(2, 6)),
                            seed=seed), cores
    if family == "stencil":
        return StencilWorkload(h, width=draw(st.integers(3, 8)),
                               steps=draw(st.integers(1, 4)),
                               seed=seed), cores
    if family == "reduction":
        return ReductionWorkload(h, chunk=draw(st.integers(2, 8)),
                                 seed=seed), cores
    bins = draw(st.sampled_from([2, 4, 8]))
    # the merge phase runs one thread per *bin*, so the machine must
    # have harts for max(h, bins) team members
    return HistogramWorkload(h, chunk=draw(st.integers(2, 8)),
                             bins=bins, seed=seed), (max(h, bins) + 3) // 4


@given(scenario_workloads())
@settings(max_examples=10, deadline=None)
def test_scenario_families_agree_across_engines(case):
    """Differential check over the scenario families: the functional
    fast simulator, the sanitized cycle interpreter and the sharded SoA
    engine must all pass the workload's own self-check against its
    Python reference, the two cycle runs must be trace-bit-exact, and
    the detector must come out clean (modulo each workload's declared
    polling protocol)."""
    workload, cores = case
    program = compile_to_program(workload.source, "scenario.c")

    fast = FastLBP(Params(num_cores=cores)).load(program)
    fast.run(max_cycles=5_000_000)
    workload.verify(fast, program)

    cycle = LBP(Params(num_cores=cores, trace_enabled=True),
                sanitize=True, backend="interp").load(program)
    cycle_stats = cycle.run(max_cycles=5_000_000)
    workload.verify(cycle, program)

    sharded = LBP(Params(num_cores=cores, trace_enabled=True),
                  shards=2 if cores > 1 else None,
                  backend="soa").load(program)
    sharded_stats = sharded.run(max_cycles=5_000_000)
    workload.verify(sharded, program)

    assert cycle_stats.cycles == sharded_stats.cycles
    assert cycle_stats.retired == sharded_stats.retired
    assert _digest(cycle.trace.events) == _digest(sharded.trace.events)

    sync = getattr(workload, "race_sync", None)
    if sync is not None:
        sync = [(program.symbol(sym), words * 4) for sym, words in sync]
    report = cycle.race_report(sync=sync)
    assert report.clean, report.format()
    assert report.blocked == 0
