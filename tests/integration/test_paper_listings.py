"""The paper's own listings, close to verbatim, through the full stack.

Figure 1 (the canonical Deterministic OpenMP program), figure 18 (the
matrix multiplication source) and figure 16 (the sensor application
structure) are the paper's published DetC surface; they must compile and
run unmodified apart from device addresses (figure 16 abstracts them).
"""

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from helpers import run_c, word

FIGURE_1_SOURCE = """
#include <det_omp.h>
#define NUM_HART 8

int done[NUM_HART];

void thread(int t) {
    done[t] = 1;
}

void main() {
    int t;
    omp_set_num_threads(NUM_HART);
    #pragma omp parallel for
    for (t = 0; t < NUM_HART; t++)
        thread(t);
    /* ... (2); */
}
"""

FIGURE_18_SOURCE = """
#include <stdio.h>
#include <det_omp.h>
#define LINE_X 16
#define COLUMN_X 8
#define LINE_Y 8
#define COLUMN_Y 16
#define LINE_Z 16
#define COLUMN_Z 16
#define NUM_HART 16

int X[LINE_X*COLUMN_X]={[0 ... LINE_X*COLUMN_X-1]=1};
int Y[LINE_Y*COLUMN_Y]={[0 ... LINE_Y*COLUMN_Y-1]=1};
int Z[LINE_Z*COLUMN_Z];

void thread(int t){
    int i, j, k, l, tmp;
    for (l=0, i=t*LINE_Z/NUM_HART; l<LINE_Z/NUM_HART; l++, i++)
        for (j=0; j<COLUMN_Z; j++) {
            tmp=0;
            for (k=0; k<COLUMN_X; k++)
                tmp+=*(X+(i*COLUMN_X+k)) * *(Y+(k*COLUMN_Y+j));
            *(Z+(i*COLUMN_Z+j))=tmp;
        }
}

void main(){
    int t;
    omp_set_num_threads(NUM_HART);
    #pragma omp parallel for
    for (t=0; t<NUM_HART; t++)
        thread(t);
}
"""

FIGURE_16_TEMPLATE = """
#include <det_omp.h>
int s[4], f;
int log_[2];

void get_sensor0(void) { while (*(int*)%(s0)dU == 0); s[0] = *(int*)%(v0)dU; }
void get_sensor1(void) { while (*(int*)%(s1)dU == 0); s[1] = *(int*)%(v1)dU; }
void get_sensor2(void) { while (*(int*)%(s2)dU == 0); s[2] = *(int*)%(v2)dU; }
void get_sensor3(void) { while (*(int*)%(s3)dU == 0); s[3] = *(int*)%(v3)dU; }

int fusion(void) { return (s[0] + s[1] + s[2] + s[3]) / 4; }

void main() {
    int r;
    for (r = 0; r < 2; r++) {       /* the paper's while(1), bounded */
        #pragma omp parallel sections
        {
            #pragma omp section
            { get_sensor0(); }
            #pragma omp section
            { get_sensor1(); }
            #pragma omp section
            { get_sensor2(); }
            #pragma omp section
            { get_sensor3(); }
        }
        f = fusion();
        log_[r] = f;                /* set_actuator stand-in */
    }
}
"""

FIGURE_2_SOURCE = """
#include <det_omp.h>
typedef struct type_s { int t; int scale; } type_t;
type_t st;
int out[4];

void thread(type_t *pt, int t) {
    out[t] = pt->scale * t;
}

void main() {
    int t;
    st.scale = 7;
    omp_set_num_threads(4);
    #pragma omp parallel for
    for (t = 0; t < 4; t++)
        thread(&st, t);
}
"""


def figure_16_source(dev):
    """Figure 16's source with the device window based at *dev*."""
    return FIGURE_16_TEMPLATE % {
        "s0": dev, "v0": dev + 4, "s1": dev + 16, "v1": dev + 20,
        "s2": dev + 32, "v2": dev + 36, "s3": dev + 48, "v3": dev + 52}


def test_figure_1_program_shape():
    """Figure 1: omp_set_num_threads + parallel for over a thread function."""
    program, machine, stats = run_c(FIGURE_1_SOURCE, cores=2)
    assert [word(machine, program, "done", i) for i in range(8)] == [1] * 8
    assert stats.forks == 7


def test_figure_18_verbatim_matmul():
    """Figure 18's source, spacing and idioms preserved (h=16 instance)."""
    program, machine, stats = run_c(FIGURE_18_SOURCE, cores=4,
                                    max_cycles=10_000_000)
    base = program.symbol("Z")
    for index in (0, 5, 100, 255):
        assert machine.read_word(base + 4 * index) == 8  # COLUMN_X ones
    assert stats.forks == 15
    assert stats.joins == 1


def test_figure_16_structure_with_sections():
    """Figure 16's while-loop of parallel sections + fusion, 2 rounds."""
    from repro.machine.io import ScriptedInput, attach_input
    from repro import memmap

    dev = memmap.global_bank_base(3) + 0x80000
    program = compile_to_program(figure_16_source(dev), "fig16.c")
    machine = LBP(Params(num_cores=4)).load(program)
    for i in range(4):
        attach_input(machine, dev + 16 * i,
                     ScriptedInput([(100 + 7 * i, 10 + i), (600 + 5 * i, 20 + i)]))
    machine.run(max_cycles=5_000_000)
    base = program.symbol("log_")
    assert machine.read_word(base) == (10 + 11 + 12 + 13) // 4
    assert machine.read_word(base + 4) == (20 + 21 + 22 + 23) // 4


def test_figure_2_style_explicit_thread_function_with_struct():
    """Figure 2's struct-argument pattern, via globals (shared memory)."""
    program, machine, _ = run_c(FIGURE_2_SOURCE, cores=1)
    assert [word(machine, program, "out", i) for i in range(4)] == [0, 7, 14, 21]
