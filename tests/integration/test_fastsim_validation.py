"""Experiment V1: the fast simulator against the cycle-accurate model.

Contract: retired-instruction counts are *exact* (same dynamic
instruction stream); cycle counts agree within a validated tolerance on
every workload shape we care about; results (memory contents) are
identical.
"""

import pytest

from repro.compiler import compile_to_program
from repro.fastsim import FastLBP
from repro.machine import LBP, Params
from repro.workloads.matmul import MATMUL_VERSIONS, matmul_source, verify_matmul
from repro.workloads.setget import setget_source, verify_setget

TOLERANCE = 0.30  # fastsim cycle counts within 30% of cycle-accurate


def _both(program, cores, max_cycles=20_000_000):
    slow = LBP(Params(num_cores=cores)).load(program)
    slow_stats = slow.run(max_cycles=max_cycles)
    fast = FastLBP(Params(num_cores=cores)).load(program)
    fast_stats = fast.run(max_cycles=max_cycles)
    return slow, slow_stats, fast, fast_stats


@pytest.mark.parametrize("version", MATMUL_VERSIONS)
def test_matmul_agreement(version):
    program = compile_to_program(matmul_source(version, 16), "mm.c")
    slow, slow_stats, fast, fast_stats = _both(program, 4)
    verify_matmul(slow, program, version, 16)
    verify_matmul(fast, program, version, 16)
    assert fast_stats.retired == slow_stats.retired, version
    ratio = fast_stats.cycles / slow_stats.cycles
    assert 1.0 - TOLERANCE < ratio < 1.0 + TOLERANCE, (version, ratio)


def test_setget_agreement():
    program = compile_to_program(setget_source(16, 32), "sg.c")
    slow, slow_stats, fast, fast_stats = _both(program, 4)
    verify_setget(slow, 16, 32)
    verify_setget(fast, 16, 32)
    assert fast_stats.retired == slow_stats.retired
    ratio = fast_stats.cycles / slow_stats.cycles
    assert 1.0 - TOLERANCE < ratio < 1.0 + TOLERANCE, ratio


def test_relative_ordering_preserved():
    """The figure conclusions must not depend on which simulator ran."""
    cycles = {"cycle": {}, "fast": {}}
    for version in ("base", "copy"):
        program = compile_to_program(matmul_source(version, 16), "mm.c")
        slow, slow_stats, fast, fast_stats = _both(program, 4)
        cycles["cycle"][version] = slow_stats.cycles
        cycles["fast"][version] = fast_stats.cycles
    slow_order = cycles["cycle"]["copy"] < cycles["cycle"]["base"]
    fast_order = cycles["fast"]["copy"] < cycles["fast"]["base"]
    assert slow_order == fast_order


def test_fastsim_is_deterministic():
    program = compile_to_program(matmul_source("base", 16), "mm.c")
    first = FastLBP(Params(num_cores=4)).load(program).run(max_cycles=20_000_000)
    second = FastLBP(Params(num_cores=4)).load(program).run(max_cycles=20_000_000)
    assert first.cycles == second.cycles
    assert first.retired == second.retired
