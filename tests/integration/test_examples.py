"""Every shipped example must run to completion (they self-assert)."""

import os
import runpy
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def _run_example(name, argv=("prog",)):
    path = os.path.join(EXAMPLES, name)
    old_argv = sys.argv
    sys.argv = list(argv)
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


@pytest.mark.parametrize("name", [
    "quickstart.py",
    "vector_pipeline.py",
    "sensor_fusion.py",
    "deterministic_mpi.py",
    "io_controller_dma.py",
])
def test_example_runs(name, capsys):
    _run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), name


def test_matmul_experiment_example_small(capsys):
    _run_example("matmul_experiment.py",
                 argv=["matmul_experiment.py", "--h", "8", "--cores", "2",
                       "--version", "base", "--version", "copy"])
    out = capsys.readouterr().out
    assert "base" in out and "copy" in out and "cycles" in out
