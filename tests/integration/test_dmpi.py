"""Deterministic MPI (paper §8 conclusion) on both simulators."""

import pytest

from repro.compiler import compile_to_program
from repro.detomp.dmpi import (
    dmpi_header,
    mailbox_addr,
    pipeline_expected,
    pipeline_source,
)
from repro.fastsim import FastLBP
from repro.machine import LBP, Params


def test_mailbox_addresses_per_rank_core():
    # ranks 0-3 live on core 0 with distinct lanes; ranks 4-7 on core 1
    assert mailbox_addr(0, 0) != mailbox_addr(1, 0)
    assert mailbox_addr(1, 0) - mailbox_addr(0, 0) == 8 * 64
    assert mailbox_addr(4, 0) - mailbox_addr(0, 0) == 1 << 20
    assert mailbox_addr(0, 1) - mailbox_addr(0, 0) == 8


@pytest.mark.parametrize("ranks,cores", [(4, 1), (8, 2), (16, 4)])
def test_pipeline_sum(ranks, cores):
    program = compile_to_program(pipeline_source(ranks), "dmpi.c")
    machine = LBP(Params(num_cores=cores)).load(program)
    machine.run(max_cycles=20_000_000)
    assert machine.read_word(program.symbol("pipeline_out")) == \
        pipeline_expected(ranks)


def test_pipeline_is_cycle_deterministic():
    results = []
    for _ in range(2):
        program = compile_to_program(pipeline_source(8), "dmpi.c")
        machine = LBP(Params(num_cores=2)).load(program)
        stats = machine.run(max_cycles=20_000_000)
        results.append((stats.cycles, stats.retired))
    assert results[0] == results[1]


def test_pipeline_on_fast_simulator():
    program = compile_to_program(pipeline_source(16), "dmpi.c")
    machine = FastLBP(Params(num_cores=4)).load(program)
    machine.run(max_cycles=50_000_000)
    assert machine.read_word(program.symbol("pipeline_out")) == \
        pipeline_expected(16)


def test_multiple_messages_same_mailbox():
    """Flow control: the flag word serialises reuse of one slot."""
    source = dmpi_header() + """
#include <det_omp.h>
int out0; int out1; int out2;

void worker(int r) {
    if (r == 0) {
        dmpi_send(1, 3, 10);
        dmpi_send(1, 3, 20);   /* waits until 10 is consumed */
        dmpi_send(1, 3, 30);
    } else {
        out0 = dmpi_recv(1, 3);
        out1 = dmpi_recv(1, 3);
        out2 = dmpi_recv(1, 3);
    }
}

void main() {
    int r;
    #pragma omp parallel for
    for (r = 0; r < 2; r++)
        worker(r);
}
"""
    program = compile_to_program(source, "dmpi2.c")
    machine = LBP(Params(num_cores=1)).load(program)
    machine.run(max_cycles=20_000_000)
    assert machine.read_word(program.symbol("out0")) == 10
    assert machine.read_word(program.symbol("out1")) == 20
    assert machine.read_word(program.symbol("out2")) == 30
