"""Golden trace-equality regression for the cycle-accurate simulator.

The hot-path work (active-core gating, pre-lowered decode, the re-send
wakeup) must be *bit-exact*: the same programs produce the same cycle
counts and the same full event traces as the pre-optimisation simulator.
``tests/data/golden_traces.json`` records reference digests captured from
the original all-cores-every-cycle implementation; these tests re-run the
workloads and compare.

Regenerate (only when an intentional model change invalidates them) with
``PYTHONPATH=src:tests python tests/data/regen_golden.py``.
"""

import hashlib
import json
import os

import pytest

from repro.asm import assemble
from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.workloads.matmul import matmul_source, verify_matmul
from repro.workloads.setget import setget_source, verify_setget
from repro.workloads import (HistogramWorkload, ReductionWorkload,
                             ServingWorkload, SortWorkload, StencilWorkload)

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "data", "golden_traces.json")

#: one producer floods result-buffer slot 0 of hart 0 while the consumer
#: drains it slowly — the second and third p_swre find the slot occupied
#: and sit in the flow-control queue (formerly: the every-cycle retry).
RE_CONTENTION = """
main:
    li   t0, -1
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   t0, 4(sp)
    p_set t0, t0
    p_fc t6
    la   t1, rp
    p_swcv t6, t1, 0
    p_swcv t6, t0, 4
    p_merge t0, t0, t6
    p_syncm
    la   a0, consumer
    p_jalr ra, t0, a0
    # ---- producer hart: three back-to-back sends into slot 0 ----
    p_lwcv ra, 0
    p_lwcv t0, 4
    li   t4, 0
    li   t3, 111
    p_swre t4, t3, 0
    li   t3, 222
    p_swre t4, t3, 0
    li   t3, 333
    p_swre t4, t3, 0
    p_ret
rp: lw  ra, 0(sp)
    lw  t0, 4(sp)
    addi sp, sp, 8
    p_ret
consumer:
    li   t5, 60
d1: addi t5, t5, -1
    bnez t5, d1
    p_lwre t1, 0
    li   t5, 60
d2: addi t5, t5, -1
    bnez t5, d2
    p_lwre t2, 0
    p_lwre t3, 0
    add  t1, t1, t2
    add  t1, t1, t3
    la   t2, got
    sw   t1, 0(t2)
    p_ret
.data
got: .word 0
"""


def trace_digest(events):
    h = hashlib.sha256()
    for event in events:
        h.update(repr(event).encode())
    return h.hexdigest()


def _run_traced(program, cores, shards=None, **engine):
    machine = LBP(Params(num_cores=cores, trace_enabled=True),
                  shards=shards, **engine).load(program)
    stats = machine.run(max_cycles=50_000_000)
    return machine, stats


def run_matmul_workload(version, shards=None):
    program = compile_to_program(matmul_source(version, 16), "mm.c")
    machine, stats = _run_traced(program, 4, shards)
    verify_matmul(machine, program, version, 16)
    return machine, stats


def run_setget_workload(shards=None):
    program = compile_to_program(setget_source(16, 64), "setget.c")
    machine, stats = _run_traced(program, 4, shards)
    verify_setget(machine, 16, 64)
    return machine, stats


def run_re_contention_workload(shards=None):
    program = assemble(RE_CONTENTION)
    machine, stats = _run_traced(program, 1, shards)
    assert machine.read_word(program.symbol("got")) == 111 + 222 + 333
    return machine, stats


#: scenario-diversity families: self-checking workload objects (see
#: ``repro.workloads``) pinned at tiny, fast configurations.  Each entry
#: is ``(factory, cores)``; the runner threads arbitrary engine knobs
#: (backend / sanitize / metrics) through so the conformance tier
#: (``test_workload_conformance.py``) can sweep its matrix against the
#: same golden digests.
SCENARIOS = {
    "serving_r12_c2":
        (lambda: ServingWorkload(cores=2, num_requests=12, seed=7), 2),
    "sort_h8_c2": (lambda: SortWorkload(8, chunk=8, seed=3), 2),
    "stencil_h8_c2": (lambda: StencilWorkload(8, width=8, steps=4, seed=3), 2),
    "reduction_h8_c2": (lambda: ReductionWorkload(8, chunk=16, seed=3), 2),
    "histogram_h8_c2":
        (lambda: HistogramWorkload(8, chunk=16, bins=8, seed=3), 2),
}


def run_scenario_workload(name, shards=None, **engine):
    factory, cores = SCENARIOS[name]
    workload = factory()
    program = compile_to_program(workload.source, name + ".c")
    machine, stats = _run_traced(program, cores, shards, **engine)
    workload.verify(machine, program)
    return machine, stats


def _scenario_runner(name):
    return lambda shards=None, **engine: run_scenario_workload(
        name, shards, **engine)


WORKLOADS = {
    "matmul_base_h16_c4":
        lambda shards=None: run_matmul_workload("base", shards),
    "matmul_tiled_h16_c4":
        lambda shards=None: run_matmul_workload("tiled", shards),
    "setget_h16_chunk64_c4": run_setget_workload,
    "re_contention_c1": run_re_contention_workload,
}
WORKLOADS.update({name: _scenario_runner(name) for name in SCENARIOS})


def measure(name, shards=None):
    """Result summary of one golden workload (optionally space-sharded —
    the sharded engine must reproduce the golden digests bit-exactly)."""
    machine, stats = WORKLOADS[name](shards=shards)
    return {
        "cycles": stats.cycles,
        "retired": stats.retired,
        "events": len(machine.trace.events),
        "trace_sha256": trace_digest(machine.trace.events),
        "local": stats.local_accesses,
        "remote": stats.remote_accesses,
        "forks": stats.forks,
        "joins": stats.joins,
        "re_messages": stats.re_messages,
    }


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_trace_matches_golden_reference(name, golden):
    assert name in golden, "no golden reference for %s; run regen_golden.py" % name
    assert measure(name) == golden[name]
