"""Golden conformance tier for the scenario-diversity workloads.

Every workload in ``test_trace_golden.SCENARIOS`` (serving, sort,
stencil, reduction, histogram) must reproduce its pinned golden trace
digest **bit-exactly** under the full engine matrix:

    {interp, soa} x {shards 1, 2} x {sanitize on, off} x {metrics on, off}

— sixteen configurations per workload.  The cycle engines are supposed
to be observationally equivalent: the SoA backend is a data-layout
change, sharding is a space partition of the same schedule, and both the
race sanitizer and the metrics sampler are observation-only hooks.  Any
config that perturbs a cycle count or an event payload is a conformance
bug, and this tier pins all of them to the single digest recorded in
``tests/data/golden_traces.json``.

The serving workload additionally gets a snapshot/resume check: pausing
mid request burst, serializing, restoring and running to completion must
match the uninterrupted golden digest byte for byte (and still pass the
workload's own response self-check).
"""

import itertools
import json
import os
import sys

import pytest

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.snapshot import restore, snapshot

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from test_trace_golden import (  # noqa: E402
    GOLDEN_PATH, SCENARIOS, run_scenario_workload, trace_digest)

MAX_CYCLES = 50_000_000

#: the full conformance matrix: (backend, shards, sanitize, metrics)
MATRIX = list(itertools.product(
    ("interp", "soa"), (1, 2), (False, True), (None, 512)))


def _config_id(config):
    backend, shards, sanitize, metrics = config
    return "%s-sh%d-%s-%s" % (
        backend, shards,
        "sanitize" if sanitize else "plain",
        "metrics" if metrics else "nometrics")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.slow
@pytest.mark.parametrize("config", MATRIX, ids=_config_id)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_conforms_across_engine_matrix(name, config, golden):
    backend, shards, sanitize, metrics = config
    reference = golden[name]
    machine, stats = run_scenario_workload(
        name, shards=shards, backend=backend,
        sanitize=sanitize, metrics=metrics)
    observed = {
        "cycles": stats.cycles,
        "retired": stats.retired,
        "events": len(machine.trace.events),
        "trace_sha256": trace_digest(machine.trace.events),
    }
    assert observed == {key: reference[key] for key in observed}


@pytest.mark.slow
def test_serving_snapshot_resume_mid_burst_is_bit_exact(golden):
    """Pause the server while requests are still in flight, serialize,
    restore, run out — the trace must be byte-identical to the golden
    uninterrupted run and the responses must still self-check."""
    reference = golden["serving_r12_c2"]
    factory, cores = SCENARIOS["serving_r12_c2"]
    workload = factory()
    program = compile_to_program(workload.source, "serving.c")
    machine = LBP(Params(num_cores=cores, trace_enabled=True)).load(program)

    pause_at = reference["cycles"] // 2
    machine.run(max_cycles=MAX_CYCLES, stop_at_cycle=pause_at)
    assert not machine.halted and machine.cycle == pause_at
    # mid-burst, for real: some requests issued, not all answered yet
    issued = program.symbol("issued")
    dispatched = sum(
        1 for r in range(workload.num_requests)
        if machine.read_word(issued + 4 * r) != 0)
    assert 0 < dispatched <= workload.num_requests

    resumed = restore(snapshot(machine))
    assert resumed is not machine
    stats = resumed.run(max_cycles=MAX_CYCLES)
    assert stats.cycles == reference["cycles"]
    assert stats.retired == reference["retired"]
    assert len(resumed.trace.events) == reference["events"]
    assert trace_digest(resumed.trace.events) == reference["trace_sha256"]
    workload.verify(resumed, program)
