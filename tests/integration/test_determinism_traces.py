"""Cycle determinism at trace granularity (quick versions of E4)."""

from repro.compiler import compile_to_program
from repro.fastsim import FastLBP
from repro.machine import LBP, Params
from repro.workloads.setget import setget_source


def _trace_run(source_text, cores):
    program = compile_to_program(source_text, "t.c")
    machine = LBP(Params(num_cores=cores, trace_enabled=True)).load(program)
    stats = machine.run(max_cycles=20_000_000)
    return stats, machine.trace.events


def test_identical_traces_across_runs():
    source = setget_source(8, 16)
    stats_a, trace_a = _trace_run(source, 2)
    stats_b, trace_b = _trace_run(source, 2)
    assert stats_a.cycles == stats_b.cycles
    assert trace_a == trace_b
    assert len(trace_a) > 50  # the comparison is not vacuous


def test_trace_includes_paper_style_events():
    source = setget_source(8, 16)
    _stats, trace = _trace_run(source, 2)
    kinds = {event[3] for event in trace}
    assert {"fork", "start", "cv_write", "p_ret", "join",
            "mem_load_req", "mem_store"} <= kinds


def test_determinism_holds_on_fast_simulator():
    program = compile_to_program(setget_source(8, 16), "t.c")
    runs = []
    for _ in range(2):
        machine = FastLBP(Params(num_cores=2)).load(
            compile_to_program(setget_source(8, 16), "t.c"))
        stats = machine.run(max_cycles=20_000_000)
        runs.append((stats.cycles, stats.retired))
    assert runs[0] == runs[1]


def test_different_programs_different_traces():
    """Sanity: the trace actually reflects the computation."""
    _s1, trace_small = _trace_run(setget_source(8, 8), 2)
    _s2, trace_large = _trace_run(setget_source(8, 32), 2)
    assert trace_small != trace_large
