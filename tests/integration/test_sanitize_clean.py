"""The deterministic surface is race-free: zero reports on every paper
listing and workload.

The paper's determinism claim is that X_PAR programs have a referential
order that physical timing cannot perturb; the race detector checks
exactly that property dynamically.  Every listing (figures 1, 2, 16, 18)
and every workload generator (matmul, setget, sensors, iopatterns) must
therefore come out clean — any report here is either a real ordering bug
in the frontend/runtime or a false positive in the detector, and both
must break the build.

Also pins the two composition guarantees: observation never perturbs the
machine (golden trace digests unchanged under sanitize=True), and shard
merging is exact (byte-identical reports for shards=1 vs shards=4).
"""

import json

import pytest

from repro.asm import assemble
from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.machine.io import ScriptedInput, attach_input
from repro.workloads.iopatterns import (
    controller_source,
    dma_source,
    stream_device_addr,
)
from repro.workloads.matmul import MATMUL_VERSIONS, matmul_source
from repro.workloads.sensors import attach_sensors, sensors_source
from repro.workloads.setget import setget_source

from tests.integration.test_paper_listings import (
    FIGURE_1_SOURCE,
    FIGURE_2_SOURCE,
    FIGURE_18_SOURCE,
    figure_16_source,
)
from tests.integration.test_trace_golden import (
    GOLDEN_PATH,
    RE_CONTENTION,
    SCENARIOS,
    trace_digest,
)


def _sanitized(program, cores, shards=None, trace=False, max_cycles=50_000_000):
    machine = LBP(Params(num_cores=cores, trace_enabled=trace),
                  shards=shards, sanitize=True)
    machine.load(program)
    machine.run(max_cycles=max_cycles)
    return machine


def check_c(source, cores, sync=None):
    program = compile_to_program(source, "clean.c")
    machine = _sanitized(program, cores)
    if sync is not None:
        sync = [(program.symbol(sym), words * 4) for sym, words in sync]
    return machine.race_report(sync=sync)


def check_figure_1():
    return check_c(FIGURE_1_SOURCE, cores=2)


def check_figure_2():
    return check_c(FIGURE_2_SOURCE, cores=1)


def check_figure_16():
    from repro import memmap

    dev = memmap.global_bank_base(3) + 0x80000
    program = compile_to_program(figure_16_source(dev), "fig16.c")
    machine = LBP(Params(num_cores=4), sanitize=True).load(program)
    for i in range(4):
        attach_input(machine, dev + 16 * i,
                     ScriptedInput([(100 + 7 * i, 10 + i),
                                    (600 + 5 * i, 20 + i)]))
    machine.run(max_cycles=5_000_000)
    return machine.race_report()


def check_figure_18():
    return check_c(FIGURE_18_SOURCE, cores=4)


def check_matmul(version):
    return check_c(matmul_source(version, 16), cores=4)


def check_setget():
    return check_c(setget_source(16, 48), cores=4)


def check_sensors():
    rounds = 3
    program = compile_to_program(sensors_source(4, rounds), "sensors.c")
    machine = LBP(Params(num_cores=4), sanitize=True).load(program)
    schedules = [[(300 * (r + 1) + 11 * i, 5 * r + i) for r in range(rounds)]
                 for i in range(4)]
    attach_sensors(machine, 4, schedules)
    machine.run(max_cycles=10_000_000)
    return machine.race_report()


def check_io(source, values, sync):
    program = compile_to_program(source, "io.c")
    machine = LBP(Params(num_cores=4), sanitize=True).load(program)
    device = ScriptedInput([(50 * (i + 1), v) for i, v in enumerate(values)])
    attach_input(machine, stream_device_addr(4), device)
    machine.run(max_cycles=10_000_000)
    return machine.race_report(
        sync=[(program.symbol(sym), words * 4) for sym, words in sync])


def check_io_controller():
    # the request words are the §6 polling protocol — declared sync cells
    return check_io(controller_source(4, 5), [1000 + i for i in range(5)],
                    sync=[("requests", 5)])


def check_io_dma():
    stream = [10 * c + i for c in range(4) for i in range(6)]
    return check_io(dma_source(4, 6), stream, sync=[("tokens", 4)])


def check_re_contention():
    return _sanitized(assemble(RE_CONTENTION), cores=1).race_report()


def check_scenario(name):
    """One scenario-diversity workload (serving / sort / stencil /
    reduction / histogram), sanitized, self-checked, race report back.
    A workload that relies on a declared polling protocol (the serving
    controller's worker-registration poll) exposes it as ``race_sync``."""
    factory, cores = SCENARIOS[name]
    workload = factory()
    program = compile_to_program(workload.source, name + ".c")
    machine = _sanitized(program, cores)
    workload.verify(machine, program)
    sync = getattr(workload, "race_sync", None)
    if sync is not None:
        sync = [(program.symbol(sym), words * 4) for sym, words in sync]
    return machine.race_report(sync=sync)


CLEAN_CASES = {
    "figure_1": check_figure_1,
    "figure_2": check_figure_2,
    "figure_16": check_figure_16,
    "figure_18": check_figure_18,
    "setget_h16": check_setget,
    "sensors_r3": check_sensors,
    "io_controller": check_io_controller,
    "io_dma": check_io_dma,
    "re_contention": check_re_contention,
}
CLEAN_CASES.update({
    "matmul_" + version: (lambda v=version: check_matmul(v))
    for version in MATMUL_VERSIONS
})
CLEAN_CASES.update({
    name: (lambda n=name: check_scenario(n)) for name in SCENARIOS
})


@pytest.mark.parametrize("name", sorted(CLEAN_CASES))
def test_deterministic_surface_is_race_free(name):
    report = CLEAN_CASES[name]()
    assert report.clean, report.format()
    assert report.accesses > 0       # the instrumentation did observe
    assert report.blocked == 0       # referential order fully replayed


def test_observation_does_not_perturb_golden_trace():
    """sanitize=True is observation-only: the golden digest still holds."""
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    program = compile_to_program(matmul_source("base", 16), "mm.c")
    machine = _sanitized(program, cores=4, trace=True)
    assert (trace_digest(machine.trace.events)
            == golden["matmul_base_h16_c4"]["trace_sha256"])
    assert machine.race_report().clean


def test_shard_merged_report_is_byte_identical():
    """shards=1 and shards=4 must produce the same bytes, race or clean."""
    program = compile_to_program(FIGURE_18_SOURCE, "mm18.c")
    reports = [_sanitized(program, cores=4, shards=shards).race_report()
               for shards in (1, 4)]
    assert reports[0].to_json() == reports[1].to_json()
    assert reports[0].clean

    # same exactness on a *racy* program: the seeded corpus WW case
    import os
    corpus = os.path.join(os.path.dirname(__file__), "..", "data", "races")
    with open(os.path.join(corpus, "omp_shared_scalar.c")) as f:
        racy = compile_to_program(f.read(), "racy.c")
    reports = [_sanitized(racy, cores=2, shards=shards).race_report()
               for shards in (1, 2)]
    assert reports[0].to_json() == reports[1].to_json()
    assert len(reports[0]) == 2
