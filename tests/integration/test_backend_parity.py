"""The SoA execution backend is bit-exact against the interpreter.

``backend="soa"`` (see ``repro.machine.soa``) restructures the per-cycle
loop around packed scoreboard state, gated stage scans and
opcode-grouped (optionally numpy-vectorized) ALU execution.  None of
that may be observable: every golden digest in
``tests/data/golden_traces.json`` must reproduce bit-exactly under the
SoA backend — alone, space-sharded, under the race sanitizer, under
stall metrics, and through cross-backend snapshot round trips.  The
numpy operator twins are additionally checked value-for-value against
the scalar ``ALU_OPS`` on the RISC-V edge cases.
"""

import json
import os
import sys
import warnings

import pytest

from repro.isa.semantics import ALU_OPS, MASK32
from repro.machine import LBP, Params
from repro.machine.processor import resolve_backend
from repro.snapshot import restore, snapshot
import repro.machine.processor as processor
import repro.machine.soa as soa

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from test_trace_golden import (  # noqa: E402
    GOLDEN_PATH,
    WORKLOADS,
    measure,
    trace_digest,
)
from test_snapshot_roundtrip import _build  # noqa: E402

MAX_CYCLES = 50_000_000


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.fixture
def force_backend(monkeypatch):
    def force(backend):
        monkeypatch.setattr(processor, "DEFAULT_BACKEND", backend)

    return force


# ---- golden digests ----------------------------------------------------------


@pytest.mark.parametrize("backend", ["soa", "interp"])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_golden_digests_per_backend(name, backend, golden, force_backend):
    force_backend(backend)
    assert measure(name) == golden[name]


@pytest.mark.slow
@pytest.mark.parametrize("name", ["matmul_base_h16_c4", "re_contention_c1"])
def test_golden_digests_soa_sharded(name, golden, force_backend):
    force_backend("soa")
    assert measure(name, shards=2) == golden[name]


def test_golden_digest_soa_forced_deferral(golden, force_backend, monkeypatch):
    """The deferred/vectorized ALU lane (normally gated on core count and
    batch size) is bit-exact even when forced on for every op."""
    force_backend("soa")
    monkeypatch.setattr(soa, "DEFER_ALU_MIN_CORES", 1)
    monkeypatch.setattr(soa, "NUMPY_MIN_BATCH", 1)
    name = "matmul_tiled_h16_c4"
    assert measure(name) == golden[name]


# ---- observers stay zero-perturbation under soa ------------------------------


def _run_observed(name, backend, sanitize=False, metrics=None):
    program, cores = _build(name)
    machine = LBP(Params(num_cores=cores, trace_enabled=True),
                  sanitize=sanitize, metrics=metrics, backend=backend)
    machine.load(program)
    stats = machine.run(max_cycles=MAX_CYCLES)
    return machine, stats


@pytest.mark.parametrize("name", ["matmul_base_h16_c4", "re_contention_c1"])
def test_sanitized_soa_is_bit_exact_and_clean(name, golden):
    machine, stats = _run_observed(name, "soa", sanitize=True)
    reference = golden[name]
    assert stats.cycles == reference["cycles"]
    assert trace_digest(machine.trace.events) == reference["trace_sha256"]
    assert machine.race_report().races == []


def test_metered_soa_is_bit_exact_and_matches_interp(golden):
    name = "matmul_base_h16_c4"
    reference = golden[name]
    reports = {}
    for backend in ("soa", "interp"):
        machine, stats = _run_observed(name, backend, metrics=4096)
        assert stats.cycles == reference["cycles"]
        assert trace_digest(machine.trace.events) == reference["trace_sha256"]
        reports[backend] = machine.metrics_report()
    assert reports["soa"] == reports["interp"]


# ---- snapshots are backend-neutral -------------------------------------------


@pytest.mark.parametrize("save_on,resume_on", [
    ("interp", "soa"),
    ("soa", "interp"),
])
def test_snapshot_round_trip_across_backends(save_on, resume_on, golden):
    """Pause under one backend, resume under the other: the completed
    trace must still match the golden digest of the uninterrupted run."""
    name = "matmul_base_h16_c4"
    reference = golden[name]
    program, cores = _build(name)
    machine = LBP(Params(num_cores=cores, trace_enabled=True),
                  backend=save_on).load(program)
    machine.run(max_cycles=MAX_CYCLES,
                stop_at_cycle=reference["cycles"] // 2)
    assert not machine.halted

    resumed = restore(snapshot(machine), backend=resume_on)
    assert resumed.backend == resume_on
    stats = resumed.run(max_cycles=MAX_CYCLES)
    assert stats.cycles == reference["cycles"]
    assert stats.retired == reference["retired"]
    assert trace_digest(resumed.trace.events) == reference["trace_sha256"]


def test_state_dict_is_backend_invariant():
    """Mid-run serialized state is byte-identical whichever backend
    produced it — the snapshot format has no SoA dialect."""
    name = "re_contention_c1"
    states = {}
    for backend in ("interp", "soa"):
        program, cores = _build(name)
        machine = LBP(Params(num_cores=cores, trace_enabled=True),
                      backend=backend).load(program)
        machine.run(max_cycles=MAX_CYCLES, stop_at_cycle=300)
        states[backend] = machine.state_dict()
    assert states["interp"] == states["soa"]


# ---- backend selection -------------------------------------------------------


def test_resolve_backend_rejects_unknown():
    with pytest.raises(ValueError, match="unknown backend"):
        LBP(Params(num_cores=1), backend="simd")


def test_resolve_backend_falls_back_without_numpy(monkeypatch):
    monkeypatch.setattr(soa, "HAVE_NUMPY", False)
    monkeypatch.setattr(processor, "_warned_numpy_fallback", False)
    with pytest.warns(RuntimeWarning, match="falling back"):
        assert resolve_backend("soa") == "interp"
    # the warning fires once per process, not once per machine
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend("soa") == "interp"
    assert resolve_backend("interp") == "interp"


def test_default_backend_is_soa_with_numpy():
    if not soa.HAVE_NUMPY:
        pytest.skip("numpy unavailable in this environment")
    assert LBP(Params(num_cores=1)).backend == "soa"


# ---- numpy operator twins ----------------------------------------------------

EDGE_A = [0, 1, 2, 31, 32, 33, 0x7FFFFFFF, 0x80000000, 0x80000001,
          0xFFFFFFFE, 0xFFFFFFFF, 12345, 0xDEADBEEF]
# raw b operands as the scalar lane sees them: register values are
# pre-masked, immediates may be negative — the numpy lane masks first
EDGE_B = EDGE_A + [-1, -2, -31, -32, -2048, -0x80000000]


def test_numpy_twins_match_scalar_alu_ops():
    if not soa.HAVE_NUMPY:
        pytest.skip("numpy unavailable in this environment")
    import numpy as np

    for mnemonic, np_op in sorted(soa.NUMPY_ALU_OPS.items()):
        scalar = ALU_OPS[mnemonic]
        pairs = [(a, b) for a in EDGE_A for b in EDGE_B]
        av = np.fromiter((a & MASK32 for a, _ in pairs), dtype=np.uint64,
                         count=len(pairs))
        bv = np.fromiter((b & MASK32 for _, b in pairs), dtype=np.uint64,
                         count=len(pairs))
        got = np_op(av, bv)
        for i, (a, b) in enumerate(pairs):
            want = scalar(a, b) & MASK32
            assert int(got[i]) & MASK32 == want, (
                "%s(%#x, %r): numpy %#x != scalar %#x"
                % (mnemonic, a, b, int(got[i]) & MASK32, want))
