"""End-to-end tests of the simulation-job service.

A real daemon on a background thread (unix socket), real blocking
clients on worker threads — the same stack `repro serve`/`repro submit`
use.  The headline contract under test: N concurrent submissions of one
key cost exactly one simulation, and every submitter receives the
byte-identical canonical value (Deterministic Consistency makes the
dedupe invisible).
"""

import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import ServeClient, ServeConfig, ServeError, ServerThread
from repro.snapshot.cache import RunCache

SHORT_ASM = """
main:
    li   t1, 40
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
"""

MEDIUM_ASM = """
main:
    li   t1, 300000
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
"""

LONG_ASM = """
main:
    li   t1, 30000000
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
"""


def _job(source=SHORT_ASM, cores=2, inputs=None):
    return {"source": source, "filename": "job.s",
            "params": {"num_cores": cores}, "inputs": inputs}


def _canonical(value):
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _serve(tmp_path, **overrides):
    options = {"unix_path": str(tmp_path / "serve.sock"),
               "cache_root": str(tmp_path / "cache"), "workers": 2}
    options.update(overrides)
    return ServerThread(ServeConfig(**options))


def _client(handle):
    return ServeClient(unix_path=handle.config.unix_path)


def test_single_flight_100_concurrent_identical_jobs(tmp_path):
    """100 concurrent submissions of one key: exactly one simulation,
    100 byte-identical answers."""
    with _serve(tmp_path) as handle:
        client = _client(handle)

        def submit(_):
            return client.submit_one(_job(), tenant="crowd")

        with ThreadPoolExecutor(max_workers=32) as pool:
            records = list(pool.map(submit, range(100)))
        stats = client.stats()
    assert len(records) == 100
    assert len({record["key"] for record in records}) == 1
    # every record carries the result, however the submission resolved
    payloads = {_canonical(record["value"]) for record in records}
    assert len(payloads) == 1
    # the simulation ran exactly once; everyone else coalesced or hit
    jobs = stats["jobs"]
    assert jobs["executed"] == 1 and jobs["completed"] == 1
    assert jobs["submitted"] == 100
    assert jobs["hits"] + jobs["coalesced"] == 99
    assert jobs["failed"] == 0 and jobs["cancelled"] == 0


def test_hit_after_completion_and_cache_shared_with_run_program(tmp_path):
    with _serve(tmp_path) as handle:
        client = _client(handle)
        first = client.submit_one(_job())
        assert first["status"] == "done"
        second = client.submit_one(_job())
        assert second["status"] == "hit"
        assert _canonical(first["value"]) == _canonical(second["value"])
        cache_root = handle.config.cache_root
    # the CLI-side cache API resolves the same key the service stored
    from repro.serve.jobs import compiled_program

    cache = RunCache(cache_root)
    program = compiled_program(SHORT_ASM, "job.s")
    from repro.machine import Params

    value, hit = cache.run_program(program, Params(num_cores=2))
    assert hit is True
    assert _canonical(value) == _canonical(first["value"])


def test_progress_streaming_then_terminal(tmp_path):
    with _serve(tmp_path, progress_every=100_000) as handle:
        client = _client(handle)
        record = client.submit_one(_job(MEDIUM_ASM), wait=False)
        assert record["status"] == "queued"
        events = list(client.stream(record["id"]))
    progress = [e for e in events if e["kind"] == "progress"]
    assert progress, "a multi-M-cycle run must stream progress"
    for event in progress:
        assert event["cycle"] > 0
        assert "ipc" in event and "top_stall" in event
    assert [e["kind"] for e in events[-1:]] == ["done"]
    assert events[-1]["value"]["cycles"] > 500_000


def test_wait_false_then_poll_status(tmp_path):
    with _serve(tmp_path) as handle:
        client = _client(handle)
        record = client.submit_one(_job(), wait=False)
        assert record["status"] == "queued"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status = client.job(record["id"])
            if status["state"] == "done":
                break
            time.sleep(0.05)
        assert status["state"] == "done"
        assert status["value"]["cycles"] > 0


def test_quota_meters_executions_not_hits(tmp_path):
    with _serve(tmp_path, default_quota=(0, 2)) as handle:
        client = _client(handle)
        client.submit_one(_job(inputs="a"), tenant="meterme")
        client.submit_one(_job(inputs="b"), tenant="meterme")
        # third *execution* exceeds the burst-2 hard allowance
        with pytest.raises(ServeError) as excinfo:
            client.submit_one(_job(inputs="c"), tenant="meterme")
        assert excinfo.value.status == 429
        # hits are free: replaying a stored key charges nothing
        replay = client.submit_one(_job(inputs="a"), tenant="meterme")
        assert replay["status"] == "hit"
        # a different tenant has its own bucket
        other = client.submit_one(_job(inputs="c"), tenant="other")
        assert other["status"] == "done"


def test_cancel_queued_job(tmp_path):
    with _serve(tmp_path, workers=1) as handle:
        client = _client(handle)
        running = client.submit_one(_job(LONG_ASM, inputs="hog"), wait=False)
        queued = client.submit_one(_job(LONG_ASM, inputs="victim"),
                                   wait=False)
        cancelled = client.cancel(queued["id"])
        assert cancelled["state"] == "cancelled"
        # cancel is idempotent and the running job is unaffected
        assert client.cancel(queued["id"])["state"] == "cancelled"
        assert client.job(running["id"])["state"] in ("queued", "running",
                                                      "done")
        client.cancel(running["id"])  # release the worker for drain


def test_cancel_running_job(tmp_path):
    with _serve(tmp_path, workers=1) as handle:
        client = _client(handle)
        record = client.submit_one(_job(LONG_ASM, inputs="runner"),
                                   wait=False)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.job(record["id"])["state"] == "running":
                break
            time.sleep(0.02)
        client.cancel(record["id"])
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status = client.job(record["id"])
            if status["state"] != "running":
                break
            time.sleep(0.05)
        assert status["state"] == "cancelled"
        assert client.stats()["jobs"]["cancelled"] == 1


def test_batch_mixes_hits_rejections_and_new_work(tmp_path):
    with _serve(tmp_path) as handle:
        client = _client(handle)
        client.submit_one(_job(inputs="warm"))
        records = client.submit([
            _job(inputs="warm"),                      # hit
            _job(inputs="cold"),                      # new execution
            {"source": "int main( {", "filename": "job.c"},  # bad program
        ])
    assert records[0]["status"] == "hit"
    assert records[1]["status"] == "done"
    assert records[2]["status"] == "rejected"
    assert records[2]["code"] == 400
    assert "bad program" in records[2]["error"]


def test_drain_finishes_accepted_work(tmp_path):
    handle = _serve(tmp_path).start()
    client = _client(handle)
    records = [client.submit_one(_job(inputs=n), wait=False)
               for n in range(3)]
    handle.stop()  # graceful: the three accepted jobs must complete
    server = handle.server
    assert server.table.counters["completed"] == 3
    for record in records:
        job = server.table.get(record["id"])
        assert job.state == "done" and job.value["cycles"] > 0
    # and the results were durably cached for the next process
    cache = RunCache(handle.config.cache_root)
    assert cache.stats()["entries"] == 3


def test_draining_server_rejects_new_submissions(tmp_path):
    with _serve(tmp_path) as handle:
        client = _client(handle)
        handle.server.draining = True
        with pytest.raises(ServeError) as excinfo:
            client.submit([_job()])
        assert excinfo.value.status == 503
        handle.server.draining = False  # let the context exit drain cleanly


def test_stream_of_finished_job_replays_terminal(tmp_path):
    with _serve(tmp_path) as handle:
        client = _client(handle)
        record = client.submit_one(_job())
        done = client.job(record["id"]) if "id" in record else None
        if done is not None:
            events = list(client.stream(record["id"]))
            assert events[-1]["kind"] == "done"
            assert _canonical(events[-1]["value"]) == _canonical(
                record["value"])


def test_unknown_endpoints_and_jobs(tmp_path):
    with _serve(tmp_path) as handle:
        client = _client(handle)
        assert client.healthz() == {"draining": False, "ok": True}
        with pytest.raises(ServeError) as excinfo:
            client.job("j-999")
        assert excinfo.value.status == 404
        status, _body = client.request("GET", "/nowhere")
        assert status == 404
