"""The paper's figure-15 extension: multiple LBP chips on one line.

A machine larger than 64 cores spans chips; the r4 router level connects
the per-chip r3 roots, and teams keep expanding along the line of cores
across the chip boundary (the fork mechanism is unchanged — exactly the
'slightly modified forking' the paper's conclusion sketches).
"""

import pytest

from repro.compiler import compile_to_program
from repro.fastsim import FastLBP
from repro.machine import LBP, Params
from repro.machine.router import reply_path, request_path


def test_r4_paths_only_across_chips():
    same_chip = request_path(0, 63)
    assert not any(link[0].startswith("r4") or link[0].startswith("r3>r4")
                   for link in same_chip)
    cross_chip = request_path(0, 64)
    assert ("r3>r4", 0) in cross_chip and ("r4>r3", 1) in cross_chip
    assert len(reply_path(0, 64)) == len(cross_chip)


_SOURCE = """
#include <det_omp.h>
int v[%(members)d];
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < %(members)d; t++)
        v[t] = 7000 + t;
}
"""


def test_team_expands_across_the_chip_boundary_cycle_sim():
    members = 272  # needs 68 cores > one chip
    program = compile_to_program(_SOURCE % {"members": members}, "mc.c")
    machine = LBP(Params(num_cores=68)).load(program)
    stats = machine.run(max_cycles=20_000_000)
    base = program.symbol("v")
    values = [machine.read_word(base + 4 * i) for i in range(members)]
    assert values == [7000 + i for i in range(members)]
    # harts on the second chip really did work
    assert machine.stats.harts[66][0].retired > 0


def test_two_full_chips_fast_sim():
    members = 512  # 128 cores = 2 chips
    program = compile_to_program(_SOURCE % {"members": members}, "mc.c")
    machine = FastLBP(Params(num_cores=128)).load(program)
    machine.run(max_cycles=50_000_000)
    base = program.symbol("v")
    values = [machine.read_word(base + 4 * i) for i in range(0, members, 37)]
    assert values == [7000 + i for i in range(0, members, 37)]


def test_cross_chip_remote_access_works():
    source = """
#include <det_omp.h>
int here;                 /* bank 0, chip 0 */
int there __bank(65);     /* bank 65, chip 1 */
void main() {
    there = 5;
    here = there + 1;
}
"""
    program = compile_to_program(source, "xc.c")
    machine = LBP(Params(num_cores=66)).load(program)
    stats = machine.run(max_cycles=1_000_000)
    assert machine.read_word(program.symbol("here")) == 6
    assert stats.remote_accesses >= 2
