"""End-to-end tests of the serving stack's observability (PR 10).

A real daemon with tracing on: admission spans minted per submission,
the created job's context propagated by value into the forked worker
(execute/compile/run spans, shard epoch spans), everything merged back
into the server's ring and served on ``/v1/trace``.  The headline
contracts under test:

* N coalesced submissions of one key are N admission traces pointing at
  ONE execution trace;
* golden digests are bit-exact with tracing on, across backends and
  shard counts (observation-only);
* ``/metrics`` is structurally valid Prometheus text under load;
* a SIGKILLed worker leaves a flight-recorder ``.jsonl`` dump;
* service spans and core timelines land in one validated Perfetto file
  on a shared clock.
"""

import glob
import json
import os
import signal
import socket
import time
from concurrent.futures import ThreadPoolExecutor

from repro.observe.perfetto import (
    merged_chrome_trace,
    shared_clock_errors,
    validate_chrome_trace,
)
from repro.observe.prom import validate_prometheus_text
from repro.observe.spans import FLIGHT_ENV, flight, read_flight_dump
from repro.serve import ServeClient, ServeConfig, ServerThread

SHORT_ASM = """
main:
    li   t1, 40
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
"""

MEDIUM_ASM = """
main:
    li   t1, 300000
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
"""

LONG_ASM = """
main:
    li   t1, 30000000
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
"""


def _job(source=SHORT_ASM, cores=2, inputs=None, **extra):
    record = {"source": source, "filename": "job.s",
              "params": {"num_cores": cores}, "inputs": inputs}
    record.update(extra)
    return record


def _serve(tmp_path, **overrides):
    options = {"unix_path": str(tmp_path / "serve.sock"),
               "cache_root": str(tmp_path / "cache"), "workers": 2}
    options.update(overrides)
    return ServerThread(ServeConfig(**options))


def _client(handle):
    return ServeClient(unix_path=handle.config.unix_path)


def _trace_snapshot(client):
    status, payload = client.request("GET", "/v1/trace")
    assert status == 200
    return payload


def _by_name(spans, name):
    return [record for record in spans if record["name"] == name]


def _get_raw(unix_path, path):
    """One raw GET, returning (status, headers, text) — for the non-JSON
    ``/metrics`` endpoint the JSON client can't parse."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(30.0)
    sock.connect(unix_path)
    try:
        sock.sendall(("GET %s HTTP/1.1\r\nHost: repro-serve\r\n"
                      "Connection: close\r\n\r\n" % path).encode())
        reader = sock.makefile("rb")
        status = int(reader.readline().split()[1])
        headers = {}
        while True:
            line = reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        body = (reader.read(int(length)) if length is not None
                else reader.read())
        return status, headers, body.decode()
    finally:
        sock.close()


# ---- correlated traces -------------------------------------------------------


def test_100_coalesced_admissions_reference_one_execution_trace(tmp_path):
    """The N:1 span contract: 100 concurrent submissions of one key are
    100 single-span admission traces (unique trace ids), all pointing at
    the ONE execution trace that served them."""
    with _serve(tmp_path) as handle:
        client = _client(handle)

        def submit(_):
            return client.submit_one(_job(MEDIUM_ASM), tenant="crowd")

        with ThreadPoolExecutor(max_workers=32) as pool:
            records = list(pool.map(submit, range(100)))
        spans = _trace_snapshot(client)["spans"]

    assert len(records) == 100
    admissions = _by_name(spans, "admission")
    assert len(admissions) == 100
    # every connection minted its own trace — no collisions, no reuse
    assert len({record["trace_id"] for record in admissions}) == 100

    executes = _by_name(spans, "execute")
    assert len(executes) == 1, "one key executed more than once"
    (execute,) = executes

    queued = [a for a in admissions if a["tags"].get("outcome") == "queued"]
    coalesced = [a for a in admissions
                 if a["tags"].get("outcome") == "coalesced"]
    hits = [a for a in admissions if a["tags"].get("outcome") == "hit"]
    assert len(queued) == 1
    assert len(queued) + len(coalesced) + len(hits) == 100
    assert coalesced, "a 1-s run under 100 submitters must coalesce"

    # the worker's execute span chains onto the creating admission...
    (creator,) = queued
    assert execute["trace_id"] == creator["trace_id"]
    assert execute["parent_id"] == creator["span_id"]
    # ...and every coalesced admission names that execution trace
    for record in coalesced:
        assert record["tags"]["execution_trace"] == creator["trace_id"]

    # the worker-side children stayed in the execution trace
    for name in ("compile", "run"):
        (child,) = _by_name(spans, name)
        assert child["trace_id"] == creator["trace_id"]
        assert child["parent_id"] == execute["span_id"]
    (run,) = _by_name(spans, "run")
    assert run["start_s"] >= execute["start_s"]
    assert run["end_s"] <= execute["end_s"]


def test_job_records_carry_unique_trace_ids(tmp_path):
    with _serve(tmp_path) as handle:
        client = _client(handle)
        ids = [client.submit_one(_job(inputs=index))["id"]
               for index in range(6)]
        described = [client.job(job_id) for job_id in ids]
    trace_ids = [record["trace_id"] for record in described]
    assert len(set(trace_ids)) == 6
    for trace_id in trace_ids:
        assert len(trace_id) == 16
        int(trace_id, 16)


# ---- observation-only: golden digests unchanged ------------------------------


def test_digests_bit_exact_with_tracing_across_backends_and_shards(tmp_path):
    """The golden-conformance claim for tracing: {interp,soa} x {shards
    1,2}, traced and untraced, all eight runs produce one digest.
    Distinct ``inputs`` per config force four real executions per server
    (inputs key the cache but never reach the machine)."""
    configs = [("interp", 1), ("interp", 2), ("soa", 1), ("soa", 2)]
    results = {}
    spans = None
    for label, trace in (("traced", True), ("untraced", False)):
        root = tmp_path / label
        root.mkdir()
        with _serve(root, trace=trace) as handle:
            client = _client(handle)
            for backend, shards in configs:
                record = client.submit_one(
                    _job(cores=4, inputs="%s-%d" % (backend, shards),
                         shards=shards, backend=backend))
                assert record["status"] == "done"
                results[(label, backend, shards)] = record["value"]
            if trace:
                spans = _trace_snapshot(client)["spans"]

    digests = {value["trace_digest"] for value in results.values()}
    assert len(digests) == 1, "tracing or sharding perturbed the digest"
    cycles = {value["cycles"] for value in results.values()}
    assert len(cycles) == 1

    # the sharded runs really were traced down to the epoch barrier
    epoch_waits = _by_name(spans, "epoch_wait")
    assert epoch_waits, "sharded executions recorded no epoch spans"
    assert {record["tags"]["shard"] for record in epoch_waits} == {0, 1}
    coordinates = _by_name(spans, "shard_coordinate")
    assert {record["tags"]["shards"] for record in coordinates} == {2}
    for record in epoch_waits:
        assert record["name"] == "epoch_wait"
        # epoch spans belong to the execution traces, not their own
        assert record["trace_id"] in {e["trace_id"]
                                      for e in _by_name(spans, "execute")}
    sends = _by_name(spans, "epoch_send")
    recvs = _by_name(spans, "epoch_recv")
    wait_ids = {record["span_id"] for record in epoch_waits}
    for record in sends + recvs:
        assert record["parent_id"] in wait_ids


# ---- /metrics ----------------------------------------------------------------


def test_metrics_endpoint_is_valid_prometheus_under_load(tmp_path):
    with _serve(tmp_path) as handle:
        client = _client(handle)
        client.submit_one(_job())                     # miss -> execute
        client.submit_one(_job())                     # hit
        client.submit_one(_job(inputs="other"))       # second execution
        status, headers, text = _get_raw(handle.config.unix_path, "/metrics")

    assert status == 200
    assert headers["content-type"].startswith("text/plain; version=0.0.4")
    parsed = validate_prometheus_text(text)

    assert parsed["types"]["repro_jobs_total"] == "counter"
    assert parsed["types"]["repro_http_request_seconds"] == "histogram"
    assert parsed["types"]["repro_job_execute_seconds"] == "histogram"
    jobs = {labels["event"]: value
            for labels, value in parsed["samples"]["repro_jobs_total"]}
    assert jobs["submitted"] == 3.0
    assert jobs["executed"] == 2.0 and jobs["completed"] == 2.0
    assert jobs["hits"] == 1.0
    (_, execute_count), = parsed["samples"]["repro_job_execute_seconds_count"]
    assert execute_count == 2.0
    (_, http_count), = parsed["samples"]["repro_http_request_seconds_count"]
    assert http_count >= 3.0
    # tracing is on by default, so the span counters are exported
    (_, started), = parsed["samples"]["repro_spans_recorded_total"]
    assert started >= 3.0


def test_tracing_disabled_is_invisible_and_trace_endpoint_404s(tmp_path):
    with _serve(tmp_path, trace=False) as handle:
        client = _client(handle)
        record = client.submit_one(_job())
        assert record["status"] == "done"
        job_id = client.submit_one(_job(inputs="two"))["id"]
        described = client.job(job_id)
        status, _payload = client.request("GET", "/v1/trace")
        _status, _headers, text = _get_raw(handle.config.unix_path,
                                           "/metrics")
    assert "trace_id" not in described
    assert status == 404
    parsed = validate_prometheus_text(text)
    assert "repro_spans_recorded_total" not in parsed["types"]


# ---- crash flight recorder ---------------------------------------------------


def _sigkill_job(*_args, progress=None):
    """Stands in for execute_job: die the way an OOM-killed worker dies —
    no exception, no report, just gone."""
    flight().note("about_to_die")
    os.kill(os.getpid(), signal.SIGKILL)


def test_worker_sigkill_produces_a_flight_dump(tmp_path, monkeypatch):
    flight_dir = str(tmp_path / "flight")
    # pre-set the env var monkeypatch-style so the server's own export of
    # the same value is restored (removed) on test teardown
    monkeypatch.setenv(FLIGHT_ENV, flight_dir)
    monkeypatch.setattr("repro.serve.server.execute_job", _sigkill_job)
    with _serve(tmp_path, flight_dir=flight_dir, retries=0) as handle:
        client = _client(handle)
        record = client.submit_one(_job())
    assert record["status"] == "failed"
    assert "worker died" in record["error"]

    dumps = sorted(glob.glob(os.path.join(flight_dir, "flight-*.jsonl")))
    assert dumps, "a dead worker must leave a flight dump"
    header, events = read_flight_dump(dumps[0])
    assert header["flight"] == 1
    assert "worker died" in header["reason"]
    kinds = [event["kind"] for event in events]
    # the server's ring tells the story up to the death
    assert "admit" in kinds and "execute" in kinds
    assert kinds[-1] == "worker_died"
    sequences = [event["seq"] for event in events]
    assert sequences == sorted(sequences)


# ---- merged Perfetto: one file, one clock ------------------------------------


def test_merged_perfetto_service_spans_plus_core_timelines(tmp_path):
    """The acceptance headline: spans from a *served* job and the core
    timelines of that job's machine land in one valid Perfetto file, and
    the shared-clock claim holds (every core event inside the run span).

    Determinism is what makes the machine half recoverable: replaying
    the served program locally IS the same run, cycle for cycle, so the
    worker's clock anchor places the replay's events correctly."""
    with _serve(tmp_path) as handle:
        client = _client(handle)
        record = client.submit_one(_job(MEDIUM_ASM))
        assert record["status"] == "done"
        snapshot = _trace_snapshot(client)

    spans, clock = snapshot["spans"], snapshot["clock"]
    assert clock is not None and clock["cycles"] == record["value"]["cycles"]

    from repro.asm import assemble
    from repro.machine import LBP, Params
    from repro.machine.trace import Trace

    machine = LBP(Params(num_cores=2, trace_enabled=True),
                  trace=Trace(True, kinds=("start", "join", "p_ret", "fork",
                                           "ending_signal"))).load(
        assemble(MEDIUM_ASM, "job.s"))
    machine.run()
    assert machine.stats.cycles == clock["cycles"]  # the replay IS the run

    data = merged_chrome_trace(machine, spans, clock)
    assert validate_chrome_trace(data) == []
    assert shared_clock_errors(data) == []
    service_names = {event["name"] for event in data["traceEvents"]
                     if event.get("cat") == "service"}
    assert {"admission", "execute", "compile", "run"} <= service_names
    assert data["otherData"]["cycles"] == clock["cycles"]

    from repro.observe.perfetto import write_chrome_trace

    out = tmp_path / "merged.json"
    write_chrome_trace(machine, str(out), spans=spans, clock=clock)
    on_disk = json.loads(out.read_text())
    assert on_disk["otherData"]["merged"] is True
    assert shared_clock_errors(on_disk) == []


def test_serve_trace_out_writes_spans_file_on_drain(tmp_path):
    trace_out = tmp_path / "service-trace.json"
    with _serve(tmp_path, trace_out=str(trace_out)) as handle:
        client = _client(handle)
        client.submit_one(_job())
        assert not trace_out.exists()  # written on drain, not per job
    data = json.loads(trace_out.read_text())
    assert validate_chrome_trace(data) == []
    assert data["otherData"]["merged"] is True
    assert data["otherData"]["spans"] > 0


# ---- CLI surfaces ------------------------------------------------------------


def test_cli_submit_stream_timeout_prints_terminal_summary(tmp_path, capsys):
    """Satellite contract: a streamed job that times out ends with an
    explicit status line and a nonzero exit — never a silent NDJSON
    end."""
    from repro.cli import main as cli_main

    source = tmp_path / "long.s"
    source.write_text(LONG_ASM)
    with _serve(tmp_path, job_timeout=0.4, retries=0,
                progress_every=200_000) as handle:
        rc = cli_main(["submit", str(source), "--unix",
                       handle.config.unix_path, "--cores", "2", "--stream"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "status   : failed" in captured.out
    assert "timeout" in captured.err


def test_cli_submit_stream_recovers_when_stream_ends_silently(
        tmp_path, capsys, monkeypatch):
    """The regression this PR fixes: a stream that ends without a
    terminal event (daemon drained, connection dropped) must recover the
    job's real fate via a status query instead of reporting nothing."""
    from repro.cli import main as cli_main

    def silent_stream(self, job_id):
        # stand in for a dropped connection: wait out the run, then
        # end the stream having yielded no terminal event
        while self.job(job_id)["state"] not in ("done", "failed",
                                                "cancelled"):
            time.sleep(0.02)
        return iter(())

    monkeypatch.setattr(ServeClient, "stream", silent_stream)
    source = tmp_path / "short.s"
    source.write_text(SHORT_ASM)
    with _serve(tmp_path) as handle:
        rc = cli_main(["submit", str(source), "--unix",
                       handle.config.unix_path, "--cores", "2", "--stream"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "status   : done" in captured.out
    assert "cycles   :" in captured.out


def test_cli_observe_spans_writes_merged_perfetto(tmp_path, capsys):
    from repro.cli import main as cli_main

    source = tmp_path / "observe.s"
    source.write_text(SHORT_ASM)
    out = tmp_path / "merged.json"
    rc = cli_main(["observe", str(source), "--cores", "2", "--spans",
                   "--perfetto", str(out)])
    captured = capsys.readouterr()
    assert rc == 0
    assert "spans    :" in captured.out
    data = json.loads(out.read_text())
    assert validate_chrome_trace(data) == []
    assert data["otherData"]["merged"] is True
    assert shared_clock_errors(data) == []
