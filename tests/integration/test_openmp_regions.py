"""Deterministic OpenMP lowering: parallel for / sections, captures,
multiple regions, the barrier, and placement."""

import pytest

from repro.compiler import CompileError, compile_c
from helpers import run_c, word


def test_parallel_for_basic():
    source = """
#include <det_omp.h>
int v[12];
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < 12; t++)
        v[t] = 100 + t;
}
"""
    program, machine, stats = run_c(source, cores=4)
    assert [word(machine, program, "v", i) for i in range(12)] == \
        [100 + i for i in range(12)]
    assert stats.forks == 11


def test_parallel_for_inline_body_no_call():
    source = """
#include <det_omp.h>
int v[8];
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < 8; t++) {
        int doubled = 2 * t;
        v[t] = doubled + 1;
    }
}
"""
    program, machine, _ = run_c(source, cores=2)
    assert [word(machine, program, "v", i) for i in range(8)] == \
        [2 * i + 1 for i in range(8)]


def test_captures_are_firstprivate():
    source = """
#include <det_omp.h>
int v[4];
int outer_after;
void main() {
    int t;
    int bias = 50;
    #pragma omp parallel for
    for (t = 0; t < 4; t++) {
        v[t] = bias + t;
        bias = 999;        /* private copy: does not leak back */
    }
    outer_after = bias;
}
"""
    program, machine, _ = run_c(source, cores=1)
    assert [word(machine, program, "v", i) for i in range(4)] == [50, 51, 52, 53]
    assert word(machine, program, "outer_after") == 50


def test_nonzero_start_bound_expressions():
    source = """
#include <det_omp.h>
int v[16];
int lo; int hi;
void main() {
    int t;
    lo = 3;
    hi = 9;
    #pragma omp parallel for
    for (t = lo; t < hi; t++)
        v[t] = t * t;
}
"""
    program, machine, _ = run_c(source, cores=2)
    values = [word(machine, program, "v", i) for i in range(16)]
    assert values == [0, 0, 0, 9, 16, 25, 36, 49, 64, 0, 0, 0, 0, 0, 0, 0]


def test_two_regions_hardware_barrier():
    """Figure 4: phase 2 must observe every write of phase 1."""
    source = """
#include <det_omp.h>
int a[8];
int b[8];
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < 8; t++)
        a[t] = t + 1;
    #pragma omp parallel for
    for (t = 0; t < 8; t++)
        b[t] = a[7 - t] * 10;   /* reads another hart's phase-1 write */
}
"""
    program, machine, _ = run_c(source, cores=2)
    assert [word(machine, program, "b", i) for i in range(8)] == \
        [(8 - i) * 10 for i in range(8)]


def test_parallel_sections():
    source = """
#include <det_omp.h>
int r[3];
void main() {
    #pragma omp parallel sections
    {
        #pragma omp section
        { r[0] = 10; }
        #pragma omp section
        { r[1] = 20; }
        #pragma omp section
        { r[2] = 30; }
    }
}
"""
    program, machine, stats = run_c(source, cores=1)
    assert [word(machine, program, "r", i) for i in range(3)] == [10, 20, 30]
    assert stats.forks == 2


def test_sections_capture_shared_local():
    source = """
#include <det_omp.h>
int r[2];
void main() {
    int k = 7;
    #pragma omp parallel sections
    {
        #pragma omp section
        { r[0] = k + 1; }
        #pragma omp section
        { r[1] = k * 2; }
    }
}
"""
    program, machine, _ = run_c(source, cores=1)
    assert [word(machine, program, "r", i) for i in range(2)] == [8, 14]


def test_team_spans_multiple_cores():
    source = """
#include <det_omp.h>
int where[16];
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < 16; t++)
        where[t] = __hart_id();
}
"""
    program, machine, _ = run_c(source, cores=4)
    placement = [word(machine, program, "where", i) for i in range(16)]
    # member k is guaranteed to run on core k/4 (fig. 3) — the hart slot
    # within the core may be a reused one when earlier members already
    # retired (the ordered release runs concurrently with later forks),
    # but the core-level placement that locality relies on is invariant
    assert [hart_id >> 2 for hart_id in placement] == [k // 4 for k in range(16)]
    # the first member of every core is reached by p_fn before any reuse
    assert placement[0] == 0 and placement[4] == 4 \
        and placement[8] == 8 and placement[12] == 12


def test_team_larger_than_machine_deadlocks_cleanly():
    source = """
#include <det_omp.h>
int v[8];
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < 8; t++)
        v[t] = t;
}
"""
    from repro.machine import MachineError

    with pytest.raises(MachineError):
        run_c(source, cores=1, max_cycles=100_000)  # 8 members, 4 harts


def test_omp_get_thread_num():
    source = """
#include <det_omp.h>
int who[8];
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < 8; t++)
        who[t] = omp_get_thread_num() * 10 + t;
}
"""
    program, machine, _ = run_c(source, cores=2)
    assert [word(machine, program, "who", i) for i in range(8)] == \
        [11 * i for i in range(8)]


def test_omp_get_thread_num_outside_region_rejected():
    source = """
#include <det_omp.h>
int x;
void main() { x = omp_get_thread_num(); }
"""
    with pytest.raises(CompileError, match="parallel region"):
        compile_c(source)


def test_capture_of_array_rejected():
    source = """
#include <det_omp.h>
int out[2];
void main() {
    int local_buf[4];
    int t;
    #pragma omp parallel for
    for (t = 0; t < 2; t++)
        out[t] = local_buf[t];
}
"""
    with pytest.raises(CompileError, match="non-scalar"):
        compile_c(source)


def test_pragma_requires_canonical_loop():
    source = """
#include <det_omp.h>
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < 8; t += 2) { }
}
"""
    with pytest.raises(CompileError):
        compile_c(source)
