"""Seeded-race corpus: the detector flags exactly the planted pair.

``tests/data/races/`` holds small programs with a *known* referential
race (a comment in each file documents the planted pair) next to a
race-free twin that differs only by the one ordering edge or address
that removes the race.  The tests assert the exact access pair — the
labelled pcs for assembly, the region/address for DetC — and complete
silence on the twins, so both false negatives and false positives in
the happens-before machinery break loudly.
"""

import os

import pytest

from repro.asm import assemble
from repro.compiler import compile_to_program
from repro.machine import LBP, Params

CORPUS = os.path.join(os.path.dirname(__file__), "..", "data", "races")


def corpus_report(name, cores, sync=None):
    with open(os.path.join(CORPUS, name)) as f:
        source = f.read()
    if name.endswith(".s"):
        program = assemble(source)
    else:
        program = compile_to_program(source, name)
    machine = LBP(Params(num_cores=cores), sanitize=True)
    machine.load(program)
    machine.run(max_cycles=50_000_000)
    if sync is not None:
        sync = [(program.symbol(sym), words * 4) for sym, words in sync]
    return program, machine.race_report(sync=sync)


def endpoints(race):
    """The unordered pair as a set of (pc, is_write)."""
    return {(race.a["pc"], race.a["write"]), (race.b["pc"], race.b["write"])}


# name -> planted pair: (word symbol, (label, is_write), (label, is_write));
# None for a race-free twin.
ASM_CASES = {
    "ww_conflict.s": ("x", ("race_a", True), ("race_b", True)),
    "ww_disjoint.s": None,
    "rw_unsynced.s": ("x", ("race_a", False), ("race_b", True)),
    "rw_result_edge.s": None,
    "fork_late_store.s": ("x", ("race_a", True), ("race_b", False)),
    "fork_early_store.s": None,
}


@pytest.mark.parametrize("name", sorted(ASM_CASES))
def test_asm_corpus(name):
    program, report = corpus_report(name, cores=1)
    planted = ASM_CASES[name]
    if planted is None:
        assert report.clean, report.format()
        return
    word, a, b = planted
    assert len(report) == 1, report.format()
    race = report.races[0]
    assert race.addr == program.symbol(word)
    assert endpoints(race) == {(program.symbol(a[0]), a[1]),
                               (program.symbol(b[0]), b[1])}


def in_region(report, index, name):
    label = "omp region %d (%s)" % (index, name)
    return all(end["region"] == label
               for race in report.races for end in (race.a, race.b))


def test_c_shared_scalar():
    """sum = sum + t: a write-read and a write-write pair on `sum`."""
    program, report = corpus_report("omp_shared_scalar.c", cores=2)
    assert len(report) == 2, report.format()
    assert {race.kind for race in report.races} == {"write-read",
                                                    "write-write"}
    assert {race.addr for race in report.races} == {program.symbol("sum")}
    assert in_region(report, 0, "__omp_body_0")


def test_c_private_slots_twin():
    _, report = corpus_report("omp_private_slots.c", cores=2)
    assert report.clean, report.format()


def test_c_neighbor_read():
    """a[t] = t; b[t] = a[N-1-t]: the mirror read races the owner write."""
    program, report = corpus_report("omp_neighbor_read.c", cores=2)
    base = program.symbol("a")
    # the same static sw/lw pc pair, seen in both chronological orders
    assert len(report) == 2, report.format()
    assert {race.kind for race in report.races} == {"write-read",
                                                    "read-write"}
    assert all(base <= race.addr < base + 16 for race in report.races)
    assert len({endpoints(race) == endpoints(other)
                for race in report.races
                for other in report.races}) == 1
    assert in_region(report, 0, "__omp_body_0")


def test_c_join_read_twin():
    _, report = corpus_report("omp_join_read.c", cores=2)
    assert report.clean, report.format()


def test_c_poll_flag_without_sync():
    """The polled handoff is invisible without a sync-cell annotation."""
    program, report = corpus_report("poll_flag.c", cores=2)
    assert len(report) == 2, report.format()
    assert {race.kind for race in report.races} == {"write-read"}
    assert {race.addr for race in report.races} == {
        program.symbol("flag"), program.symbol("value")}


def test_c_poll_flag_with_sync_cell():
    """Declaring `flag` a sync cell orders the whole transfer — clean."""
    _, report = corpus_report("poll_flag.c", cores=2,
                              sync=[("flag", 1)])
    assert report.clean, report.format()
    assert report.sync_ranges  # the declaration is echoed in the report


def test_cli_check_exit_codes(capsys):
    """`repro check` exits 1 on the racy file, 0 on the twin and with
    --sync; the racy report names the planted labels."""
    from repro.cli import main

    racy = os.path.join(CORPUS, "ww_conflict.s")
    twin = os.path.join(CORPUS, "ww_disjoint.s")
    poll = os.path.join(CORPUS, "poll_flag.c")

    assert main(["check", racy, "--cores", "1"]) == 1
    out = capsys.readouterr().out
    assert "write-write race" in out and "race_a" in out and "race_b" in out

    assert main(["check", twin, "--cores", "1"]) == 0
    assert "no races" in capsys.readouterr().out

    assert main(["check", poll, "--cores", "2"]) == 1
    capsys.readouterr()
    assert main(["check", poll, "--cores", "2", "--sync", "flag"]) == 0
    assert "no races" in capsys.readouterr().out
