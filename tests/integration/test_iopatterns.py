"""Figure 17 / §6: controller-hart I/O and the DMA pattern, end to end."""

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.machine.io import ScriptedInput, attach_input
from repro.workloads.iopatterns import (
    controller_source,
    dma_source,
    stream_device_addr,
)

CORES = 4


def _machine_with_stream(source, values, period=50):
    program = compile_to_program(source, "io.c")
    machine = LBP(Params(num_cores=CORES)).load(program)
    device = ScriptedInput([(period * (i + 1), v) for i, v in enumerate(values)])
    attach_input(machine, stream_device_addr(CORES), device)
    return program, machine, device


def test_controller_forwards_values_to_requesters():
    workers = 5
    values = [1000 + i for i in range(workers)]
    program, machine, _dev = _machine_with_stream(
        controller_source(CORES, workers), values)
    machine.run(max_cycles=10_000_000)
    base = program.symbol("results")
    got = [machine.read_word(base + 4 * w) for w in range(workers)]
    # requests are served in index order, so worker w gets the w-th value
    assert got == values


def test_controller_latency_few_cycles_after_ready():
    """Once the device has the data, the requester receives it quickly."""
    workers = 2
    program, machine, device = _machine_with_stream(
        controller_source(CORES, workers), [7, 8], period=400)
    machine.run(max_cycles=10_000_000)
    # the controller consumed each value shortly after it became ready
    # (the poll loop is a handful of cycles); the p_swre then needs only
    # the backward-line hops
    for consumed, ready in zip(device.consumed_at, (400, 800)):
        assert 0 <= consumed - ready < 120


def test_controller_io_is_deterministic():
    runs = []
    for _ in range(2):
        program, machine, _dev = _machine_with_stream(
            controller_source(CORES, 3), [5, 6, 7])
        stats = machine.run(max_cycles=10_000_000)
        runs.append((stats.cycles, stats.retired))
    assert runs[0] == runs[1]


def test_dma_fill_and_token_sync():
    words = 6
    stream = [10 * c + i for c in range(CORES) for i in range(words)]
    program, machine, _dev = _machine_with_stream(
        dma_source(CORES, words), stream, period=20)
    machine.run(max_cycles=20_000_000)
    base = program.symbol("sums")
    sums = [machine.read_word(base + 4 * c) for c in range(CORES)]
    assert sums == [sum(10 * c + i for i in range(words)) for c in range(CORES)]


def test_dma_consumer_reads_are_local():
    """After the DMA fill, each consumer's chunk loads hit its own bank."""
    words = 4
    stream = list(range(CORES * words))
    program, machine, _dev = _machine_with_stream(
        dma_source(CORES, words), stream, period=10)
    machine = LBP(Params(num_cores=CORES, trace_enabled=True)).load(program)
    device = ScriptedInput([(10 * (i + 1), v) for i, v in enumerate(stream)])
    attach_input(machine, stream_device_addr(CORES), device)
    machine.run(max_cycles=20_000_000)
    # consumer loads of chunk words must hit the loading core's own bank
    local = 0
    for cycle, core, hart, kind, payload in machine.trace.events:
        if kind != "mem_load":
            continue
        addr = int(payload.split()[1], 16)
        offset = addr - 0x80000000
        if 0 <= offset and (offset % (1 << 20)) >> 16 == 6:  # chunk window
            bank = offset >> 20
            if bank == core:
                local += 1
    assert local >= CORES * words  # every chunk word read locally
