"""Determinism of the telemetry layer (DESIGN.md §9).

Four contracts:

1. **Zero perturbation** — turning metrics on changes *nothing* the
   machine can see: the golden trace digests of ``test_trace_golden``
   are reproduced bit-exactly under stall attribution.
2. **Repeat-run identity** — two metered runs of the same program
   produce byte-identical reports.
3. **Shard invariance** — ``shards=1`` and ``shards=4`` produce
   byte-identical metric state and reports (the observer slots are
   space-partitioned exactly like the architectural state).
4. **Snapshot composition** — pausing mid-run, snapshotting, restoring
   and finishing yields the same report (same windows, same stalls) as
   the uninterrupted run.
"""

import json
import os
import sys

import pytest

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.observe import build_report, report_json
from repro.snapshot import restore, snapshot
from repro.workloads.matmul import matmul_source, verify_matmul

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from test_trace_golden import GOLDEN_PATH, trace_digest  # noqa: E402

INTERVAL = 512


def _metered_run(version="base", shards=None, interval=INTERVAL, trace=False):
    program = compile_to_program(matmul_source(version, 16), "mm.c")
    machine = LBP(Params(num_cores=4, trace_enabled=trace),
                  shards=shards, metrics=interval).load(program)
    machine.run(max_cycles=50_000_000)
    verify_matmul(machine, program, version, 16)
    return machine


def _report_bytes(machine):
    return report_json(build_report(machine), compact=True)


@pytest.mark.parametrize("name, version", [
    ("matmul_base_h16_c4", "base"),
    ("matmul_tiled_h16_c4", "tiled"),
])
def test_metrics_do_not_perturb_golden_digests(name, version):
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    machine = _metered_run(version, trace=True)
    assert machine.stats.cycles == golden[name]["cycles"]
    assert machine.stats.retired == golden[name]["retired"]
    assert trace_digest(machine.trace.events) == golden[name]["trace_sha256"]


def test_repeat_runs_are_byte_identical():
    assert _report_bytes(_metered_run()) == _report_bytes(_metered_run())


def test_shards_are_byte_identical():
    one = _metered_run(shards=1)
    four = _metered_run(shards=4)
    assert _report_bytes(one) == _report_bytes(four)
    dump = lambda m: json.dumps(m.metrics.state_dict(), sort_keys=True)
    assert dump(one) == dump(four)


def test_snapshot_resume_preserves_the_series():
    program = compile_to_program(matmul_source("base", 16), "mm.c")
    straight = LBP(Params(num_cores=4), metrics=INTERVAL).load(program)
    straight.run(max_cycles=50_000_000)

    paused = LBP(Params(num_cores=4), metrics=INTERVAL).load(program)
    paused.run(stop_at_cycle=5000)
    assert not paused.halted
    resumed = restore(snapshot(paused))
    assert resumed.metrics is not None
    assert resumed.metrics.interval == INTERVAL
    resumed.run(max_cycles=50_000_000)

    assert resumed.stats.cycles == straight.stats.cycles
    assert _report_bytes(resumed) == _report_bytes(straight)


def test_unmetered_snapshot_stays_unmetered():
    program = compile_to_program(matmul_source("base", 16), "mm.c")
    machine = LBP(Params(num_cores=4)).load(program)
    machine.run(stop_at_cycle=5000)
    resumed = restore(snapshot(machine))
    assert resumed.metrics is None
    resumed.run(max_cycles=50_000_000)
    assert resumed.halted
