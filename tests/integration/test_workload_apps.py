"""Integration: the figure-4 and figure-16 applications end to end."""

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.machine.io import RandomInput
from repro.workloads.sensors import (
    attach_sensors,
    expected_fusions,
    sensors_source,
)
from repro.workloads.setget import expected_sum, setget_source, verify_setget


def _run_sensors(schedules, rounds, cores=4):
    program = compile_to_program(sensors_source(cores, rounds), "sensors.c")
    machine = LBP(Params(num_cores=cores)).load(program)
    sensors, actuator = attach_sensors(machine, cores, schedules)
    stats = machine.run(max_cycles=10_000_000)
    return sensors, actuator, stats


def test_setget_sums_and_locality():
    program = compile_to_program(setget_source(16, 48), "sg.c")
    machine = LBP(Params(num_cores=4)).load(program)
    stats = machine.run(max_cycles=20_000_000)
    verify_setget(machine, 16, 48)
    assert stats.remote_accesses == 0
    assert expected_sum(0, 48) == sum(range(48))


def test_setget_single_core():
    program = compile_to_program(setget_source(4, 16), "sg.c")
    machine = LBP(Params(num_cores=1)).load(program)
    machine.run(max_cycles=5_000_000)
    verify_setget(machine, 4, 16)


def test_sensor_fusion_scripted():
    rounds = 3
    schedules = [
        [(300 * (r + 1) + 11 * i, 5 * r + i) for r in range(rounds)]
        for i in range(4)
    ]
    _sensors, actuator, _stats = _run_sensors(schedules, rounds)
    assert [v for _c, v in actuator.writes] == expected_fusions(schedules, rounds)


def test_sensor_fusion_random_arrival_order_is_harmless():
    """Sensors answer in any order; each round still fuses its own samples."""
    rounds = 4
    for seed in (5, 6):
        schedules = [RandomInput(seed * 7 + i, rounds, max_gap=600)
                     for i in range(4)]
        sensors, actuator, _stats = _run_sensors(schedules, rounds)
        assert [v for _c, v in actuator.writes] == expected_fusions(sensors, rounds)


def test_sensor_fusion_repeatable():
    rounds = 2
    schedules = [[(500 * (r + 1) + 13 * i, r * 10 + i) for r in range(rounds)]
                 for i in range(4)]
    _s1, act1, stats1 = _run_sensors(schedules, rounds)
    _s2, act2, stats2 = _run_sensors(schedules, rounds)
    assert act1.writes == act2.writes           # identical values AND cycles
    assert stats1.cycles == stats2.cycles


def test_sensor_consumption_cycles_recorded():
    rounds = 1
    schedules = [[(200, 10 + i)] for i in range(4)]
    sensors, _actuator, _stats = _run_sensors(schedules, rounds)
    for device in sensors:
        assert len(device.consumed_at) == 1
        assert device.consumed_at[0] >= 200     # never consumed before ready
