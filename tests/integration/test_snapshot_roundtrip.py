"""Snapshot/restore bit-exactness against the golden trace digests.

The acceptance bar for the snapshot subsystem: pausing a workload mid
run, serializing the machine, restoring it (in this process or a fresh
one) and running to completion must produce the *identical* event trace
and cycle count as the uninterrupted run — which is itself pinned by
``tests/data/golden_traces.json``.  Any divergence in the serialized
state (a lost in-flight event, a mis-restored ROB entry, a re-seeded
arbitration pointer) shows up as a digest mismatch here.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.asm import assemble
from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.snapshot import load_snapshot, restore, save_snapshot, snapshot
from repro.snapshot.snapshot import trace_digest
from repro.workloads.matmul import matmul_source
from repro.workloads.setget import setget_source

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from test_trace_golden import GOLDEN_PATH, RE_CONTENTION  # noqa: E402

MAX_CYCLES = 50_000_000

SRC_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def _build(name):
    """(program, cores) for a golden workload, by name."""
    if name == "matmul_base_h16_c4":
        return compile_to_program(matmul_source("base", 16), "mm.c"), 4
    if name == "matmul_tiled_h16_c4":
        return compile_to_program(matmul_source("tiled", 16), "mm.c"), 4
    if name == "setget_h16_chunk64_c4":
        return compile_to_program(setget_source(16, 64), "setget.c"), 4
    if name == "re_contention_c1":
        return assemble(RE_CONTENTION), 1
    raise KeyError(name)


def _fresh(name):
    program, cores = _build(name)
    return LBP(Params(num_cores=cores, trace_enabled=True)).load(program)


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def _assert_matches_golden(machine, stats, reference):
    assert stats.cycles == reference["cycles"]
    assert stats.retired == reference["retired"]
    assert len(machine.trace.events) == reference["events"]
    assert trace_digest(machine.trace.events) == reference["trace_sha256"]


@pytest.mark.slow
@pytest.mark.parametrize("name", [
    "matmul_base_h16_c4",
    "matmul_tiled_h16_c4",
    "setget_h16_chunk64_c4",
    "re_contention_c1",
])
def test_midrun_snapshot_resume_is_bit_exact(name, golden):
    reference = golden[name]
    machine = _fresh(name)
    pause_at = reference["cycles"] // 2
    machine.run(max_cycles=MAX_CYCLES, stop_at_cycle=pause_at)
    assert not machine.halted and machine.cycle == pause_at

    resumed = restore(snapshot(machine))
    assert resumed is not machine
    stats = resumed.run(max_cycles=MAX_CYCLES)
    _assert_matches_golden(resumed, stats, reference)


@pytest.mark.slow
def test_fresh_process_restore_is_bit_exact(tmp_path, golden):
    """Restore in a brand-new interpreter: nothing may depend on live
    state inherited from the snapshotting process."""
    name = "matmul_base_h16_c4"
    reference = golden[name]
    machine = _fresh(name)
    machine.run(max_cycles=MAX_CYCLES,
                stop_at_cycle=reference["cycles"] // 2)
    path = str(tmp_path / "pause.lbpsnap")
    save_snapshot(machine, path)

    script = (
        "import json, sys\n"
        "from repro.snapshot import load_snapshot\n"
        "from repro.snapshot.snapshot import trace_digest\n"
        "machine = load_snapshot(sys.argv[1])\n"
        "stats = machine.run(max_cycles=%d)\n"
        "print(json.dumps({'cycles': stats.cycles,\n"
        "                  'retired': stats.retired,\n"
        "                  'events': len(machine.trace.events),\n"
        "                  'trace_sha256': trace_digest("
        "machine.trace.events)}))\n" % MAX_CYCLES
    )
    env = dict(os.environ, PYTHONPATH=SRC_ROOT)
    output = subprocess.run(
        [sys.executable, "-c", script, path], env=env, check=True,
        capture_output=True, text=True).stdout
    result = json.loads(output)
    assert result == {key: reference[key] for key in result}


@pytest.mark.slow
def test_periodic_snapshots_each_resume_bit_exact(golden):
    """--snapshot-every semantics: every periodic checkpoint of one run
    is a valid resume point producing the golden trace."""
    name = "re_contention_c1"
    reference = golden[name]
    machine = _fresh(name)
    blobs = []
    machine.run(max_cycles=MAX_CYCLES, snapshot_every=200,
                snapshot_callback=lambda m: blobs.append(snapshot(m)))
    assert machine.halted
    assert [json.loads(__import__("zlib").decompress(b[52:]))["machine"]["cycle"]
            for b in blobs] == [200, 400, 600]
    for blob in blobs:
        resumed = restore(blob)
        stats = resumed.run(max_cycles=MAX_CYCLES)
        _assert_matches_golden(resumed, stats, reference)


@pytest.mark.slow
def test_cli_pause_and_resume_matches_uninterrupted(tmp_path, capsys):
    from repro.cli import main as cli_main

    source = tmp_path / "contention.s"
    source.write_text(RE_CONTENTION)
    snap = str(tmp_path / "pause.lbpsnap")

    assert cli_main(["run", str(source), "--cores", "1"]) == 0
    uninterrupted = capsys.readouterr().out
    assert cli_main(["run", str(source), "--cores", "1",
                     "--stop-at-cycle", "300", "--snapshot-out", snap]) == 0
    paused = capsys.readouterr().out
    assert "paused   : cycle 300" in paused
    assert cli_main(["run", "--resume", snap]) == 0
    resumed = capsys.readouterr().out

    def stat_lines(text):
        return [line for line in text.splitlines()
                if line.startswith(("halt", "cycles", "retired", "IPC",
                                    "memory", "teams"))]

    assert stat_lines(resumed) == stat_lines(uninterrupted)
