"""The OpenMP reduction clause (paper §4: team-produced reduction values).

Lowered as: each member accumulates into a private copy initialised to
the operator's identity, leaves its partial in the region's reduction
array, and the hardware barrier (ordered p_ret commits drain stores)
makes every partial visible before the join hart combines them.
"""

import pytest

from repro.compiler import compile_c
from repro.fastsim import FastLBP
from repro.machine import Params
from repro.compiler import compile_to_program
from helpers import run_c, word


def test_sum_reduction():
    source = """
#include <det_omp.h>
int v[16] = {[0 ... 15] = 3};
int total;
void main() {
    int t;
    int sum = 100;
    #pragma omp parallel for reduction(+:sum)
    for (t = 0; t < 16; t++)
        sum += v[t] * t;
    total = sum;
}
"""
    program, machine, _ = run_c(source, cores=4)
    assert word(machine, program, "total") == 100 + sum(3 * t for t in range(16))


def test_product_reduction():
    source = """
#include <det_omp.h>
int prod;
void main() {
    int t;
    int p = 1;
    #pragma omp parallel for reduction(*:p)
    for (t = 1; t < 6; t++)
        p *= t;
    prod = p;
}
"""
    program, machine, _ = run_c(source, cores=2)
    assert word(machine, program, "prod") == 120


@pytest.mark.parametrize("op,expected", [
    ("|", 0xFF), ("^", 0xFF), ("&", 0)])
def test_bitwise_reductions(op, expected):
    source = """
#include <det_omp.h>
int out;
void main() {
    int t;
    int acc = %s;
    #pragma omp parallel for reduction(%s:acc)
    for (t = 0; t < 8; t++)
        acc = acc %s (1 << t);
    out = acc;
}
""" % ("0" if op in "|^" else "-1", op, op)
    program, machine, _ = run_c(source, cores=2)
    assert word(machine, program, "out") == expected


def test_reduction_on_global_variable():
    source = """
#include <det_omp.h>
int gsum;
void main() {
    int t;
    gsum = 5;
    #pragma omp parallel for reduction(+:gsum)
    for (t = 0; t < 12; t++)
        gsum += t;
    /* after the region, gsum holds the combined value */
}
"""
    program, machine, _ = run_c(source, cores=3)
    assert word(machine, program, "gsum") == 5 + sum(range(12))


def test_reduction_with_captures_and_start():
    source = """
#include <det_omp.h>
int out;
void main() {
    int t;
    int weight = 2;
    int sum = 0;
    #pragma omp parallel for reduction(+:sum)
    for (t = 3; t < 11; t++)
        sum += weight * t;
    out = sum;
}
"""
    program, machine, _ = run_c(source, cores=2)
    assert word(machine, program, "out") == sum(2 * t for t in range(3, 11))


def test_reduction_deterministic_and_order_independent():
    """Partials combine in member order — the result never varies."""
    source = """
#include <det_omp.h>
int out;
void main() {
    int t;
    int sum = 0;
    #pragma omp parallel for reduction(+:sum)
    for (t = 0; t < 16; t++)
        sum += t * t;
    out = sum;
}
"""
    results = set()
    cycle_counts = set()
    for _ in range(3):
        program, machine, stats = run_c(source, cores=4)
        results.add(word(machine, program, "out"))
        cycle_counts.add(stats.cycles)
    assert results == {sum(t * t for t in range(16))}
    assert len(cycle_counts) == 1


def test_reduction_on_fast_simulator():
    source = """
#include <det_omp.h>
int out;
void main() {
    int t;
    int sum = 0;
    #pragma omp parallel for reduction(+:sum)
    for (t = 0; t < 32; t++)
        sum += t;
    out = sum;
}
"""
    program = compile_to_program(source, "red.c")
    machine = FastLBP(Params(num_cores=8)).load(program)
    machine.run(max_cycles=10_000_000)
    assert machine.read_word(program.symbol("out")) == sum(range(32))


def test_two_reductions_in_sequence():
    source = """
#include <det_omp.h>
int a; int b;
void main() {
    int t;
    int s1 = 0;
    int s2 = 0;
    #pragma omp parallel for reduction(+:s1)
    for (t = 0; t < 8; t++)
        s1 += t;
    #pragma omp parallel for reduction(+:s2)
    for (t = 0; t < 8; t++)
        s2 += s1;          /* captures the first result */
    a = s1;
    b = s2;
}
"""
    program, machine, _ = run_c(source, cores=2)
    assert word(machine, program, "a") == 28
    assert word(machine, program, "b") == 28 * 8
