"""Bit-exactness of the space-sharded cycle-accurate engine.

The contract (DESIGN.md "Space-sharded cycle-accurate engine"): a run
under ``LBP(shards=N)`` produces the *identical* observable machine to
the single-process run — the same merged event order and trace digest,
the same statistics, the same final ``state_dict()``, and the same
outcome (halt / pause / error / deadlock / cycle-limit) at the same
cycle.  Snapshots taken under any shard count restore under any other.

These tests pin that contract against the golden workloads of
``test_trace_golden`` and against the error paths.
"""

import json
import os
import sys

import pytest

from repro.asm import assemble
from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.machine.processor import DeadlockError, MachineError
from repro.parsim import ShardedLBP
from repro.snapshot import restore, snapshot
from repro.snapshot.snapshot import trace_digest
from repro.workloads.setget import setget_source, verify_setget

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from test_trace_golden import GOLDEN_PATH, WORKLOADS, measure  # noqa: E402

MAX_CYCLES = 50_000_000


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_sharded_runs_match_golden_digests(name, shards, golden):
    """Acceptance bar: sharded digests equal tests/data/golden_traces.json.

    ``re_contention_c1`` has a single core, so any shard request coerces
    to one shard and takes the in-process path — included to pin that
    degenerate behaviour too.
    """
    assert measure(name, shards=shards) == golden[name]


def _setget_machine(shards=None, trace=True):
    program = compile_to_program(setget_source(16, 64), "setget.c")
    machine = LBP(Params(num_cores=4, trace_enabled=trace),
                  shards=shards).load(program)
    return machine, program


def test_pause_snapshot_resume_across_shard_counts():
    """Pause under shards=2; the snapshot resumes bit-identically under
    shards=1 (plain restore) and re-wrapped under shards=4."""
    reference, _ = _setget_machine()
    reference.run(max_cycles=MAX_CYCLES)
    want_digest = trace_digest(reference.trace.events)
    want_state = reference.state_dict()

    paused, _ = _setget_machine(shards=2)
    paused.run(max_cycles=MAX_CYCLES, stop_at_cycle=5000)
    assert not paused.halted and paused.cycle == 5000
    blob = snapshot(paused)

    # also: pausing sharded is bit-identical to pausing in-process
    seq_paused, _ = _setget_machine()
    seq_paused.run(max_cycles=MAX_CYCLES, stop_at_cycle=5000)
    assert snapshot(seq_paused) == blob

    resumed = restore(blob)  # a plain LBP: shards=1 resume
    resumed.run(max_cycles=MAX_CYCLES)
    assert trace_digest(resumed.trace.events) == want_digest
    assert resumed.state_dict() == want_state

    resharded = ShardedLBP(shards=4, master=restore(blob))
    resharded.run(max_cycles=MAX_CYCLES)
    assert trace_digest(resharded.trace.events) == want_digest
    assert resharded.state_dict() == want_state
    verify_setget(resharded, 16, 64)


def test_periodic_snapshots_identical_to_sequential():
    cycles = {}
    blobs = {}
    for shards in (None, 2):
        machine, _ = _setget_machine(shards=shards)
        taken = []
        payloads = []

        def take(m, taken=taken, payloads=payloads):
            taken.append(m.cycle)
            payloads.append(snapshot(m))

        machine.run(max_cycles=MAX_CYCLES, snapshot_every=3000,
                    snapshot_callback=take)
        cycles[shards] = taken
        blobs[shards] = payloads
    assert cycles[None] == cycles[2] and cycles[None]
    assert blobs[None] == blobs[2]


def test_cycle_limit_parity():
    messages = {}
    final_cycle = {}
    for shards in (None, 2):
        machine, _ = _setget_machine(shards=shards, trace=False)
        with pytest.raises(MachineError) as err:
            machine.run(max_cycles=4000)
        messages[shards] = str(err.value)
        final_cycle[shards] = machine.cycle
    assert messages[None] == messages[2]
    assert "cycle limit exceeded (4000)" in messages[None]
    assert final_cycle[None] == final_cycle[2]


ERROR_PROGRAM = """
main:
    li   t0, 0x100
    jr   t0
"""

DEADLOCK_PROGRAM = """
main:
    p_lwre t1, 0
    ebreak
"""


@pytest.mark.parametrize("source,exc", [
    (ERROR_PROGRAM, MachineError),
    (DEADLOCK_PROGRAM, DeadlockError),
])
def test_error_and_deadlock_parity(source, exc):
    """Errors and deadlocks surface with the sequential run's exact
    message and cycle, no matter which shard raised them."""
    outcomes = {}
    for shards in (None, 2):
        machine = LBP(Params(num_cores=4), shards=shards)
        machine.load(assemble(source))
        with pytest.raises(exc) as err:
            machine.run(max_cycles=MAX_CYCLES)
        outcomes[shards] = (str(err.value), machine.cycle)
    assert outcomes[None] == outcomes[2]


def test_shard_count_coerced_to_core_count():
    machine, _ = _setget_machine(shards=64)
    assert isinstance(machine, ShardedLBP)
    assert machine.shards == 4  # never more than one core per shard


def test_sharded_engine_refuses_mmio_devices():
    machine = LBP(Params(num_cores=4), shards=2)
    with pytest.raises(MachineError):
        machine.add_device(0x4000_0000, object())
