"""Bit-exactness of the space-sharded cycle-accurate engine.

The contract (DESIGN.md "Space-sharded cycle-accurate engine"): a run
under ``LBP(shards=N)`` produces the *identical* observable machine to
the single-process run — the same merged event order and trace digest,
the same statistics, the same final ``state_dict()``, and the same
outcome (halt / pause / error / deadlock / cycle-limit) at the same
cycle.  Snapshots taken under any shard count restore under any other.

These tests pin that contract against the golden workloads of
``test_trace_golden`` and against the error paths.
"""

import json
import os
import sys

import pytest

from repro.asm import assemble
from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.machine.processor import DeadlockError, MachineError
from repro.parsim import ShardedLBP
from repro.snapshot import restore, snapshot
from repro.snapshot.snapshot import trace_digest
from repro.workloads.setget import setget_source, verify_setget

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from test_trace_golden import GOLDEN_PATH, WORKLOADS, measure  # noqa: E402

MAX_CYCLES = 50_000_000


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_sharded_runs_match_golden_digests(name, shards, golden):
    """Acceptance bar: sharded digests equal tests/data/golden_traces.json.

    ``re_contention_c1`` has a single core, so any shard request coerces
    to one shard and takes the in-process path — included to pin that
    degenerate behaviour too.
    """
    assert measure(name, shards=shards) == golden[name]


def _setget_machine(shards=None, trace=True):
    program = compile_to_program(setget_source(16, 64), "setget.c")
    machine = LBP(Params(num_cores=4, trace_enabled=trace),
                  shards=shards).load(program)
    return machine, program


def test_pause_snapshot_resume_across_shard_counts():
    """Pause under shards=2; the snapshot resumes bit-identically under
    shards=1 (plain restore) and re-wrapped under shards=4."""
    reference, _ = _setget_machine()
    reference.run(max_cycles=MAX_CYCLES)
    want_digest = trace_digest(reference.trace.events)
    want_state = reference.state_dict()

    paused, _ = _setget_machine(shards=2)
    paused.run(max_cycles=MAX_CYCLES, stop_at_cycle=5000)
    assert not paused.halted and paused.cycle == 5000
    blob = snapshot(paused)

    # also: pausing sharded is bit-identical to pausing in-process
    seq_paused, _ = _setget_machine()
    seq_paused.run(max_cycles=MAX_CYCLES, stop_at_cycle=5000)
    assert snapshot(seq_paused) == blob

    resumed = restore(blob)  # a plain LBP: shards=1 resume
    resumed.run(max_cycles=MAX_CYCLES)
    assert trace_digest(resumed.trace.events) == want_digest
    assert resumed.state_dict() == want_state

    resharded = ShardedLBP(shards=4, master=restore(blob))
    resharded.run(max_cycles=MAX_CYCLES)
    assert trace_digest(resharded.trace.events) == want_digest
    assert resharded.state_dict() == want_state
    verify_setget(resharded, 16, 64)


def test_periodic_snapshots_identical_to_sequential():
    cycles = {}
    blobs = {}
    for shards in (None, 2):
        machine, _ = _setget_machine(shards=shards)
        taken = []
        payloads = []

        def take(m, taken=taken, payloads=payloads):
            taken.append(m.cycle)
            payloads.append(snapshot(m))

        machine.run(max_cycles=MAX_CYCLES, snapshot_every=3000,
                    snapshot_callback=take)
        cycles[shards] = taken
        blobs[shards] = payloads
    assert cycles[None] == cycles[2] and cycles[None]
    assert blobs[None] == blobs[2]


def test_cycle_limit_parity():
    messages = {}
    final_cycle = {}
    for shards in (None, 2):
        machine, _ = _setget_machine(shards=shards, trace=False)
        with pytest.raises(MachineError) as err:
            machine.run(max_cycles=4000)
        messages[shards] = str(err.value)
        final_cycle[shards] = machine.cycle
    assert messages[None] == messages[2]
    assert "cycle limit exceeded (4000)" in messages[None]
    assert final_cycle[None] == final_cycle[2]


ERROR_PROGRAM = """
main:
    li   t0, 0x100
    jr   t0
"""

DEADLOCK_PROGRAM = """
main:
    p_lwre t1, 0
    ebreak
"""


@pytest.mark.parametrize("source,exc", [
    (ERROR_PROGRAM, MachineError),
    (DEADLOCK_PROGRAM, DeadlockError),
])
def test_error_and_deadlock_parity(source, exc):
    """Errors and deadlocks surface with the sequential run's exact
    message and cycle, no matter which shard raised them."""
    outcomes = {}
    for shards in (None, 2):
        machine = LBP(Params(num_cores=4), shards=shards)
        machine.load(assemble(source))
        with pytest.raises(exc) as err:
            machine.run(max_cycles=MAX_CYCLES)
        outcomes[shards] = (str(err.value), machine.cycle)
    assert outcomes[None] == outcomes[2]


def _transports():
    """The transports this host can exercise (pipe always; shm when real)."""
    from repro.parsim import shm_available

    return ("pipe", "shm") if shm_available() else ("pipe",)


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_shm_and_pipe_transports_are_byte_identical(shards):
    """Same digest, stats and snapshot bytes under both transports.

    This is the transport half of the acceptance bar: the epoch data
    plane (pipe frames vs shared-memory rings) must be invisible to
    every observable — including events that land *exactly at* a
    published fast-forward horizon, which both transports must merge at
    the same barrier.
    """
    results = {}
    for transport in _transports():
        machine, _ = _setget_machine(shards=shards)
        if shards != 1:
            machine.transport = transport
        machine.run(max_cycles=MAX_CYCLES)
        results[transport] = (trace_digest(machine.trace.events),
                             machine.stats.state_dict(),
                             snapshot(machine))
        verify_setget(machine, 16, 64)
    reference, _ = _setget_machine()
    reference.run(max_cycles=MAX_CYCLES)
    want = (trace_digest(reference.trace.events),
            reference.stats.state_dict(), snapshot(reference))
    for transport, got in results.items():
        assert got == want, "transport %r diverged at shards=%d" % (
            transport, shards)


def test_fast_forward_engages_and_is_invisible():
    """The widened epochs actually fire and change nothing observable.

    Under the 2-cycle conservative lookahead an *active* shard always
    publishes ``cycle + EPOCH_WIDTH``, so widening only happens in
    globally quiet windows (every shard idle with only far-future
    events in flight) — rare but real; the end-of-run drain reaches it.
    The digest equality doubles as the horizon-edge proof: every event
    posted at the last cycle before a horizon merges at the widened
    barrier exactly where the sequential engine handles it.
    """
    engaged = {}
    for transport in _transports():
        machine, _ = _setget_machine(shards=2)
        machine.transport = transport
        machine.run(max_cycles=MAX_CYCLES)
        stats = machine.transport_stats
        assert stats["transport"] == transport
        assert stats["epochs"] > 0
        engaged[transport] = (stats["ff_epochs"], stats["ff_cycles"])
        assert stats["ff_epochs"] >= 1, (
            "fast-forward never engaged under %s" % transport)
        assert stats["ff_cycles"] >= stats["ff_epochs"]
    # the schedule (and therefore the widening opportunities) is
    # deterministic: both transports widen the same epochs
    assert len(set(engaged.values())) == 1, engaged


def test_stop_at_cycle_lands_exactly_despite_fast_forward():
    """A pause target inside a widened (or idle) window must not be
    overshot: the barrier clips to ``stop_at_cycle`` before widening.

    Pins the repaired latent bug where the old post-barrier idle jump
    could sail past a pause/snapshot point during a quiet window.
    """
    reference, _ = _setget_machine()
    reference.run(max_cycles=MAX_CYCLES)
    halt_cycle = reference.cycle
    for transport in _transports():
        # the machine's final cycles drain through the quiet window
        # where widening fires — stop just short of the halt
        for stop in (halt_cycle - 1, halt_cycle - 3):
            seq, _ = _setget_machine()
            seq.run(max_cycles=MAX_CYCLES, stop_at_cycle=stop)
            shd, _ = _setget_machine(shards=2)
            shd.transport = transport
            shd.run(max_cycles=MAX_CYCLES, stop_at_cycle=stop)
            assert shd.cycle == seq.cycle == stop
            assert snapshot(shd) == snapshot(seq)


def test_snapshot_cadence_unchanged_by_transport():
    """Periodic snapshot barriers land mid-run (including inside quiet
    windows) at identical cycles with identical bytes on every
    transport and shard count."""
    want = None
    for transport in _transports():
        for shards in (None, 2, 4):
            machine, _ = _setget_machine(shards=shards)
            if shards is not None:
                machine.transport = transport
            taken = []

            def take(m, taken=taken):
                taken.append((m.cycle, snapshot(m)))

            machine.run(max_cycles=MAX_CYCLES, snapshot_every=1777,
                        snapshot_callback=take)
            assert taken, "no snapshots fired"
            if want is None:
                want = taken
            else:
                assert taken == want, (transport, shards)


def test_resume_across_transports_and_shard_counts():
    """Pause under one transport, resume under the other (and a
    different shard count): still bit-identical to the sequential run."""
    transports = _transports()
    if len(transports) < 2:
        pytest.skip("host has no usable shared memory")
    reference, _ = _setget_machine()
    reference.run(max_cycles=MAX_CYCLES)
    want_digest = trace_digest(reference.trace.events)
    want_state = reference.state_dict()

    paused, _ = _setget_machine(shards=2)
    paused.transport = "pipe"
    paused.run(max_cycles=MAX_CYCLES, stop_at_cycle=5000)
    blob = snapshot(paused)

    resumed = ShardedLBP(shards=4, master=restore(blob), transport="shm")
    resumed.run(max_cycles=MAX_CYCLES)
    assert trace_digest(resumed.trace.events) == want_digest
    assert resumed.state_dict() == want_state
    assert resumed.transport_stats["transport"] == "shm"


DELAYED_ERROR_PROGRAM = """
main:
    li   t0, 200
spin:
    addi t0, t0, -1
    bne  t0, zero, spin
    li   t0, 0x100
    jr   t0
"""


@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_error_election_with_idle_unbounded_peers(transport):
    """An error raised while every other shard is idle with *unbounded*
    horizons (no heap events, no outbox) elects symmetrically at the
    sequential cycle — the ``None`` horizons must not widen past the
    erroring shard's barrier."""
    from repro.parsim import shm_available

    if transport == "shm" and not shm_available():
        pytest.skip("host has no usable shared memory")
    outcomes = {}
    for shards in (None, 2, 4):
        machine = LBP(Params(num_cores=4), shards=shards)
        if shards is not None:
            machine.transport = transport
        machine.load(assemble(DELAYED_ERROR_PROGRAM))
        with pytest.raises(MachineError) as err:
            machine.run(max_cycles=MAX_CYCLES)
        outcomes[shards] = (str(err.value), machine.cycle)
    assert outcomes[None] == outcomes[2] == outcomes[4]


def test_shard_count_coerced_to_core_count():
    machine, _ = _setget_machine(shards=64)
    assert isinstance(machine, ShardedLBP)
    assert machine.shards == 4  # never more than one core per shard


def test_sharded_engine_refuses_mmio_devices():
    machine = LBP(Params(num_cores=4), shards=2)
    with pytest.raises(MachineError):
        machine.add_device(0x4000_0000, object())
