"""Snapshot subsystem units: format, state round-trips, cache keys.

The bit-exactness of a *resumed run* is pinned by the integration suite
(tests/integration/test_snapshot_roundtrip.py against the golden
digests); this file covers the pieces in isolation — the binary
container's failure modes, component ``state_dict`` round-trips, the
canonical program image, and the content-addressed cache's key
sensitivity and byte-identical hit path.
"""

import hashlib
import json
import os

import pytest

from repro.asm import assemble
from repro.fastsim import FastLBP
from repro.machine import LBP, MachineError, Params
from repro.snapshot import (
    SIM_VERSION,
    SNAPSHOT_FORMAT_VERSION,
    RunCache,
    SnapshotError,
    SnapshotUnsupportedError,
    load_snapshot,
    program_bytes,
    program_from_state,
    program_state,
    restore,
    save_snapshot,
    snapshot,
    snapshot_info,
)

MEMORY_LOOP = """
        .equ ROUNDS, 25
main:   li   t1, ROUNDS
        la   t2, buf
loop:   sw   t1, 0(t2)
        lw   t3, 4(t2)
        add  t3, t3, t1
        sw   t3, 4(t2)
        addi t1, t1, -1
        bnez t1, loop
        ebreak
        .data
buf:    .word 0, 0
"""


def _machine(source=MEMORY_LOOP, cores=2, **knobs):
    program = assemble(source)
    return LBP(Params(num_cores=cores, **knobs)).load(program)


def _paused(stop_at_cycle=60):
    """A machine paused mid-run, with loads/stores still in flight."""
    machine = _machine()
    machine.run(max_cycles=100_000, stop_at_cycle=stop_at_cycle)
    assert not machine.halted
    return machine


# ---- binary container --------------------------------------------------------


def test_snapshot_restore_snapshot_is_byte_identical():
    machine = _paused()
    blob = snapshot(machine)
    again = snapshot(restore(blob))
    assert blob == again


def test_restored_machine_state_dict_matches():
    machine = _paused()
    restored = restore(snapshot(machine))
    assert restored is not machine
    assert restored.state_dict() == machine.state_dict()
    assert restored.params.state_dict() == machine.params.state_dict()


def test_snapshot_info_reads_header_without_machine():
    machine = _paused()
    info = snapshot_info(snapshot(machine))
    assert info["sim_version"] == SIM_VERSION
    assert info["snapshot_version"] == SNAPSHOT_FORMAT_VERSION
    assert info["cycle"] == machine.cycle
    assert info["halted"] is False
    assert info["num_cores"] == 2


def test_save_and_load_roundtrip(tmp_path):
    machine = _paused()
    path = str(tmp_path / "pause.lbpsnap")
    size = save_snapshot(machine, path)
    assert os.path.getsize(path) == size
    assert load_snapshot(path).state_dict() == machine.state_dict()


def test_truncated_blob_rejected():
    blob = snapshot(_paused())
    with pytest.raises(SnapshotError, match="truncated"):
        restore(blob[:20])
    with pytest.raises(SnapshotError, match="truncated"):
        restore(blob[:-1])


def test_bad_magic_rejected():
    blob = snapshot(_paused())
    with pytest.raises(SnapshotError, match="magic"):
        restore(b"NOTASNAP" + blob[8:])


def test_unknown_format_version_rejected():
    blob = snapshot(_paused())
    bumped = blob[:8] + bytes([0, 0, 0, 99]) + blob[12:]
    with pytest.raises(SnapshotError, match="version 99"):
        restore(bumped)


def test_corrupt_body_rejected():
    blob = bytearray(snapshot(_paused()))
    blob[-1] ^= 0xFF  # flip one bit of the compressed body
    with pytest.raises(SnapshotError, match="digest mismatch"):
        restore(bytes(blob))


def test_foreign_sim_version_rejected():
    import zlib

    blob = snapshot(_paused())
    payload = json.loads(zlib.decompress(blob[52:]).decode())
    payload["sim_version"] = "lbp-sim-0"
    body = zlib.compress(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode())
    import struct

    forged = (blob[:8] + struct.pack(">IQ", SNAPSHOT_FORMAT_VERSION, len(body))
              + hashlib.sha256(body).digest() + body)
    with pytest.raises(SnapshotError, match="lbp-sim-0"):
        restore(forged)


# ---- refusals ----------------------------------------------------------------


def test_fast_simulator_refused():
    machine = FastLBP(Params(num_cores=2)).load(assemble(MEMORY_LOOP))
    with pytest.raises(SnapshotUnsupportedError, match="fast simulator"):
        snapshot(machine)
    with pytest.raises(NotImplementedError):
        machine.state_dict()


def test_mmio_machine_refused():
    machine = _machine()

    class Device:
        def read(self):
            return 0

    machine.add_device(0x7000_0000, Device())
    with pytest.raises(SnapshotUnsupportedError, match="MMIO"):
        snapshot(machine)


def test_unloaded_machine_refused():
    with pytest.raises(SnapshotError, match="no program"):
        snapshot(LBP(Params(num_cores=1)))


# ---- program image -----------------------------------------------------------


def test_program_state_roundtrip():
    program = assemble(MEMORY_LOOP)
    rebuilt = program_from_state(program_state(program))
    assert program_bytes(rebuilt) == program_bytes(program)
    assert rebuilt.symbols == program.symbols
    addr = sorted(program.instructions)[0]
    original, copy = program.instructions[addr], rebuilt.instructions[addr]
    assert copy.mnemonic == original.mnemonic
    assert copy.spec is original.spec  # re-bound to the live spec table


def test_program_bytes_deterministic():
    assert (program_bytes(assemble(MEMORY_LOOP))
            == program_bytes(assemble(MEMORY_LOOP)))


def test_unknown_mnemonic_rejected():
    state = program_state(assemble(MEMORY_LOOP))
    state["instructions"][0][1] = "frobnicate"
    with pytest.raises(ValueError, match="frobnicate"):
        program_from_state(state)


# ---- cache keys: every component forces a miss -------------------------------


def test_key_sensitivity_per_component():
    cache = RunCache("/nonexistent-root-never-touched")
    program = assemble(MEMORY_LOOP)
    params = Params(num_cores=2)
    base = cache.key_for(program=program, params=params, inputs={"n": 8})

    # identical material -> identical key (including Program re-assembly)
    assert cache.key_for(program=assemble(MEMORY_LOOP), params=Params(
        num_cores=2), inputs={"n": 8}) == base

    # one program byte
    blob = bytearray(program_bytes(program))
    blob[-2] ^= 1
    assert cache.key_for(program=bytes(blob), params=params,
                         inputs={"n": 8}) != base
    # one params knob
    assert cache.key_for(program=program, params=Params(num_cores=4),
                         inputs={"n": 8}) != base
    assert cache.key_for(
        program=program,
        params=Params(num_cores=2, link_hop_latency=99),
        inputs={"n": 8}) != base
    # workload inputs
    assert cache.key_for(program=program, params=params,
                         inputs={"n": 9}) != base
    # simulator version tag
    assert cache.key_for(program=program, params=params, inputs={"n": 8},
                         sim_version="lbp-sim-999") != base


def test_task_key_sensitivity():
    cache = RunCache("/nonexistent-root-never-touched")

    base = cache.task_key(_machine, ("src",), {"cores": 2})
    assert cache.task_key(_machine, ("src",), {"cores": 2}) == base
    assert cache.task_key(_paused, ("src",), {"cores": 2}) != base
    assert cache.task_key(_machine, ("other",), {"cores": 2}) != base
    assert cache.task_key(_machine, ("src",), {"cores": 4}) != base
    assert cache.task_key(_machine, ("src",), {"cores": 2},
                          sim_version="lbp-sim-999") != base


# ---- cache store -------------------------------------------------------------


def test_put_get_byte_identical(tmp_path):
    cache = RunCache(str(tmp_path))
    value = {"cycles": 123, "rows": [{"v": "base", "ipc": 0.5}]}
    key = cache.key_for(inputs="unit")
    stored = cache.put(key, value)
    assert stored == value
    first = json.dumps(cache.get(key), sort_keys=True)
    second = json.dumps(cache.get(key), sort_keys=True)
    assert first == second == json.dumps({"key": key, "value": value},
                                         sort_keys=True)
    assert cache.hits == 2 and cache.misses == 0


def test_non_json_value_refused(tmp_path):
    cache = RunCache(str(tmp_path))
    key = cache.key_for(inputs="unit")
    assert cache.put(key, object()) is None
    assert cache.put(key, (1, 2)) is None  # tuples don't survive the round-trip
    assert cache.get(key) is None  # nothing was stored
    assert cache.misses == 1


def test_entries_stats_clear(tmp_path):
    cache = RunCache(str(tmp_path))
    for n in range(3):
        cache.put(cache.key_for(inputs=n), {"n": n},
                  snapshot_bytes=b"x" * 10 if n == 0 else None)
    rows = cache.entries()
    assert len(rows) == 3
    assert sum(1 for _, _, snap, _ in rows if snap == 10) == 1
    stats = cache.stats()
    assert stats["entries"] == 3 and stats["snapshot_bytes"] == 10
    assert cache.clear() == 3
    assert cache.entries() == [] and cache.stats()["entries"] == 0


def test_run_program_miss_then_hit_with_resumable_snapshot(tmp_path):
    cache = RunCache(str(tmp_path))
    program = assemble(MEMORY_LOOP)
    params = Params(num_cores=2)

    cold, hit = cache.run_program(program, params, inputs="unit")
    assert not hit and cold["cycles"] > 0
    warm, hit = cache.run_program(program, params, inputs="unit")
    assert hit
    assert json.dumps(warm, sort_keys=True) == json.dumps(cold, sort_keys=True)

    key = cache.key_for(program=program, params=params, inputs="unit")
    snap = cache.snapshot_path(key)
    assert snap is not None
    finished = load_snapshot(snap)
    # machine.cycle is the last simulated cycle index; stats.cycles counts
    assert finished.halted and finished.cycle + 1 == cold["cycles"]


def test_cache_root_from_environment(monkeypatch, tmp_path):
    from repro.snapshot import default_cache_root

    monkeypatch.setenv("LBP_CACHE_DIR", str(tmp_path / "env-root"))
    assert default_cache_root() == str(tmp_path / "env-root")
    assert RunCache().root == str(tmp_path / "env-root")
    monkeypatch.delenv("LBP_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_root() == str(tmp_path / "xdg" / "lbp-repro")


# ---- sanitizer state ---------------------------------------------------------

RACY_CORPUS = os.path.join(
    os.path.dirname(__file__), "..", "data", "races", "ww_conflict.s")


def _sanitized_racy(stop_at_cycle=None):
    with open(RACY_CORPUS) as f:
        program = assemble(f.read())
    machine = LBP(Params(num_cores=1), sanitize=True).load(program)
    machine.run(max_cycles=100_000, stop_at_cycle=stop_at_cycle)
    return machine


def test_sanitizer_report_survives_snapshot_roundtrip():
    """Pause a sanitized run mid-flight, restore, finish: the resumed
    run must produce byte-for-byte the report of the unbroken run."""
    unbroken = _sanitized_racy()
    assert unbroken.halted
    reference = unbroken.race_report().to_json()
    assert json.loads(reference)["clean"] is False  # a real race survives

    paused = _sanitized_racy(stop_at_cycle=25)
    assert not paused.halted
    resumed = restore(snapshot(paused))
    assert resumed.sanitizer is not None
    assert resumed.sanitizer is not paused.sanitizer
    resumed.run(max_cycles=100_000)
    paused.run(max_cycles=100_000)  # the original finishes too
    assert resumed.race_report().to_json() == reference
    assert paused.race_report().to_json() == reference


def test_sanitizer_observations_in_state_dict():
    machine = _sanitized_racy(stop_at_cycle=25)
    state = machine.state_dict()
    assert state["sanitize"] is not None
    copy = LBP(Params(num_cores=1), sanitize=True).load(machine.program)
    copy.load_state_dict(state)
    assert list(copy.sanitizer.observations()) == list(
        machine.sanitizer.observations())


def test_unsanitized_snapshot_restores_without_sanitizer():
    machine = _paused()
    assert machine.state_dict()["sanitize"] is None
    restored = restore(snapshot(machine))
    assert restored.sanitizer is None
    with pytest.raises(MachineError, match="sanitize"):
        restored.race_report()


# ---- component state dicts ---------------------------------------------------


def test_params_state_roundtrip():
    params = Params(num_cores=4, link_hop_latency=7)
    rebuilt = Params.from_state_dict(params.state_dict())
    assert rebuilt.state_dict() == params.state_dict()


def test_state_dict_is_json_clean():
    """Everything inside machine.state_dict() must serialize via the
    snapshot's JSON codec — no live objects may leak in."""
    from repro.snapshot.snapshot import _jsonable

    machine = _paused()
    json.dumps(_jsonable(machine.state_dict()))  # must not raise


def test_restore_builds_fresh_objects():
    machine = _paused()
    restored = restore(snapshot(machine))
    assert restored.cores[0] is not machine.cores[0]
    assert (restored.cores[0].mem.local.data
            is not machine.cores[0].mem.local.data)
    # shared program identity is rebuilt, not aliased
    assert restored.program is not machine.program
