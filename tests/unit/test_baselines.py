"""Baseline models: classic SMP scheduler and the Xeon-Phi analytic model."""

import pytest

from repro.baselines import ClassicSMP, XeonPhiModel


def test_classic_smp_same_seed_identical():
    tasks = [10_000] * 8
    first = ClassicSMP(num_cores=4, seed=7).run_tasks(tasks)
    second = ClassicSMP(num_cores=4, seed=7).run_tasks(tasks)
    assert first.cycles == second.cycles
    assert first.trace == second.trace


def test_classic_smp_different_seeds_differ():
    tasks = [50_000] * 8
    cycles = {
        ClassicSMP(num_cores=4, seed=seed).run_tasks(tasks).cycles
        for seed in range(6)
    }
    assert len(cycles) > 1


def test_classic_smp_counts_interrupts_and_migrations():
    tasks = [100_000] * 8
    stats = ClassicSMP(num_cores=4, seed=3).run_tasks(tasks)
    assert stats.interrupts > 0
    # every task completed
    assert all(task.end is not None for task in stats.tasks)
    assert stats.cycles >= max(task.end for task in stats.tasks) - 1


def test_classic_smp_run_many_spread():
    tasks = [40_000] * 8
    lowest, average, highest = ClassicSMP(num_cores=4, seed=0).run_many(tasks, 10)
    assert lowest <= average <= highest
    assert highest > lowest


def test_classic_smp_more_cores_faster():
    tasks = [80_000] * 16
    slow = ClassicSMP(num_cores=2, seed=1).run_tasks(tasks).cycles
    fast = ClassicSMP(num_cores=8, seed=1).run_tasks(tasks).cycles
    assert fast < slow


def test_xeon_phi_model_shape():
    result = XeonPhiModel().tiled_matmul(256)
    # sanity against the paper's measured point for h=256
    assert 20_000_000 < result["retired"] < 45_000_000
    assert 250_000 < result["cycles"] < 550_000
    assert result["peak_fraction"] < 0.35
    assert result["ipc"] > 60  # machine-wide


def test_xeon_phi_scales_with_problem_size():
    small = XeonPhiModel().tiled_matmul(64)
    large = XeonPhiModel().tiled_matmul(256)
    assert large["retired"] / small["retired"] == pytest.approx(64.0, rel=1e-3)
    assert large["cycles"] > small["cycles"]


def test_xeon_phi_parameter_sweep():
    better_vec = XeonPhiModel(vector_factor=8.0).tiled_matmul(256)
    default = XeonPhiModel().tiled_matmul(256)
    assert better_vec["retired"] < default["retired"]
