"""Parallel experiment runner: deterministic fan-out and merge.

The contract under test: ``run_experiments`` merges results in *task
order* (never completion order), so a parallel run is byte-identical to
the sequential path — the acceptance bar for using it in the
determinism and ablation benchmarks.
"""

import pickle

import pytest

from repro.eval.runner import default_jobs, run_experiments


def _square(x):
    return x * x


def _row(version, scale):
    # shaped like an eval result row; nested structure exercises pickling
    return {"version": version, "scale": scale,
            "cycles": 1000 * scale + len(version),
            "trace": [(0, version), (1, version)]}


def _simulate_small():
    from repro.asm import assemble
    from repro.machine import LBP, Params

    program = assemble("""
main:
    li   t1, 20
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
""")
    machine = LBP(Params(num_cores=2)).load(program)
    stats = machine.run(max_cycles=100_000)
    return stats.cycles, stats.retired, stats.skipped_core_cycles


TASKS = (
    [("sq/%d" % n, _square, (n,)) for n in range(6)]
    + [("row/%s" % v, _row, (v,), {"scale": 2}) for v in ("base", "tiled")]
    + [("sim", _simulate_small)]
)


def test_sequential_and_parallel_merge_byte_identical():
    sequential = run_experiments(TASKS, jobs=1)
    parallel = run_experiments(TASKS, jobs=2)
    # the *rows* are byte-identical; meta records the differing job counts
    assert pickle.dumps(dict(sequential)) == pickle.dumps(dict(parallel))
    assert sequential == parallel  # meta does not participate in equality
    assert (sequential.meta["jobs"], parallel.meta["jobs"]) == (1, 2)
    # insertion order is the task order, not completion order
    assert list(parallel) == [key for key, *_ in TASKS]


def test_results_are_correct():
    results = run_experiments(TASKS, jobs=2)
    assert results["sq/5"] == 25
    assert results["row/base"]["cycles"] == 2004
    cycles, retired, skipped = results["sim"]
    assert cycles > 0 and retired > 0 and skipped > 0


def test_duplicate_keys_rejected():
    with pytest.raises(ValueError):
        run_experiments([("k", _square, (1,)), ("k", _square, (2,))])


def test_empty_task_list():
    assert run_experiments([], jobs=4) == {}


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("LBP_JOBS", "3")
    assert default_jobs() == 3


def test_default_jobs_ignores_bad_override(monkeypatch):
    import os

    for bad in ("", "zero", "0", "-2"):
        monkeypatch.setenv("LBP_JOBS", bad)
        assert default_jobs() >= 1
    monkeypatch.delenv("LBP_JOBS")
    if hasattr(os, "sched_getaffinity"):
        # affinity is the authority, not the raw CPU count: a process
        # restricted to a subset of the host's CPUs must not oversubscribe
        assert default_jobs() == max(1, len(os.sched_getaffinity(0)))


def test_default_jobs_respects_affinity(monkeypatch):
    import os

    monkeypatch.delenv("LBP_JOBS", raising=False)
    if not hasattr(os, "sched_getaffinity"):
        pytest.skip("platform has no sched_getaffinity")
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 2, 5})
    assert default_jobs() == 3


def test_meta_jobs_recorded_with_cache(tmp_path):
    from repro.snapshot import RunCache

    cache = RunCache(str(tmp_path / "cache"))
    tasks = [("sq/%d" % n, _square, (n,)) for n in range(3)]
    cold = run_experiments(tasks, jobs=2, cache=cache)
    warm = run_experiments(tasks, jobs=2, cache=cache)
    # warm- and cold-cache runs record the same provenance
    assert cold.meta == warm.meta == {"jobs": 2}


def test_meta_survives_pickle():
    results = run_experiments([("sq/2", _square, (2,))], jobs=1)
    clone = pickle.loads(pickle.dumps(results))
    assert clone == results and clone.meta == results.meta


def test_no_fork_platform_degrades_to_identical_sequential(monkeypatch):
    """Platforms without fork: silent sequential degrade, same bytes.

    ``multiprocessing.get_context("fork")`` raises ValueError on
    platforms that do not offer the start method; the runner must fall
    back to the in-process loop and return byte-identical results.
    """
    from repro.eval import runner

    reference = run_experiments(TASKS, jobs=4)

    calls = []

    def no_fork(method=None):
        calls.append(method)
        raise ValueError("cannot find context for %r" % (method,))

    monkeypatch.setattr(runner.multiprocessing, "get_context", no_fork)
    degraded = run_experiments(TASKS, jobs=4)
    assert calls == ["fork"]  # the parallel path was attempted
    assert list(degraded) == list(reference)  # same merge order
    for key in reference:  # same bytes, result by result
        assert pickle.dumps(degraded[key]) == pickle.dumps(reference[key])


def test_no_fork_degrade_with_cache(tmp_path, monkeypatch):
    """The sequential-degrade path fills and serves the run cache too."""
    from repro.eval import runner
    from repro.snapshot import RunCache

    def no_fork(method=None):
        raise ValueError("no fork here")

    monkeypatch.setattr(runner.multiprocessing, "get_context", no_fork)
    cache = RunCache(str(tmp_path / "cache"))
    tasks = [("sq/%d" % n, _square, (n,)) for n in range(6)]
    cold = run_experiments(tasks, jobs=4, cache=cache)
    assert cache.hits == 0 and cache.misses == len(tasks)
    warm = run_experiments(tasks, jobs=4, cache=cache)
    assert cache.hits == len(tasks)
    assert pickle.dumps(cold) == pickle.dumps(warm)


# ---- per-task deadlines and bounded retry (PR 7) ----------------------------


def _sleep_forever():
    import time

    time.sleep(60)


def _flaky_crash(marker):
    """Crash once (creating *marker*), succeed on the retry."""
    import os

    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("seen")
        raise RuntimeError("transient-looking crash")
    return "recovered"


def _flaky_hang(marker):
    """Hang past any deadline once, return promptly on the retry."""
    import os
    import time

    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("seen")
        time.sleep(60)
    return "recovered"


def _fork_available():
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
        return True
    except ValueError:
        return False


pytestmark_deadline = pytest.mark.skipif(
    not _fork_available(), reason="deadlines need the fork start method")


@pytestmark_deadline
def test_timeout_kills_and_raises_after_retry_budget():
    from repro.eval.runner import TaskTimeoutError

    with pytest.raises(TaskTimeoutError) as excinfo:
        run_experiments([("hang", _sleep_forever)], jobs=1,
                        timeout=0.3, retries=0)
    assert excinfo.value.key == "hang"
    assert excinfo.value.attempts == 1


@pytestmark_deadline
def test_timeout_retry_recovers_and_is_recorded(tmp_path):
    marker = str(tmp_path / "hang-once")
    results = run_experiments([("job", _flaky_hang, (marker,))], jobs=1,
                              timeout=2.0, retries=1)
    assert results["job"] == "recovered"
    assert results.meta["timeouts"] == 1
    assert results.meta["retries"] == 1


@pytestmark_deadline
def test_crash_retry_recovers_under_deadline_path(tmp_path):
    marker = str(tmp_path / "crash-once")
    results = run_experiments([("job", _flaky_crash, (marker,))], jobs=1,
                              timeout=30.0, retries=1)
    assert results["job"] == "recovered"
    assert results.meta["timeouts"] == 0  # a crash is not a timeout
    assert results.meta["retries"] == 1


@pytestmark_deadline
def test_persistent_crash_raises_task_failed():
    from repro.eval.runner import TaskFailedError

    def boom():
        raise ValueError("always")

    with pytest.raises(TaskFailedError) as excinfo:
        run_experiments([("boom", boom)], jobs=1, timeout=30.0, retries=2)
    assert excinfo.value.attempts == 3  # 1 + 2 retries, all spent
    assert "always" in excinfo.value.detail


@pytestmark_deadline
def test_deadline_path_results_identical_to_plain_path():
    unbounded = run_experiments(TASKS, jobs=2)
    bounded = run_experiments(TASKS, jobs=2, timeout=120.0)
    assert list(bounded) == list(unbounded)  # same deterministic order
    for key in unbounded:  # same bytes, result by result
        assert pickle.dumps(bounded[key]) == pickle.dumps(unbounded[key])
    assert bounded.meta["timeouts"] == 0
    assert bounded.meta["retries"] == 0
