"""Binary encode/decode of RV32IM and X_PAR instructions."""

import pytest

from repro.isa import (
    INSTR_SPECS,
    Instruction,
    decode_word,
    encode_instruction,
    spec_for,
)
from repro.isa.encoding import EncodingError, sign_extend


def _sample_for(spec):
    """One representative instruction per operand shape."""
    shape = spec.operands
    ins = Instruction(spec.mnemonic, spec=spec)
    if "rd" in shape:
        ins.rd = 11
    if "rs1" in shape:
        ins.rs1 = 12
    if "rs2" in shape:
        ins.rs2 = 13
    if "imm" in shape or "label" in shape:
        if spec.mnemonic in ("slli", "srli", "srai"):
            ins.imm = 7
        elif spec.fmt == "U":
            ins.imm = 0x12345
        elif spec.fmt in ("B", "J"):
            ins.imm = -8
        else:
            ins.imm = -5
    return ins


@pytest.mark.parametrize("mnemonic", sorted(INSTR_SPECS))
def test_round_trip_every_mnemonic(mnemonic):
    spec = INSTR_SPECS[mnemonic]
    ins = _sample_for(spec)
    word = encode_instruction(ins)
    assert 0 <= word < (1 << 32)
    decoded = decode_word(word)
    assert decoded == ins, (decoded, ins)


def test_sign_extend():
    assert sign_extend(0xFFF, 12) == -1
    assert sign_extend(0x7FF, 12) == 2047
    assert sign_extend(0x800, 12) == -2048
    assert sign_extend(5, 12) == 5


def test_branch_offset_ranges():
    spec = spec_for("beq")
    ok = Instruction("beq", rs1=1, rs2=2, imm=4094, spec=spec)
    assert decode_word(encode_instruction(ok)).imm == 4094
    too_far = Instruction("beq", rs1=1, rs2=2, imm=4096, spec=spec)
    with pytest.raises(EncodingError):
        encode_instruction(too_far)
    odd = Instruction("beq", rs1=1, rs2=2, imm=3, spec=spec)
    with pytest.raises(EncodingError):
        encode_instruction(odd)


def test_jal_offset_range():
    spec = spec_for("jal")
    ok = Instruction("jal", rd=1, imm=-(1 << 20), spec=spec)
    assert decode_word(encode_instruction(ok)).imm == -(1 << 20)
    with pytest.raises(EncodingError):
        encode_instruction(Instruction("jal", rd=1, imm=1 << 20, spec=spec))


def test_immediate_out_of_range():
    spec = spec_for("addi")
    with pytest.raises(EncodingError):
        encode_instruction(Instruction("addi", rd=1, rs1=1, imm=5000, spec=spec))


def test_unknown_word_raises():
    with pytest.raises(EncodingError):
        decode_word(0xFFFFFFFF)


def test_ecall_ebreak_distinct():
    ecall = encode_instruction(Instruction("ecall", spec=spec_for("ecall")))
    ebreak = encode_instruction(Instruction("ebreak", spec=spec_for("ebreak")))
    assert ecall != ebreak
    assert decode_word(ecall).mnemonic == "ecall"
    assert decode_word(ebreak).mnemonic == "ebreak"


def test_xpar_instructions_use_custom_opcodes():
    for mnemonic in ("p_fc", "p_fn", "p_swcv", "p_lwcv", "p_swre", "p_lwre",
                     "p_jal", "p_jalr", "p_set", "p_merge", "p_syncm"):
        spec = INSTR_SPECS[mnemonic]
        assert spec.opcode in (0b0001011, 0b0101011), mnemonic


def test_no_encoding_collisions_across_all_specs():
    words = {}
    for spec in INSTR_SPECS.values():
        ins = _sample_for(spec)
        word = encode_instruction(ins)
        assert word not in words, (spec.mnemonic, words.get(word))
        words[word] = spec.mnemonic


def test_decode_preserves_address():
    word = encode_instruction(Instruction("addi", rd=1, rs1=2, imm=3,
                                          spec=spec_for("addi")))
    assert decode_word(word, addr=0x40).addr == 0x40


def test_shift_decode_shamt():
    spec = spec_for("srai")
    word = encode_instruction(Instruction("srai", rd=3, rs1=4, imm=31, spec=spec))
    decoded = decode_word(word)
    assert decoded.mnemonic == "srai"
    assert decoded.imm == 31
