"""Fast-simulator internals: windowed ports, loading, error paths."""

import pytest

from repro.asm import assemble
from repro.fastsim import FastLBP
from repro.fastsim.sim import FastSimError, WindowedPort
from repro.machine import Params


def test_windowed_port_backfill():
    port = WindowedPort(window=4)
    # an early-scheduled hart books slots far in the future...
    for _ in range(3):
        port.reserve(100)
    # ...a laggard can still use untouched earlier windows
    assert port.reserve(0) == 0


def test_windowed_port_capacity():
    port = WindowedPort(window=4)
    slots = [port.reserve(0) for _ in range(10)]
    # first window holds 4, then spills to the next windows
    assert slots[:4] == [0, 0, 0, 0]
    assert slots[4] >= 4
    assert max(slots) >= 8


def test_windowed_port_no_penalty_when_idle():
    port = WindowedPort(window=16)
    assert port.reserve(1000) == 1000


def test_windowed_port_window_rollover():
    port = WindowedPort(window=4)
    # fill window 0 (cycles 0..3) to its capacity of 4
    assert [port.reserve(0) for _ in range(4)] == [0, 0, 0, 0]
    # a request *inside* the full window rolls over to window 1 and is
    # pushed to that window's start, never earlier
    assert port.reserve(2) == 4
    # a request already in window 1 keeps its own (later) earliest time
    assert port.reserve(6) == 6


def test_windowed_port_over_capacity_spill_chain():
    port = WindowedPort(window=4)
    slots = [port.reserve(0) for _ in range(10)]
    # exact spill pattern: 4 in window 0, 4 in window 1, the rest in 2
    assert slots == [0, 0, 0, 0, 4, 4, 4, 4, 8, 8]
    # bookkeeping matches: windows 0 and 1 full, window 2 holds two
    assert port.used == {0: 4, 1: 4, 2: 2}


def test_windowed_port_earliest_far_past_cursor():
    port = WindowedPort(window=4)
    # dense early traffic must not delay a request far in the future...
    for _ in range(12):
        port.reserve(0)
    assert port.reserve(1000) == 1000
    # ...and the far window has its own independent capacity
    for _ in range(3):
        port.reserve(1000)
    assert port.reserve(1000) == 1004  # window 250 full -> start of 251
    # a laggard can still come back and use the untouched window 3
    assert port.reserve(12) == 12


def _simple(source, cores=1):
    program = assemble(source)
    machine = FastLBP(Params(num_cores=cores)).load(program)
    stats = machine.run(max_cycles=100_000)
    return program, machine, stats


def test_basic_execution_and_memory():
    program, machine, stats = _simple("""
main:
    li t1, 6
    li t2, 7
    mul t3, t1, t2
    la t4, out
    sw t3, 0(t4)
    lw t5, 0(t4)
    ebreak
.data
out: .word 0
""")
    assert machine.read_word(program.symbol("out")) == 42
    assert stats.retired == 8  # li + li + mul + la(lui,addi) + sw + lw + ebreak


def test_retired_counts_match_instruction_stream():
    program, machine, stats = _simple("""
main:
    li t1, 10
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
""")
    assert stats.retired == 1 + 10 * 2 + 1


def test_bad_fetch_raises():
    program = assemble("main: li t1, 0x4000\n jr t1")
    machine = FastLBP(Params(num_cores=1)).load(program)
    with pytest.raises(FastSimError, match="non-code"):
        machine.run(max_cycles=10_000)


def test_unmapped_global_raises():
    program = assemble("main: li t1, 0x88000000\n lw t2, 0(t1)\n ebreak")
    machine = FastLBP(Params(num_cores=1)).load(program)
    with pytest.raises(FastSimError, match="unmapped"):
        machine.run(max_cycles=10_000)


def test_deadlock_detection():
    program = assemble("main: p_lwre t1, 0\n ebreak")
    machine = FastLBP(Params(num_cores=1)).load(program)
    with pytest.raises(FastSimError, match="deadlock"):
        machine.run(max_cycles=10_000)


def test_data_bank_overflow_rejected():
    program = assemble(".data\n.bank 5\nx: .word 1\n.text\nmain: ebreak")
    with pytest.raises(FastSimError, match="bank 5"):
        FastLBP(Params(num_cores=2)).load(program)


def test_local_memory_is_core_private():
    """The same local address names a different bank on every core."""
    machine = FastLBP(Params(num_cores=2))
    from repro import memmap

    machine.local_mem[0][0:4] = (111).to_bytes(4, "little")
    machine.local_mem[1][0:4] = (222).to_bytes(4, "little")
    assert machine.read_local(0, memmap.LOCAL_BASE) == 111
    assert machine.read_local(1, memmap.LOCAL_BASE) == 222
