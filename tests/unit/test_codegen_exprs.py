"""End-to-end expression semantics: compile DetC, run on LBP, check values."""

import pytest

from helpers import run_c, word, uword


def _eval(expression, setup="", globals_decl=""):
    source = """
%s
int out;
void main() { %s out = %s; }
""" % (globals_decl, setup, expression)
    program, machine, _stats = run_c(source)
    return word(machine, program, "out")


@pytest.mark.parametrize("expr,expected", [
    ("1 + 2 * 3", 7),
    ("(1 + 2) * 3", 9),
    ("10 - 4 - 3", 3),
    ("7 / 2", 3),
    ("-7 / 2", -3),
    ("7 % 3", 1),
    ("-7 % 3", -1),
    ("1 << 10", 1024),
    ("-8 >> 1", -4),
    ("0xF0 & 0x3C", 0x30),
    ("0xF0 | 0x0C", 0xFC),
    ("0xF0 ^ 0xFF", 0x0F),
    ("~0", -1),
    ("!5", 0),
    ("!0", 1),
    ("-(3)", -3),
    ("3 < 4", 1),
    ("4 < 3", 0),
    ("4 <= 4", 1),
    ("5 > 2", 1),
    ("5 >= 6", 0),
    ("3 == 3", 1),
    ("3 != 3", 0),
    ("1 && 0", 0),
    ("1 && 2", 1),
    ("0 || 0", 0),
    ("0 || 7", 1),
    ("1 ? 10 : 20", 10),
    ("0 ? 10 : 20", 20),
    ("sizeof(int)", 4),
    ("sizeof(char)", 1),
    ("sizeof(int*)", 4),
])
def test_constant_expressions(expr, expected):
    assert _eval(expr) == expected


def test_variable_arithmetic():
    assert _eval("a * b + c", setup="int a = 6; int b = 7; int c = -2;") == 40


def test_unsigned_semantics():
    source = """
unsigned u;
int s;
void main() {
    unsigned a = 0xFFFFFFFFU;
    u = a / 2;
    s = (a > 1);           /* unsigned compare: huge > 1 */
}
"""
    program, machine, _ = run_c(source)
    assert uword(machine, program, "u") == 0x7FFFFFFF
    assert word(machine, program, "s") == 1


def test_signed_vs_unsigned_shift():
    source = """
int a; unsigned b;
void main() {
    int x = -16;
    unsigned y = 0x80000000U;
    a = x >> 2;
    b = y >> 4;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "a") == -4
    assert uword(machine, program, "b") == 0x08000000


def test_assignment_operators():
    source = """
int r[10];
void main() {
    int x = 10;
    x += 5;  r[0] = x;
    x -= 3;  r[1] = x;
    x *= 2;  r[2] = x;
    x /= 4;  r[3] = x;
    x %= 4;  r[4] = x;
    x <<= 3; r[5] = x;
    x >>= 1; r[6] = x;
    x |= 1;  r[7] = x;
    x &= 6;  r[8] = x;
    x ^= 7;  r[9] = x;
}
"""
    program, machine, _ = run_c(source)
    expected = [15, 12, 24, 6, 2, 16, 8, 9, 0, 7]
    assert [word(machine, program, "r", i) for i in range(10)] == expected


def test_increment_decrement():
    source = """
int r[6];
void main() {
    int x = 5;
    r[0] = x++;
    r[1] = x;
    r[2] = ++x;
    r[3] = x--;
    r[4] = --x;
    r[5] = x;
}
"""
    program, machine, _ = run_c(source)
    assert [word(machine, program, "r", i) for i in range(6)] == [5, 6, 7, 7, 5, 5]


def test_pointer_increment_scales():
    source = """
int v[4] = {10, 20, 30, 40};
int a; int b;
void main() {
    int *p = v;
    p++;
    a = *p;
    p += 2;
    b = *p;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "a") == 20
    assert word(machine, program, "b") == 40


def test_pointer_difference():
    source = """
int v[8];
int d;
void main() {
    int *p = v + 7;
    int *q = v + 2;
    d = p - q;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "d") == 5


def test_short_circuit_no_side_effect():
    source = """
int touched; int r;
void main() {
    touched = 0;
    r = 0 && (touched = 1);
    r = 1 || (touched = 1);
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "touched") == 0


def test_comma_operator():
    assert _eval("(1, 2, 3)") == 3


def test_char_truncation_and_extension():
    source = """
int a; int b;
void main() {
    char c = (char)0x1FF;   /* truncates to -1 */
    a = c;
    unsigned char u = (char)0xFF;
    b = u;                   /* hmm: (char) then to unsigned char */
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "a") == -1


def test_deep_expression_spills_gracefully():
    # deep enough to exercise temp reuse, not deep enough to exhaust
    expr = "((((1+2)*(3+4))+((5+6)*(7+8)))+(((9+10)*(11+12))+((13+14)*(15+16))))"
    expected = (((1+2)*(3+4))+((5+6)*(7+8)))+(((9+10)*(11+12))+((13+14)*(15+16)))
    assert _eval(expr) == expected


def test_division_by_zero_riscv_semantics():
    source = """
int q; int r;
void main() {
    int z = 0;
    q = 5 / z;
    r = 5 % z;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "q") == -1  # RISC-V: div by zero = all ones
    assert word(machine, program, "r") == 5
