"""Per-instruction behaviour on the cycle-accurate pipeline.

Covers widths and sign extension through real memory, the WAW rename
hazard, the load-after-store ordering rule, result-buffer serialisation,
ROB backpressure, and control transfers.
"""

import pytest

from repro.asm import assemble
from repro.machine import LBP, Params


def _run(source, cores=1, max_cycles=100_000):
    program = assemble(source)
    machine = LBP(Params(num_cores=cores)).load(program)
    stats = machine.run(max_cycles=max_cycles)
    return program, machine, stats


def _reg(machine, name):
    from repro.isa.registers import reg_num

    return machine.cores[0].harts[0].regs[reg_num(name)]


def test_byte_and_half_memory_widths():
    program, machine, _ = _run("""
main:
    la t1, buf
    li t2, 0x1FF
    sb t2, 0(t1)       # stores 0xFF
    li t3, 0x18000
    sh t3, 2(t1)       # stores 0x8000
    lb a0, 0(t1)       # -1
    lbu a1, 0(t1)      # 255
    lh a2, 2(t1)       # -32768
    lhu a3, 2(t1)      # 32768
    ebreak
.data
buf: .word 0
""")
    assert _reg(machine, "a0") == 0xFFFFFFFF
    assert _reg(machine, "a1") == 0xFF
    assert _reg(machine, "a2") == 0xFFFF8000
    assert _reg(machine, "a3") == 0x8000


def test_waw_hazard_final_value():
    """An older slow producer must not clobber a newer fast one."""
    program, machine, _ = _run("""
main:
    li t1, 100
    li t2, 3
    div t3, t1, t2     # slow write to t3 (12 cycles)
    li t3, 7           # newer fast write to t3
    mv a0, t3          # must read 7
    ebreak
""")
    assert _reg(machine, "a0") == 7


def test_dependent_chain_through_rename():
    program, machine, _ = _run("""
main:
    li t1, 1
    add t1, t1, t1
    add t1, t1, t1
    add t1, t1, t1
    add t1, t1, t1
    mv a0, t1
    ebreak
""")
    assert _reg(machine, "a0") == 16


def test_store_to_load_same_address_ordered():
    """A load never bypasses an older store to the same location."""
    program, machine, _ = _run("""
main:
    la t1, buf
    li t2, 42
    sw t2, 0(t1)
    lw a0, 0(t1)       # must see 42 (issues after the store)
    li t3, 77
    sw t3, 0(t1)
    lw a1, 0(t1)       # must see 77
    ebreak
.data
buf: .word 5
""")
    assert _reg(machine, "a0") == 42
    assert _reg(machine, "a1") == 77


def test_long_dependency_on_memory_round_trips():
    program, machine, _ = _run("""
main:
    la t1, buf
    li t2, 0
    li t3, 20
loop:
    lw t4, 0(t1)
    addi t4, t4, 3
    sw t4, 0(t1)
    addi t3, t3, -1
    bnez t3, loop
    lw a0, 0(t1)
    ebreak
.data
buf: .word 0
""")
    assert _reg(machine, "a0") == 60


def test_rob_backpressure_does_not_deadlock():
    """More in-flight slow ops than ROB entries still drains correctly."""
    body = "\n".join("    div t2, t1, t3" for _ in range(20))
    program, machine, stats = _run("""
main:
    li t1, 1000000
    li t3, 2
%s
    mv a0, t2
    ebreak
""" % body)
    assert _reg(machine, "a0") == 500000
    # li 1000000 expands to lui+addi; li 2, 20 divs, mv, ebreak
    assert stats.retired == 2 + 1 + 20 + 1 + 1


def test_jalr_clears_low_bit():
    program, machine, _ = _run("""
main:
    la t1, target
    addi t1, t1, 1     # misaligned on purpose
    jalr t2, t1, 0     # hardware clears bit 0
dead:
    li a0, 111
    ebreak
target:
    li a0, 222
    ebreak
""")
    assert _reg(machine, "a0") == 222
    assert _reg(machine, "t2") != 0  # link written


def test_auipc_pc_relative():
    program, machine, _ = _run("""
main:
    auipc a0, 0        # a0 = address of this instruction
    ebreak
""")
    assert _reg(machine, "a0") == program.symbol("main")


def test_branch_both_directions():
    program, machine, _ = _run("""
main:
    li t1, 5
    li t2, -1
    blt t2, t1, fwd    # taken (signed)
    li a0, 1
    ebreak
fwd:
    bltu t2, t1, not_taken   # not taken: 0xffffffff > 5 unsigned
    li a0, 2
    ebreak
not_taken:
    li a0, 3
    ebreak
""")
    assert _reg(machine, "a0") == 2


def test_x0_is_hardwired_zero():
    program, machine, _ = _run("""
main:
    li t1, 99
    add zero, t1, t1   # write to x0 is discarded
    mv a0, zero
    ebreak
""")
    assert _reg(machine, "a0") == 0


def test_writes_to_code_space_rejected():
    program = assemble("""
main:
    li t1, 0
    sw t1, 0(t1)       # store into the code image
    ebreak
""")
    machine = LBP(Params(num_cores=1)).load(program)
    # the code window is read-only in our model: write lands in the code
    # bank object which raises on mutation attempts outside data... the
    # model stores it (Harvard-ish code bank is writable storage), so the
    # run completes; the contract tested here is merely "no crash, no
    # corruption of the running instruction stream" (pre-decoded).
    stats = machine.run(max_cycles=10_000)
    assert stats.retired >= 3


def test_fence_is_a_nop():
    program, machine, stats = _run("""
main:
    fence
    li a0, 4
    ebreak
""")
    assert _reg(machine, "a0") == 4


def test_stats_memory_counters():
    program, machine, stats = _run("""
main:
    la t1, buf
    lw t2, 0(t1)
    sw t2, 4(t1)
    ebreak
.data
buf: .word 1, 2
""")
    hart = machine.stats.harts[0][0]
    assert hart.loads == 1
    assert hart.stores == 1
