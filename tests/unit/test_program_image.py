"""Program image plumbing: segments, symbols, loading into machines."""

import pytest

from repro import memmap
from repro.asm import assemble
from repro.asm.program import Program, Segment
from repro.machine import LBP, MachineError, Params


def test_segment_properties():
    seg = Segment("data", 2, 0x1000, bytearray(b"abcd"))
    assert seg.end == 0x1004
    assert "bank=2" in repr(seg)


def test_read_word_initial_out_of_segments():
    program = assemble("main: nop")
    assert program.read_word_initial(0x12345678) is None
    assert program.read_word_initial(0) is not None


def test_code_size_and_segments():
    program = assemble("main: nop\n nop\n nop")
    assert program.code_size() == 12
    assert len(program.code_segments()) == 1
    assert program.data_segments() == []


def test_symbol_error_carries_context():
    program = assemble("main: nop", source_name="ctx.s")
    with pytest.raises(KeyError, match="ctx.s"):
        program.symbol("missing")


def test_machine_rejects_overlarge_bank():
    program = assemble(".data\n.bank 7\nx: .word 1\n.text\nmain: ebreak")
    with pytest.raises(MachineError, match="bank 7"):
        LBP(Params(num_cores=4)).load(program)


def test_machine_read_write_helpers():
    program = assemble("main: ebreak\n.data\nv: .word 0xABCD")
    machine = LBP(Params(num_cores=2)).load(program)
    addr = program.symbol("v")
    assert machine.read_word(addr) == 0xABCD
    machine.write_word(addr, 0x1234)
    assert machine.read_word(addr) == 0x1234
    with pytest.raises(MachineError):
        machine.read_word(memmap.LOCAL_BASE)
    with pytest.raises(MachineError):
        machine.read_word(memmap.global_bank_base(99))


def test_initial_sp_and_boot_hart():
    program = assemble("main: mv a0, sp\n ebreak")
    machine = LBP(Params(num_cores=1)).load(program)
    machine.run(max_cycles=1000)
    assert machine.cores[0].harts[0].regs[10] == memmap.hart_initial_sp(0)


def test_data_loaded_into_correct_banks():
    program = assemble("""
main: ebreak
.data
a: .word 11
.bank 1
b: .word 22
""")
    machine = LBP(Params(num_cores=2)).load(program)
    assert machine.cores[0].mem.shared.read(program.symbol("a"), 4) == 11
    assert machine.cores[1].mem.shared.read(program.symbol("b"), 4) == 22


def test_load_without_start_leaves_harts_free():
    program = assemble("main: ebreak")
    machine = LBP(Params(num_cores=1)).load(program, start=False)
    assert machine.cores[0].harts[0].is_free()
