"""Disassembler round-trips and the two lexers' corner cases."""

import pytest

from repro.asm import assemble
from repro.asm.errors import AsmError
from repro.asm.lexer import tokenize_line
from repro.compiler.clexer import tokenize
from repro.compiler.errors import CompileError
from repro.isa import INSTR_SPECS, disassemble
from repro.isa.disasm import disassemble_program


def test_disasm_reassembles_to_same_encoding():
    """asm → program → disasm text → asm again: identical instructions."""
    source = """
main:
    addi sp, sp, -16
    sw ra, 0(sp)
    lui t1, 74565
    mul t2, t1, t1
    p_fc t6
    p_swcv t6, ra, 4
    p_merge t0, t0, t6
    p_syncm
    p_lwre a0, 2
    ebreak
"""
    first = assemble(source)
    listing = "\n".join(
        "second_%d: %s" % (i, disassemble(first.instructions[a]))
        for i, a in enumerate(sorted(first.instructions))
        if first.instructions[a].spec.cls.name not in ("BRANCH", "JAL", "P_JAL")
    )
    second = assemble(listing)
    firsts = [first.instructions[a] for a in sorted(first.instructions)]
    seconds = [second.instructions[a] for a in sorted(second.instructions)]
    assert firsts == seconds


def test_disassemble_every_shape():
    from repro.isa.instruction import Instruction

    for spec in INSTR_SPECS.values():
        ins = Instruction(spec.mnemonic, rd=1, rs1=2, rs2=3, imm=4, spec=spec)
        if spec.fmt in ("B", "J"):
            ins.imm = 8
        text = disassemble(ins)
        assert text.startswith(spec.mnemonic)


def test_disassemble_program_listing():
    program = assemble("main: nop\n      nop")
    instrs = [program.instructions[a] for a in sorted(program.instructions)]
    lines = disassemble_program(instrs)
    assert len(lines) == 2
    assert lines[0].startswith("00000000:")


def test_asm_lexer_tokens():
    tokens = tokenize_line("lw ra, 0(sp) # comment")
    assert [t.kind for t in tokens] == ["IDENT", "IDENT", "PUNCT", "NUM",
                                        "PUNCT", "IDENT", "PUNCT"]
    assert tokenize_line("   # only comment") == []
    values = tokenize_line(".word 0x10, 0b101, 'A'")
    assert [t.value for t in values if t.kind == "NUM"] == [16, 5, 65]


def test_asm_lexer_shift_operators():
    tokens = tokenize_line(".equ X, 1<<4")
    assert any(t.kind == "PUNCT" and t.value == "<<" for t in tokens)


def test_asm_lexer_rejects_garbage():
    with pytest.raises(AsmError):
        tokenize_line("addi a0, a0, `")


def test_c_lexer_operators_longest_match():
    tokens = tokenize(" a <<= b >>= c ... d -> e ++ -- ")
    punct = [t.value for t in tokens if t.kind == "PUNCT"]
    assert punct == ["<<=", ">>=", "...", "->", "++", "--"]


def test_c_lexer_numbers_and_suffixes():
    tokens = tokenize("0x10 0b11 017 42u 42UL")
    values = [t.value for t in tokens if t.kind == "NUM"]
    assert values == [16, 3, 15, 42, 42]


def test_c_lexer_keywords_vs_identifiers():
    tokens = tokenize("int interest; return returned;")
    kinds = {t.value: t.kind for t in tokens if t.kind in ("KW", "ID")}
    assert kinds["int"] == "KW"
    assert kinds["interest"] == "ID"
    assert kinds["return"] == "KW"
    assert kinds["returned"] == "ID"


def test_c_lexer_char_escapes():
    tokens = tokenize(r"'\n' '\t' '\0' '\\'")
    values = [t.value for t in tokens if t.kind == "NUM"]
    assert values == [10, 9, 0, 92]


def test_c_lexer_line_tracking():
    tokens = tokenize("a\nb\n\nc")
    lines = {t.value: t.line for t in tokens if t.kind == "ID"}
    assert lines == {"a": 1, "b": 2, "c": 4}


def test_c_lexer_bad_char():
    with pytest.raises(CompileError):
        tokenize("int a = `3`;")
