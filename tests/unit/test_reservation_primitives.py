"""The two reservation primitives the sharded engine leans on.

The space-sharded engine (repro.parsim) replays each shard's link and
port reservations locally and relies on two properties for bit-exact
merges: ``LinkScheduler.reserve_path`` commits contending messages in
*reservation order* — whichever reservation is made first occupies the
earlier slot on every link of the chain, so a deterministic reservation
order yields a deterministic schedule — and the fast simulator's
``WindowedPort`` tolerates slightly out-of-order reservation requests
without over-serialising (its quantum scheduling makes no ordering
promise inside a window).
"""

import pytest

from repro.fastsim.sim import WindowedPort
from repro.machine.router import (
    LinkScheduler,
    forward_links,
    reply_path,
    request_path,
)
from repro.parsim import partition_cores


# ---- WindowedPort ------------------------------------------------------------


def test_windowed_port_first_reservation_is_free():
    port = WindowedPort(window=16)
    assert port.reserve(0) == 0
    assert port.reserve(7) == 7
    assert port.reserve(3) == 3  # out-of-order laggard keeps its time


def test_windowed_port_capacity_exhaustion_rolls_to_next_window():
    port = WindowedPort(window=16)
    for _ in range(16):  # fill window [0, 16) to its capacity of 16
        assert 0 <= port.reserve(0) < 16
    # the 17th reservation cannot fit before cycle 16 any more
    assert port.reserve(0) == 16
    assert port.used == {0: 16, 1: 1}


def test_windowed_port_laggard_pushed_past_a_full_window():
    port = WindowedPort(window=16)
    for _ in range(16):
        port.reserve(0)
    # a request for cycle 5 lands at the start of the next window, not 5
    assert port.reserve(5) == 16


def test_windowed_port_boundary_rollover():
    port = WindowedPort(window=16)
    # earliest=15 is the last slot of window 0; earliest=16 opens window 1
    assert port.reserve(15) == 15
    assert port.reserve(16) == 16
    assert port.used == {0: 1, 1: 1}


def test_windowed_port_exhaustion_walks_multiple_windows():
    port = WindowedPort(window=4)
    for _ in range(8):  # fill windows [0,4) and [4,8)
        port.reserve(0)
    assert port.used == {0: 4, 1: 4}
    assert port.reserve(2) == 8  # walks past both full windows


def test_windowed_port_respects_earliest_inside_window():
    port = WindowedPort(window=16)
    # capacity is tracked per window, but the returned cycle never
    # precedes the requested earliest time
    assert port.reserve(12) == 12
    assert port.reserve(14) == 14


# ---- LinkScheduler.reserve_path ---------------------------------------------


CHAIN = [("r1>r2", 0), ("r2>r3", 0), ("r3>r2", 1)]


def test_reserve_path_uncontended_latency_is_one_per_hop():
    sched = LinkScheduler(hop_latency=1)
    assert sched.reserve_path(CHAIN, 0) == len(CHAIN)
    assert sched.reserve_path([], 7) == 7  # empty path: no hops, no delay


def test_reserve_path_contending_messages_pipeline_in_order():
    sched = LinkScheduler(hop_latency=1)
    first = sched.reserve_path(CHAIN, 0)
    second = sched.reserve_path(CHAIN, 0)
    third = sched.reserve_path(CHAIN, 0)
    # the chain pipelines: each follower trails the leader by one cycle
    # on every shared link, so exits are consecutive, never interleaved
    assert (first, second, third) == (3, 4, 5)


def test_reserve_path_commit_order_is_reservation_order():
    """Whoever reserves first wins the earlier slots — swapping which
    message is which (the 'call order' of the two contenders) mirrors the
    outcome and leaves the cursors in the identical final state."""
    a_then_b = LinkScheduler(hop_latency=1)
    exit_a = a_then_b.reserve_path(CHAIN, 0)
    exit_b = a_then_b.reserve_path(CHAIN, 0)

    b_then_a = LinkScheduler(hop_latency=1)
    exit_b2 = b_then_a.reserve_path(CHAIN, 0)
    exit_a2 = b_then_a.reserve_path(CHAIN, 0)

    assert (exit_a, exit_b) == (exit_b2, exit_a2) == (3, 4)
    assert a_then_b.state_dict() == b_then_a.state_dict()


def test_reserve_path_partial_overlap_delays_only_on_shared_links():
    sched = LinkScheduler(hop_latency=1)
    long_path = request_path(0, 5)   # crosses r1>r2 down to core 5's bank
    short_path = request_path(4, 5)  # same r1 group: two hops
    assert long_path[-1] == short_path[-1] == ("r1>m", 5)
    first = sched.reserve_path(long_path, 0)
    second = sched.reserve_path(short_path, 0)
    # the short request is ready at cycle 2 but the shared bank link was
    # taken at cycle 4 by the long one — it commits behind it, at 5
    assert first == 4
    assert second == 5


def test_reserve_path_later_start_does_not_jump_the_queue():
    sched = LinkScheduler(hop_latency=1)
    early = sched.reserve_path(CHAIN, 0)
    late = sched.reserve_path(CHAIN, 10)
    assert (early, late) == (3, 13)
    # and a message reserved after them starts behind both cursors
    assert sched.reserve_path(CHAIN, 0) == 14


def test_paths_are_symmetric_and_neighbour_links_restricted():
    assert len(reply_path(0, 5)) == len(request_path(0, 5))
    assert forward_links(3, 3) == []
    assert forward_links(3, 4) == [("fwd", 3)]
    with pytest.raises(ValueError):
        forward_links(3, 5)


# ---- partition_cores ---------------------------------------------------------


def test_partition_cores_balanced_with_remainder():
    assert partition_cores(16, 4) == [(0, 4), (4, 8), (8, 12), (12, 16)]
    assert partition_cores(16, 3) == [(0, 6), (6, 11), (11, 16)]
    assert partition_cores(5, 4) == [(0, 2), (2, 3), (3, 4), (4, 5)]
    assert partition_cores(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]
    assert partition_cores(7, 1) == [(0, 7)]


def test_partition_cores_covers_the_line_contiguously():
    for cores in (1, 4, 16, 64):
        for shards in range(1, cores + 1):
            bounds = partition_cores(cores, shards)
            assert bounds[0][0] == 0 and bounds[-1][1] == cores
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start
            sizes = [stop - start for start, stop in bounds]
            assert max(sizes) - min(sizes) <= 1


def test_partition_cores_rejects_bad_shard_counts():
    with pytest.raises(ValueError):
        partition_cores(4, 0)
    with pytest.raises(ValueError):
        partition_cores(4, 5)
