"""The two-pass assembler: syntax, pseudo expansion, directives, errors."""

import pytest

from repro import memmap
from repro.asm import AsmError, assemble
from repro.isa import decode_word


def _mnemonics(program):
    return [program.instructions[a].mnemonic for a in sorted(program.instructions)]


def test_labels_and_branches():
    program = assemble("""
main:   li t1, 3
loop:   addi t1, t1, -1
        bnez t1, loop
        j main
        ebreak
""")
    instrs = sorted(program.instructions)
    branch = program.instructions[instrs[2]]
    assert branch.mnemonic == "bne"
    assert branch.imm == program.symbol("loop") - instrs[2]
    jump = program.instructions[instrs[3]]
    assert jump.mnemonic == "jal" and jump.rd == 0
    assert jump.imm == program.symbol("main") - instrs[3]


def test_li_expansions():
    small = assemble("main: li a0, 42")
    assert _mnemonics(small) == ["addi"]
    negative = assemble("main: li a0, -42")
    assert _mnemonics(negative) == ["addi"]
    large = assemble("main: li a0, 0x12345678")
    assert _mnemonics(large) == ["lui", "addi"]
    exact = assemble("main: li a0, 0x12345000")
    assert _mnemonics(exact) == ["lui"]


def test_la_uses_hi_lo():
    program = assemble("""
main:   la a0, value
        .data
value:  .word 99
""")
    assert _mnemonics(program) == ["lui", "addi"]
    lui, addi = (program.instructions[a] for a in sorted(program.instructions))
    target = program.symbol("value")
    composed = ((lui.imm << 12) + addi.imm) & 0xFFFFFFFF
    assert composed == target


def test_paper_pseudos():
    program = assemble("""
main:   mv a0, a1
        not a2, a3
        neg a4, a5
        seqz t1, t2
        snez t3, t4
        ret
        p_ret
""")
    names = _mnemonics(program)
    assert names == ["addi", "xori", "sub", "sltiu", "sltu", "jalr", "p_jalr"]
    p_ret = program.instructions[sorted(program.instructions)[-1]]
    assert (p_ret.rd, p_ret.rs1, p_ret.rs2) == (0, 1, 5)  # zero, ra, t0


def test_memory_operand_forms():
    program = assemble("""
main:   lw a0, 8(sp)
        lw a1, (sp)
        sw a2, -4(sp)
        lb a3, 1(t1)
        sb a4, 0(t2)
""")
    instrs = [program.instructions[a] for a in sorted(program.instructions)]
    assert instrs[0].imm == 8
    assert instrs[1].imm == 0
    assert instrs[2].imm == -4
    assert [i.mnemonic for i in instrs] == ["lw", "lw", "sw", "lb", "sb"]


def test_data_directives_and_banks():
    program = assemble("""
        .data
a:      .word 1, 2, 3
b:      .byte 4, 5
        .align 2
c:      .word 6
        .bank 2
d:      .space 16, 0xAB
""")
    assert program.symbol("a") == memmap.global_bank_base(0)
    assert program.symbol("b") == program.symbol("a") + 12
    assert program.symbol("c") % 4 == 0
    assert program.symbol("d") == memmap.global_bank_base(2)
    bank2 = program.data_bank_image(2)
    assert bank2 == [(0, b"\xab" * 16)]


def test_equ_and_expressions():
    program = assemble("""
        .equ SIZE, 8*4
        .equ HALF, SIZE/2
main:   li a0, SIZE
        li a1, HALF+1
""")
    # symbolic li always expands to lui+addi; the composed value must match
    instrs = [program.instructions[a] for a in sorted(program.instructions)]
    assert [i.mnemonic for i in instrs] == ["lui", "addi", "lui", "addi"]
    assert ((instrs[0].imm << 12) + instrs[1].imm) & 0xFFFFFFFF == 32
    assert ((instrs[2].imm << 12) + instrs[3].imm) & 0xFFFFFFFF == 17


def test_encoded_bytes_decode_back():
    program = assemble("""
main:   li t0, -1
        p_set t0, t0
        p_fc t6
        p_swcv t6, ra, 0
        p_merge t0, t0, t6
        p_syncm
        p_jalr ra, t0, a0
        p_lwcv ra, 0
        p_lwre a0, 2
        p_swre t0, a0, 1
        p_jal ra, t6, main
""")
    for addr in sorted(program.instructions):
        word = program.read_word_initial(addr)
        assert decode_word(word, addr) == program.instructions[addr]


def test_errors():
    with pytest.raises(AsmError):
        assemble("main: bad_instruction a0, a1")
    with pytest.raises(AsmError):
        assemble("main: addi a0")  # missing operands
    with pytest.raises(AsmError):
        assemble("main: j nowhere")  # undefined symbol
    with pytest.raises(AsmError):
        assemble("main: addi a0, a0, 1\nmain: nop")  # duplicate label
    with pytest.raises(AsmError):
        assemble(".data\nx: .word 1\n.text\n .word 2")  # data in text
    with pytest.raises(AsmError):
        assemble("main: addi a0, a0, 99999")  # imm overflow


def test_entry_point_selection():
    has_main = assemble("main: nop")
    assert has_main.entry == has_main.symbol("main")
    has_start = assemble("_start: nop\nmain: nop")
    assert has_start.entry == has_start.symbol("_start")
    with pytest.raises(KeyError):
        assemble("other: nop").entry


def test_comments_and_blank_lines():
    program = assemble("""
# full-line comment
main:   nop        # trailing comment
        // c++ style
        nop
""")
    assert len(program.instructions) == 2


def test_char_literals_and_strings():
    program = assemble("""
        .data
ch:     .byte 'A', '\\n'
s:      .asciz "hi"
""")
    image = dict(program.data_bank_image(0))
    data = image[0]
    assert data[:2] == b"A\n"
    assert data[2:5] == b"hi\0"


def test_disassembly_listing():
    program = assemble("main: addi a0, zero, 7\n      ebreak")
    text = program.disassembly()
    assert "main:" in text
    assert "addi a0, zero, 7" in text
