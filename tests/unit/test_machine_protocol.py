"""The X_PAR team protocol on the cycle-accurate machine.

Covers the four p_ret ending cases, fork placement (p_fc/p_fn), the CV
transfer handshake, result-buffer synchronisation (p_swre/p_lwre), the
ordered-release barrier, and the machine's deterministic traps.
"""

import pytest

from repro.asm import assemble
from repro.machine import LBP, DeadlockError, MachineError, Params
from repro.machine.trace import Trace


def _run(source, cores=1, max_cycles=100_000, trace=False):
    program = assemble(source)
    machine = LBP(Params(num_cores=cores, trace_enabled=trace)).load(program)
    stats = machine.run(max_cycles=max_cycles)
    return program, machine, stats


FORK_PROTOCOL = """
main:
    li   t0, -1
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   t0, 4(sp)
    p_set t0, t0
    %(fork)s t6
    la   t1, rp
    p_swcv t6, t1, 0
    p_swcv t6, t0, 4
    p_merge t0, t0, t6
    p_syncm
    la   a0, child
    p_jalr ra, t0, a0
    # forked hart starts here
    p_lwcv ra, 0
    p_lwcv t0, 4
    la   t2, forked_flag
    li   t3, 1
    sw   t3, 0(t2)
    p_ret                     # case 4: joins back
rp: lw  ra, 0(sp)
    lw  t0, 4(sp)
    addi sp, sp, 8
    p_ret                     # case 1: exit
child:
    la  t2, child_flag
    li  t3, 1
    sw  t3, 0(t2)
    p_ret                     # case 2: the join hart waits
.data
forked_flag: .word 0
child_flag:  .word 0
"""


def test_fork_on_current_core():
    program, machine, stats = _run(FORK_PROTOCOL % {"fork": "p_fc"})
    assert machine.halt_reason == "exit"
    assert machine.read_word(program.symbol("forked_flag")) == 1
    assert machine.read_word(program.symbol("child_flag")) == 1
    assert stats.forks == 1 and stats.joins == 1


def test_fork_on_next_core():
    program, machine, stats = _run(FORK_PROTOCOL % {"fork": "p_fn"}, cores=2)
    assert machine.halt_reason == "exit"
    assert machine.read_word(program.symbol("forked_flag")) == 1
    # the forked hart ran on core 1
    assert machine.stats.harts[1][0].retired > 0


def test_p_fn_past_last_core_traps():
    source = FORK_PROTOCOL % {"fork": "p_fn"}
    program = assemble(source)
    machine = LBP(Params(num_cores=1)).load(program)
    with pytest.raises(MachineError, match="last core"):
        machine.run(max_cycles=100_000)


def test_exit_requires_minus_one():
    # p_ret with ra=0, t0=stamped-own-id → case 2 (wait): deadlock, not exit
    source = """
main:
    li ra, 0
    p_set t0, zero
    p_ret
"""
    program = assemble(source)
    machine = LBP(Params(num_cores=1)).load(program)
    with pytest.raises(DeadlockError):
        machine.run(max_cycles=10_000)


def test_swre_lwre_synchronise_asynchronous_harts():
    """p_lwre blocks in the instruction table until the p_swre data lands."""
    source = """
main:
    li   t0, -1
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   t0, 4(sp)
    p_set t0, t0
    p_fc t6
    la   t1, rp
    p_swcv t6, t1, 0
    p_swcv t6, t0, 4
    p_merge t0, t0, t6
    p_syncm
    la   a0, consumer
    p_jalr ra, t0, a0
    # ---- producer hart (hart 1): wastes time, then sends ----
    p_lwcv ra, 0
    p_lwcv t0, 4
    li   t2, 200
spin:
    addi t2, t2, -1
    bnez t2, spin
    li   t3, 777
    li   t4, 0          # target hart 0
    p_swre t4, t3, 2    # result buffer #2 of hart 0
    p_ret
rp: lw  ra, 0(sp)
    lw  t0, 4(sp)
    addi sp, sp, 8
    p_ret
consumer:
    p_lwre t1, 2        # waits for the producer's value
    la   t2, got
    sw   t1, 0(t2)
    p_ret
.data
got: .word 0
"""
    program, machine, stats = _run(source, max_cycles=200_000)
    assert machine.read_word(program.symbol("got")) == 777


def test_swre_to_later_core_traps():
    source = """
main:
    li t1, 7          # hart 7 lives on core 1 — later than core 0
    li t2, 5
    p_swre t1, t2, 0
    ebreak
"""
    program = assemble(source)
    machine = LBP(Params(num_cores=2)).load(program)
    with pytest.raises(MachineError, match="later core"):
        machine.run(max_cycles=10_000)


def test_cv_write_lands_before_forked_start():
    """p_syncm before p_jalr guarantees the CV values are visible."""
    program, machine, _ = _run(FORK_PROTOCOL % {"fork": "p_fc"}, trace=True)
    trace = machine.trace.events
    cv_writes = [e for e in trace if e[3] == "cv_write"]
    starts = [e for e in trace if e[3] == "start"]
    assert cv_writes and starts
    assert max(e[0] for e in cv_writes) < min(e[0] for e in starts)


def test_ending_signal_orders_release():
    """Team members commit their p_ret in referential order."""
    program, machine, _ = _run(FORK_PROTOCOL % {"fork": "p_fc"}, trace=True)
    rets = [e for e in machine.trace.events if e[3] == "p_ret"]
    # hart 0's (wait) commits before hart 1's (join); the final exit follows
    kinds = [(hart, kind) for _cyc, _core, hart, _k, kind in rets]
    assert kinds == [(0, "wait"), (1, "join"), (0, "exit")]
    signals = [e for e in machine.trace.events if e[3] == "ending_signal"]
    assert len(signals) == 1


def test_fetch_from_bad_address_traps():
    source = """
main:
    li t1, 0x1000
    jr t1
"""
    program = assemble(source)
    machine = LBP(Params(num_cores=1)).load(program)
    with pytest.raises(MachineError, match="non-code"):
        machine.run(max_cycles=10_000)


def test_unmapped_global_access_traps():
    source = """
main:
    li t1, 0x90000000
    lw t2, 0(t1)
    ebreak
"""
    program = assemble(source)
    machine = LBP(Params(num_cores=1)).load(program)
    with pytest.raises(MachineError, match="unmapped|outside"):
        machine.run(max_cycles=10_000)


def test_deadlock_reported_with_state():
    source = """
main:
    p_lwre t1, 0     # nobody ever sends
    ebreak
"""
    program = assemble(source)
    machine = LBP(Params(num_cores=1)).load(program)
    with pytest.raises(DeadlockError, match="hart 0"):
        machine.run(max_cycles=10_000)


def test_ecall_rejected():
    program = assemble("main: ecall")
    machine = LBP(Params(num_cores=1)).load(program)
    with pytest.raises(MachineError, match="ecall"):
        machine.run(max_cycles=10_000)


def test_p_jal_parallel_direct_call():
    """p_jal: call the function at the label, start the forked hart at
    pc+4 (figure 5's direct variant of the fork protocol)."""
    source = """
main:
    li   t0, -1
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   t0, 4(sp)
    p_set t0, t0
    p_fc t6
    la   t1, rp
    p_swcv t6, t1, 0
    p_swcv t6, t0, 4
    p_merge t0, t0, t6
    p_syncm
    p_jal ra, t0, child     # direct parallel call
    # ---- forked hart resumes here ----
    p_lwcv ra, 0
    p_lwcv t0, 4
    la   t2, side
    li   t3, 21
    sw   t3, 0(t2)
    p_ret
rp: lw  ra, 0(sp)
    lw  t0, 4(sp)
    addi sp, sp, 8
    p_ret
child:
    la  t2, primary
    li  t3, 12
    sw  t3, 0(t2)
    p_ret
.data
primary: .word 0
side:    .word 0
"""
    program, machine, stats = _run(source)
    assert machine.halt_reason == "exit"
    assert machine.read_word(program.symbol("primary")) == 12
    assert machine.read_word(program.symbol("side")) == 21


def test_hart_reuse_after_team_ends():
    """Two successive teams reuse the same harts deterministically."""
    source = FORK_PROTOCOL % {"fork": "p_fc"}
    program, machine, stats = _run(source)
    first_cycles = stats.cycles
    program2, machine2, stats2 = _run(source)
    assert stats2.cycles == first_cycles  # full determinism, incl. reuse


def test_trace_formatting():
    trace = Trace(enabled=True)
    trace.record(467171, 55, 2, "mem_load_req", "addr 0x1a0c0 bank shared13")
    lines = trace.formatted()
    assert lines == ["at cycle 467171, core 55, hart 2: mem_load_req "
                     "addr 0x1a0c0 bank shared13"]
    assert len(trace.of_kind("mem_load_req")) == 1
