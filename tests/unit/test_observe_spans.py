"""Unit tests for the span/trace subsystem, the Prometheus renderer
and the crash flight recorder (PR 10).

Everything here is process-local: span mechanics (context propagation
by value, ring bounding, drain/absorb), the cycles<->wall clock anchor
and the merged Perfetto export, exposition-text rendering plus the
validator's negative space, and flight-dump round-trips.  The live
serving-stack half lives in tests/integration/test_serve_trace.py.
"""

import json

import pytest

from repro.observe import prom
from repro.observe.perfetto import (
    _SERVICE_PID_BASE,
    chrome_trace,
    merged_chrome_trace,
    shared_clock_errors,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observe.spans import (
    FlightRecorder,
    Span,
    SpanRecorder,
    clock_anchor,
    mint_trace_id,
    read_flight_dump,
)


# ---- spans -------------------------------------------------------------------


def test_mint_trace_id_shape_and_uniqueness():
    ids = {mint_trace_id() for _ in range(256)}
    assert len(ids) == 256
    for tid in ids:
        assert len(tid) == 16
        int(tid, 16)  # hex


def test_root_span_then_child_then_record():
    rec = SpanRecorder()
    root = rec.start("admission", tags={"tenant": "t"})
    child = rec.start("cache_probe", parent=root)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert child.span_id != root.span_id
    child.finish(key="abc")
    root.finish(outcome="queued")
    records = rec.records()
    assert [r["name"] for r in records] == ["cache_probe", "admission"]
    probe, admission = records
    assert probe["tags"] == {"key": "abc"}
    assert admission["tags"] == {"tenant": "t", "outcome": "queued"}
    assert probe["end_s"] >= probe["start_s"]
    # records are plain JSON-able dicts — that's the pipe contract
    json.dumps(records)


def test_propagation_by_value_tuple_crosses_recorders():
    """A (trace_id, span_id) tuple — not the Span object — is what a
    forked worker receives; a fresh recorder chains onto it."""
    parent_rec = SpanRecorder()
    admission = parent_rec.start("admission")
    ctx = admission.ctx
    assert ctx == (admission.trace_id, admission.span_id)

    worker_rec = SpanRecorder()  # a different process, conceptually
    execute = worker_rec.start("execute", parent=tuple(ctx))
    assert execute.trace_id == admission.trace_id
    assert execute.parent_id == admission.span_id


def test_finish_is_idempotent():
    rec = SpanRecorder()
    span = rec.start("x")
    span.finish()
    first_end = span.end_s
    span.finish(extra="ignored")
    assert span.end_s == first_end
    assert len(rec) == 1
    assert "extra" not in rec.records()[0]["tags"]


def test_context_manager_tags_errors():
    rec = SpanRecorder()
    with pytest.raises(RuntimeError):
        with rec.span("risky"):
            raise RuntimeError("boom")
    (record,) = rec.records()
    assert record["end_s"] is not None
    assert record["tags"]["error"] == "RuntimeError: boom"


def test_ring_bounds_memory_and_counts_drops():
    rec = SpanRecorder(capacity=4)
    for index in range(10):
        rec.start("s%d" % index).finish()
    assert len(rec) == 4
    assert rec.dropped == 6
    assert rec.started == 10
    # the ring keeps the *last* capacity spans
    assert [r["name"] for r in rec.records()] == ["s6", "s7", "s8", "s9"]


def test_drain_empties_absorb_merges():
    source = SpanRecorder()
    source.start("a").finish()
    source.start("b").finish()
    payload = source.drain()
    assert len(payload) == 2 and len(source) == 0

    sink = SpanRecorder()
    sink.start("own").finish()
    sink.absorb(payload)
    assert [r["name"] for r in sink.records()] == ["own", "a", "b"]


def test_span_start_parent_none_honours_trace_id():
    rec = SpanRecorder()
    span = rec.start("root", trace_id="feedfacefeedface")
    assert span.trace_id == "feedfacefeedface"
    assert span.parent_id is None


def test_clock_anchor_shape():
    anchor = clock_anchor(12.5, 0.25, 1000)
    assert anchor == {"start_s": 12.5, "wall_s": 0.25, "cycles": 1000}
    assert clock_anchor(0.0, 0.0, 0)["cycles"] == 0


# ---- flight recorder ---------------------------------------------------------


def test_flight_ring_keeps_last_events_and_spills(tmp_path):
    recorder = FlightRecorder(capacity=8)
    for index in range(20):
        recorder.note("tick", index=index)
    events = recorder.events()
    assert len(events) == 8
    assert [event["index"] for event in events] == list(range(12, 20))
    assert events[-1]["seq"] == 20

    path = recorder.spill(str(tmp_path), "unit test crash")
    assert path is not None and path.endswith(".jsonl")
    header, dumped = read_flight_dump(path)
    assert header["flight"] == 1
    assert header["reason"] == "unit test crash"
    assert header["events"] == 8
    assert [event["index"] for event in dumped] == list(range(12, 20))


def test_flight_spill_disabled_and_never_raises(tmp_path):
    recorder = FlightRecorder()
    recorder.note("x")
    assert recorder.spill(None, "disabled") is None
    assert recorder.spill("", "disabled") is None
    # an unwritable destination is swallowed, not raised — crash paths
    # must not crash harder because the dump failed
    blocked = tmp_path / "file-not-dir"
    blocked.write_text("occupied")
    assert recorder.spill(str(blocked), "bad dir") is None
    assert recorder.spilled == []


def test_read_flight_dump_rejects_non_dumps(tmp_path):
    path = tmp_path / "not-a-dump.jsonl"
    path.write_text('{"hello": 1}\n')
    with pytest.raises(ValueError):
        read_flight_dump(str(path))


# ---- prometheus rendering + validation ---------------------------------------


def test_histogram_observe_and_cumulative_samples():
    histogram = prom.Histogram(buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        histogram.observe(value)
    rows = histogram.samples("lat")
    by_name = {}
    for name, labels, value in rows:
        by_name.setdefault(name, []).append((labels, value))
    buckets = {labels["le"]: value for labels, value in by_name["lat_bucket"]}
    assert buckets == {"0.1": 1, "1.0": 3, "+Inf": 4}
    assert by_name["lat_count"] == [({}, 4)]
    (_, total), = by_name["lat_sum"]
    assert total == pytest.approx(6.05)


def test_render_and_validate_round_trip():
    histogram = prom.Histogram()
    histogram.observe(0.003)
    histogram.observe(2.0)
    text = prom.render([
        prom.family("repro_jobs_total", "counter", "jobs by event",
                    [({"event": "submitted"}, 3), ({"event": "hits"}, 1)]),
        prom.family("repro_queue_depth", "gauge", "queued jobs",
                    [(None, 0)]),
        prom.family("repro_http_request_seconds", "histogram", "latency",
                    histogram.samples("repro_http_request_seconds")),
    ])
    parsed = prom.validate_prometheus_text(text)
    assert parsed["types"] == {
        "repro_jobs_total": "counter",
        "repro_queue_depth": "gauge",
        "repro_http_request_seconds": "histogram",
    }
    samples = parsed["samples"]
    assert ({"event": "submitted"}, 3.0) in samples["repro_jobs_total"]
    count = samples["repro_http_request_seconds_count"]
    assert count == [({}, 2.0)]


def test_render_escapes_label_values():
    text = prom.render([prom.family(
        "m", "gauge", "with \"quotes\" and \\slashes",
        [({"path": 'a"b\\c'}, 1)])])
    prom.validate_prometheus_text(text)
    assert 'path="a\\"b\\\\c"' in text


@pytest.mark.parametrize("mutate, message", [
    (lambda text: text.rstrip("\n"), "end with a newline"),
    (lambda text: text.replace("# TYPE repro_up gauge\n", ""),
     "no preceding TYPE"),
    (lambda text: text.replace("repro_up 1", "repro_up one"),
     "malformed sample"),
    (lambda text: text + "# TYPE repro_up gauge\n", "duplicate TYPE"),
])
def test_validator_rejects_structural_violations(mutate, message):
    good = "# HELP repro_up up\n# TYPE repro_up gauge\nrepro_up 1\n"
    prom.validate_prometheus_text(good)
    with pytest.raises(ValueError, match=message):
        prom.validate_prometheus_text(mutate(good))


def test_validator_rejects_type_after_samples():
    text = ("# TYPE a gauge\na 1\n"
            "b 2\n# TYPE b gauge\n")
    with pytest.raises(ValueError, match="no preceding TYPE"):
        prom.validate_prometheus_text(text)


def test_validator_rejects_broken_histograms():
    no_inf = ("# TYPE h histogram\n"
              'h_bucket{le="1.0"} 1\nh_sum 1\nh_count 1\n')
    with pytest.raises(ValueError, match=r"missing \+Inf"):
        prom.validate_prometheus_text(no_inf)

    not_cumulative = ("# TYPE h histogram\n"
                      'h_bucket{le="1.0"} 5\nh_bucket{le="+Inf"} 3\n'
                      "h_sum 1\nh_count 3\n")
    with pytest.raises(ValueError, match="not cumulative"):
        prom.validate_prometheus_text(not_cumulative)

    inf_vs_count = ("# TYPE h histogram\n"
                    'h_bucket{le="1.0"} 1\nh_bucket{le="+Inf"} 3\n'
                    "h_sum 1\nh_count 4\n")
    with pytest.raises(ValueError, match="!= _count"):
        prom.validate_prometheus_text(inf_vs_count)

    missing_sum = ("# TYPE h histogram\n"
                   'h_bucket{le="+Inf"} 1\nh_count 1\n')
    with pytest.raises(ValueError, match="missing _sum or _count"):
        prom.validate_prometheus_text(missing_sum)


# ---- merged perfetto export --------------------------------------------------


def _run_machine():
    from repro.asm import assemble
    from repro.machine import LBP, Params

    source = """
main:
    li   t1, 50
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
"""
    machine = LBP(Params(num_cores=2, trace_enabled=True)).load(
        assemble(source, "spans.s"))
    machine.run()
    return machine


def _traced_run():
    """A real run wrapped in an admission->execute->run span chain, the
    same shape the serving stack records, plus its clock anchor."""
    import time

    rec = SpanRecorder()
    admission = rec.start("admission")
    execute = rec.start("execute", parent=admission)
    run = rec.start("run", parent=execute)
    start = time.monotonic()
    machine = _run_machine()
    run.finish(cycles=machine.cycle)
    clock = clock_anchor(start, max(run.end_s - start, 1e-6), machine.cycle)
    execute.finish()
    admission.finish()
    return machine, rec.records(), clock


def test_merged_trace_validates_and_shares_the_clock():
    machine, spans, clock = _traced_run()
    data = merged_chrome_trace(machine, spans, clock)
    assert validate_chrome_trace(data) == []
    assert shared_clock_errors(data) == []
    other = data["otherData"]
    assert other["merged"] is True and other["spans"] == 3
    assert other["clock"]["cycles"] == machine.cycle
    assert other["num_cores"] == 2
    names = {event.get("name") for event in data["traceEvents"]
             if event.get("cat") == "service"}
    assert names == {"admission", "execute", "run"}
    # service tracks live above the pid base; core tracks below it
    pids = {event["pid"] for event in data["traceEvents"]}
    assert any(pid >= _SERVICE_PID_BASE for pid in pids)
    assert any(pid < _SERVICE_PID_BASE for pid in pids)


def test_shared_clock_errors_catches_an_escaping_event():
    machine, spans, clock = _traced_run()
    data = merged_chrome_trace(machine, spans, clock)
    run = next(event for event in data["traceEvents"]
               if event.get("cat") == "service" and event["name"] == "run")
    escaped = {"ph": "X", "name": "active", "cat": "hart", "pid": 0,
               "tid": 0, "ts": run["ts"] + run["dur"] + 1000.0, "dur": 5.0}
    data["traceEvents"].append(escaped)
    errors = shared_clock_errors(data)
    assert len(errors) == 1 and "escapes every run span" in errors[0]


def test_merged_trace_without_run_span_fails_the_clock_check():
    machine, spans, clock = _traced_run()
    spans = [record for record in spans if record["name"] != "run"]
    data = merged_chrome_trace(machine, spans, clock)
    assert shared_clock_errors(data) == [
        "merged trace has no service 'run' span"]


def test_spans_only_merged_trace_no_machine():
    _, spans, _ = _traced_run()
    data = merged_chrome_trace(None, spans, None)
    assert validate_chrome_trace(data) == []
    assert data["otherData"]["clock"] is None
    assert "num_cores" not in data["otherData"]
    assert all(event["pid"] >= _SERVICE_PID_BASE
               for event in data["traceEvents"])


def test_legacy_chrome_trace_untouched_by_span_plumbing(tmp_path):
    """write_chrome_trace(machine, path) — the PR 5 CI surface — must be
    byte-for-byte the plain chrome_trace export when spans/clock are
    absent."""
    machine = _run_machine()
    path = tmp_path / "legacy.json"
    write_chrome_trace(machine, str(path))
    on_disk = json.loads(path.read_text())
    direct = json.loads(json.dumps(chrome_trace(machine)))
    assert on_disk == direct
    assert "merged" not in on_disk["otherData"]


def test_write_merged_trace_to_disk(tmp_path):
    machine, spans, clock = _traced_run()
    path = tmp_path / "merged.json"
    count = write_chrome_trace(machine, str(path), spans=spans, clock=clock)
    data = json.loads(path.read_text())
    assert len(data["traceEvents"]) == count
    assert shared_clock_errors(data) == []


# ---- zeroed transport stats (satellite: shards=1 schema) ---------------------


def test_zeroed_transport_stats_matches_sharded_schema():
    from repro.parsim.engine import zeroed_transport_stats

    zeroed = zeroed_transport_stats()
    assert zeroed["shards"] == 1
    assert zeroed["transport"] is None
    assert zeroed["epochs"] == 0 and zeroed["epoch_wait_s"] == 0.0
    assert zeroed["ff_epochs"] == 0 and zeroed["ff_cycles"] == 0
    assert zeroed["per_shard"] == []


def test_transport_table_renders_empty_for_zeroed_stats():
    from repro.observe.export import transport_table
    from repro.parsim.engine import zeroed_transport_stats

    assert transport_table(None) == []
    assert transport_table(zeroed_transport_stats()) == []
