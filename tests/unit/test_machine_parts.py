"""Machine building blocks: ports, router paths, banks, params."""

import pytest

from repro import memmap
from repro.machine.memory import Bank, Port
from repro.machine.params import Params
from repro.machine.router import (
    LinkScheduler,
    backward_links,
    forward_links,
    reply_path,
    request_path,
)


def test_port_fifo_reservation():
    port = Port()
    assert port.reserve(5) == 5
    assert port.reserve(5) == 6   # slot taken, pushed back
    assert port.reserve(3) == 7   # earlier request still serialises
    assert port.reserve(100) == 100


def test_bank_read_write_widths():
    bank = Bank(0x1000, 64, "test")
    bank.write(0x1000, 0xDEADBEEF, 4)
    assert bank.read(0x1000, 4) == 0xDEADBEEF
    assert bank.read(0x1000, 1) == 0xEF
    assert bank.read(0x1002, 2) == 0xDEAD
    bank.write(0x1003, 0x12, 1)
    assert bank.read(0x1000, 4) == 0x12ADBEEF


def test_bank_bounds_checked():
    bank = Bank(0x1000, 16, "test")
    with pytest.raises(IndexError):
        bank.read(0x0FFF, 4)
    with pytest.raises(IndexError):
        bank.read(0x100E, 4)
    with pytest.raises(IndexError):
        bank.write(0x1010, 0, 4)


def test_request_path_levels():
    # same r1 group: core -> r1 -> bank
    assert request_path(0, 1) == [("c>r1", 0), ("r1>m", 1)]
    # cross-r1, same r2: adds the r1<->r2 hops
    path = request_path(0, 5)
    assert ("r1>r2", 0) in path and ("r2>r1", 1) in path
    assert ("r2>r3", 0) not in path
    # cross-r2: goes through r3
    path = request_path(0, 20)
    assert ("r2>r3", 0) in path and ("r3>r2", 1) in path


def test_reply_path_mirrors_request():
    for src, dst in ((0, 1), (0, 5), (3, 17), (60, 2)):
        req = request_path(src, dst)
        rep = reply_path(src, dst)
        assert len(req) == len(rep), (src, dst)
        assert rep[-1] == ("r1>c", src)


def test_forward_links_only_neighbour():
    assert forward_links(3, 3) == []
    assert forward_links(3, 4) == [("fwd", 3)]
    with pytest.raises(ValueError):
        forward_links(3, 5)
    with pytest.raises(ValueError):
        forward_links(3, 2)


def test_backward_links_hop_by_hop():
    assert backward_links(3, 3) == []
    assert backward_links(5, 2) == [("bwd", 5), ("bwd", 4), ("bwd", 3)]
    with pytest.raises(ValueError):
        backward_links(2, 5)


def test_link_scheduler_contention():
    links = LinkScheduler(hop_latency=1)
    path = [("a", 0), ("b", 0)]
    first = links.reserve_path(path, 0)
    second = links.reserve_path(path, 0)
    assert first == 2
    assert second > first  # one value per link per cycle


def test_params_validation_and_copy():
    with pytest.raises(ValueError):
        Params(num_cores=0)
    with pytest.raises(ValueError):
        Params(harts_per_core=8)
    params = Params(num_cores=4)
    tweaked = params.copy(link_hop_latency=5)
    assert tweaked.link_hop_latency == 5
    assert params.link_hop_latency == 1
    assert tweaked.num_harts == 16


def test_params_latency_for():
    from repro.isa.spec import spec_for

    params = Params(num_cores=1)
    assert params.latency_for(spec_for("add")) == params.alu_latency
    assert params.latency_for(spec_for("mul")) == params.mul_latency
    assert params.latency_for(spec_for("div")) == params.div_latency


def test_memmap_layout():
    assert memmap.hart_stack_top(0) == memmap.LOCAL_BASE + memmap.STACK_SIZE
    assert memmap.hart_cv_base(1) == memmap.hart_stack_top(1) - memmap.CV_AREA_SIZE
    assert memmap.hart_initial_sp(2) == memmap.hart_cv_base(2)
    assert memmap.global_bank_base(3) == memmap.GLOBAL_BASE + 3 * memmap.GLOBAL_BANK_SIZE
    assert memmap.owner_core_of(memmap.global_bank_base(2) + 4, 4) == 2
    assert memmap.owner_core_of(memmap.global_bank_base(9), 4) is None
    assert memmap.owner_core_of(memmap.LOCAL_BASE, 4) is None
    assert memmap.is_local(memmap.LOCAL_BASE)
    assert memmap.is_code(0)
    assert memmap.is_global(memmap.GLOBAL_BASE)
