"""Unit tests for the serving layer's pure parts.

Covers the pieces that don't need a running daemon: token-bucket quota
accounting (injected clock, no sleeping), job specs and their content
keys (identical to ``RunCache.run_program`` keying — serve and CLI share
entries), the single-flight job table, priority ordering, and the
bounded worker pool's timeout/cancel/error behavior.
"""

import asyncio
import threading
import time

import pytest

from repro.machine import Params
from repro.serve.jobs import (
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
    JobSpec,
    JobTable,
    compiled_program,
)
from repro.serve.loadgen import percentile, summarize
from repro.serve.pool import (
    PoolCancelled,
    PoolTaskError,
    PoolTimeout,
    WorkerPool,
)
from repro.serve.quota import QuotaExceeded, QuotaManager, TokenBucket
from repro.snapshot.cache import RunCache

ASM = """
main:
    li   t1, 10
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
"""


# ---- quota ------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_token_bucket_spend_and_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=4, clock=clock)
    assert bucket.take(4) == 0.0       # full burst available up front
    retry = bucket.take(1)
    assert retry == pytest.approx(0.5)  # 1 token at 2/s is half a second out
    clock.now += 0.5
    assert bucket.take(1) == 0.0        # continuously refilled
    clock.now += 100.0
    assert bucket.peek() == pytest.approx(4.0)  # capped at burst


def test_token_bucket_hard_allowance_and_impossible_requests():
    bucket = TokenBucket(rate=0, burst=2, clock=FakeClock())
    assert bucket.take() == 0.0 and bucket.take() == 0.0
    assert bucket.take() == float("inf")      # rate 0: never refills
    refilling = TokenBucket(rate=1, burst=2, clock=FakeClock())
    assert refilling.take(3) == float("inf")  # larger than burst: never


def test_token_bucket_rejects_bad_config():
    with pytest.raises(ValueError):
        TokenBucket(rate=1, burst=0)
    with pytest.raises(ValueError):
        TokenBucket(rate=-1, burst=1)


def test_quota_manager_charges_only_listed_or_defaulted_tenants():
    clock = FakeClock()
    quotas = QuotaManager({"alice": (0, 2), "bob": {"rate": 1, "burst": 1}},
                          clock=clock)
    quotas.charge("alice")
    quotas.charge("alice")
    with pytest.raises(QuotaExceeded) as excinfo:
        quotas.charge("alice")
    assert excinfo.value.tenant == "alice"
    assert excinfo.value.retry_after_s == float("inf")
    for _ in range(10):
        quotas.charge("mallory")  # not listed, no default: unmetered
    quotas.charge("bob")
    with pytest.raises(QuotaExceeded) as excinfo:
        quotas.charge("bob")
    assert excinfo.value.retry_after_s == pytest.approx(1.0)
    assert quotas.snapshot() == {"alice": 0.0, "bob": 0.0}


def test_quota_manager_default_allowance():
    quotas = QuotaManager(default=(0, 1), clock=FakeClock())
    quotas.charge("anyone")
    with pytest.raises(QuotaExceeded):
        quotas.charge("anyone")
    quotas.charge("someone-else")  # distinct tenant, distinct bucket


# ---- job specs and keying ---------------------------------------------------


def test_jobspec_wire_validation():
    spec = JobSpec.from_wire({"source": ASM, "filename": "job.s",
                              "params": {"num_cores": 2}})
    assert spec.machine_params().num_cores == 2
    with pytest.raises(ValueError):
        JobSpec.from_wire({"source": ASM, "bogus": 1})
    with pytest.raises(ValueError):
        JobSpec.from_wire({"source": ""})
    with pytest.raises(ValueError):
        JobSpec.from_wire("not an object")
    with pytest.raises(ValueError):
        JobSpec(ASM, filename="../escape.s")


def test_jobspec_key_matches_run_cache_keying(tmp_path):
    """A serve job and a CLI ``run_program`` of the same work share one
    cache entry — that is the contract that makes the service a cache
    front-end rather than a second cache."""
    cache = RunCache(str(tmp_path))
    spec = JobSpec(ASM, filename="job.s", params={"num_cores": 2},
                   inputs={"n": 64})
    expected = cache.key_for(program=compiled_program(ASM, "job.s"),
                             params=Params(num_cores=2), inputs={"n": 64})
    assert spec.cache_key(cache) == expected


def test_jobspec_max_cycles_not_in_key(tmp_path):
    cache = RunCache(str(tmp_path))
    bounded = JobSpec(ASM, filename="job.s", max_cycles=1000)
    unbounded = JobSpec(ASM, filename="job.s")
    assert bounded.cache_key(cache) == unbounded.cache_key(cache)


def test_jobspec_key_sensitivity(tmp_path):
    cache = RunCache(str(tmp_path))
    base = JobSpec(ASM, filename="job.s", params={"num_cores": 2})
    keys = {
        base.cache_key(cache),
        JobSpec(ASM.replace("li   t1, 10", "li   t1, 11"), filename="job.s",
                params={"num_cores": 2}).cache_key(cache),
        JobSpec(ASM, filename="job.s",
                params={"num_cores": 4}).cache_key(cache),
        JobSpec(ASM, filename="job.s", params={"num_cores": 2},
                inputs="other").cache_key(cache),
    }
    assert len(keys) == 4  # program, params and inputs all key
    # a source change that lowers to identical program bytes does NOT
    # change the key: identity is the program, not its spelling
    commented = JobSpec(ASM + "# comment\n", filename="job.s",
                        params={"num_cores": 2})
    assert commented.cache_key(cache) == base.cache_key(cache)


def test_compiled_program_memoized():
    first = compiled_program(ASM, "job.s")
    assert compiled_program(ASM, "job.s") is first


# ---- single-flight table ----------------------------------------------------


def _spec():
    return JobSpec(ASM, filename="job.s")


def _run(coro):
    return asyncio.run(coro)


def test_single_flight_admission():
    async def scenario():
        table = JobTable()
        job, created = table.admit(_spec(), "k1", "t", DEFAULT_PRIORITY)
        assert created and job.coalesced == 0
        again, created = table.admit(_spec(), "k1", "t", DEFAULT_PRIORITY)
        assert not created and again is job and job.coalesced == 1
        other, created = table.admit(_spec(), "k2", "t", DEFAULT_PRIORITY)
        assert created and other is not job
        assert table.counters["submitted"] == 3
        assert table.counters["coalesced"] == 1
        # after finish, the key is re-admittable as a fresh job
        job.resolve({"v": 1})
        table.finish(job)
        fresh, created = table.admit(_spec(), "k1", "t", DEFAULT_PRIORITY)
        assert created and fresh is not job
        # history still resolves the finished job by id
        assert table.get(job.id) is job

    _run(scenario())


def test_history_never_evicts_live_jobs():
    async def scenario():
        table = JobTable(history=2)
        live = [table.admit(_spec(), "k%d" % n, "t", DEFAULT_PRIORITY)[0]
                for n in range(4)]
        # over capacity, but none are done: all must remain addressable
        assert all(table.get(job.id) is job for job in live)
        for job in live:
            job.resolve({})
            table.finish(job)
        table.admit(_spec(), "k-new", "t", DEFAULT_PRIORITY)
        assert table.get(live[0].id) is None  # done jobs age out now

    _run(scenario())


def test_priority_sort_key_ordering():
    async def scenario():
        table = JobTable()
        batch = table.admit(_spec(), "k1", "t", "batch")[0]
        interactive = table.admit(_spec(), "k2", "t", "interactive")[0]
        bulk = table.admit(_spec(), "k3", "t", "bulk")[0]
        batch2 = table.admit(_spec(), "k4", "t", "batch")[0]
        ordered = sorted([batch, interactive, bulk, batch2],
                         key=lambda job: job.sort_key)
        # class first, admission order within a class
        assert ordered == [interactive, batch, batch2, bulk]
        assert set(PRIORITY_CLASSES) == {"interactive", "batch", "bulk"}

    _run(scenario())


# ---- worker pool ------------------------------------------------------------


def _slow(duration, result="late", progress=None):
    if progress is not None:
        progress({"stage": "started"})
    time.sleep(duration)
    return result


def _boom():
    raise RuntimeError("deterministic failure")


def test_pool_runs_and_streams_progress():
    async def scenario():
        pool = WorkerPool(workers=1)
        seen = []
        value = await pool.run(_slow, args=(0.0, "done"),
                               on_progress=seen.append)
        assert value == "done"
        await asyncio.sleep(0.05)  # progress is relayed via call_soon
        assert seen == [{"stage": "started"}]
        assert pool.snapshot()["busy"] == 0

    _run(scenario())


def test_pool_timeout_retries_then_raises():
    async def scenario():
        pool = WorkerPool(workers=1, timeout=0.3, retries=1)
        with pytest.raises(PoolTimeout):
            await pool.run(_slow, args=(30.0,))
        snap = pool.snapshot()
        assert snap["timeouts"] == 2      # both attempts hit the deadline
        assert snap["retries_spent"] == 1

    _run(scenario())


def test_pool_task_error_not_retried():
    async def scenario():
        pool = WorkerPool(workers=1, retries=3)
        with pytest.raises(PoolTaskError) as excinfo:
            await pool.run(_boom)
        assert "deterministic failure" in str(excinfo.value)
        # deterministic errors spend no retries: they would only recur
        assert pool.snapshot()["retries_spent"] == 0

    _run(scenario())


def test_pool_cancellation():
    async def scenario():
        pool = WorkerPool(workers=1)
        flag = threading.Event()
        flag.set()  # pre-cancelled: the attempt must die at the first slice
        with pytest.raises(PoolCancelled):
            await pool.run(_slow, args=(30.0,), cancel_event=flag)

    _run(scenario())


def test_pool_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        WorkerPool(workers=0)


# ---- load-summary arithmetic ------------------------------------------------


def test_percentile_nearest_rank():
    samples = [float(n) for n in range(1, 101)]
    assert percentile(samples, 50) == 50.0
    assert percentile(samples, 99) == 99.0
    assert percentile(samples, 100) == 100.0
    assert percentile([7.0], 50) == 7.0
    assert percentile([], 50) is None


def test_summarize_splits_by_kind_and_counts_errors():
    samples = [
        {"kind": "hit", "latency_s": 0.001, "http_status": 200,
         "status": "hit"},
        {"kind": "hit", "latency_s": 0.003, "http_status": 200,
         "status": "hit"},
        {"kind": "miss", "latency_s": 0.2, "http_status": 200,
         "status": "done"},
        {"kind": "miss", "latency_s": 0.1, "http_status": 429,
         "status": "rejected"},
    ]
    summary = summarize(samples, wall_s=2.0)
    assert summary["hit"]["count"] == 2 and summary["hit"]["errors"] == 0
    assert summary["miss"]["errors"] == 1
    assert summary["_total"]["count"] == 4
    assert summary["_total"]["jobs_per_s"] == 2.0
