"""Unit tests for the shared-memory epoch ring transport.

The protocol contract (see ``repro/parsim/rings.py``): single writer,
single reader per directed ring; frames are delivered exactly once, in
order, across slot wraparound; a full ring blocks the writer until the
reader publishes consumption; and *no* torn, stale, or transiently
fabricated header read can ever be accepted — the CRC is seeded with the
frame's odd sequence word, so validation is per-frame and never trivially
satisfied by zeros.
"""

import marshal
import os
import struct
import threading
import time

import pytest

from repro.parsim.rings import (
    _SLOT_HDR,
    RING_HDR_BYTES,
    RingMesh,
    _frame_crc,
    ring_bytes,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="host has no usable shared memory")


@pytest.fixture
def mesh():
    mesh = RingMesh(2, slots=4, slot_bytes=256)
    yield mesh
    mesh.close()
    mesh.unlink()


def test_frames_cross_wraparound_in_order(mesh):
    """10x the slot count of frames, popped in order, sizes varying."""
    writer = mesh.writer(0, 1)
    reader = mesh.reader(0, 1)
    for frame in range(40):
        payload = bytes([frame % 251]) * (frame % 200)
        writer.push(payload)
        assert reader.pop() == payload
    assert writer.frame == reader.frame == 40


def test_ring_geometry_is_per_directed_pair(mesh):
    """Both directions of a pair carry traffic independently."""
    w01, w10 = mesh.writer(0, 1), mesh.writer(1, 0)
    r01, r10 = mesh.reader(0, 1), mesh.reader(1, 0)
    assert w01.base != w10.base
    assert ring_bytes(mesh.slots, mesh.slot_bytes) > 0
    w01.push(b"forward")
    w10.push(b"backward")
    assert r01.pop() == b"forward"
    assert r10.pop() == b"backward"


def test_full_ring_applies_backpressure(mesh):
    """A writer facing a full ring blocks until the reader consumes."""
    writer = mesh.writer(0, 1)
    reader = mesh.reader(0, 1)
    delivered = []

    def produce():
        for frame in range(mesh.slots * 3):
            writer.push(b"frame-%04d" % frame)

    producer = threading.Thread(target=produce)
    producer.start()
    time.sleep(0.05)  # let the writer fill the ring and hit the wall
    for frame in range(mesh.slots * 3):
        delivered.append(reader.pop())
    producer.join()
    assert delivered == [b"frame-%04d" % f for f in range(mesh.slots * 3)]
    assert writer.wait_s > 0.0, "the writer never blocked on a full ring"


def test_oversize_frames_spill(mesh):
    """Frames larger than a slot travel over the spill channel, in order."""
    writer = mesh.writer(0, 1)
    reader = mesh.reader(0, 1)
    channel = []
    big = b"x" * (mesh.slot_bytes + 17)
    writer.push(b"small-1")
    writer.push(big, spill=channel.append)
    writer.push(b"small-2")
    assert writer.spills == 1
    assert reader.pop() == b"small-1"
    assert reader.pop(spill=lambda: channel.pop(0)) == big
    assert reader.pop() == b"small-2"


def test_oversize_without_spill_channel_raises(mesh):
    writer = mesh.writer(0, 1)
    with pytest.raises(ValueError):
        writer.push(b"y" * (mesh.slot_bytes + 1))


def test_fabricated_zero_header_is_never_accepted(mesh):
    """A header reading (want, 0, 0, 0) must not validate.

    This exact pattern was observed in the wild: a cross-process mmap
    read transiently fabricated zeros for the length/CRC words while the
    sequence word (and the payload) read correctly — and an empty
    payload trivially satisfies an unseeded ``crc32(b"") == 0`` check.
    The frame-seeded CRC rejects it; the reader keeps spinning and picks
    up the real header on a later read.
    """
    writer = mesh.writer(0, 1)
    reader = mesh.reader(0, 1)
    payload = b"the real frame payload"
    slot = mesh._index[(0, 1)] + RING_HDR_BYTES  # frame 0 -> slot 0
    # fabricate: final (even) seq for frame 0, zeroed length/crc/flags
    _SLOT_HDR.pack_into(mesh.shm.buf, slot, 2, 0, 0, 0)

    state = {"polls": 0}

    def poll():
        # runs inside the reader's backoff loop: after it has seen (and
        # must have rejected) the fabricated header, publish for real
        if state["polls"] == 0:
            writer.push(payload)
        state["polls"] += 1

    got = reader.pop(poll=poll)
    assert got == payload
    assert state["polls"] >= 1, "the fabricated header was accepted as-is"


def test_stale_previous_frame_is_never_accepted(mesh):
    """Slot reuse: frame f's leftover bytes cannot satisfy frame f+slots.

    The seeded CRC binds a slot's contents to one frame number, so a
    reader that laps into a reused slot spins rather than resurrecting
    the previous occupant.
    """
    writer = mesh.writer(0, 1)
    reader = mesh.reader(0, 1)
    for frame in range(mesh.slots):
        writer.push(b"gen-one-%d" % frame)
        assert reader.pop() == b"gen-one-%d" % frame
    # reader now expects frame `slots` in slot 0, which still holds
    # frame 0's bytes; rewrite only the seq word to the expected value
    slot = mesh._index[(0, 1)] + RING_HDR_BYTES
    seq, length, crc, flags = _SLOT_HDR.unpack_from(mesh.shm.buf, slot)
    want = (2 * mesh.slots + 2) & 0xFFFFFFFF
    _SLOT_HDR.pack_into(mesh.shm.buf, slot, want, length, crc, flags)

    def poll():
        writer.push(b"gen-two")

    assert reader.pop(poll=poll) == b"gen-two"


def test_frame_crc_is_never_zero_for_empty_payload():
    for frame in (0, 1, 7, 0x7FFFFFFF, 0xFFFFFFFE):
        assert _frame_crc(b"", frame) != 0


def test_fork_hammer_torn_read_protection():
    """Two forked processes exchange frames at full speed, both ways.

    This is the reproducer that exposed the fabricated-header race: the
    mesh is created pre-fork (as the engine does), each side pushes then
    pops every iteration, and payload sizes hop across slot boundaries.
    Any accepted-but-wrong frame kills the child with a nonzero status.
    """
    mesh = RingMesh(2)
    frames = int(os.environ.get("LBP_RING_HAMMER_FRAMES") or 12000)
    pids = []
    try:
        for shard in (0, 1):
            pid = os.fork()
            if pid == 0:
                status = 0
                try:
                    peer = 1 - shard
                    writer = mesh.writer(shard, peer)
                    reader = mesh.reader(peer, shard)
                    sizes = (10, 100, 3000)
                    for i in range(frames):
                        body = b"x" * sizes[(i + shard) % len(sizes)]
                        writer.push(marshal.dumps(((shard, i), body)))
                        tag, got = marshal.loads(reader.pop())
                        if tag != (peer, i):
                            status = 9
                            break
                except BaseException:
                    status = 8
                finally:
                    os._exit(status)
            pids.append(pid)
        statuses = [os.waitpid(pid, 0)[1] for pid in pids]
        pids = []
        assert statuses == [0, 0], statuses
    finally:
        for pid in pids:
            try:
                os.kill(pid, 9)
                os.waitpid(pid, 0)
            except OSError:
                pass
        mesh.close()
        mesh.unlink()


def test_consumed_counter_rejects_torn_pair(mesh):
    """The writer re-reads the consumed pair until value/~value agree."""
    writer = mesh.writer(0, 1)
    base = mesh._index[(0, 1)]
    # a torn pair (value without its complement) must not be trusted;
    # repair it from the poll-free spin by racing a fixer thread
    struct.pack_into("<II", mesh.shm.buf, base, 7, 0)

    def repair():
        time.sleep(0.02)
        struct.pack_into("<II", mesh.shm.buf, base, 7, ~7 & 0xFFFFFFFF)

    fixer = threading.Thread(target=repair)
    fixer.start()
    assert writer._consumed() == 7
    fixer.join()
