"""Deterministic Consistency baseline: merge semantics + timing model.

Three properties pin the model (see ``repro.baselines.detcon``):

* quantum merges are commutative in *presentation* order — which thread
  reached the barrier first cannot influence the merged memory;
* on a planted store-order case the classic coherent machine commits a
  schedule-dependent value (different per ClassicSMP seed) while DC
  commits one value however the run unfolded — the divergence that makes
  DC a determinism baseline at all;
* on race-free programs (disjoint write sets) DC and every classic
  schedule agree — determinism costs nothing semantically when the
  program was already data-race-free.
"""

import itertools
import random

import pytest

from repro.baselines import ClassicSMP, DetCon, classic_store_order, merge_quantum


# ---- merge commutativity -----------------------------------------------------


def test_merge_quantum_commutes_over_presentation_order():
    base = {0x100: 1, 0x104: 2, 0x108: 3}
    write_sets = [
        (0, {0x100: 10, 0x200: 11}),
        (1, {0x104: 20, 0x100: 21}),
        (2, {0x208: 30}),
        (3, {0x104: 40, 0x20C: 41}),
    ]
    reference = None
    for order in itertools.permutations(write_sets):
        merged, conflicts = merge_quantum(base, order)
        if reference is None:
            reference = (merged, conflicts)
        assert (merged, conflicts) == reference
    merged, conflicts = reference
    # task order (not arrival order) resolves each conflict: highest
    # program-order writer wins
    assert merged[0x100] == 21
    assert merged[0x104] == 40
    assert conflicts == [(0x100, [0, 1]), (0x104, [1, 3])]
    # untouched locations survive the merge
    assert merged[0x108] == 3


def test_merge_quantum_masks_to_32_bits_and_keeps_base_intact():
    base = {4: 7}
    merged, conflicts = merge_quantum(base, [(0, {4: 0x1_0000_0003})])
    assert merged[4] == 3
    assert conflicts == []
    assert base == {4: 7}  # merge never mutates the snapshot


def test_merge_quantum_disjoint_sets_report_no_conflicts():
    merged, conflicts = merge_quantum(
        {}, [(tid, {0x40 * tid: tid + 1}) for tid in range(8)])
    assert conflicts == []
    assert merged == {0x40 * tid: tid + 1 for tid in range(8)}


# ---- divergence from classic_smp on a planted store-order case ---------------


def _planted_case():
    """Two tasks store different values to one shared word."""
    write_sets = {0: {0x500: 0xAAAA}, 1: {0x500: 0xBBBB}}
    # unequal lengths + jitter/migrations make the completion order a
    # function of the classic seed
    instruction_counts = [60_000, 55_000]
    return write_sets, instruction_counts


def _classic_completion_order(seed, instruction_counts):
    stats = ClassicSMP(num_cores=2, seed=seed).run_tasks(instruction_counts)
    ends = sorted((task.end, task.task_id) for task in stats.tasks)
    return [task_id for _end, task_id in ends]


def test_classic_commits_schedule_dependent_value():
    write_sets, counts = _planted_case()
    finals = set()
    for seed in range(12):
        order = _classic_completion_order(seed, counts)
        memory = classic_store_order({}, write_sets, order)
        finals.add(memory[0x500])
    # at least two schedules committed different winners
    assert finals == {0xAAAA, 0xBBBB}


def test_dc_commits_one_value_for_every_schedule():
    write_sets, _counts = _planted_case()
    finals = set()
    for order in itertools.permutations(write_sets.items()):
        merged, conflicts = merge_quantum({}, order)
        finals.add(merged[0x500])
        assert conflicts == [(0x500, [0, 1])]  # ... and says why
    assert finals == {0xBBBB}  # task 1 is later in program order, always


# ---- agreement on race-free programs ----------------------------------------


def test_race_free_program_agrees_with_every_classic_schedule():
    rng = random.Random(42)
    write_sets = {tid: {0x1000 + 4 * (8 * tid + k): rng.randrange(1 << 16)
                        for k in range(8)}
                  for tid in range(6)}
    counts = [rng.randrange(30_000, 90_000) for _ in range(6)]
    dc_memory, conflicts = merge_quantum({}, write_sets.items())
    assert conflicts == []
    for seed in range(8):
        order = _classic_completion_order(seed, counts)
        assert classic_store_order({}, write_sets, order) == dc_memory


def test_run_quanta_reads_see_snapshot_not_peer_writes():
    model = DetCon(num_cores=2)
    # both tasks read addr 0 from the snapshot and write addr depending
    # on tid; if task 1 saw task 0's write the result would differ
    def reader(tid):
        return lambda snap: {0x10 + 4 * tid: snap.get(0x0, 0) + tid}

    memory, stats = model.run_quanta(
        {0x0: 100},
        [[(0, 1_000, reader(0)), (1, 1_000, reader(1))]])
    assert memory[0x10] == 100 and memory[0x14] == 101
    # second quantum *does* see the first quantum's published writes
    memory, _stats = model.run_quanta(
        {0x0: 100},
        [[(0, 1_000, lambda snap: {0x0: 7})],
         [(0, 1_000, lambda snap: {0x4: snap[0x0]})]])
    assert memory[0x4] == 7
    assert stats.conflicts == []


def test_run_quanta_is_shuffle_invariant():
    model = DetCon(num_cores=4)
    tasks = [(tid, 2_000, (lambda t: lambda snap: {0x600: t * 3,
                                                   0x700 + 4 * t: t})(tid))
             for tid in range(5)]
    shuffled = list(tasks)
    random.Random(9).shuffle(shuffled)
    first = model.run_quanta({}, [tasks])
    second = model.run_quanta({}, [shuffled])
    assert first[0] == second[0]
    assert first[1].cycles == second[1].cycles
    assert first[1].conflicts == second[1].conflicts


# ---- timing model ------------------------------------------------------------


def test_dc_timing_is_seed_invariant_where_classic_is_not():
    counts = [50_000] * 8
    dc_cycles = {DetCon(num_cores=4, seed=seed).run_tasks(counts).cycles
                 for seed in range(6)}
    classic_cycles = {ClassicSMP(num_cores=4, seed=seed).run_tasks(counts).cycles
                      for seed in range(6)}
    assert len(dc_cycles) == 1
    assert len(classic_cycles) > 1


def test_dc_run_many_spread_collapses_to_a_point():
    counts = [40_000] * 8
    lowest, average, highest = DetCon(num_cores=4).run_many(counts, 10)
    assert lowest == average == highest


def test_dc_pays_for_barriers_and_merges():
    counts = [30_000] * 4
    cheap = DetCon(num_cores=4, barrier_cost=0,
                   merge_cost_per_word=0).run_tasks(counts)
    priced = DetCon(num_cores=4, barrier_cost=500,
                    merge_cost_per_word=2).run_tasks(
        counts, write_words_per_task=64)
    assert priced.barriers == cheap.barriers == 3  # ceil(30k / 10k) rounds
    assert priced.quanta == cheap.quanta == 12
    assert priced.merged_words == 3 * 4 * 64
    overhead = priced.cycles - cheap.cycles
    assert overhead == 3 * 500 + priced.merged_words * 2


def test_dc_more_cores_faster_but_still_deterministic():
    counts = [80_000] * 16
    slow = DetCon(num_cores=2).run_tasks(counts).cycles
    fast = DetCon(num_cores=8).run_tasks(counts).cycles
    assert fast < slow
    assert DetCon(num_cores=8).run_tasks(counts).cycles == fast


def test_dc_uneven_tasks_price_by_slowest_core_per_round():
    # one long task dominates each round: total = its runtime + per-round
    # overheads, independent of the short tasks packed on other cores
    stats = DetCon(num_cores=4, barrier_cost=100,
                   merge_cost_per_word=0).run_tasks([45_000, 5_000, 5_000])
    assert stats.barriers == 5  # ceil(45k / 10k)
    assert stats.cycles == 45_000 + 5 * 100
