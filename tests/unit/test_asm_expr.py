"""The assembler's operand-expression engine."""

import pytest

from repro.asm.errors import AsmError
from repro.asm.expr import ExprParser, eval_expr, hi20, lo12, try_fold
from repro.asm.lexer import tokenize_line


def _parse(text):
    tokens = tokenize_line(text)
    parser = ExprParser(tokens, 0)
    node = parser.parse()
    assert parser.pos == len(tokens), "trailing tokens"
    return node


@pytest.mark.parametrize("text,expected", [
    ("1+2*3", 7),
    ("(1+2)*3", 9),
    ("16>>2", 4),
    ("1<<10", 1024),
    ("0xF0|0x0F", 0xFF),
    ("0xFF&0x0F", 0x0F),
    ("5^1", 4),
    ("-4+10", 6),
    ("~0", -1),
    ("100/7", 14),
    ("7/0", 0),  # divide-by-zero folds to 0 (deterministic)
])
def test_constant_folding(text, expected):
    assert try_fold(_parse(text)) == expected


def test_symbols_defer_folding_but_evaluate():
    node = _parse("base+4*idx")
    assert try_fold(node) is None
    assert eval_expr(node, {"base": 0x100, "idx": 3}) == 0x10C


def test_undefined_symbol_raises_with_name():
    with pytest.raises(AsmError, match="ghost"):
        eval_expr(_parse("ghost+1"), {})


def test_hi_lo_relocation_composition():
    for value in (0, 1, 0x7FF, 0x800, 0x801, 0xFFF, 0x12345678,
                  0x7FFFF800, 0x7FFFFFFF, 0xFFFFFFFF, 0x80000000):
        composed = ((hi20(value) << 12) + lo12(value)) & 0xFFFFFFFF
        assert composed == value & 0xFFFFFFFF, hex(value)


def test_hi_lo_nodes_in_expressions():
    node = _parse("%hi(sym)")
    assert eval_expr(node, {"sym": 0x12345678}) == hi20(0x12345678)
    node = _parse("%lo(sym+4)")
    assert eval_expr(node, {"sym": 0x12345678}) == lo12(0x1234567C)


def test_precedence_matches_c():
    # | < ^ < & < shift < additive < multiplicative
    assert try_fold(_parse("1|2^3&4<<1+2*0")) == (1 | (2 ^ (3 & (4 << (1 + 2 * 0)))))


def test_unary_chains():
    assert try_fold(_parse("--5")) == 5
    assert try_fold(_parse("~~7")) == 7
    assert try_fold(_parse("+-+3")) == -3


def test_parse_error_on_garbage():
    with pytest.raises(AsmError):
        _parse("1 + *")
    with pytest.raises(AsmError):
        _parse("%hi 5")
