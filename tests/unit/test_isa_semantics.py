"""32-bit ALU/branch semantics against a big-int reference."""

import pytest

from repro.isa.semantics import (
    ALU_OPS,
    BRANCH_OPS,
    HART_ID_FLAG,
    allocated_hart,
    join_hart,
    load_value,
    p_merge_value,
    p_set_value,
    to_signed,
    to_unsigned,
)

M = 0xFFFFFFFF


def test_to_signed_unsigned():
    assert to_signed(0xFFFFFFFF) == -1
    assert to_signed(0x7FFFFFFF) == 0x7FFFFFFF
    assert to_signed(0x80000000) == -(1 << 31)
    assert to_unsigned(-1) == 0xFFFFFFFF
    assert to_unsigned(1 << 32) == 0


@pytest.mark.parametrize("a,b", [
    (0, 0), (1, 2), (M, 1), (0x80000000, 0xFFFFFFFF),
    (0x7FFFFFFF, 1), (12345, 678910), (M, M),
])
def test_add_sub_mul_wrap(a, b):
    assert ALU_OPS["add"](a, b) == (a + b) & M
    assert ALU_OPS["sub"](a, b) == (a - b) & M
    assert ALU_OPS["mul"](a, b) == (a * b) & M


def test_shifts():
    assert ALU_OPS["sll"](1, 31) == 0x80000000
    assert ALU_OPS["sll"](1, 32) == 1          # shamt masked to 5 bits
    assert ALU_OPS["srl"](0x80000000, 31) == 1
    assert ALU_OPS["sra"](0x80000000, 31) == M
    assert ALU_OPS["sra"](0x40000000, 30) == 1


def test_comparisons():
    assert ALU_OPS["slt"](to_unsigned(-1), 0) == 1
    assert ALU_OPS["sltu"](to_unsigned(-1), 0) == 0
    assert ALU_OPS["slt"](3, 3) == 0


def test_division_riscv_rules():
    # round toward zero
    assert to_signed(ALU_OPS["div"](to_unsigned(-7), 2)) == -3
    assert to_signed(ALU_OPS["rem"](to_unsigned(-7), 2)) == -1
    assert to_signed(ALU_OPS["div"](7, to_unsigned(-2))) == -3
    assert to_signed(ALU_OPS["rem"](7, to_unsigned(-2))) == 1
    # division by zero
    assert ALU_OPS["div"](5, 0) == M
    assert ALU_OPS["divu"](5, 0) == M
    assert ALU_OPS["rem"](5, 0) == 5
    assert ALU_OPS["remu"](5, 0) == 5
    # signed overflow
    assert ALU_OPS["div"](0x80000000, M) == 0x80000000
    assert ALU_OPS["rem"](0x80000000, M) == 0


def test_mulh_variants():
    a, b = 0xFFFFFFFF, 0xFFFFFFFF  # -1 * -1
    assert ALU_OPS["mulh"](a, b) == 0
    assert ALU_OPS["mulhu"](a, b) == 0xFFFFFFFE
    assert ALU_OPS["mulhsu"](a, b) == 0xFFFFFFFF  # -1 * big-unsigned


def test_branches():
    assert BRANCH_OPS["beq"](5, 5)
    assert not BRANCH_OPS["bne"](5, 5)
    assert BRANCH_OPS["blt"](to_unsigned(-1), 0)
    assert not BRANCH_OPS["bltu"](to_unsigned(-1), 0)
    assert BRANCH_OPS["bge"](0, to_unsigned(-1))
    assert BRANCH_OPS["bgeu"](to_unsigned(-1), 0)


def test_load_value_extension():
    assert load_value("lb", 0xFF) == M
    assert load_value("lbu", 0xFF) == 0xFF
    assert load_value("lh", 0x8000) == 0xFFFF8000
    assert load_value("lhu", 0x8000) == 0x8000
    assert load_value("lw", 0xDEADBEEF) == 0xDEADBEEF


def test_hart_identity_arithmetic():
    stamped = p_set_value(0xFFFFFFFF, core=3, hart=2)
    assert stamped & HART_ID_FLAG
    assert join_hart(stamped) == 4 * 3 + 2
    assert stamped & 0xFFFF == 0xFFFF  # low half preserved

    merged = p_merge_value(stamped, 9)
    assert join_hart(merged) == 14
    assert allocated_hart(merged) == 9
    # p_merge drops bit 31 of rs1 per the paper's mask 0x7fff0000
    assert not merged & HART_ID_FLAG


def test_p_set_distinct_per_hart():
    seen = set()
    for core in range(4):
        for hart in range(4):
            seen.add(join_hart(p_set_value(0, core, hart)))
    assert len(seen) == 16
