"""MachineStats aggregation and the DetC type system."""

from repro.compiler import ctypes_ as T
from repro.machine.stats import MachineStats


def test_stats_aggregation():
    stats = MachineStats(2, 4)
    stats.harts[0][0].retired = 10
    stats.harts[0][3].retired = 5
    stats.harts[1][2].retired = 20
    stats.cycles = 10
    assert stats.retired == 35
    assert stats.ipc == 3.5
    assert stats.ipc_per_core == 1.75
    assert stats.retired_by_core() == [15, 20]
    summary = stats.summary()
    assert summary["retired"] == 35 and summary["ipc"] == 3.5


def test_stats_zero_cycles():
    stats = MachineStats(1, 4)
    assert stats.ipc == 0.0


def test_int_types():
    assert T.INT.size == 4 and T.INT.signed
    assert T.UINT.size == 4 and not T.UINT.signed
    assert T.CHAR.size == 1
    assert T.INT.is_integer() and T.INT.is_scalar()
    assert not T.VOID.is_scalar()


def test_pointer_and_array_types():
    ptr = T.PtrType(T.INT)
    assert ptr.size == 4 and ptr.is_pointer() and ptr.is_scalar()
    arr = T.ArrayType(T.INT, 10)
    assert arr.size == 40
    assert not arr.is_scalar()
    char_arr = T.ArrayType(T.CHAR, 10)
    assert char_arr.size == 10 and char_arr.align == 1


def test_struct_layout_natural_alignment():
    s = T.StructType("s")
    s.define([("c", T.CHAR), ("x", T.INT), ("d", T.CHAR)])
    assert s.field("c")[1] == 0
    assert s.field("x")[1] == 4
    assert s.field("d")[1] == 8
    assert s.size == 12   # padded to int alignment
    assert s.align == 4
    assert s.field("nope") is None
    assert s.complete


def test_struct_packed_when_all_chars():
    s = T.StructType("p")
    s.define([("a", T.CHAR), ("b", T.CHAR)])
    assert s.size == 2 and s.align == 1


def test_decay():
    arr = T.ArrayType(T.INT, 4)
    decayed = T.decay(arr)
    assert isinstance(decayed, T.PtrType) and decayed.base is T.INT
    fn = T.FuncType(T.VOID, [])
    assert isinstance(T.decay(fn), T.PtrType)
    assert T.decay(T.INT) is T.INT


def test_usual_arithmetic_conversions():
    assert T.is_unsigned_op(T.UINT, T.INT)
    assert T.is_unsigned_op(T.INT, T.UINT)
    assert not T.is_unsigned_op(T.INT, T.INT)
    assert not T.is_unsigned_op(T.CHAR, T.INT)
