"""More code-generation behaviours: compound lvalues, loop edges, casts,
unsigned loops, arrays of pointers, register-pressure scenarios."""

from helpers import run_c, word, uword


def test_compound_assignment_through_pointer_member():
    source = """
typedef struct { int hits; int pad; } counter_t;
counter_t c;
int out;
void bump(counter_t *p) { p->hits += 5; }
void main() {
    c.hits = 10;
    bump(&c);
    bump(&c);
    out = c.hits;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 20


def test_array_of_pointers():
    source = """
int a = 1; int b = 2; int c = 3;
int out;
void main() {
    int *table[3];
    int i;
    int acc = 0;
    table[0] = &a;
    table[1] = &b;
    table[2] = &c;
    for (i = 0; i < 3; i++)
        acc += *table[i];
    out = acc;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 6


def test_for_without_condition_breaks_out():
    source = """
int out;
void main() {
    int i = 0;
    for (;;) {
        i++;
        if (i == 7) break;
    }
    out = i;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 7


def test_empty_loop_body():
    source = """
int out;
void main() {
    int i;
    for (i = 0; i < 100; i++)
        ;
    out = i;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 100


def test_unsigned_countdown_loop():
    source = """
int out;
void main() {
    unsigned u = 5;
    int n = 0;
    while (u > 0) {
        u--;
        n++;
    }
    out = n;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 5


def test_nested_ternaries():
    source = """
int out;
int classify(int x) {
    return x < 0 ? -1 : (x == 0 ? 0 : 1);
}
void main() {
    out = classify(-5) * 100 + classify(0) * 10 + classify(9);
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == -100 + 0 + 1


def test_cast_int_to_pointer_and_back():
    source = """
int target = 55;
int out1; int out2;
void main() {
    int raw = (int)&target;
    int *p = (int*)raw;
    out1 = *p;
    out2 = (int)p == raw;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out1") == 55
    assert word(machine, program, "out2") == 1


def test_char_loop_over_string_like_array():
    source = """
char data[6] = {3, 1, 4, 1, 5, 0};
int out;
void main() {
    int acc = 0;
    char *p = data;
    while (*p) {
        acc = acc * 10 + *p;
        p++;
    }
    out = acc;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 31415


def test_many_live_locals_use_callee_saved():
    source = """
int out;
void main() {
    int a = 1; int b = 2; int c = 3; int d = 4; int e = 5; int f = 6;
    int g = 7; int h = 8; int i = 9; int j = 10; int k = 11; int l = 12;
    int m = 13; int n = 14;     /* more locals than s-registers */
    out = a+b+c+d+e+f+g+h+i+j+k+l+m+n;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == sum(range(1, 15))


def test_spilled_local_round_trip_through_calls():
    source = """
int out;
int id(int x) { return x; }
void main() {
    int a = 1; int b = 2; int c = 3; int d = 4; int e = 5; int f = 6;
    int g = 7; int h = 8; int i = 9; int j = 10; int k = 11; int l = 12;
    int m = 13; int n = 14;
    out = id(a) + id(n) + id(m);   /* stack-allocated ones survive calls */
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 1 + 14 + 13


def test_negative_modulo_in_loop_guard():
    source = """
int out;
void main() {
    int i;
    int count = 0;
    for (i = -6; i < 6; i++)
        if (i % 2 == 0)
            count++;
    out = count;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 6


def test_globals_in_other_banks_read_write():
    source = """
#include <det_omp.h>
int a __bank(1);
int b __bank(2);
int out;
void main() {
    a = 5;
    b = a * 3;
    out = a + b;
}
"""
    program, machine, _ = run_c(source, cores=4)
    assert word(machine, program, "out") == 20


def test_large_unsigned_literal():
    source = """
unsigned out;
void main() { out = 4000000000U; }
"""
    program, machine, _ = run_c(source)
    assert uword(machine, program, "out") == 4000000000


def test_shadowing_in_nested_blocks():
    source = """
int out;
void main() {
    int x = 1;
    {
        int x = 2;
        {
            int x = 3;
            out = x * 100;
        }
        out += x * 10;
    }
    out += x;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 321


def test_sizeof_array_and_pointer_difference():
    source = """
int v[10];
int out1; int out2;
void main() {
    out1 = sizeof(v);
    out2 = sizeof(int[6]);
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out1") == 40
    assert word(machine, program, "out2") == 24
