"""Active-core gating: the run loop only ticks cores with runnable work.

The gating set must be invisible to the model: cores wake through
``Hart.start`` (the single idle→runnable transition) and are always
iterated in fixed core-index order, so arbitration, event sequencing and
traces match the old all-cores-every-cycle loop exactly (the golden
trace tests pin that globally; here we probe the mechanism directly).
"""

import pytest

from repro.asm import assemble
from repro.machine import LBP, Params
from repro.machine.processor import MachineError

#: a woken hart issues one shared-memory store, then spins forever
STORE_AND_SPIN = """
main:
    lui  t1, 0x80000
    sw   zero, 0(t1)
spin:
    j    spin
"""

#: trivial single-hart program: count down, then halt
COUNTDOWN = """
main:
    li   t1, 50
loop:
    addi t1, t1, -1
    bnez t1, loop
    ebreak
"""


def test_only_core_zero_active_after_load():
    machine = LBP(Params(num_cores=4)).load(assemble(COUNTDOWN))
    assert [core.active for core in machine.cores] == [True, False, False, False]
    assert machine._num_active == 1


def test_idle_cores_are_skipped_and_counted():
    machine = LBP(Params(num_cores=4)).load(assemble(COUNTDOWN))
    stats = machine.run(max_cycles=100_000)
    # cores 1-3 never run: every one of their core-cycles was skipped
    assert stats.skipped_core_cycles >= 3 * stats.cycles - 3
    assert "skipped_core_cycles" in stats.summary()
    # the single-core run itself is unaffected by the machine's width
    alone = LBP(Params(num_cores=1)).load(assemble(COUNTDOWN))
    assert alone.run(max_cycles=100_000).cycles == stats.cycles


def test_simultaneous_wakeups_tick_in_core_index_order():
    """Cores woken by same-cycle events arbitrate by core index.

    The wake events fire in *reverse* core order (core 2's event is
    scheduled first, so it runs first); the run loop must still tick
    core 1 before core 2 on every subsequent cycle, which shows up as
    core 1's store request preceding core 2's in the trace.
    """
    machine = LBP(Params(num_cores=4, trace_enabled=True)).load(
        assemble(STORE_AND_SPIN), start=False)
    entry = machine.program.entry
    wake_cycle = 5

    for core_index in (2, 1):  # deliberately reversed
        hart = machine.cores[core_index].harts[0]
        hart.reserved = True  # make the hart a valid start_pc target
        machine.post(core_index, wake_cycle, "start_pc", (hart.gid, entry))

    with pytest.raises(MachineError):  # the spin loops hit the limit
        machine.run(max_cycles=300)

    stores = [(cycle, core) for cycle, core, hart, kind, payload
              in machine.trace.events if kind == "mem_store_req"]
    assert len(stores) == 2, machine.trace.events
    # identical pipelines started the same cycle: both stores issue at
    # the same cycle, and the trace orders them core 1 first
    assert stores[0][0] == stores[1][0]
    assert [core for _, core in stores] == [1, 2]
    # nothing ran before the wake event
    assert all(cycle >= wake_cycle for cycle, _ in stores)


def test_waking_an_active_core_does_not_double_count():
    machine = LBP(Params(num_cores=4)).load(assemble(COUNTDOWN))
    core = machine.cores[0]
    assert core.active and machine._num_active == 1
    core.activate()  # idempotent
    assert machine._num_active == 1
