"""The hart-activity timeline renderer (the observable figure 3)."""

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.machine.timeline import build_lanes, render

_SOURCE = """
#include <det_omp.h>
int v[8];
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < 8; t++)
        v[t] = t;
}
"""


def _traced_machine():
    program = compile_to_program(_SOURCE, "tl.c")
    machine = LBP(Params(num_cores=2, trace_enabled=True)).load(program)
    machine.run(max_cycles=1_000_000)
    return machine


def test_lanes_cover_all_member_executions():
    machine = _traced_machine()
    lanes, last = build_lanes(machine.trace.events, machine.params.num_harts)
    # 8 member executions + the creator's post-join resume; tiny bodies
    # allow hart-slot reuse, so executions — not lanes — are counted
    executions = sum(len(lane.intervals) for lane in lanes)
    assert executions == 9
    assert last > 0


def test_diagonal_expansion_order():
    """Member k starts after member k-1 — the figure-3 diagonal."""
    machine = _traced_machine()
    starts = [e[0] for e in machine.trace.events if e[3] == "start"]
    assert starts == sorted(starts)
    assert len(starts) == 7      # 7 forked members (hart 0 boots)


def test_render_shape_and_legend():
    machine = _traced_machine()
    lines = render(machine.trace.events, machine.params.num_harts, width=60)
    assert lines[0].startswith("cycles 0..")
    body = lines[1:]
    assert 7 <= len(body) <= 8   # hart-slot reuse can fold two members
    assert body[0].startswith("hart   0")
    # the boot hart shows boot, wait-for-join, join and exit marks
    assert "F" in body[0] and "X" in body[0]
    # forked members show start and end
    assert all("s" in line and "E" in line for line in body[1:])
    # all rows equal width
    assert len({len(line) for line in body}) == 1


def test_render_empty_trace():
    lines = render([], 8)
    assert lines[0].startswith("cycles 0..0")
    # only the boot lane appears (its F mark)
    assert len(lines) == 2


def test_gid_mapping_uses_harts_per_core_argument():
    """The (core, hart) → gid map derives from the machine shape, not the
    memmap default (which only fits default-shaped machines)."""
    events = [(10, 1, 1, "start", None), (20, 1, 1, "p_ret", "end")]
    lanes, last = build_lanes(events, 24, harts_per_core=8)
    assert last == 20
    assert lanes[9].marks == [(10, "s"), (20, "E")]
    assert lanes[9].intervals == [(10, 20)]
    # under the default of 4 the same events land on gid 5 — they must not
    assert not lanes[5].marks and not lanes[5].intervals
