"""Unit tests for the traffic-driven shard auto-tuner (shards="auto").

The tuner must (a) never touch the master machine it calibrates for,
(b) short-circuit to one shard on hosts that cannot run two workers in
parallel, and (c) on capable hosts, score candidate partitions by
measured cross-shard traffic and record a complete decision trail.
"""

import pytest

from repro.compiler import compile_to_program
from repro.machine import LBP, Params
from repro.parsim import ShardedLBP
from repro.parsim.autotune import (
    candidate_shards,
    choose_shards,
    measure_crossings,
)
from repro.workloads.setget import setget_source


def _master(num_cores=4):
    program = compile_to_program(setget_source(16, 64), "setget.c")
    return LBP(Params(num_cores=num_cores)).load(program)


def test_candidates_are_powers_of_two_bounded_by_cores_and_cpus():
    assert candidate_shards(16, 8) == [1, 2, 4, 8]
    assert candidate_shards(4, 64) == [1, 2, 4]
    assert candidate_shards(16, 1) == [1]
    assert candidate_shards(1, 64) == [1]
    assert candidate_shards(6, 6) == [1, 2, 4]


def test_single_cpu_short_circuits_without_calibrating(monkeypatch):
    monkeypatch.setattr("repro.parsim.autotune.usable_cpus", lambda: 1)
    master = _master()
    before = master.cycle
    pick, decision = choose_shards(master)
    assert pick == 1
    assert decision["source"] == "cpu-count"
    assert decision["candidates"] == [1]
    assert "crossings" not in decision
    assert master.cycle == before, "calibration must not touch the master"


def test_calibration_measures_crossings_and_scores(monkeypatch):
    monkeypatch.setattr("repro.parsim.autotune.usable_cpus", lambda: 8)
    master = _master(num_cores=4)
    before_cycle = master.cycle
    pick, decision = choose_shards(master, max_cycles=4096)
    assert decision["source"] == "calibration"
    assert decision["candidates"] == [1, 2, 4]
    assert pick in decision["candidates"]
    assert decision["shards"] == pick
    # one shard never crosses a boundary; finer cuts cross monotonically
    assert decision["crossings"][1] == 0
    assert decision["crossings"][2] <= decision["crossings"][4]
    assert set(decision["scores"]) == {1, 2, 4}
    assert decision["calib_cycles"] >= 1
    # the master machine is untouched: same cycle, and no counting
    # wrapper left shadowing the class's post method
    assert master.cycle == before_cycle
    assert "post" not in vars(master)


def test_measure_crossings_counts_against_each_partition():
    master = _master(num_cores=4)
    cycles_run, crossings = measure_crossings(master, 2048, [1, 2, 4])
    assert cycles_run >= 1
    assert crossings[1] == 0
    assert 0 <= crossings[2] <= crossings[4]


def test_sharded_lbp_resolves_auto_on_first_run():
    machine = ShardedLBP(shards="auto", master=_master())
    assert machine.shards == "auto"
    assert machine.auto_decision is None
    machine.run(max_cycles=50_000_000)
    assert isinstance(machine.shards, int) and machine.shards >= 1
    assert machine.auto_decision["shards"] == machine.shards
    assert machine.auto_decision["requested"] == "auto"
    assert machine.halted


def test_auto_rejects_nonsense_shard_strings():
    with pytest.raises((ValueError, TypeError)):
        ShardedLBP(shards="many", master=_master())
