"""Workload generators: all sources compile for all configurations."""

import pytest

from repro.compiler import compile_to_program
from repro.workloads.matmul import (
    MATMUL_VERSIONS,
    matmul_expected_value,
    matmul_sequential_source,
    matmul_source,
)
from repro.workloads.sensors import actuator_addr, sensor_addr, sensors_source
from repro.workloads.setget import setget_source
from repro import memmap


@pytest.mark.parametrize("version", MATMUL_VERSIONS)
@pytest.mark.parametrize("h", [4, 16, 64])
def test_matmul_sources_compile(version, h):
    program = compile_to_program(matmul_source(version, h, scale=max(1, h // 8)))
    assert program.entry == program.symbol("_start")
    assert "LBP_parallel_start" in program.symbols


def test_matmul_h_must_be_multiple_of_four():
    with pytest.raises(ValueError):
        matmul_source("base", 6)


def test_matmul_unknown_version():
    with pytest.raises(ValueError):
        matmul_source("turbo", 16)


def test_matmul_expected_values():
    assert matmul_expected_value("base", 16) == 8          # CX = h/2
    assert matmul_expected_value("base", 16, scale=2) == 4
    assert matmul_expected_value("tiled", 16) == 8          # S passes × S/2
    assert matmul_expected_value("tiled", 16, scale=4) == 2
    assert matmul_expected_value("tiled", 256) == 128


def test_matmul_scaled_work_is_balanced_across_versions():
    """K-scaling keeps per-thread MAC counts equal between versions."""
    for h, scale in ((16, 2), (64, 4), (256, 16)):
        s = {"16": 4, "64": 8, "256": 16}[str(h)]
        base_macs = h * (h // 2) // scale          # per thread: CZ × CKW
        kt = max(1, s // scale)
        tiled_macs = kt * s * s * (s // 2)
        assert tiled_macs == base_macs, (h, scale)


def test_sequential_source_has_no_pragma():
    source = matmul_sequential_source(16)
    assert "#pragma" not in source
    program = compile_to_program(source)
    assert "__omp_worker_0" not in program.symbols


def test_distributed_layout_is_bank_symmetric():
    source = matmul_source("distributed", 16)
    # every bank receives identically sized X/Y/Z chunks in the same order
    for bank in range(4):
        assert "XB%d" % bank in source
        assert "YB%d" % bank in source
        assert "ZB%d" % bank in source


def test_setget_source_compiles_various_chunks():
    for chunk in (8, 64, 256):
        program = compile_to_program(setget_source(16, chunk))
        assert "thread_set" in program.symbols
        assert "thread_get" in program.symbols


def test_sensor_addresses_in_expected_banks():
    assert sensor_addr(4, 0) >= memmap.global_bank_base(3)
    assert sensor_addr(4, 3) - sensor_addr(4, 0) == 48
    assert actuator_addr() < memmap.global_bank_base(1)


def test_sensors_source_compiles():
    program = compile_to_program(sensors_source(4, 3))
    assert "fusion" in program.symbols
    assert "get_sensor0" in program.symbols
    assert "get_sensor3" in program.symbols
