"""Sanitizer units: synthetic observation streams, state round-trips,
report formatting, localization, and the refusal surfaces.

The integration suites pin end-to-end behaviour (seeded corpus, clean
sweep); here the replay machinery is driven directly with hand-written
observation records so each happens-before rule is tested in isolation,
without a machine run behind it.
"""

import json

import pytest

from repro.asm import assemble
from repro.fastsim import FastLBP
from repro.machine import LBP, MachineError, Params
from repro.sanitize import Race, RaceReport, Sanitizer
from repro.sanitize.detector import _overlaps_sync
from repro.sanitize.report import _Locator

A = 0x80000000  # first global bank

LOCATOR_SOURCE = """
main:
    addi t0, t0, 1
    addi t0, t0, 2
__omp_body_0:
    addi t1, t1, 1
.Lloop:
    addi t1, t1, 2
    addi t1, t1, 3
after:
    ebreak
.data
w:  .word 0
"""


def _program():
    return assemble(LOCATOR_SOURCE)


def _analyze(sanitizer, sync=None):
    return sanitizer.analyze(_program(), Params(num_cores=1), sync=sync)


# ---- happens-before rules on synthetic streams -------------------------------


def test_fork_edge_orders_prior_stores_only():
    """A store before the p_fc is covered by the fork edge; a store
    after it races with the child's read."""
    s = Sanitizer()
    s.record(0, (1, "acc", 0, 3, A, 4, 1, 0x0))      # store, before fork
    s.record(0, (2, "fork", 0, 5, 1))                # fork covers tags <= 5
    s.record(0, (3, "start", 1, 0))
    s.record(0, (4, "acc", 1, 1, A, 4, 0, 0x10))     # child read: ordered
    s.record(0, (5, "acc", 0, 9, A + 4, 4, 1, 0x4))  # store, after fork
    s.record(0, (6, "acc", 1, 2, A + 4, 4, 0, 0x14))  # child read: race
    report = _analyze(s)
    assert len(report) == 1
    race = report.races[0]
    assert race.addr == A + 4
    assert race.kind == "write-read"
    assert (race.a["gid"], race.a["pc"]) == (0, 0x4)
    assert (race.b["gid"], race.b["pc"]) == (1, 0x14)
    assert report.accesses == 4
    assert report.observations == 6
    assert report.blocked == 0


def test_transmission_edge_swre_lwre():
    """store; p_swre -> refill -> p_lwre; load — ordered, clean."""
    s = Sanitizer()
    s.record(0, (1, "fork", 0, 1, 1))
    s.record(0, (2, "start", 1, 0))
    s.record(0, (3, "acc", 1, 2, A, 4, 1, 0x10))     # child store
    s.record(0, (4, "swre", 1, 3, 0, 0))             # then send slot 0
    s.record(0, (5, "refill", 0, 0, 1))              # buffer fills
    s.record(0, (6, "lwre", 0, 7, 0))                # parent consumes
    s.record(0, (7, "acc", 0, 8, A, 4, 0, 0x4))      # parent load: ordered
    report = _analyze(s)
    assert report.clean, report.format()

    # drop the transmission: same accesses, now a race
    s2 = Sanitizer()
    s2.record(0, (1, "fork", 0, 1, 1))
    s2.record(0, (2, "start", 1, 0))
    s2.record(0, (3, "acc", 1, 2, A, 4, 1, 0x10))
    s2.record(0, (7, "acc", 0, 8, A, 4, 0, 0x4))
    assert len(_analyze(s2)) == 1


def test_dynamic_pair_dedup_counts():
    """The same static pc pair racing on N addresses is one Race x N."""
    s = Sanitizer()
    s.record(0, (1, "fork", 0, 1, 1))
    s.record(0, (2, "start", 1, 0))
    for i in range(4):
        s.record(0, (3 + i, "acc", 0, 5 + i, A + 4 * i, 4, 1, 0x0))
        s.record(0, (9 + i, "acc", 1, 2 + i, A + 4 * i, 4, 1, 0x10))
    report = _analyze(s)
    assert len(report) == 1
    assert report.races[0].count == 4
    assert report.races[0].addr == A  # first dynamic occurrence


def test_partial_word_overlap_detected():
    """A byte store racing a word load of the containing word."""
    s = Sanitizer()
    s.record(0, (1, "fork", 0, 1, 1))
    s.record(0, (2, "start", 1, 0))
    s.record(0, (3, "acc", 0, 5, A + 2, 1, 1, 0x0))   # sb into byte 2
    s.record(0, (4, "acc", 1, 2, A, 4, 0, 0x10))      # lw of the word
    assert len(_analyze(s)) == 1


def test_same_hart_never_races():
    s = Sanitizer()
    s.record(0, (1, "acc", 0, 1, A, 4, 1, 0x0))
    s.record(0, (2, "acc", 0, 2, A, 4, 1, 0x4))  # same hart, unordered tags ok
    assert _analyze(s).clean


def test_sync_cell_release_acquire():
    """Declared sync range: store=release, load=acquire, orders the data."""

    def stream():
        s = Sanitizer()
        s.record(0, (1, "fork", 0, 1, 1))
        s.record(0, (2, "start", 1, 0))
        s.record(0, (3, "acc", 0, 5, A + 8, 4, 1, 0x0))   # data store
        s.record(0, (4, "acc", 0, 6, A, 4, 1, 0x4))       # flag store
        s.record(0, (5, "acc", 1, 2, A, 4, 0, 0x10))      # flag poll
        s.record(0, (6, "acc", 1, 3, A + 8, 4, 0, 0x14))  # data read
        return s

    # undeclared: both words race
    assert len(_analyze(stream())) == 2
    # declared via analyze(sync=...): clean, and echoed in the report
    report = _analyze(stream(), sync=[(A, 4)])
    assert report.clean, report.format()
    assert report.sync_ranges == [[A, 4]]
    # declared via add_sync on the sanitizer itself: same result
    s = stream()
    s.add_sync(A, 4)
    assert _analyze(s).clean


def test_blocked_receives_counted_and_run_completes():
    """A referential-order cycle (recv program-before its send on both
    sides) cannot replay; the edges are dropped and counted."""
    s = Sanitizer()
    s.record(0, (1, "swcv", 0, 5, 1, 0))   # hart0 sends at tag 5
    s.record(0, (2, "swcv", 1, 5, 0, 1))   # hart1 sends at tag 5
    s.record(0, (3, "lwcv", 0, 2, 1))      # but receives at tag 2
    s.record(0, (4, "lwcv", 1, 2, 0))
    report = _analyze(s)
    assert report.blocked == 2
    assert report.observations == 4


def test_overlaps_sync_boundaries():
    ranges = [(100, 8)]
    assert _overlaps_sync(ranges, 100, 4)
    assert _overlaps_sync(ranges, 104, 4)
    assert _overlaps_sync(ranges, 99, 2)      # straddles the base
    assert _overlaps_sync(ranges, 107, 4)     # straddles the end
    assert not _overlaps_sync(ranges, 96, 4)  # ends exactly at base
    assert not _overlaps_sync(ranges, 108, 4)  # starts exactly at end


# ---- observation store -------------------------------------------------------


def test_observations_merge_across_domains_by_cycle():
    s = Sanitizer()
    s.record(1, (2, "acc", 4, 1, A, 4, 0, 0x0))
    s.record(0, (1, "acc", 0, 1, A, 4, 0, 0x0))
    s.record(0, (3, "acc", 0, 2, A, 4, 0, 0x4))
    cycles = [rec[0] for rec in s.observations()]
    assert cycles == [1, 2, 3]
    assert len(s) == 3


def test_state_dict_roundtrip():
    s = Sanitizer()
    s.record(1, (2, "acc", 4, 1, A, 4, 0, 0x0))
    s.record(0, (1, "fork", 0, 1, 1))
    s.add_sync(A, 8)
    other = Sanitizer()
    other.load_state_dict(s.state_dict())
    assert list(other.observations()) == list(s.observations())
    assert other.sync_ranges == [(A, 8)]
    assert other.state_dict() == s.state_dict()


def test_domain_state_dict_gather():
    """Shard gathering: per-domain buffers move one domain at a time."""
    s = Sanitizer()
    s.record(0, (1, "acc", 0, 1, A, 4, 0, 0x0))
    s.record(1, (2, "acc", 4, 1, A, 4, 0, 0x0))
    parent = Sanitizer()
    for domain in (0, 1, 2):
        parent.load_domain_state_dict(domain, s.domain_state_dict(domain))
    assert list(parent.observations()) == list(s.observations())
    assert s.domain_state_dict(2) == []  # untouched domain is empty
    # loading an empty list removes a stale buffer
    parent.load_domain_state_dict(1, [])
    assert len(parent) == 1


# ---- report / localization ---------------------------------------------------


def test_locator_symbols_and_regions():
    program = _program()
    locator = _Locator(program)
    body = program.symbol("__omp_body_0")
    inner = program.symbol(".Lloop")
    assert locator.symbol(body) == "__omp_body_0"
    assert locator.symbol(inner + 4) == ".Lloop+0x4"
    # the region skips compiler-internal .L labels
    assert locator.region(inner + 4) == "omp region 0 (__omp_body_0)"
    assert locator.region(program.symbol("after")) == "after"
    assert "addi" in locator.disasm(program.symbol("main"))


def test_report_json_shape_and_format():
    s = Sanitizer()
    s.record(0, (1, "fork", 0, 1, 1))
    s.record(0, (2, "start", 1, 0))
    s.record(0, (3, "acc", 0, 5, A, 4, 1, 0x0))
    s.record(0, (4, "acc", 1, 2, A, 4, 1, 0x10))
    report = _analyze(s)
    assert bool(report) and len(report) == 1 and not report.clean
    payload = json.loads(report.to_json())
    assert payload["clean"] is False
    (race,) = payload["races"]
    assert race["kind"] == "write-write"
    assert race["addr"] == A
    assert set(race["a"]) == {"gid", "pc", "cycle", "write", "disasm",
                              "symbol", "region"}
    text = report.format()
    assert "write-write race on 0x80000000" in text
    assert "hart 0" in text and "hart 1" in text


def test_clean_report_format():
    report = _analyze(Sanitizer())
    assert report.clean and not report and len(report) == 0
    assert "no races" in report.format()
    assert json.loads(report.to_json())["clean"] is True


# ---- refusal surfaces --------------------------------------------------------


def test_fastsim_refuses_sanitize():
    with pytest.raises(NotImplementedError, match="sanitize"):
        FastLBP(Params(num_cores=1), sanitize=True)
    assert FastLBP(Params(num_cores=1)).sanitizer is None


def test_unsanitized_machine_refuses_race_report():
    machine = LBP(Params(num_cores=1))
    assert machine.sanitizer is None
    with pytest.raises(MachineError, match="sanitize"):
        machine.race_report()


def test_sanitized_machine_exposes_sanitizer():
    machine = LBP(Params(num_cores=1), sanitize=True)
    assert isinstance(machine.sanitizer, Sanitizer)
