"""I/O devices: scripted/seeded inputs, timers, actuators, MMIO wiring."""

import pytest

from repro.asm import assemble
from repro.machine import LBP, Params
from repro.machine.io import (
    Actuator,
    RandomInput,
    ScriptedInput,
    Timer,
    attach_input,
    attach_output,
)
from repro import memmap


def test_scripted_input_sequence():
    device = ScriptedInput([(100, 7), (250, 9)])
    assert not device.ready(99)
    assert device.ready(100)
    assert device.value(120) == 7
    assert device.consumed_at == [120]
    assert not device.ready(200)      # second event not due yet
    assert device.ready(250)
    assert device.value(251) == 9
    assert not device.ready(9999)     # exhausted


def test_scripted_input_value_before_ready_is_zero():
    device = ScriptedInput([(100, 7)])
    assert device.value(50) == 0
    assert device.cursor == 0         # not consumed


def test_scripted_input_is_read_only():
    device = ScriptedInput([(1, 2)])
    with pytest.raises(ValueError):
        device.accept(5, 1)


def test_random_input_deterministic_per_seed():
    first = RandomInput(seed=42, count=5)
    second = RandomInput(seed=42, count=5)
    third = RandomInput(seed=43, count=5)
    assert first.events == second.events
    assert first.events != third.events
    assert all(cycle > 0 for cycle, _value in first.events)


def test_timer_ticks():
    timer = Timer(period=100, ticks=3)
    assert timer.events == [(100, 1), (200, 2), (300, 3)]


def test_actuator_logs_writes():
    actuator = Actuator()
    actuator.accept(10, 5)
    actuator.accept(20, 6)
    assert actuator.writes == [(10, 5), (20, 6)]
    assert actuator.value(25) == 6
    assert actuator.ready(0) == 1


def test_mmio_polling_from_assembly():
    """A hart actively waits on the status word, then reads the value."""
    base = memmap.global_bank_base(0) + 0x8000
    source = """
main:
    li t1, %d          # status address
poll:
    lw t2, 0(t1)
    beqz t2, poll
    lw t3, 4(t1)       # value
    la t4, got
    sw t3, 0(t4)
    ebreak
.data
got: .word 0
""" % base
    program = assemble(source)
    machine = LBP(Params(num_cores=1)).load(program)
    attach_input(machine, base, ScriptedInput([(150, 4242)]))
    stats = machine.run(max_cycles=50_000)
    assert machine.read_word(program.symbol("got")) == 4242
    assert stats.cycles > 150  # actually waited for the device


def test_mmio_output_write_from_assembly():
    base = memmap.global_bank_base(0) + 0x8000
    source = """
main:
    li t1, %d
    li t2, 99
    sw t2, 4(t1)
    ebreak
""" % base
    program = assemble(source)
    machine = LBP(Params(num_cores=1)).load(program)
    actuator = attach_output(machine, base, Actuator())
    machine.run(max_cycles=10_000)
    assert len(actuator.writes) == 1
    assert actuator.writes[0][1] == 99


def test_status_port_rejects_writes():
    base = memmap.global_bank_base(0) + 0x8000
    source = """
main:
    li t1, %d
    sw zero, 0(t1)     # writing the status word is a device error
    ebreak
""" % base
    program = assemble(source)
    machine = LBP(Params(num_cores=1)).load(program)
    attach_input(machine, base, ScriptedInput([]))
    with pytest.raises(ValueError, match="read-only"):
        machine.run(max_cycles=10_000)
