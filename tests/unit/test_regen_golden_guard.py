"""The golden-trace regenerator must refuse a dirty working tree.

Golden digests are only trustworthy when attributable to one commit; a
regeneration that silently bakes in uncommitted model edits would defeat
the whole regression scheme.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(
    os.path.dirname(__file__), "..", "data"))
sys.path.insert(0, os.path.join(
    os.path.dirname(__file__), "..", "integration"))

import regen_golden  # noqa: E402


@pytest.fixture()
def stubbed(monkeypatch, tmp_path):
    """Point the regenerator at a stub measurement and a scratch file."""
    golden_path = tmp_path / "golden.json"
    monkeypatch.setattr(regen_golden, "GOLDEN_PATH", str(golden_path))
    monkeypatch.setattr(regen_golden, "WORKLOADS", {"stub": None})
    monkeypatch.setattr(regen_golden, "measure", lambda name: {"cycles": 1})
    return golden_path


def test_refuses_dirty_tree(stubbed, monkeypatch, capsys):
    monkeypatch.setattr(regen_golden, "working_tree_dirty",
                        lambda: [" M src/repro/machine/processor.py"])
    assert regen_golden.main([]) == 1
    err = capsys.readouterr().err
    assert "refusing" in err and "processor.py" in err
    assert not stubbed.exists()  # nothing was written


def test_force_overrides_dirty_tree(stubbed, monkeypatch, capsys):
    monkeypatch.setattr(regen_golden, "working_tree_dirty",
                        lambda: [" M src/repro/machine/processor.py"])
    assert regen_golden.main(["--force"]) == 0
    assert json.loads(stubbed.read_text()) == {"stub": {"cycles": 1}}


def test_clean_tree_regenerates(stubbed, monkeypatch):
    monkeypatch.setattr(regen_golden, "working_tree_dirty", lambda: [])
    assert regen_golden.main([]) == 0
    assert json.loads(stubbed.read_text()) == {"stub": {"cycles": 1}}


def test_working_tree_dirty_reports_porcelain_lines():
    lines = regen_golden.working_tree_dirty()
    assert isinstance(lines, list)
    assert all(isinstance(line, str) and line.strip() for line in lines)
