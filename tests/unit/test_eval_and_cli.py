"""The evaluation harness, paper reference data, and the CLI."""

import pytest

from repro.cli import main as cli_main
from repro.eval import (
    PAPER_FIG19,
    PAPER_FIG20,
    PAPER_FIG21,
    format_rows,
    run_matmul_experiment,
)
from repro.workloads.matmul import MATMUL_VERSIONS


def test_paper_data_covers_all_versions():
    for figure in (PAPER_FIG19, PAPER_FIG20, PAPER_FIG21):
        assert set(figure["rows"]) == set(MATMUL_VERSIONS)
        assert figure["machine"]["harts"] == 4 * figure["machine"]["cores"]
        assert figure["relations"]


def test_paper_quoted_values_present():
    assert PAPER_FIG19["rows"]["base"]["retired"] == 16722
    assert PAPER_FIG19["rows"]["tiled"]["ipc"] == 3.67
    assert PAPER_FIG21["rows"]["tiled"]["cycles"] == 1_180_000
    assert PAPER_FIG21["xeon_phi"]["cycles"] == 391_000


def test_run_matmul_experiment_row_shape():
    row = run_matmul_experiment("base", 8, 2, scale=2, simulator="cycle")
    assert row["workload"] == "matmul"
    assert row["version"] == "base"
    assert row["cycles"] > 0 and row["retired"] > 0
    assert 0 < row["ipc"] <= 2.0
    assert row["simulator"] == "cycle"


def test_run_matmul_experiment_rejects_bad_simulator():
    with pytest.raises(ValueError):
        run_matmul_experiment("base", 8, 2, simulator="magic")


def test_format_rows_with_and_without_paper():
    rows = {"base": {"cycles": 100, "ipc": 1.5, "retired": 120}}
    bare = format_rows(rows, None, "title")
    assert "title" in bare and "base" in bare
    with_paper = format_rows(rows, PAPER_FIG19)
    assert "16722" in with_paper
    assert "paper's claims:" in with_paper


def _write(tmp_path, text):
    path = tmp_path / "prog.c"
    path.write_text(text)
    return str(path)


_PROG = """
#include <det_omp.h>
int v[4];
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < 4; t++)
        v[t] = t + 40;
}
"""


def test_cli_compile(tmp_path, capsys):
    assert cli_main(["compile", _write(tmp_path, _PROG)]) == 0
    out = capsys.readouterr().out
    assert "LBP_parallel_start" in out
    assert "p_fc" in out and "p_jalr" in out


def test_cli_disasm(tmp_path, capsys):
    assert cli_main(["disasm", _write(tmp_path, _PROG)]) == 0
    out = capsys.readouterr().out
    assert "main:" in out and "_start:" in out


def test_cli_run_with_globals(tmp_path, capsys):
    assert cli_main(["run", _write(tmp_path, _PROG),
                     "--cores", "1", "--print", "v:4"]) == 0
    out = capsys.readouterr().out
    assert "[40, 41, 42, 43]" in out
    assert "halt     : exit" in out


def test_cli_run_fast_simulator(tmp_path, capsys):
    assert cli_main(["run", _write(tmp_path, _PROG),
                     "--cores", "1", "--sim", "fast", "--print", "v:4"]) == 0
    assert "[40, 41, 42, 43]" in capsys.readouterr().out


def test_cli_run_assembly_file(tmp_path, capsys):
    path = tmp_path / "prog.s"
    path.write_text("main:\n    li a0, 1\n    ebreak\n")
    assert cli_main(["run", str(path), "--cores", "1"]) == 0
    assert "retired  : 2" in capsys.readouterr().out


def test_cli_trace(tmp_path, capsys):
    assert cli_main(["run", _write(tmp_path, _PROG),
                     "--cores", "1", "--trace", "--trace-limit", "5"]) == 0
    out = capsys.readouterr().out
    assert "at cycle" in out


def test_cli_trace_kinds_filters_events(tmp_path, capsys):
    assert cli_main(["run", _write(tmp_path, _PROG), "--cores", "1",
                     "--trace-kinds", "mem_store,fork",
                     "--trace-limit", "10000"]) == 0
    out = capsys.readouterr().out
    trace_lines = [line for line in out.splitlines() if "at cycle" in line]
    assert trace_lines  # the filter implies --trace
    assert all(" mem_store " in line or " fork " in line
               for line in trace_lines)
    assert any(" fork " in line for line in trace_lines)
    assert not any(" mem_load " in line for line in trace_lines)


def test_cli_trace_kinds_subset_of_full_trace(tmp_path, capsys):
    assert cli_main(["run", _write(tmp_path, _PROG), "--cores", "1",
                     "--trace", "--trace-limit", "10000"]) == 0
    full = [line for line in capsys.readouterr().out.splitlines()
            if " mem_store " in line]
    assert cli_main(["run", _write(tmp_path, _PROG), "--cores", "1",
                     "--trace-kinds", "mem_store",
                     "--trace-limit", "10000"]) == 0
    filtered = [line for line in capsys.readouterr().out.splitlines()
                if "at cycle" in line]
    assert filtered == full  # same events, same order — only non-matching dropped


def test_cli_snapshot_flags_rejected_on_fast_sim(tmp_path, capsys):
    path = _write(tmp_path, _PROG)
    for flags in (["--stop-at-cycle", "10"], ["--snapshot-every", "10"],
                  ["--snapshot-out", str(tmp_path / "x.lbpsnap")],
                  ["--resume", str(tmp_path / "x.lbpsnap")]):
        assert cli_main(["run", path, "--sim", "fast"] + flags) == 2
        assert "does not support snapshot" in capsys.readouterr().err


def test_cli_run_requires_source_unless_resuming(capsys):
    assert cli_main(["run"]) == 2
    assert "source file is required" in capsys.readouterr().err


def test_cli_cache_subcommands(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("LBP_CACHE_DIR", str(tmp_path / "cache"))
    assert cli_main(["cache", "stats"]) == 0
    assert "entries" in capsys.readouterr().out

    from repro.snapshot import RunCache

    cache = RunCache()
    cache.put(cache.key_for(inputs="cli-test"), {"cycles": 7})
    assert cli_main(["cache", "ls"]) == 0
    assert "1 entry" in capsys.readouterr().out
    assert cli_main(["cache", "clear"]) == 0
    assert "removed 1 entry" in capsys.readouterr().out
    assert cli_main(["cache", "ls"]) == 0
    assert "0 entries" in capsys.readouterr().out


def test_cli_run_metrics_and_stats_json(tmp_path, capsys):
    import json

    stats_path = tmp_path / "stats.json"
    metrics_path = tmp_path / "metrics.json"
    assert cli_main(["run", _write(tmp_path, _PROG), "--cores", "1",
                     "--metrics", "--metrics-interval", "64",
                     "--stats-json", str(stats_path),
                     "--metrics-out", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert "stall attribution" in out and "identity holds" in out

    stats = json.loads(stats_path.read_text())
    assert stats["halt_reason"] == "exit"
    by_hart = sum(hart["retired"] for core in stats["state"]["harts"]
                  for hart in core)
    assert sum(stats["retired_by_core"]) == by_hart

    report = json.loads(metrics_path.read_text())
    assert report["accounted"] is True
    assert report["retired"] + report["stall_cycles"] == report["stage_cycles"]


def test_cli_run_metrics_rejected_on_fast_sim(tmp_path, capsys):
    assert cli_main(["run", _write(tmp_path, _PROG), "--sim", "fast",
                     "--metrics"]) == 2
    assert "metrics" in capsys.readouterr().err


def test_cli_metrics_cannot_be_enabled_mid_run(tmp_path, capsys):
    path = _write(tmp_path, _PROG)
    snap = tmp_path / "pause.lbpsnap"
    assert cli_main(["run", path, "--cores", "1", "--stop-at-cycle", "20",
                     "--snapshot-out", str(snap)]) == 0
    capsys.readouterr()
    assert cli_main(["run", "--resume", str(snap), "--metrics"]) == 2
    assert "mid-run" in capsys.readouterr().err


def test_cli_observe_writes_all_formats(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.json"
    csv = tmp_path / "windows.csv"
    report = tmp_path / "report.json"
    assert cli_main(["observe", _write(tmp_path, _PROG), "--cores", "1",
                     "--metrics-interval", "64",
                     "--perfetto", str(trace), "--csv", str(csv),
                     "--json", str(report)]) == 0
    out = capsys.readouterr().out
    assert "stall attribution" in out and "perfetto" in out

    from repro.observe import validate_chrome_trace

    data = json.loads(trace.read_text())
    assert validate_chrome_trace(data) == []
    assert csv.read_text().startswith("window,start,end")
    assert json.loads(report.read_text())["accounted"] is True


def test_cli_experiments_cache_hits_on_second_run(tmp_path, capsys):
    argv = ["experiments", "--h", "16", "--cores", "4", "--scale", "8",
            "--sim", "fast", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache")]
    assert cli_main(argv) == 0
    cold = capsys.readouterr()
    assert "miss(es)" in cold.err and "0 hit(s)" in cold.err
    assert cli_main(argv) == 0
    warm = capsys.readouterr()
    assert "0 miss(es)" in warm.err
    assert warm.out == cold.out  # byte-identical figure
