"""The run cache as a *managed store*: atomic writes, LRU gc, stats.

The serving daemon (PR 7) keeps a long-lived cache under concurrent
writers, so the store's contracts harden from "append-only scratch dir"
to: publishes are atomic (temp file + ``os.replace``), concurrent puts
of one key are harmless, ``get`` refreshes recency, and ``gc`` evicts
stale-then-LRU down to a byte budget without ever serving a torn read.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.snapshot.cache import RunCache, _TMP_MARK


def _fill(cache, keys, value_pad=0):
    for key in keys:
        cache.put(key, {"k": key, "pad": "x" * value_pad})


def _set_mtime(cache, key, when):
    os.utime(cache._entry_path(key), (when, when))


KEYS = ["aa" + "0" * 62, "ab" + "0" * 62, "cc" + "0" * 62]


def test_get_bumps_mtime_recency(tmp_path):
    cache = RunCache(str(tmp_path))
    _fill(cache, KEYS[:1])
    past = time.time() - 1000
    _set_mtime(cache, KEYS[0], past)
    assert cache.entries()[0][3] == pytest.approx(past, abs=2)
    cache.get(KEYS[0])
    assert cache.entries()[0][3] == pytest.approx(time.time(), abs=5)


def test_gc_evicts_lru_first_to_byte_budget(tmp_path):
    cache = RunCache(str(tmp_path))
    _fill(cache, KEYS)
    now = time.time()
    # recency order (oldest first): KEYS[1], KEYS[2], KEYS[0]
    _set_mtime(cache, KEYS[1], now - 300)
    _set_mtime(cache, KEYS[2], now - 200)
    _set_mtime(cache, KEYS[0], now - 100)
    per_entry = cache.entries()[0][1]
    summary = cache.gc(max_bytes=2 * per_entry)
    assert summary["evicted"] == 1
    assert cache.get(KEYS[1]) is None  # the LRU entry went first
    assert cache.get(KEYS[2]) is not None and cache.get(KEYS[0]) is not None
    # tighter budget: evicts the *next* least-recently-used (pin mtimes —
    # the gets above bumped both within filesystem timestamp granularity)
    _set_mtime(cache, KEYS[2], now - 200)
    _set_mtime(cache, KEYS[0], now - 100)
    summary = cache.gc(max_bytes=per_entry)
    assert summary["evicted"] == 1 and cache.get(KEYS[2]) is None
    assert cache.evictions == 2  # counter accumulates across sweeps


def test_hit_refreshes_entry_out_of_eviction_order(tmp_path):
    cache = RunCache(str(tmp_path))
    _fill(cache, KEYS[:2])
    old = time.time() - 1000
    _set_mtime(cache, KEYS[0], old)
    _set_mtime(cache, KEYS[1], old - 1)
    cache.get(KEYS[1])  # the older entry is *used*: now the newer one is LRU
    per_entry = cache.entries()[0][1]
    cache.gc(max_bytes=per_entry)
    assert cache.get(KEYS[0]) is None
    assert cache.get(KEYS[1]) is not None


def test_gc_max_age_drops_unused_entries(tmp_path):
    cache = RunCache(str(tmp_path))
    _fill(cache, KEYS)
    now = time.time()
    _set_mtime(cache, KEYS[0], now - 5000)
    summary = cache.gc(max_age_s=3600, now=now)
    assert summary["evicted"] == 1 and summary["remaining"] == 2
    assert cache.get(KEYS[0]) is None


def test_gc_sweeps_stale_tmp_keeps_fresh_tmp(tmp_path):
    cache = RunCache(str(tmp_path))
    _fill(cache, KEYS[:1])
    shard = os.path.dirname(cache._entry_path(KEYS[0]))
    stale = os.path.join(shard, "dead.json.123.0" + _TMP_MARK)
    fresh = os.path.join(shard, "live.json.456.0" + _TMP_MARK)
    for path in (stale, fresh):
        with open(path, "w") as handle:
            handle.write("{")
    os.utime(stale, (time.time() - 600, time.time() - 600))
    summary = cache.gc()
    assert summary["swept_tmp"] == 1
    assert not os.path.exists(stale)
    assert os.path.exists(fresh)  # a live writer's staging file survives
    assert cache.get(KEYS[0]) is not None  # entries untouched by tmp sweep


def test_stats_histogram_and_disk_bytes(tmp_path):
    cache = RunCache(str(tmp_path))
    _fill(cache, KEYS)
    cache.put(KEYS[0], {"k": KEYS[0], "pad": ""}, snapshot_bytes=b"s" * 100)
    now = time.time()
    _set_mtime(cache, KEYS[0], now - 10)           # <1m
    _set_mtime(cache, KEYS[1], now - 600)          # <1h
    _set_mtime(cache, KEYS[2], now - 8 * 86400)    # >=7d
    stats = cache.stats(now=now)
    assert stats["age_histogram"] == {"<1m": 1, "<1h": 1, "<1d": 0,
                                      "<7d": 0, ">=7d": 1}
    assert stats["entries"] == 3
    assert stats["snapshot_bytes"] == 100
    assert stats["disk_bytes"] == stats["entry_bytes"] + 100
    assert stats["evictions"] == 0


def test_eviction_removes_snapshot_sidecar(tmp_path):
    cache = RunCache(str(tmp_path))
    cache.put(KEYS[0], {"k": 1}, snapshot_bytes=b"snap")
    assert cache.snapshot_path(KEYS[0]) is not None
    cache.gc(max_bytes=0)
    assert cache.snapshot_path(KEYS[0]) is None
    assert cache.get(KEYS[0]) is None


def _hammer(root, key, rounds):
    cache = RunCache(root)
    for _ in range(rounds):
        cache.put(key, {"k": key, "payload": list(range(32))})
        entry = cache.get(key)
        # no torn read is ever visible, whoever is mid-publish
        assert entry is not None and entry["value"]["payload"] == list(range(32))
    os._exit(0)


def test_concurrent_same_key_puts_are_atomic(tmp_path):
    """Process-pool hammer: N writers republish one key; readers never
    see partial JSON and no staging litter survives."""
    context = multiprocessing.get_context("fork")
    root = str(tmp_path)
    key = KEYS[0]
    workers = [context.Process(target=_hammer, args=(root, key, 40))
               for _ in range(4)]
    for proc in workers:
        proc.start()
    for proc in workers:
        proc.join(60)
        assert proc.exitcode == 0
    cache = RunCache(root)
    entry = cache.get(key)
    assert entry["value"] == {"k": key, "payload": list(range(32))}
    shard = os.path.dirname(cache._entry_path(key))
    leftovers = [name for name in os.listdir(shard)
                 if name.endswith(_TMP_MARK)]
    assert leftovers == []  # every publish either replaced or cleaned up
    # the published file is one complete JSON document
    with open(cache._entry_path(key)) as handle:
        assert json.load(handle)["key"] == key


def test_publish_failure_cleans_staging(tmp_path):
    cache = RunCache(str(tmp_path))
    path = cache._entry_path(KEYS[0])
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with pytest.raises(TypeError):
        cache._publish(path, 12345)  # neither bytes nor str
    assert [name for name in os.listdir(os.path.dirname(path))
            if name.endswith(_TMP_MARK)] == []
