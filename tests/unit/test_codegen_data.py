"""Data: globals, initializers, arrays, structs, pointers, banks, char."""

from repro import memmap
from helpers import run_c, uword, word


def test_global_initializers():
    source = """
int a = 42;
int b = -7;
int c = 0x1234;
unsigned d = 0xFFFFFFFFU;
void main() { }
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "a") == 42
    assert word(machine, program, "b") == -7
    assert word(machine, program, "c") == 0x1234
    assert uword(machine, program, "d") == 0xFFFFFFFF


def test_array_initializer_and_default_zero():
    source = """
int v[6] = {1, 2, 3};
void main() { }
"""
    program, machine, _ = run_c(source)
    assert [word(machine, program, "v", i) for i in range(6)] == [1, 2, 3, 0, 0, 0]


def test_range_initializer():
    source = """
int v[8] = {[0 ... 7] = 9};
int w[8] = {[2 ... 5] = 4};
void main() { }
"""
    program, machine, _ = run_c(source)
    assert [word(machine, program, "v", i) for i in range(8)] == [9] * 8
    assert [word(machine, program, "w", i) for i in range(8)] == [0, 0, 4, 4, 4, 4, 0, 0]


def test_global_pointer_initializer():
    source = """
int target = 5;
int *p = &target;
int out;
void main() { out = *p; }
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 5


def test_bank_placement():
    source = """
#include <det_omp.h>
int near;              /* defaults to bank 0 */
int far __bank(3);
void main() { near = 1; far = 2; }
"""
    program, machine, _ = run_c(source, cores=4)
    assert program.symbol("near") < memmap.global_bank_base(1)
    assert program.symbol("far") >= memmap.global_bank_base(3)
    assert word(machine, program, "far") == 2


def test_struct_members_and_pointers():
    source = """
typedef struct { int x; int y; char tag; } point_t;
point_t origin;
int out1; int out2; int out3;
void set(point_t *p, int x, int y) { p->x = x; p->y = y; p->tag = 'P'; }
void main() {
    set(&origin, 3, 4);
    out1 = origin.x;
    out2 = origin.y;
    out3 = origin.tag;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out1") == 3
    assert word(machine, program, "out2") == 4
    assert word(machine, program, "out3") == ord("P")


def test_struct_global_initializer():
    source = """
struct pair { int a; int b; };
struct pair p = {11, 22};
int out;
void main() { out = p.a * 100 + p.b; }
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 1122


def test_local_array_on_stack():
    source = """
int out;
void main() {
    int buf[8];
    int i;
    for (i = 0; i < 8; i++) buf[i] = i * i;
    out = buf[0] + buf[3] + buf[7];
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 0 + 9 + 49


def test_local_array_initializer():
    source = """
int out;
void main() {
    int v[4] = {5, 6, 7};
    out = v[0] + v[1] + v[2] + v[3];
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 18


def test_address_of_local_scalar():
    source = """
int out;
void bump(int *p) { *p += 1; }
void main() {
    int x = 41;
    bump(&x);
    out = x;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 42


def test_char_array_bytes():
    source = """
char text[8];
int out;
void main() {
    text[0] = 'h';
    text[1] = 'i';
    out = text[0] * 256 + text[1];
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == ord("h") * 256 + ord("i")
    raw = machine.read_word(program.symbol("text"))
    assert raw & 0xFFFF == ord("h") | (ord("i") << 8)


def test_pointer_to_pointer():
    source = """
int out;
void main() {
    int x = 7;
    int *p = &x;
    int **pp = &p;
    out = **pp;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 7


def test_array_of_struct():
    source = """
typedef struct { int k; int v; } entry_t;
entry_t table[4];
int out;
void main() {
    int i;
    for (i = 0; i < 4; i++) {
        table[i].k = i;
        table[i].v = 10 * i;
    }
    out = table[3].v + table[2].k;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 32


def test_sizeof_struct_padded():
    source = """
typedef struct { char c; int x; } padded_t;
int out;
void main() { out = sizeof(padded_t); }
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 8


def test_global_read_modify_write():
    source = """
int counter;
void tick(void) { counter++; }
void main() {
    int i;
    for (i = 0; i < 10; i++) tick();
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "counter") == 10
