"""Control flow, functions, calls, recursion, builtins — end to end."""

import pytest

from repro.compiler import CompileError, compile_c
from helpers import run_c, word


def test_while_and_break_continue():
    source = """
int evens; int total;
void main() {
    int i = 0;
    evens = 0;
    total = 0;
    while (1) {
        i++;
        if (i > 10) break;
        if (i % 2) continue;
        evens++;
        total += i;
    }
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "evens") == 5
    assert word(machine, program, "total") == 2 + 4 + 6 + 8 + 10


def test_nested_loops_with_break():
    source = """
int count;
void main() {
    int i; int j;
    count = 0;
    for (i = 0; i < 5; i++)
        for (j = 0; j < 5; j++) {
            if (j > i) break;   /* breaks the inner loop only */
            count++;
        }
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "count") == 1 + 2 + 3 + 4 + 5


def test_do_while_runs_once():
    source = """
int n;
void main() {
    n = 0;
    do { n++; } while (0);
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "n") == 1


def test_recursion_factorial():
    source = """
int out;
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}
void main() { out = fact(7); }
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 5040


def test_fibonacci_double_recursion():
    source = """
int out;
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
void main() { out = fib(12); }
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 144


def test_eight_arguments():
    source = """
int out;
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
    return a + b + c + d + e + f + g + h;
}
void main() { out = sum8(1, 2, 3, 4, 5, 6, 7, 8); }
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 36


def test_nested_calls_in_arguments():
    source = """
int out;
int add(int a, int b) { return a + b; }
void main() { out = add(add(1, 2), add(add(3, 4), 5)); }
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 15


def test_function_pointer_call():
    source = """
int out;
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
void main() {
    int (*f)(int);
    f = twice;
    out = f(10);
    f = thrice;
    out += f(10);
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 50


def test_function_pointer_as_parameter():
    source = """
int out;
int inc(int x) { return x + 1; }
int apply(int (*f)(int), int v) { return f(v); }
void main() { out = apply(inc, 41); }
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 42


def test_mutual_recursion_forward_reference():
    source = """
int out;
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
void main() { out = is_even(10) * 10 + is_odd(10); }
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 10


def test_callee_saved_registers_survive_calls():
    source = """
int out;
int clobber(void) { int a=1; int b=2; int c=3; int d=4; return a+b+c+d; }
void main() {
    int keep1 = 100; int keep2 = 200; int keep3 = 300;
    int r = clobber();
    out = keep1 + keep2 + keep3 + r;
}
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "out") == 610


def test_hart_id_builtin():
    source = """
int id;
void main() { id = __hart_id(); }
"""
    program, machine, _ = run_c(source)
    assert word(machine, program, "id") == 0  # main runs on hart 0


def test_exit_builtin_stops_early():
    source = """
int before; int after;
void main() {
    before = 1;
    exit();
    after = 1;
}
"""
    program, machine, stats = run_c(source)
    assert word(machine, program, "before") == 1
    assert word(machine, program, "after") == 0
    assert machine.halt_reason == "exit"


def test_bank_base_builtin():
    source = """
#include <det_omp.h>
int flag __bank(1);
int out;
void main() {
    int *p = __bank_base(1);
    *p = 77;          /* writes the first word of bank 1 = flag */
    out = flag;
}
"""
    program, machine, _ = run_c(source, cores=2)
    assert word(machine, program, "out") == 77


def test_nested_parallel_region_rejected():
    source = """
#include <det_omp.h>
void main() {
    int i; int j;
    #pragma omp parallel for
    for (i = 0; i < 2; i++) {
        #pragma omp parallel for
        for (j = 0; j < 2; j++) { }
    }
}
"""
    with pytest.raises(CompileError, match="nested parallel"):
        compile_c(source)


def test_goto_unsupported_diagnostic():
    with pytest.raises(CompileError):
        compile_c("void main() { goto end; end: ; }")
