"""The DetC parser: declarations, statements, expressions, OMP forms."""

import pytest

from repro.compiler import cast as A
from repro.compiler import ctypes_ as T
from repro.compiler.cparser import parse
from repro.compiler.errors import CompileError


def _module(source):
    module, _parser = parse(source)
    return module


def _main_body(source):
    module = _module(source)
    for item in module.items:
        if isinstance(item, A.FuncDef) and item.name == "main":
            return item.body.stmts
    raise AssertionError("no main")


def test_global_declarations():
    module = _module("int a; unsigned b; char c; int *p; int arr[10];")
    names = [item.name for item in module.items]
    assert names == ["a", "b", "c", "p", "arr"]
    types = {item.name: item.ctype for item in module.items}
    assert isinstance(types["p"], T.PtrType)
    assert isinstance(types["arr"], T.ArrayType) and types["arr"].count == 10


def test_multi_declarator_global():
    module = _module("int a, *b, c[4];")
    assert [item.name for item in module.items] == ["a", "b", "c"]


def test_function_definition_and_prototype():
    module = _module("int f(int a, int *b);\nint f(int a, int *b) { return a; }")
    defs = [item for item in module.items if isinstance(item, A.FuncDef)]
    assert len(defs) == 2
    assert defs[0].body is None and defs[1].body is not None
    assert defs[1].ftype.params[0][0] == "a"


def test_struct_and_typedef():
    module, parser = parse("""
typedef struct type_s { int t; int pad; char c; } type_t;
type_t st;
int use(type_t *p) { return p->t + st.pad; }
""")
    stype = parser.typedefs["type_t"]
    assert isinstance(stype, T.StructType)
    assert stype.field("t") == (T.INT, 0) or stype.field("t")[1] == 0
    assert stype.field("pad")[1] == 4
    assert stype.field("c")[1] == 8
    assert stype.size == 12  # padded to int alignment


def test_function_pointer_param():
    module = _module("void run(void (*f)(void *), void *data) { }")
    func = module.items[0]
    ptype = func.ftype.params[0][1]
    assert isinstance(ptype, T.PtrType) and isinstance(ptype.base, T.FuncType)


def test_statements_shapes():
    stmts = _main_body("""
void main() {
    int i;
    if (i) i = 1; else i = 2;
    while (i) i--;
    do { i++; } while (i < 10);
    for (i = 0; i < 4; i++) { break; }
    ;
    return;
}
""")
    kinds = [type(s).__name__ for s in stmts]
    assert kinds == ["Decl", "If", "While", "DoWhile", "For", "Empty", "Return"]


def test_expression_precedence():
    stmts = _main_body("void main() { int x; x = 1 + 2 * 3; }")
    assign = stmts[1].expr
    assert isinstance(assign, A.Assign)
    assert assign.rhs.op == "+"
    assert assign.rhs.rhs.op == "*"


def test_ternary_and_logical():
    stmts = _main_body("void main() { int x; x = x > 0 && x < 9 ? 1 : 0; }")
    cond = stmts[1].expr.rhs
    assert isinstance(cond, A.Cond)
    assert cond.cond.op == "&&"


def test_sizeof_forms():
    stmts = _main_body("void main() { int x; x = sizeof(int); x = sizeof x; }")
    assert isinstance(stmts[1].expr.rhs, A.SizeofType)
    assert stmts[1].expr.rhs.ctype.size == 4
    assert isinstance(stmts[2].expr.rhs, A.Un)


def test_cast_vs_parenthesised_expr():
    stmts = _main_body("void main() { int x; x = (int)x; x = (x); }")
    assert isinstance(stmts[1].expr.rhs, A.Cast)
    assert isinstance(stmts[2].expr.rhs, A.Var)


def test_range_initializer():
    module = _module("int v[8] = {[0 ... 7] = 1};")
    init = module.items[0].init
    assert isinstance(init, A.InitList)
    item = init.items[0]
    assert isinstance(item, A.RangeInit)
    assert (item.lo, item.hi) == (0, 7)


def test_bank_attribute():
    module = _module("int v[4] __bank(3);")
    assert module.items[0].bank == 3


def test_parallel_for_canonical():
    stmts = _main_body("""
void thread(int t);
void main() {
    int t;
    __OMP_PARALLEL_FOR__
    for (t = 0; t < 8; t++)
        thread(t);
}
""")
    node = stmts[1]
    assert isinstance(node, A.ParallelFor)
    assert node.var == "t"
    assert isinstance(node.bound, A.Num) and node.bound.value == 8


@pytest.mark.parametrize("loop", [
    "for (t = 8; t > 0; t--) thread(t);",       # wrong direction
    "for (t = 0; t <= 8; t++) thread(t);",      # wrong comparison
    "for (t = 0; t < 8; t += 2) thread(t);",    # wrong step
    "while (t) thread(t);",                      # not a for
])
def test_parallel_for_rejects_non_canonical(loop):
    with pytest.raises(CompileError):
        _module("""
void thread(int t);
void main() { int t; __OMP_PARALLEL_FOR__ %s }
""" % loop)


def test_parallel_sections():
    stmts = _main_body("""
void main() {
    __OMP_PARALLEL_SECTIONS__
    {
        __OMP_SECTION__ { ; }
        __OMP_SECTION__ { ; }
        __OMP_SECTION__ { ; }
    }
}
""")
    node = stmts[0]
    assert isinstance(node, A.ParallelSections)
    assert len(node.sections) == 3


def test_parallel_sections_requires_section_markers():
    with pytest.raises(CompileError):
        _module("void main() { __OMP_PARALLEL_SECTIONS__ { ; } }")


def test_parse_errors():
    with pytest.raises(CompileError):
        _module("int f( { }")
    with pytest.raises(CompileError):
        _module("void main() { x = ; }")
    with pytest.raises(CompileError):
        _module("void main() { int arr[x]; }")  # non-constant size


def test_comma_in_for_init():
    stmts = _main_body("void main() { int a; int b; for (a = 0, b = 1; a < b; a++) ; }")
    loop = stmts[2]
    assert isinstance(loop, A.For)
    assert loop.init.expr.op == ","
