"""The DetC preprocessor."""

import pytest

from repro.compiler.cpp import Preprocessor, strip_comments
from repro.compiler.errors import CompileError


def _pp(source, **kwargs):
    cpp = Preprocessor(**kwargs)
    return cpp.process(source), cpp


def test_strip_comments():
    assert strip_comments("a /* x */ b") == "a  b"
    assert strip_comments("a // rest\nb") == "a \nb"
    assert strip_comments('s = "// not a comment";') == 's = "// not a comment";'
    assert strip_comments("a /* multi\nline */ b").count("\n") == 1
    with pytest.raises(CompileError):
        strip_comments("/* unterminated")


def test_object_macro():
    text, _ = _pp("#define N 8\nint v[N];")
    assert "int v[8];" in text


def test_macro_recursion_fixpoint():
    text, _ = _pp("#define A B\n#define B 3\nx = A;")
    assert "x = 3;" in text


def test_self_referential_macro_stops():
    text, _ = _pp("#define X X+1\ny = X;")
    assert "y = X+1;" in text


def test_function_like_macro():
    text, _ = _pp("#define SQ(x) ((x)*(x))\nv = SQ(a+1);")
    assert "v = ((a+1)*(a+1));" in text


def test_function_macro_two_args():
    text, _ = _pp("#define IDX(i,j) ((i)*W+(j))\nv = IDX(r, c);")
    assert "v = ((r)*W+(c));" in text


def test_function_macro_nested_parens():
    text, _ = _pp("#define F(a) [a]\nv = F(g(x, y));")
    assert "v = [g(x, y)];" in text


def test_macro_wrong_arity():
    with pytest.raises(CompileError):
        _pp("#define F(a,b) a+b\nv = F(1);")


def test_zero_argument_function_macro():
    text, _ = _pp("#define NOW() 42\nv = NOW();")
    assert "v = 42;" in text


def test_function_macro_without_parens_left_alone():
    text, _ = _pp("#define F(x) [x]\nfp = F;")
    assert "fp = F;" in text


def test_undef():
    text, _ = _pp("#define N 4\n#undef N\nint v[N];")
    assert "int v[N];" in text


def test_det_omp_include_flag():
    _, cpp = _pp("#include <det_omp.h>\n")
    assert cpp.det_omp_included
    _, cpp2 = _pp("#include <stdio.h>\n")
    assert not cpp2.det_omp_included


def test_unknown_include_rejected():
    with pytest.raises(CompileError):
        _pp('#include "mystuff.h"\n')


def test_pragma_rewriting():
    text, _ = _pp("#pragma omp parallel for\nfor(;;);")
    assert "__OMP_PARALLEL_FOR__" in text
    text, _ = _pp("#pragma omp parallel sections\n{}")
    assert "__OMP_PARALLEL_SECTIONS__" in text
    text, _ = _pp("#pragma omp section\n{}")
    assert "__OMP_SECTION__" in text
    text, _ = _pp("#pragma once\nint x;")  # unknown pragmas vanish
    assert "int x;" in text and "pragma" not in text


def test_ifdef_blocks():
    source = """#define YES 1
#ifdef YES
int a;
#else
int b;
#endif
#ifdef NO
int c;
#endif
"""
    text, _ = _pp(source)
    assert "int a;" in text
    assert "int b;" not in text
    assert "int c;" not in text


def test_ifndef():
    text, _ = _pp("#ifndef NOPE\nint a;\n#endif\n")
    assert "int a;" in text


def test_unterminated_if():
    with pytest.raises(CompileError):
        _pp("#ifdef X\nint a;\n")


def test_line_numbers_preserved():
    source = "#define N 1\n\nint v[N];\n"
    text, _ = _pp(source)
    assert text.count("\n") == source.count("\n")


def test_line_continuation():
    text, _ = _pp("#define LONG 1 + \\\n 2\nv = LONG;")
    assert "v = 1 +  2;" in text.replace("  ", " ").replace("  ", " ") or "1 +" in text


def test_predefined_macros():
    text, _ = _pp("int v[N];", predefined={"N": 16})
    assert "int v[16];" in text


def test_macros_not_expanded_in_strings():
    text, _ = _pp('#define N 8\nchar *s = "N";')
    assert '"N"' in text
