"""Unit coverage for the zero-perturbation telemetry layer.

The observer's contract (DESIGN.md §9): every stage-cycle of every core
is charged exactly once — to a retirement or to exactly one stall
reason — so ``retired + sum(stalls) == num_cores * cycles`` on any run;
windows partition the totals; exporters are pure functions of the
machine; and the simulators that cannot observe refuse loudly.
"""

import json

import pytest

from repro.compiler import compile_to_program
from repro.fastsim import FastLBP
from repro.machine import LBP, Params
from repro.machine.processor import MachineError
from repro.observe import (
    STALL_REASONS,
    CoreTelemetry,
    Metrics,
    build_report,
    chrome_trace,
    report_json,
    stall_table,
    validate_chrome_trace,
    windows_csv,
)

_SOURCE = """
#include <det_omp.h>
int v[%(n)d];
void main() {
    int t;
    #pragma omp parallel for
    for (t = 0; t < %(n)d; t++)
        v[t] = t * t;
}
"""


def _run(num_cores, interval=64, trace=False, members=8):
    # the team must fit the machine: one core offers 3 forkable harts
    # beside the boot hart, so clamp the loop to the hart budget
    program = compile_to_program(_SOURCE % {"n": members}, "obs.c")
    machine = LBP(Params(num_cores=num_cores, trace_enabled=trace),
                  metrics=interval).load(program)
    machine.run(max_cycles=1_000_000)
    return machine


@pytest.fixture(scope="module")
def metered():
    return _run(2, trace=True)


# ---- taxonomy ---------------------------------------------------------------


def test_stall_reasons_are_fixed_and_distinct():
    assert len(STALL_REASONS) == len(set(STALL_REASONS)) == 11
    # the tuple is the on-disk slot layout — appending is fine, reordering
    # or renaming breaks old snapshots; pin the current names
    assert STALL_REASONS[0] == "fetch_starved"
    assert STALL_REASONS[-1] == "gated_idle"


# ---- accounting identity ----------------------------------------------------


@pytest.mark.parametrize("num_cores", [1, 4])
def test_accounting_identity(num_cores):
    machine = _run(num_cores, members=3 if num_cores == 1 else 8)
    report = build_report(machine)
    assert report["accounted"] is True
    assert report["stage_cycles"] == num_cores * report["cycles"]
    assert report["retired"] + report["stall_cycles"] == report["stage_cycles"]
    # per-core slots sum to the global totals
    per_core = report["stalls_per_core"]
    assert len(per_core) == num_cores
    for i, reason in enumerate(STALL_REASONS):
        assert sum(core[i] for core in per_core) == report["stalls"][reason]


def test_windows_partition_the_totals(metered):
    report = build_report(metered)
    windows = report["windows"]
    assert windows, "expected at least one closed/partial window"
    assert sum(w["retired"] for w in windows) == report["retired"]
    assert sum(w["local"] for w in windows) == report["local_accesses"]
    assert sum(w["remote"] for w in windows) == report["remote_accesses"]
    for reason in STALL_REASONS:
        assert sum(w["stalls"][reason] for w in windows) \
            == report["stalls"][reason]
    # windows tile [0, cycles] in order without gaps
    assert windows[0]["start"] == 0
    for prev, cur in zip(windows, windows[1:]):
        assert cur["start"] == prev["end"]


def test_classification_sanity(metered):
    report = build_report(metered)
    # a forked parallel region leaves gated cores idle at boot and tail
    assert report["stalls"]["gated_idle"] > 0
    # something retired and the machine was not always stalled
    assert 0 < report["retired"] < report["stage_cycles"]


# ---- serialization ----------------------------------------------------------


def test_core_telemetry_state_survives_json():
    slot = CoreTelemetry(4)
    slot.stalls[3] = 7
    slot.remote_inflight[12] = [100, 140]
    slot.samples.append([0, 5, 2, 1, 0, 0, [0] * len(STALL_REASONS)])
    wire = json.loads(json.dumps(slot.state_dict()))
    clone = CoreTelemetry(4)
    clone.load_state_dict(wire)
    assert clone.state_dict() == slot.state_dict()


def test_metrics_state_roundtrip(metered):
    state = json.loads(json.dumps(metered.metrics.state_dict()))
    clone = Metrics(interval=state["interval"])
    clone.load_state_dict(state)
    assert clone.state_dict() == metered.metrics.state_dict()


# ---- exporters --------------------------------------------------------------


def test_report_json_is_stable(metered):
    a = report_json(build_report(metered), compact=True)
    b = report_json(build_report(metered), compact=True)
    assert a == b
    assert json.loads(a)["accounted"] is True


def test_stall_table_shows_identity(metered):
    text = "\n".join(stall_table(build_report(metered)))
    assert "identity holds" in text
    assert "retired" in text


def test_windows_csv_shape(metered):
    report = build_report(metered)
    lines = windows_csv(report).strip().splitlines()
    header = lines[0].split(",")
    assert header[:3] == ["window", "start", "end"]
    assert header[-len(STALL_REASONS):] == list(STALL_REASONS)
    assert len(lines) == 1 + len(report["windows"])
    assert all(len(line.split(",")) == len(header) for line in lines[1:])


def test_chrome_trace_validates(metered):
    data = chrome_trace(metered)
    assert validate_chrome_trace(data) == []
    events = data["traceEvents"]
    # one named thread track per hart lane that saw activity
    threads = [e for e in events
               if e["ph"] == "M" and e["name"] == "thread_name"]
    assert threads, "expected per-hart thread tracks"
    # counter tracks live in their own process row
    assert any(e["ph"] == "C" for e in events)


def test_validate_chrome_trace_rejects_bad_events():
    ok = {"traceEvents": [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": "core 0"}},
        {"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0, "dur": 2},
    ]}
    assert validate_chrome_trace(ok) == []
    assert validate_chrome_trace({"nope": []})
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "tid": 0,
                          "ts": 0}]})
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0,
                          "ts": 0}]})  # missing dur
    assert validate_chrome_trace(
        {"traceEvents": [
            {"ph": "i", "name": "a", "pid": 0, "tid": 0, "ts": 9, "s": "t"},
            {"ph": "i", "name": "b", "pid": 0, "tid": 0, "ts": 3, "s": "t"},
        ]})  # ts must be monotonic per track


# ---- refusals ---------------------------------------------------------------


def test_fast_simulator_refuses_metrics():
    with pytest.raises(NotImplementedError):
        FastLBP(Params(num_cores=1), metrics=True)


def test_metrics_report_requires_metrics():
    program = compile_to_program(_SOURCE % {"n": 3}, "obs.c")
    machine = LBP(Params(num_cores=1)).load(program)
    machine.run(max_cycles=1_000_000)
    with pytest.raises(MachineError):
        machine.metrics_report()


def test_figure_runner_refuses_fast_metrics():
    from repro.eval.figures import run_matmul_experiment

    with pytest.raises(ValueError):
        run_matmul_experiment("base", 16, 4, simulator="fast", metrics=True)
