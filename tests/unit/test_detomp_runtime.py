"""The Deterministic OpenMP runtime assembly: structure and protocol."""

from repro.asm import assemble
from repro.detomp import runtime_asm, start_stub_asm, worker_asm
from repro.detomp.runtime import (
    CV_DATA,
    CV_INDEX,
    CV_LAST,
    CV_RA,
    CV_T0,
    CV_WORKER,
    omp_globals_asm,
)


def test_runtime_assembles_standalone():
    source = "main: ret\n" + runtime_asm() + omp_globals_asm()
    program = assemble(source)
    assert "LBP_parallel_start" in program.symbols
    assert "omp_num_threads" in program.symbols


def test_cv_slots_are_distinct_words():
    slots = [CV_RA, CV_T0, CV_WORKER, CV_DATA, CV_INDEX, CV_LAST]
    assert len(set(slots)) == 6
    assert all(slot % 4 == 0 for slot in slots)
    assert max(slots) < 64  # fits the CV area


def test_runtime_send_receive_symmetry():
    """Every p_swcv slot has a matching p_lwcv on the forked side."""
    text = runtime_asm()
    send_slots = []
    receive_slots = []
    for line in text.splitlines():
        stripped = line.split("#")[0].strip()
        if stripped.startswith("p_swcv"):
            send_slots.append(int(stripped.split(",")[-1]))
        if stripped.startswith("p_lwcv"):
            receive_slots.append(int(stripped.split(",")[-1]))
    assert sorted(send_slots) == sorted(receive_slots)
    assert len(send_slots) == 6


def test_runtime_fork_protocol_order():
    """p_merge and p_syncm sit between the CV sends and the p_jalr."""
    lines = [l.split("#")[0].strip() for l in runtime_asm().splitlines()]
    ops = [l.split()[0] for l in lines if l and not l.endswith(":")
           and not l.startswith(".")]
    jalr_at = ops.index("p_jalr")
    assert "p_merge" in ops[:jalr_at]
    assert "p_syncm" in ops[:jalr_at]
    assert ops.index("p_merge") < ops.index("p_syncm") < jalr_at
    # the receive sequence follows immediately after the parallel call
    assert ops[jalr_at + 1 : jalr_at + 7] == ["p_lwcv"] * 6


def test_worker_wrapper_saves_join_state():
    text = worker_asm("__omp_worker_9", "__omp_body_9")
    program = assemble("main: ret\n__omp_body_9: ret\n" + text)
    assert "__omp_worker_9" in program.symbols
    ops = [ins.mnemonic for ins in
           (program.instructions[a] for a in sorted(program.instructions))]
    # save ra/t0, call body, restore, p_ret (p_jalr zero, ra, t0)
    assert ops[-1] == "p_jalr"
    assert ops.count("sw") >= 2 and ops.count("lw") >= 2


def test_start_stub_exits_with_minus_one():
    program = assemble(start_stub_asm() + "\nmain: ret\n")
    assert program.entry == program.symbol("_start")
    ops = [program.instructions[a] for a in sorted(program.instructions)]
    # last instruction of the stub is the exiting p_ret
    stub_ops = [i for i in ops if i.addr < program.symbol("main")]
    assert stub_ops[-1].mnemonic == "p_jalr"
