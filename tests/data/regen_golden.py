"""Regenerate tests/data/golden_traces.json.

Run only when an *intentional* machine-model change invalidates the
recorded references (the point of the file is to catch unintentional
ones):

    PYTHONPATH=src:tests:tests/integration python tests/data/regen_golden.py
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "integration"))

from test_trace_golden import GOLDEN_PATH, WORKLOADS, measure  # noqa: E402


def main():
    golden = {name: measure(name) for name in sorted(WORKLOADS)}
    with open(os.path.abspath(GOLDEN_PATH), "w") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(golden, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
