"""Regenerate tests/data/golden_traces.json.

Run only when an *intentional* machine-model change invalidates the
recorded references (the point of the file is to catch unintentional
ones):

    PYTHONPATH=src:tests:tests/integration python tests/data/regen_golden.py

Refuses to run from a dirty working tree: the digests must be
attributable to one reviewable commit, not to uncommitted local edits
(pass ``--force`` to override, e.g. while iterating on the model change
itself).  Bump ``repro.snapshot.snapshot.SIM_VERSION`` in the same
commit — stale snapshots and cache entries key off it.
"""

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "integration"))

from test_trace_golden import GOLDEN_PATH, WORKLOADS, measure  # noqa: E402

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", ".."))


def working_tree_dirty():
    """Uncommitted changes (tracked files) in the repo, as porcelain lines.

    Untracked files don't count — they cannot have changed the model.
    Returns [] when git is unavailable (regeneration is then allowed:
    e.g. running from an exported tarball).
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=REPO_ROOT, check=True, capture_output=True, text=True).stdout
    except (OSError, subprocess.CalledProcessError):
        return []
    return [line for line in out.splitlines() if line.strip()]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--force", action="store_true",
                        help="regenerate even from a dirty working tree")
    args = parser.parse_args(argv)

    dirty = working_tree_dirty()
    if dirty and not args.force:
        print("error: refusing to regenerate golden traces from a dirty "
              "working tree —\nthe new digests would not be attributable "
              "to a single commit.", file=sys.stderr)
        print("Uncommitted changes:", file=sys.stderr)
        for line in dirty:
            print("  " + line, file=sys.stderr)
        print("Commit (or stash) first, or pass --force while iterating.",
              file=sys.stderr)
        return 1

    golden = {name: measure(name) for name in sorted(WORKLOADS)}
    with open(os.path.abspath(GOLDEN_PATH), "w") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(golden, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
