# Seeded race: write-write on `x`.
#
# The parent continues at `parent` after the p_jalr while the forked
# child runs the fall-through block; both store to the same global word
# with no p_swre/p_lwre (or join) edge between the stores.
#   expected pair: race_a (parent sw) <-> race_b (child sw) on x
main:
    li   t0, -1
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   t0, 4(sp)
    p_set t0, t0
    p_fc t6
    la   t1, rp
    p_swcv t6, t1, 0
    p_swcv t6, t0, 4
    p_merge t0, t0, t6
    p_syncm
    la   a0, parent
    p_jalr ra, t0, a0
    # ---- child hart ----
    p_lwcv ra, 0
    p_lwcv t0, 4
    la   t2, x
    li   t3, 2
race_b:
    sw   t3, 0(t2)
    p_ret
rp: lw  ra, 0(sp)
    lw  t0, 4(sp)
    addi sp, sp, 8
    p_ret
parent:
    la   t2, x
    li   t3, 7
race_a:
    sw   t3, 0(t2)
    p_ret
.data
x:  .word 0
y:  .word 0
