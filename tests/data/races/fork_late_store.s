# Seeded race: the parent stores to `x` only *after* the p_jalr (in its
# continuation), while the child loads `x`.  The fork/call edges cover
# only instructions program-before the p_fc / p_jalr, so the late store
# is unordered with the child's read.
#   expected pair: race_a (parent sw) <-> race_b (child lw) on x
main:
    li   t0, -1
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   t0, 4(sp)
    p_set t0, t0
    p_fc t6
    la   t1, rp
    p_swcv t6, t1, 0
    p_swcv t6, t0, 4
    p_merge t0, t0, t6
    p_syncm
    la   a0, parent
    p_jalr ra, t0, a0
    # ---- child hart ----
    p_lwcv ra, 0
    p_lwcv t0, 4
    la   t2, x
race_b:
    lw   t3, 0(t2)
    p_ret
rp: lw  ra, 0(sp)
    lw  t0, 4(sp)
    addi sp, sp, 8
    p_ret
parent:
    la   t2, x
    li   t3, 5
race_a:
    sw   t3, 0(t2)
    p_ret
.data
x:  .word 0
