/* Seeded race: member t writes a[t] but also reads its *mirror*
 * member's slot a[N-1-t] inside the same region — the read is
 * unordered with the mirror member's write.  Expected: one pair on
 * the `a` array, both endpoints inside omp region 0. */
#include <det_omp.h>
#define N 4

int a[N];
int b[N];

void main() {
    int t;
    omp_set_num_threads(N);
    #pragma omp parallel for
    for (t = 0; t < N; t++) {
        a[t] = t;
        b[t] = a[(N - 1) - t];
    }
}
