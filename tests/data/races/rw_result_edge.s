# Race-free twin of rw_unsynced.s: the child's p_swre / the parent's
# p_lwre form a transmission happens-before edge, so the store to `x`
# (program-before the p_swre) is ordered before the parent's load
# (program-after the p_lwre).
main:
    li   t0, -1
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   t0, 4(sp)
    p_set t0, t0
    p_fc t6
    la   t1, rp
    p_swcv t6, t1, 0
    p_swcv t6, t0, 4
    p_merge t0, t0, t6
    p_syncm
    la   a0, parent
    p_jalr ra, t0, a0
    # ---- child hart ----
    p_lwcv ra, 0
    p_lwcv t0, 4
    la   t2, x
    li   t3, 9
    sw   t3, 0(t2)
    li   t4, 0
    li   t3, 1
    p_swre t4, t3, 0
    p_ret
rp: lw  ra, 0(sp)
    lw  t0, 4(sp)
    addi sp, sp, 8
    p_ret
parent:
    p_lwre t1, 0
    la   t2, x
    lw   t3, 0(t2)
    p_ret
.data
x:  .word 0
