/* Race-free twin of omp_shared_scalar.c: each member owns slot a[t],
 * so no two harts touch the same word. */
#include <det_omp.h>
#define N 4

int a[N];

void main() {
    int t;
    omp_set_num_threads(N);
    #pragma omp parallel for
    for (t = 0; t < N; t++)
        a[t] = t;
}
