# Race-free twin of ww_conflict.s: the two unordered stores go to
# *different* global words (x and y), so no conflicting pair exists.
main:
    li   t0, -1
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   t0, 4(sp)
    p_set t0, t0
    p_fc t6
    la   t1, rp
    p_swcv t6, t1, 0
    p_swcv t6, t0, 4
    p_merge t0, t0, t6
    p_syncm
    la   a0, parent
    p_jalr ra, t0, a0
    # ---- child hart ----
    p_lwcv ra, 0
    p_lwcv t0, 4
    la   t2, y
    li   t3, 2
    sw   t3, 0(t2)
    p_ret
rp: lw  ra, 0(sp)
    lw  t0, 4(sp)
    addi sp, sp, 8
    p_ret
parent:
    la   t2, x
    li   t3, 7
    sw   t3, 0(t2)
    p_ret
.data
x:  .word 0
y:  .word 0
