/* Seeded race: every team member read-modify-writes the shared scalar
 * `sum` inside the parallel for with no reduction/ordering — the
 * classic lost-update bug.  Expected: a write-read and a write-write
 * pair on `sum`, both endpoints inside omp region 0. */
#include <det_omp.h>
#define N 4

int sum;

void main() {
    int t;
    omp_set_num_threads(N);
    #pragma omp parallel for
    for (t = 0; t < N; t++)
        sum = sum + t;
}
