/* Race-free twin of omp_neighbor_read.c: members write only their own
 * slot; main reads the whole array *after* the region, ordered through
 * the p_ret join edges. */
#include <det_omp.h>
#define N 4

int a[N];
int total;

void main() {
    int t;
    omp_set_num_threads(N);
    #pragma omp parallel for
    for (t = 0; t < N; t++)
        a[t] = t;
    for (t = 0; t < N; t++)
        total = total + a[t];
}
