/* Message-passing through a polled flag word (the paper's §6 request
 * word protocol in miniature).  The producer publishes `value`, then
 * sets `flag`; the consumer spins on `flag` and reads `value`.
 *
 * Without a synchronization-cell annotation the flag handoff is
 * invisible to the referential order: expected races on `flag`
 * (write-read) and `value` (write-read).  Declared as a sync cell
 * (repro check --sync flag), the store becomes a release and the
 * polling load an acquire, which orders the `value` transfer — clean. */
#include <det_omp.h>

int flag;
int value;
int out;

void producer(void) {
    value = 42;
    __p_syncm();
    flag = 1;
}

void consumer(void) {
    while (flag == 0)
        ;
    out = value;
}

void main() {
    #pragma omp parallel sections
    {
        #pragma omp section
        { producer(); }
        #pragma omp section
        { consumer(); }
    }
}
