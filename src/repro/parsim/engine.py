"""The space-sharded cycle-accurate engine.

Model
-----

The core line is split into contiguous shards; one forked worker process
per shard runs the ordinary event-descriptor machine
(:mod:`repro.machine.processor`) over its own cores, banks, ports and
egress link cursors.  Workers advance in lock-step **epochs** of
:data:`EPOCH_WIDTH` cycles and exchange cross-shard event descriptors at
every epoch boundary over a full mesh of pipes.

Why the epoch width is safe (conservative lookahead): every cross-core
interaction is an event posted for at least two cycles in the future —
a remote memory request crosses >= 2 router links (1 cycle each), the
forward/backward neighbour lines add one hop plus one delivery cycle,
continuation-value writes add ``cv_write_latency`` on top of the hop,
and the ``re_ack`` / halt broadcasts use fixed >= 2-cycle latencies.  So
while a worker simulates cycles ``[E, E+2)``, no peer can post an event
it would need before cycle ``E+2`` — the next barrier.  The engine
asserts this invariant on every message it ships.

Determinism: event keys ``(cycle, origin, oseq, dst, kind, args)`` are
computed from the *posting domain's* own counter, so they are identical
no matter which process runs the posting core; each worker's event heap
pops in exactly the order the single-process heap would pop the same
subset, and the merged trace (per-domain buffers, merged by ``(cycle,
domain)``) is byte-identical by construction.  Halts, errors, deadlock
and cycle-limit decisions are reduced to min-key form, exchanged in the
per-epoch status record, and re-decided *identically* by every worker —
there is no coordinator making scheduling choices.

Message batch format (one frame per peer per barrier)::

    (status, events)
    status = (cycle, halt_key, halt_reason, error_key, error,
              active_cores, heap_min, heap_size, outbox_min,
              outbox_count, retired, seq_sum)
    events = [(cycle, origin, oseq, dst, kind, args), ...]

frames are ``marshal`` payloads behind a 4-byte big-endian length.  The
epoch's events ship as the raw heap tuples in one payload per (peer,
epoch) — ``marshal`` round-trips nested tuples exactly, so the receiver
pushes them onto its heap without any per-message re-encoding.

Snapshots: at a snapshot trigger (and at every run-ending decision) the
workers ship ``core_state_dict()`` slices of their owned domains to the
parent, which loads them into its master machine — a plain
:class:`~repro.machine.processor.LBP` — so an ``.lbpsnap`` written from
a sharded run is indistinguishable from a single-process one and can be
resumed under any shard count.
"""

import heapq
import marshal
import os
import struct

from repro.machine.processor import (
    EVENT_HANDLERS,
    HALT_LATENCY,
    DeadlockError,
    LBP,
    MachineError,
)
from repro.machine.soa import flush_alu as _flush_alu

#: conservative lookahead, in cycles: the minimum latency of any
#: cross-core interaction (see the module docstring for the derivation).
#: Workers simulate epochs of this width between barriers.
EPOCH_WIDTH = 2

# a halt would otherwise take effect before the barrier that merges it
assert HALT_LATENCY >= EPOCH_WIDTH

#: livelock/progress probe period, matching the sequential run loop
_PROGRESS_PERIOD = 4096

_FRAME = struct.Struct(">I")


def partition_cores(num_cores, shards):
    """Contiguous, balanced shard ranges: ``[(start, stop), ...]``.

    The first ``num_cores % shards`` shards take one extra core, so a
    16-core machine under 4 shards yields (0,4) (4,8) (8,12) (12,16).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1, got %d" % shards)
    if shards > num_cores:
        raise ValueError(
            "cannot cut %d core(s) into %d shard(s)" % (num_cores, shards))
    base, extra = divmod(num_cores, shards)
    bounds = []
    start = 0
    for shard in range(shards):
        stop = start + base + (1 if shard < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


# ---- framed marshal transport ------------------------------------------------


def _write_all(fd, data):
    view = memoryview(data)
    while view:
        view = view[os.write(fd, view):]


def _send(fd, payload):
    blob = marshal.dumps(payload)
    _write_all(fd, _FRAME.pack(len(blob)) + blob)


def _read_exact(fd, size):
    chunks = []
    while size:
        chunk = os.read(fd, size)
        if not chunk:
            raise EOFError("peer closed the pipe mid-frame")
        chunks.append(chunk)
        size -= len(chunk)
    return b"".join(chunks)


def _recv(fd):
    (size,) = _FRAME.unpack(_read_exact(fd, _FRAME.size))
    return marshal.loads(_read_exact(fd, size))


# ---- worker ------------------------------------------------------------------


class _Worker:
    """One shard's run loop (executes in the forked child)."""

    def __init__(self, machine, shard, bounds, peer_send, peer_recv,
                 to_parent, from_parent):
        self.machine = machine
        self.shard = shard
        self.bounds = bounds
        self.owned = list(range(*bounds[shard]))
        #: core index -> owning shard, for routing outbox messages
        self.owner_of = {}
        for index, (start, stop) in enumerate(bounds):
            for core in range(start, stop):
                self.owner_of[core] = index
        self.peers = [s for s in range(len(bounds)) if s != shard]
        self.peer_send = peer_send    # {shard: write fd}
        self.peer_recv = peer_recv    # {shard: read fd}
        self.to_parent = to_parent
        self.from_parent = from_parent
        # merged-at-last-barrier global view (progress/livelock probe)
        self.global_mark = None
        self.global_events = 0

    # -- pieces ---------------------------------------------------------------

    def _barrier(self, cycle):
        """Exchange outbox + status with every peer; merge; return stats.

        Returns ``(global_active, global_next)`` where *global_next* is
        the earliest pending activity (event delivery) anywhere, or None.
        """
        machine = self.machine
        outbox = machine._outbox
        machine._outbox = []
        for event in outbox:
            # lookahead invariant: nothing ships that a peer already needed
            assert event[0] >= cycle, (event, cycle)
        status = self._status(cycle, outbox)
        statuses = [None] * len(self.bounds)
        statuses[self.shard] = status
        # the no-traffic frame is identical for every peer: marshal once
        empty = None
        for peer in self.peers:
            # one serialized payload per (peer, epoch): the raw event
            # tuples go straight into the frame (marshal preserves
            # nested tuples), so per-event conversion cost is zero
            batch = [
                event for event in outbox
                if self.owner_of[event[3]] == peer
            ]
            if batch:
                _send(self.peer_send[peer], (status, batch))
            else:
                if empty is None:
                    blob = marshal.dumps((status, []))
                    empty = _FRAME.pack(len(blob)) + blob
                _write_all(self.peer_send[peer], empty)
        events = machine._events
        heappush = heapq.heappush
        for peer in self.peers:
            peer_status, batch = _recv(self.peer_recv[peer])
            statuses[peer] = peer_status
            for event in batch:
                heappush(events, event)
        return self._merge(statuses)

    def _status(self, cycle, outbox):
        machine = self.machine
        events = machine._events
        heap_min = events[0][0] if events else None
        outbox_min = min(ev[0] for ev in outbox) if outbox else None
        retired = sum(
            h.retired for i in self.owned for h in machine.stats.harts[i])
        seq_sum = sum(machine.cores[i]._seq for i in self.owned)
        return (
            cycle,
            None if machine._halt_key is None else list(machine._halt_key),
            machine.halt_reason,
            None if machine._error_key is None else list(machine._error_key),
            machine._error,
            machine._num_active,
            heap_min,
            len(events),
            outbox_min,
            len(outbox),
            retired,
            seq_sum,
        )

    def _merge(self, statuses):
        """Fold the statuses into this worker's machine — identically
        recomputed by every worker, so all global decisions agree."""
        machine = self.machine
        halt_best = None
        error_best = None
        active = 0
        nxt = None
        pending = 0
        retired = 0
        seq_sum = 0
        for status in statuses:
            (cycle, halt_key, halt_reason, error_key, error, num_active,
             heap_min, heap_size, outbox_min, outbox_count,
             st_retired, st_seq) = status
            if halt_key is not None:
                key = tuple(halt_key)
                if halt_best is None or key < halt_best[0]:
                    halt_best = (key, halt_reason)
            if error_key is not None:
                key = tuple(error_key)
                if error_best is None or key < error_best[0]:
                    error_best = (key, error)
            active += num_active
            for candidate in (heap_min, outbox_min):
                if candidate is not None and (nxt is None or candidate < nxt):
                    nxt = candidate
            pending += heap_size + outbox_count
            retired += st_retired
            seq_sum += st_seq
        if halt_best is not None:
            machine._halt_key = halt_best[0]
            machine._halt_at = halt_best[0][0]
            machine.halt_reason = halt_best[1]
        if error_best is not None:
            machine._error_key = error_best[0]
            machine._error = error_best[1]
        self.global_mark = (retired, seq_sum)
        self.global_events = pending
        return active, nxt

    def _gather_payload(self):
        machine = self.machine
        return {
            "cores": [
                [index, machine.core_state_dict(index)]
                for index in self.owned
            ],
            "halt_key": (None if machine._halt_key is None
                         else list(machine._halt_key)),
            "halt_reason": machine.halt_reason,
            "error_key": (None if machine._error_key is None
                          else list(machine._error_key)),
            "error": machine._error,
        }

    # -- the loop --------------------------------------------------------------

    def run(self, max_cycles, stop_at_cycle, snapshot_every, want_snapshots,
            profile=False):
        profiler = None
        if profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
        try:
            outcome = self._loop(
                max_cycles, stop_at_cycle, snapshot_every, want_snapshots)
        finally:
            if profiler is not None:
                profiler.disable()
                import pstats
                import sys

                print("--- shard 0 profile (top 20 by cumulative time) ---")
                pstats.Stats(profiler).sort_stats(
                    "cumulative").print_stats(20)
                sys.stdout.flush()
        _send(self.to_parent,
              ("final", outcome, self.machine.cycle, self._gather_payload()))

    def _loop(self, max_cycles, stop_at_cycle, snapshot_every, want_snapshots):
        machine = self.machine
        params = machine.params
        limit = max_cycles if max_cycles is not None else params.max_cycles
        owned = self.owned
        machine._owned = set(owned)
        machine._outbox = []
        machine._events = [
            event for event in machine._events if event[3] in machine._owned]
        heapq.heapify(machine._events)
        machine._num_active = sum(
            1 for i in owned if machine.cores[i].active)

        cores = machine.cores
        per_core = machine.stats.per_core
        metrics = machine.metrics
        handlers = EVENT_HANDLERS
        heappop = heapq.heappop
        cycle = machine.cycle
        progress_mark = (0, 0)
        next_progress = _PROGRESS_PERIOD
        next_snapshot = None
        if snapshot_every is not None and want_snapshots:
            next_snapshot = cycle + snapshot_every

        while True:
            # -- top of epoch: symmetric decisions (identical in every
            # worker — all inputs were merged at the last barrier)
            if machine._halt_at is not None and cycle >= machine._halt_at:
                machine.cycle = machine._halt_at - 1
                machine.halted = True
                return "halt"
            if stop_at_cycle is not None and cycle >= stop_at_cycle:
                machine.cycle = cycle
                return "pause"
            if next_snapshot is not None and cycle >= next_snapshot:
                machine.cycle = cycle
                _send(self.to_parent,
                      ("snapshot", None, cycle, self._gather_payload()))
                if _recv(self.from_parent) != "ack":
                    raise EOFError("parent abandoned the snapshot barrier")
                next_snapshot = cycle + snapshot_every
            if cycle >= next_progress:
                if (self.global_mark is not None
                        and self.global_mark == progress_mark
                        and self.global_events == 0
                        and machine._halt_at is None):
                    machine.cycle = cycle
                    return "deadlock"
                if self.global_mark is not None:
                    progress_mark = self.global_mark
                next_progress = cycle + _PROGRESS_PERIOD
            if cycle > limit:
                machine.cycle = cycle
                return "limit"

            # -- simulate one epoch (clipped so that pause, snapshot and
            # limit decisions land on the exact sequential cycle)
            barrier = cycle + EPOCH_WIDTH
            if stop_at_cycle is not None and stop_at_cycle < barrier:
                barrier = stop_at_cycle
            if next_snapshot is not None and next_snapshot < barrier:
                barrier = next_snapshot
            if limit + 1 < barrier:
                barrier = limit + 1
            events = machine._events
            while cycle < barrier:
                if (machine._halt_at is not None
                        and cycle >= machine._halt_at):
                    break
                if machine._num_active == 0:
                    # all owned cores idle: skip ahead to the next local
                    # event (or the barrier) in one hop — same per-core
                    # skipped_cycles accounting as the per-cycle path
                    target = barrier
                    if events and events[0][0] < target:
                        target = events[0][0]
                    if (machine._halt_at is not None
                            and machine._halt_at < target):
                        target = machine._halt_at
                    if target > cycle:
                        delta = target - cycle
                        for index in owned:
                            per_core[index].skipped_cycles += delta
                            if metrics is not None:
                                metrics.idle(index, cycle, delta)
                        cycle = target
                        continue
                # handlers and core.tick read machine.cycle as "now"
                machine.cycle = cycle
                while events and events[0][0] <= cycle:
                    event = heappop(events)
                    machine._origin = event[3]
                    handlers[event[4]](machine, *event[5])
                for index in owned:
                    core = cores[index]
                    if core.active:
                        machine._origin = index
                        if not core.tick():
                            core.active = False
                            machine._num_active -= 1
                    else:
                        per_core[index].skipped_cycles += 1
                        if metrics is not None:
                            metrics.idle(index, cycle, 1)
                if machine._alu_pending:
                    # SoA backend: end-of-cycle opcode-grouped ALU pass
                    _flush_alu(machine)
                if machine._error is not None:
                    machine.cycle = cycle
                    cycle += 1
                    break
                cycle += 1

            # -- barrier: ship the epoch's cross-shard traffic, merge
            # coordination state, and take the symmetric global decisions
            active, global_next = self._barrier(cycle)
            if machine._error is not None:
                machine.cycle = machine._error_key[0]
                return "error"
            if active == 0:
                target = global_next
                if machine._halt_at is not None and (
                        target is None or machine._halt_at < target):
                    target = machine._halt_at
                if target is None:
                    machine.cycle = cycle
                    return "deadlock"
                if target > cycle:
                    delta = target - cycle
                    for index in owned:
                        per_core[index].skipped_cycles += delta
                        if metrics is not None:
                            metrics.idle(index, cycle, delta)
                    cycle = target
            machine.cycle = cycle


def _worker_main(machine, shard, bounds, peer_send, peer_recv,
                 to_parent, from_parent, run_kwargs, profile):
    worker = _Worker(machine, shard, bounds, peer_send, peer_recv,
                     to_parent, from_parent)
    worker.run(profile=profile, **run_kwargs)


# ---- parent-side coordinator -------------------------------------------------


class ShardedLBP:
    """Space-sharded façade over a master :class:`LBP` machine.

    Same construction/run interface as ``LBP``; ``run`` forks one worker
    per shard, and every observable result — stats, trace, memory,
    snapshots — is gathered back into the master machine, which behaves
    exactly as if it had simulated the run by itself.
    """

    def __init__(self, params=None, trace=None, shards=None, master=None,
                 sanitize=False, metrics=None, backend=None):
        if master is not None:
            self.master = master
        else:
            self.master = LBP(params, trace=trace, sanitize=sanitize,
                              metrics=metrics, backend=backend)
        if shards is None:
            raise ValueError("ShardedLBP requires an explicit shard count")
        requested = int(shards)
        if requested < 1:
            raise ValueError("shards must be >= 1, got %d" % requested)
        #: effective shard count: never more than one core per shard
        self.shards = min(requested, self.master.params.num_cores)
        #: when set, shard 0's worker runs under cProfile and prints its
        #: top-20 table before exiting (``repro run --profile --shards N``)
        self.profile_shard_zero = False

    # -- façade ---------------------------------------------------------------

    @property
    def params(self):
        return self.master.params

    @property
    def program(self):
        return self.master.program

    @property
    def stats(self):
        return self.master.stats

    @property
    def trace(self):
        return self.master.trace

    @property
    def cores(self):
        return self.master.cores

    @property
    def mmio(self):
        return self.master.mmio

    @property
    def cycle(self):
        return self.master.cycle

    @property
    def halted(self):
        return self.master.halted

    @property
    def halt_reason(self):
        return self.master.halt_reason

    @property
    def sanitizer(self):
        return self.master.sanitizer

    @property
    def metrics(self):
        return self.master.metrics

    @property
    def backend(self):
        return self.master.backend

    def race_report(self, sync=None):
        """Analyze the gathered shard-local observations (one merged,
        sharding-independent report — see repro.sanitize)."""
        return self.master.race_report(sync=sync)

    def metrics_report(self):
        """The gathered shard-local telemetry, merged — byte-identical
        to a single-process run's report (see repro.observe)."""
        return self.master.metrics_report()

    def load(self, program, start=True):
        self.master.load(program, start=start)
        return self

    def add_device(self, addr, device):
        raise MachineError(
            "the sharded engine cannot host MMIO devices: a device is an "
            "external object living in the parent process, invisible to "
            "the shard workers — run with shards=1 to attach devices"
        )

    def read_word(self, addr):
        return self.master.read_word(addr)

    def write_word(self, addr, value):
        return self.master.write_word(addr, value)

    def read_local(self, core_index, addr):
        return self.master.read_local(core_index, addr)

    def state_dict(self):
        return self.master.state_dict()

    def load_state_dict(self, state):
        return self.master.load_state_dict(state)

    # -- run -------------------------------------------------------------------

    def run(self, max_cycles=None, stop_at_cycle=None,
            snapshot_every=None, snapshot_callback=None):
        master = self.master
        if (self.shards <= 1
                or master.halted
                or (stop_at_cycle is not None
                    and master.cycle >= stop_at_cycle)):
            # degenerate cases: the in-process loop is the sharded run
            return master.run(
                max_cycles=max_cycles, stop_at_cycle=stop_at_cycle,
                snapshot_every=snapshot_every,
                snapshot_callback=snapshot_callback)
        if master.mmio:
            raise MachineError(
                "the sharded engine cannot simulate machines with MMIO "
                "devices attached (%d present)" % len(master.mmio))
        return _Coordinator(self).run(
            max_cycles, stop_at_cycle, snapshot_every, snapshot_callback)


class _Coordinator:
    """Forks the workers, services gathers, applies them to the master."""

    def __init__(self, sharded):
        self.sharded = sharded
        self.master = sharded.master
        self.bounds = partition_cores(
            self.master.params.num_cores, sharded.shards)
        self.pids = []
        self.up = {}      # shard -> read fd (worker -> parent)
        self.down = {}    # shard -> write fd (parent -> worker)

    def run(self, max_cycles, stop_at_cycle, snapshot_every,
            snapshot_callback):
        master = self.master
        shards = len(self.bounds)
        self.limit = (max_cycles if max_cycles is not None
                      else master.params.max_cycles)
        run_kwargs = {
            "max_cycles": max_cycles,
            "stop_at_cycle": stop_at_cycle,
            "snapshot_every": snapshot_every,
            "want_snapshots": snapshot_callback is not None,
        }

        # full mesh: mesh[i][j] = (read, write) pipe carrying i -> j
        mesh = {
            i: {j: os.pipe() for j in range(shards) if j != i}
            for i in range(shards)
        }
        parent_up = {s: os.pipe() for s in range(shards)}
        parent_down = {s: os.pipe() for s in range(shards)}

        try:
            for shard in range(shards):
                pid = os.fork()
                if pid == 0:
                    self._child(shard, mesh, parent_up, parent_down,
                                run_kwargs)
                    os._exit(0)  # unreachable; _child always exits
                self.pids.append(pid)
            # parent keeps only its ends
            for i in mesh:
                for _, (r, w) in mesh[i].items():
                    os.close(r)
                    os.close(w)
            for shard in range(shards):
                r, w = parent_up[shard]
                os.close(w)
                self.up[shard] = r
                r, w = parent_down[shard]
                os.close(r)
                self.down[shard] = w

            return self._serve(snapshot_callback, stop_at_cycle)
        finally:
            self._cleanup()

    def _child(self, shard, mesh, parent_up, parent_down, run_kwargs):
        status = 1
        to_parent = None
        try:
            peer_send = {}
            peer_recv = {}
            for i in mesh:
                for j, (r, w) in mesh[i].items():
                    if i == shard:
                        os.close(r)
                        peer_send[j] = w
                    elif j == shard:
                        os.close(w)
                        peer_recv[i] = r
                    else:
                        os.close(r)
                        os.close(w)
            for s, (r, w) in parent_up.items():
                os.close(r)
                if s == shard:
                    to_parent = w
                else:
                    os.close(w)
            for s, (r, w) in parent_down.items():
                os.close(w)
                if s == shard:
                    from_parent = r
                else:
                    os.close(r)
            profile = self.sharded.profile_shard_zero and shard == 0
            _worker_main(self.master, shard, self.bounds, peer_send,
                         peer_recv, to_parent, from_parent, run_kwargs,
                         profile)
            status = 0
        except BaseException:
            import traceback

            traceback.print_exc()
            if to_parent is not None:
                try:
                    _send(to_parent, ("crash", shard, None, None))
                except OSError:
                    pass
        finally:
            os._exit(status)

    def _serve(self, snapshot_callback, stop_at_cycle):
        """Read gather rounds until the run ends; apply; decide outcome."""
        while True:
            frames = [_recv_or_fail(self.up[s]) for s in sorted(self.up)]
            kinds = {frame[0] for frame in frames}
            if "crash" in kinds:
                raise MachineError(
                    "sharded worker crashed (see the worker's traceback "
                    "on stderr)")
            if len(kinds) != 1:
                raise MachineError(
                    "sharded workers desynchronised: %r" % sorted(kinds))
            kind, outcome, cycle = frames[0][:3]
            self._apply(frames)
            if kind == "snapshot":
                self.master.cycle = cycle
                snapshot_callback(self.sharded)
                for s in sorted(self.down):
                    _send(self.down[s], "ack")
                continue
            return self._finish(outcome, cycle, stop_at_cycle)

    def _apply(self, frames):
        """Load the gathered shard slices into the master machine."""
        master = self.master
        master._events = []
        for frame in frames:
            payload = frame[3]
            for index, state in payload["cores"]:
                master.load_core_state_dict(index, state)
            master._halt_key = (
                None if payload["halt_key"] is None
                else tuple(payload["halt_key"]))
            master._halt_at = (
                None if master._halt_key is None else master._halt_key[0])
            master.halt_reason = payload["halt_reason"]
            master._error_key = (
                None if payload["error_key"] is None
                else tuple(payload["error_key"]))
            master._error = payload["error"]

    def _finish(self, outcome, cycle, stop_at_cycle):
        master = self.master
        stats = master.stats
        for pid in self.pids:
            os.waitpid(pid, 0)
        self.pids = []
        if outcome == "halt":
            master.cycle = master._halt_at - 1
            master.halted = True
            stats.cycles = max(stats.cycles, master._halt_at)
            return stats
        if outcome == "pause":
            master.cycle = cycle
            stats.cycles = max(stats.cycles, cycle)
            return stats
        if outcome == "error":
            master.cycle = cycle
            raise MachineError(master._error)
        if outcome == "limit":
            master.cycle = cycle
            raise MachineError(
                "cycle limit exceeded (%d); likely livelock" % self.limit)
        if outcome == "deadlock":
            master.cycle = cycle
            raise DeadlockError(master._deadlock_dump())
        raise MachineError("unknown sharded outcome %r" % (outcome,))

    def _cleanup(self):
        for fd in list(self.up.values()) + list(self.down.values()):
            try:
                os.close(fd)
            except OSError:
                pass
        self.up = {}
        self.down = {}
        for pid in self.pids:
            try:
                os.kill(pid, 9)
            except OSError:
                pass
            try:
                os.waitpid(pid, 0)
            except OSError:
                pass
        self.pids = []


def _recv_or_fail(fd):
    try:
        return _recv(fd)
    except EOFError:
        return ("crash", None, None, None)
