"""The space-sharded cycle-accurate engine.

Model
-----

The core line is split into contiguous shards; one forked worker process
per shard runs the ordinary event-descriptor machine
(:mod:`repro.machine.processor`) over its own cores, banks, ports and
egress link cursors.  Workers advance in lock-step **epochs** of
:data:`EPOCH_WIDTH` cycles and exchange cross-shard event descriptors at
every epoch boundary over a full mesh of pipes.

Why the epoch width is safe (conservative lookahead): every cross-core
interaction is an event posted for at least two cycles in the future —
a remote memory request crosses >= 2 router links (1 cycle each), the
forward/backward neighbour lines add one hop plus one delivery cycle,
continuation-value writes add ``cv_write_latency`` on top of the hop,
and the ``re_ack`` / halt broadcasts use fixed >= 2-cycle latencies.  So
while a worker simulates cycles ``[E, E+2)``, no peer can post an event
it would need before cycle ``E+2`` — the next barrier.  The engine
asserts this invariant on every message it ships.

Determinism: event keys ``(cycle, origin, oseq, dst, kind, args)`` are
computed from the *posting domain's* own counter, so they are identical
no matter which process runs the posting core; each worker's event heap
pops in exactly the order the single-process heap would pop the same
subset, and the merged trace (per-domain buffers, merged by ``(cycle,
domain)``) is byte-identical by construction.  Halts, errors, deadlock
and cycle-limit decisions are reduced to min-key form, exchanged in the
per-epoch status record, and re-decided *identically* by every worker —
there is no coordinator making scheduling choices.

Message batch format (one frame per peer per barrier)::

    (status, events)
    status = (cycle, halt_key, halt_reason, error_key, error,
              active_cores, heap_min, heap_size, outbox_min,
              outbox_count, retired, seq_sum, horizon)
    events = [(cycle, origin, oseq, dst, kind, args), ...]

frames are ``marshal`` payloads; the epoch's events ship as the raw heap
tuples in one payload per (peer, epoch) — ``marshal`` round-trips nested
tuples exactly, so the receiver pushes them onto its heap without any
per-message re-encoding.  The payload travels over a seqlock'd
shared-memory ring per directed shard pair (:mod:`repro.parsim.rings`)
when the host supports ``multiprocessing.shared_memory``, or behind a
4-byte big-endian length on the mesh pipe otherwise; the pipes always
stay open for control, oversize-frame spill and fallback.

Epoch fast-forward: each status publishes a *horizon* — the earliest
cycle at which any cross-shard event that shard might emit could land
(and the earliest a halt/error election it might raise could take
effect).  An active shard can act one lookahead out, so it publishes
``cycle + EPOCH_WIDTH``; a fully idle shard acts no earlier than its
next pending event ``e``, and every consequence of handling ``e`` — a
send, a woken core's first tick, a halt — lands at ``>= e +
EPOCH_WIDTH``.  The merged horizon minimum therefore bounds, from below,
the first cycle at which *new* cross-shard influence can appear, and
every worker (computing the identical minimum from the identical merged
statuses) widens its next epoch to exactly that cycle — skipping the
intervening barriers entirely, with no coordinator and no change to the
min-key elections.  An event landing exactly on the horizon is merged by
the barrier *at* the horizon, before any worker simulates that cycle.

Snapshots: at a snapshot trigger (and at every run-ending decision) the
workers ship ``core_state_dict()`` slices of their owned domains to the
parent, which loads them into its master machine — a plain
:class:`~repro.machine.processor.LBP` — so an ``.lbpsnap`` written from
a sharded run is indistinguishable from a single-process one and can be
resumed under any shard count.
"""

import heapq
import marshal
import os
import select
import struct
import time

from repro.machine.processor import (
    EVENT_HANDLERS,
    HALT_LATENCY,
    DeadlockError,
    LBP,
    MachineError,
)
from repro.machine.soa import flush_alu as _flush_alu
from repro.parsim.rings import RingMesh, shm_available

#: conservative lookahead, in cycles: the minimum latency of any
#: cross-core interaction (see the module docstring for the derivation).
#: Workers simulate epochs of this width between barriers.
EPOCH_WIDTH = 2

# a halt would otherwise take effect before the barrier that merges it
assert HALT_LATENCY >= EPOCH_WIDTH

#: livelock/progress probe period, matching the sequential run loop
_PROGRESS_PERIOD = 4096

_FRAME = struct.Struct(">I")


def choose_transport(requested=None):
    """Resolve the epoch data-plane transport: ``"shm"`` or ``"pipe"``.

    *requested* (or the ``LBP_SHARD_TRANSPORT`` environment variable)
    may be ``"auto"`` (default: shared memory when the host supports it
    *and* has more than one usable CPU — ring spin-waits on a single CPU
    only burn the quantum the writer needs), ``"shm"`` (fail loudly when
    unsupported — used by CI to keep the matrix honest) or ``"pipe"``.
    """
    mode = requested or os.environ.get("LBP_SHARD_TRANSPORT") or "auto"
    if mode not in ("auto", "shm", "pipe"):
        raise ValueError(
            "transport must be 'auto', 'shm' or 'pipe', got %r" % (mode,))
    if mode == "pipe":
        return "pipe"
    if shm_available():
        if mode == "auto":
            from repro.parsim.autotune import usable_cpus

            if usable_cpus() <= 1:
                return "pipe"
        return "shm"
    if mode == "shm":
        raise MachineError(
            "shm transport requested but multiprocessing.shared_memory "
            "is unavailable on this host")
    return "pipe"


def partition_cores(num_cores, shards):
    """Contiguous, balanced shard ranges: ``[(start, stop), ...]``.

    The first ``num_cores % shards`` shards take one extra core, so a
    16-core machine under 4 shards yields (0,4) (4,8) (8,12) (12,16).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1, got %d" % shards)
    if shards > num_cores:
        raise ValueError(
            "cannot cut %d core(s) into %d shard(s)" % (num_cores, shards))
    base, extra = divmod(num_cores, shards)
    bounds = []
    start = 0
    for shard in range(shards):
        stop = start + base + (1 if shard < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


# ---- framed marshal transport ------------------------------------------------


def _write_all(fd, data):
    view = memoryview(data)
    while view:
        view = view[os.write(fd, view):]


def _send_blob(fd, blob):
    _write_all(fd, _FRAME.pack(len(blob)) + blob)


def _send(fd, payload):
    _send_blob(fd, marshal.dumps(payload))


def _read_exact(fd, size):
    chunks = []
    while size:
        chunk = os.read(fd, size)
        if not chunk:
            raise EOFError("peer closed the pipe mid-frame")
        chunks.append(chunk)
        size -= len(chunk)
    return b"".join(chunks)


def _recv_blob(fd):
    (size,) = _FRAME.unpack(_read_exact(fd, _FRAME.size))
    return _read_exact(fd, size)


def _recv(fd):
    return marshal.loads(_recv_blob(fd))


# ---- worker ------------------------------------------------------------------


class _Worker:
    """One shard's run loop (executes in the forked child)."""

    def __init__(self, machine, shard, bounds, peer_send, peer_recv,
                 to_parent, from_parent, mesh=None, span_ctx=None):
        self.machine = machine
        self.shard = shard
        self.bounds = bounds
        self.owned = list(range(*bounds[shard]))
        #: core index -> owning shard, for routing outbox messages
        self.owner_of = {}
        for index, (start, stop) in enumerate(bounds):
            for core in range(start, stop):
                self.owner_of[core] = index
        self.peers = [s for s in range(len(bounds)) if s != shard]
        self.peer_send = peer_send    # {shard: write fd}
        self.peer_recv = peer_recv    # {shard: read fd}
        self.to_parent = to_parent
        self.from_parent = from_parent
        # merged-at-last-barrier global view (progress/livelock probe)
        self.global_mark = None
        self.global_events = 0
        #: merged min of the horizons every shard published at the last
        #: barrier: no cross-shard event can land, and no halt/error
        #: election can take effect, before this cycle — so the next
        #: epoch may widen to it.  None until the first merge (and when
        #: nothing anywhere bounds the future: all-idle, empty heaps).
        self.ff_barrier = None
        # shared-memory data plane (None -> the pipe transport)
        if mesh is not None:
            self.transport = "shm"
            self.ring_send = {p: mesh.writer(shard, p) for p in self.peers}
            self.ring_recv = {p: mesh.reader(p, shard) for p in self.peers}
            # oversize frames spill over the retained mesh pipes
            self._spill_out = {
                p: (lambda blob, fd=peer_send[p]: _send_blob(fd, blob))
                for p in self.peers}
            self._spill_in = {
                p: (lambda fd=peer_recv[p]: _recv_blob(fd))
                for p in self.peers}
        else:
            self.transport = "pipe"
            self.ring_send = None
            self.ring_recv = None
        self._ppid = os.getppid()
        # transport/scheduling telemetry (wall-clock; lives outside the
        # deterministic machine state — see ShardedLBP.transport_stats)
        self.epochs = 0
        self.ff_epochs = 0
        self.ff_cycles = 0
        self.epoch_wait_s = 0.0
        # optional span recording (observability only — the ring keeps
        # the *last* N epoch spans; drained over the final gather frame
        # and merged by the coordinator).  None keeps the barrier path
        # span-free: the disabled cost is one attribute test per epoch.
        self.span_ctx = span_ctx
        if span_ctx is not None:
            from repro.observe.spans import SpanRecorder

            self.spans = SpanRecorder()
        else:
            self.spans = None

    def _poll(self):
        """Ring-wait escape hatch: die if the coordinator is gone."""
        if os.getppid() != self._ppid:
            raise EOFError("coordinator died while worker waited on a ring")

    # -- pieces ---------------------------------------------------------------

    def _barrier(self, cycle):
        """Exchange outbox + status with every peer; merge; return stats.

        Returns ``(global_active, global_next)`` where *global_next* is
        the earliest pending activity (event delivery) anywhere, or None.
        """
        t0 = time.perf_counter()
        spans = self.spans
        if spans is not None:
            wait_span = spans.start("epoch_wait", parent=self.span_ctx,
                                    tags={"shard": self.shard,
                                          "cycle": cycle})
            send_span = spans.start("epoch_send", parent=wait_span,
                                    tags={"shard": self.shard})
        machine = self.machine
        outbox = machine._outbox
        machine._outbox = []
        for event in outbox:
            # lookahead invariant: nothing ships that a peer already needed
            assert event[0] >= cycle, (event, cycle)
        status = self._status(cycle, outbox)
        statuses = [None] * len(self.bounds)
        statuses[self.shard] = status
        rings = self.ring_send
        # the no-traffic frame is identical for every peer: marshal once
        empty = None
        for peer in self.peers:
            # one serialized payload per (peer, epoch): the raw event
            # tuples go straight into the frame (marshal preserves
            # nested tuples), so per-event conversion cost is zero
            batch = [
                event for event in outbox
                if self.owner_of[event[3]] == peer
            ]
            if batch:
                blob = marshal.dumps((status, batch))
            else:
                if empty is None:
                    empty = marshal.dumps((status, []))
                blob = empty
            if rings is not None:
                rings[peer].push(blob, spill=self._spill_out[peer],
                                 poll=self._poll)
            else:
                _send_blob(self.peer_send[peer], blob)
        if spans is not None:
            send_span.finish(events=len(outbox))
            recv_span = spans.start("epoch_recv", parent=wait_span,
                                    tags={"shard": self.shard})
        events = machine._events
        heappush = heapq.heappush
        rings = self.ring_recv
        for peer in self.peers:
            if rings is not None:
                peer_status, batch = marshal.loads(
                    rings[peer].pop(spill=self._spill_in[peer],
                                    poll=self._poll))
            else:
                peer_status, batch = _recv(self.peer_recv[peer])
            statuses[peer] = peer_status
            for event in batch:
                heappush(events, event)
        if spans is not None:
            recv_span.finish()
        merged = self._merge(statuses)
        self.epochs += 1
        self.epoch_wait_s += time.perf_counter() - t0
        if spans is not None:
            wait_span.finish()
        return merged

    def _status(self, cycle, outbox):
        machine = self.machine
        events = machine._events
        heap_min = events[0][0] if events else None
        outbox_min = min(ev[0] for ev in outbox) if outbox else None
        retired = sum(
            h.retired for i in self.owned for h in machine.stats.harts[i])
        seq_sum = sum(machine.cores[i]._seq for i in self.owned)
        # the horizon this shard promises: the earliest cycle at which
        # any cross-shard event it might emit could *land* at a peer (and
        # the earliest a halt/error it might raise could take effect).
        # An active core can act next cycle, so the promise is only the
        # conservative lookahead; a fully idle shard acts no earlier
        # than its next pending event, and anything that handling event
        # triggers — a send, a woken core's first tick, a halt — lands
        # EPOCH_WIDTH after it.  None means "I promise nothing ever"
        # (idle, empty heap, empty outbox): an unbounded horizon.
        if machine._num_active > 0:
            horizon = cycle + EPOCH_WIDTH
        else:
            local_next = heap_min
            if outbox_min is not None and (local_next is None
                                           or outbox_min < local_next):
                local_next = outbox_min
            horizon = None if local_next is None else local_next + EPOCH_WIDTH
        return (
            cycle,
            None if machine._halt_key is None else list(machine._halt_key),
            machine.halt_reason,
            None if machine._error_key is None else list(machine._error_key),
            machine._error,
            machine._num_active,
            heap_min,
            len(events),
            outbox_min,
            len(outbox),
            retired,
            seq_sum,
            horizon,
        )

    def _merge(self, statuses):
        """Fold the statuses into this worker's machine — identically
        recomputed by every worker, so all global decisions agree."""
        machine = self.machine
        halt_best = None
        error_best = None
        active = 0
        nxt = None
        pending = 0
        retired = 0
        seq_sum = 0
        ff = None
        for status in statuses:
            (cycle, halt_key, halt_reason, error_key, error, num_active,
             heap_min, heap_size, outbox_min, outbox_count,
             st_retired, st_seq, horizon) = status
            if horizon is not None and (ff is None or horizon < ff):
                ff = horizon
            if halt_key is not None:
                key = tuple(halt_key)
                if halt_best is None or key < halt_best[0]:
                    halt_best = (key, halt_reason)
            if error_key is not None:
                key = tuple(error_key)
                if error_best is None or key < error_best[0]:
                    error_best = (key, error)
            active += num_active
            for candidate in (heap_min, outbox_min):
                if candidate is not None and (nxt is None or candidate < nxt):
                    nxt = candidate
            pending += heap_size + outbox_count
            retired += st_retired
            seq_sum += st_seq
        if halt_best is not None:
            machine._halt_key = halt_best[0]
            machine._halt_at = halt_best[0][0]
            machine.halt_reason = halt_best[1]
        if error_best is not None:
            machine._error_key = error_best[0]
            machine._error = error_best[1]
        self.global_mark = (retired, seq_sum)
        self.global_events = pending
        # the published-horizon minimum (None == every horizon was
        # unbounded).  If any shard still has active cores its horizon
        # is only one lookahead out, so this degenerates to the plain
        # EPOCH_WIDTH epoch; only when the whole machine is event-bound
        # can the next epoch widen.
        self.ff_barrier = ff
        return active, nxt

    def _transport_stats(self):
        """Wall-clock transport/scheduling telemetry for this shard.

        Deliberately *not* part of any machine state or report: wall
        times are nondeterministic, and the deterministic surfaces
        (stats, metrics reports, snapshots) must stay byte-identical
        across shard counts and transports.  This rides the final gather
        frame only, surfacing as ``ShardedLBP.transport_stats``.
        """
        stats = {
            "shard": self.shard,
            "transport": self.transport,
            "epochs": self.epochs,
            "ff_epochs": self.ff_epochs,
            "ff_cycles": self.ff_cycles,
            "epoch_wait_s": round(self.epoch_wait_s, 6),
        }
        if self.ring_send is not None:
            stats["spills"] = sum(w.spills for w in self.ring_send.values())
            stats["send_wait_s"] = round(
                sum(w.wait_s for w in self.ring_send.values()), 6)
            stats["recv_wait_s"] = round(
                sum(r.wait_s for r in self.ring_recv.values()), 6)
        return stats

    def _gather_payload(self):
        machine = self.machine
        return {
            "cores": [
                [index, machine.core_state_dict(index)]
                for index in self.owned
            ],
            "halt_key": (None if machine._halt_key is None
                         else list(machine._halt_key)),
            "halt_reason": machine.halt_reason,
            "error_key": (None if machine._error_key is None
                          else list(machine._error_key)),
            "error": machine._error,
        }

    # -- the loop --------------------------------------------------------------

    def run(self, max_cycles, stop_at_cycle, snapshot_every, want_snapshots,
            profile=False):
        profiler = None
        if profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
        try:
            outcome = self._loop(
                max_cycles, stop_at_cycle, snapshot_every, want_snapshots)
        finally:
            if profiler is not None:
                profiler.disable()
                import pstats
                import sys

                print("--- shard 0 profile (top 20 by cumulative time) ---")
                pstats.Stats(profiler).sort_stats(
                    "cumulative").print_stats(20)
                sys.stdout.flush()
        payload = self._gather_payload()
        payload["transport"] = self._transport_stats()
        if self.spans is not None:
            payload["spans"] = self.spans.drain()
        _send(self.to_parent,
              ("final", outcome, self.machine.cycle, payload))

    def _loop(self, max_cycles, stop_at_cycle, snapshot_every, want_snapshots):
        machine = self.machine
        params = machine.params
        limit = max_cycles if max_cycles is not None else params.max_cycles
        owned = self.owned
        machine._owned = set(owned)
        machine._outbox = []
        machine._events = [
            event for event in machine._events if event[3] in machine._owned]
        heapq.heapify(machine._events)
        machine._num_active = sum(
            1 for i in owned if machine.cores[i].active)

        cores = machine.cores
        per_core = machine.stats.per_core
        metrics = machine.metrics
        handlers = EVENT_HANDLERS
        heappop = heapq.heappop
        cycle = machine.cycle
        progress_mark = (0, 0)
        next_progress = _PROGRESS_PERIOD
        next_snapshot = None
        if snapshot_every is not None and want_snapshots:
            next_snapshot = cycle + snapshot_every

        while True:
            # -- top of epoch: symmetric decisions (identical in every
            # worker — all inputs were merged at the last barrier)
            if machine._halt_at is not None and cycle >= machine._halt_at:
                machine.cycle = machine._halt_at - 1
                machine.halted = True
                return "halt"
            if stop_at_cycle is not None and cycle >= stop_at_cycle:
                machine.cycle = cycle
                return "pause"
            if next_snapshot is not None and cycle >= next_snapshot:
                machine.cycle = cycle
                _send(self.to_parent,
                      ("snapshot", None, cycle, self._gather_payload()))
                if _recv(self.from_parent) != "ack":
                    raise EOFError("parent abandoned the snapshot barrier")
                next_snapshot = cycle + snapshot_every
            if cycle >= next_progress:
                if (self.global_mark is not None
                        and self.global_mark == progress_mark
                        and self.global_events == 0
                        and machine._halt_at is None):
                    machine.cycle = cycle
                    return "deadlock"
                if self.global_mark is not None:
                    progress_mark = self.global_mark
                next_progress = cycle + _PROGRESS_PERIOD
            if cycle > limit:
                machine.cycle = cycle
                return "limit"

            # -- simulate one epoch.  The width is EPOCH_WIDTH unless
            # the horizons merged at the last barrier prove that no
            # cross-shard event can land (and no halt/error election can
            # take effect) before a later cycle — then the epoch widens
            # to that horizon: provably-safe fast-forward, no barriers
            # in between.  Clips keep pause, snapshot and limit
            # decisions on the exact sequential cycle.
            barrier = cycle + EPOCH_WIDTH
            if self.ff_barrier is not None:
                if self.ff_barrier > barrier:
                    barrier = self.ff_barrier
            elif self.global_mark is not None and machine._halt_at is not None:
                # every horizon was unbounded: the whole machine is idle
                # with empty heaps, so the pending halt is the only
                # future — fast-forward straight to it
                if machine._halt_at > barrier:
                    barrier = machine._halt_at
            if stop_at_cycle is not None and stop_at_cycle < barrier:
                barrier = stop_at_cycle
            if next_snapshot is not None and next_snapshot < barrier:
                barrier = next_snapshot
            if limit + 1 < barrier:
                barrier = limit + 1
            if barrier > cycle + EPOCH_WIDTH:
                self.ff_epochs += 1
                self.ff_cycles += barrier - cycle - EPOCH_WIDTH
            events = machine._events
            while cycle < barrier:
                if (machine._halt_at is not None
                        and cycle >= machine._halt_at):
                    break
                if machine._num_active == 0:
                    # all owned cores idle: skip ahead to the next local
                    # event (or the barrier) in one hop — same per-core
                    # skipped_cycles accounting as the per-cycle path
                    target = barrier
                    if events and events[0][0] < target:
                        target = events[0][0]
                    if (machine._halt_at is not None
                            and machine._halt_at < target):
                        target = machine._halt_at
                    if target > cycle:
                        delta = target - cycle
                        for index in owned:
                            per_core[index].skipped_cycles += delta
                            if metrics is not None:
                                metrics.idle(index, cycle, delta)
                        cycle = target
                        continue
                # handlers and core.tick read machine.cycle as "now"
                machine.cycle = cycle
                while events and events[0][0] <= cycle:
                    event = heappop(events)
                    machine._origin = event[3]
                    handlers[event[4]](machine, *event[5])
                for index in owned:
                    core = cores[index]
                    if core.active:
                        machine._origin = index
                        if not core.tick():
                            core.active = False
                            machine._num_active -= 1
                    else:
                        per_core[index].skipped_cycles += 1
                        if metrics is not None:
                            metrics.idle(index, cycle, 1)
                if machine._alu_pending:
                    # SoA backend: end-of-cycle opcode-grouped ALU pass
                    _flush_alu(machine)
                if machine._error is not None:
                    machine.cycle = cycle
                    cycle += 1
                    break
                cycle += 1

            # -- barrier: ship the epoch's cross-shard traffic, merge
            # coordination state, and take the symmetric global decisions
            active, global_next = self._barrier(cycle)
            if machine._error is not None:
                machine.cycle = machine._error_key[0]
                return "error"
            if (active == 0 and global_next is None
                    and machine._halt_at is None):
                machine.cycle = cycle
                return "deadlock"
            # (no explicit idle jump here: when active == 0 the merged
            # horizons already widen the next epoch to global_next +
            # EPOCH_WIDTH, and the in-epoch skip-ahead covers the gap in
            # one hop with identical skipped-cycle/idle accounting)
            machine.cycle = cycle


def _worker_main(machine, shard, bounds, peer_send, peer_recv,
                 to_parent, from_parent, run_kwargs, profile, mesh=None,
                 span_ctx=None):
    worker = _Worker(machine, shard, bounds, peer_send, peer_recv,
                     to_parent, from_parent, mesh=mesh, span_ctx=span_ctx)
    worker.run(profile=profile, **run_kwargs)


# ---- parent-side coordinator -------------------------------------------------


def zeroed_transport_stats():
    """The ``transport_stats`` schema with every counter at zero.

    Published by degenerate (in-process, shards<=1) runs so consumers —
    ``observe.transport_table``, BENCH recorders — read one shape
    unconditionally instead of guarding on existence.
    """
    return {
        "transport": None,
        "shards": 1,
        "epoch_wait_s": 0.0,
        "epochs": 0,
        "ff_epochs": 0,
        "ff_cycles": 0,
        "per_shard": [],
    }


class ShardedLBP:
    """Space-sharded façade over a master :class:`LBP` machine.

    Same construction/run interface as ``LBP``; ``run`` forks one worker
    per shard, and every observable result — stats, trace, memory,
    snapshots — is gathered back into the master machine, which behaves
    exactly as if it had simulated the run by itself.
    """

    def __init__(self, params=None, trace=None, shards=None, master=None,
                 sanitize=False, metrics=None, backend=None, transport=None):
        if master is not None:
            self.master = master
        else:
            self.master = LBP(params, trace=trace, sanitize=sanitize,
                              metrics=metrics, backend=backend)
        if shards is None:
            raise ValueError("ShardedLBP requires an explicit shard count")
        if shards == "auto":
            #: resolved lazily at the first run() — the auto-tuner wants
            #: the loaded program (and any resumed state) to calibrate on
            self.shards = "auto"
        else:
            requested = int(shards)
            if requested < 1:
                raise ValueError("shards must be >= 1, got %d" % requested)
            #: effective shard count: never more than one core per shard
            self.shards = min(requested, self.master.params.num_cores)
        #: epoch data plane: None/"auto" (shm when available), "shm",
        #: "pipe" — see :func:`choose_transport`
        self.transport = transport
        #: the auto-tuner's decision record, set when shards == "auto"
        #: resolves (also surfaced through ExperimentResults.meta by the
        #: experiments CLI)
        self.auto_decision = None
        #: per-shard wall-clock transport/scheduling telemetry from the
        #: last sharded run (nondeterministic by nature, so it lives
        #: here, outside every deterministic surface)
        self.transport_stats = None
        #: optional tracing: callers set ``span_ctx`` to a
        #: ``(trace_id, span_id)`` tuple before run(); the shard workers
        #: then record per-epoch wait/send/recv spans, merged back here
        #: as ``span_records`` (plain dicts, never machine state)
        self.span_ctx = None
        self.span_records = None
        #: when set, shard 0's worker runs under cProfile and prints its
        #: top-20 table before exiting (``repro run --profile --shards N``)
        self.profile_shard_zero = False

    # -- façade ---------------------------------------------------------------

    @property
    def params(self):
        return self.master.params

    @property
    def program(self):
        return self.master.program

    @property
    def stats(self):
        return self.master.stats

    @property
    def trace(self):
        return self.master.trace

    @property
    def cores(self):
        return self.master.cores

    @property
    def mmio(self):
        return self.master.mmio

    @property
    def cycle(self):
        return self.master.cycle

    @property
    def halted(self):
        return self.master.halted

    @property
    def halt_reason(self):
        return self.master.halt_reason

    @property
    def sanitizer(self):
        return self.master.sanitizer

    @property
    def metrics(self):
        return self.master.metrics

    @property
    def backend(self):
        return self.master.backend

    def race_report(self, sync=None):
        """Analyze the gathered shard-local observations (one merged,
        sharding-independent report — see repro.sanitize)."""
        return self.master.race_report(sync=sync)

    def metrics_report(self):
        """The gathered shard-local telemetry, merged — byte-identical
        to a single-process run's report (see repro.observe)."""
        return self.master.metrics_report()

    def load(self, program, start=True):
        self.master.load(program, start=start)
        return self

    def add_device(self, addr, device):
        raise MachineError(
            "the sharded engine cannot host MMIO devices: a device is an "
            "external object living in the parent process, invisible to "
            "the shard workers — run with shards=1 to attach devices"
        )

    def read_word(self, addr):
        return self.master.read_word(addr)

    def write_word(self, addr, value):
        return self.master.write_word(addr, value)

    def read_local(self, core_index, addr):
        return self.master.read_local(core_index, addr)

    def state_dict(self):
        return self.master.state_dict()

    def load_state_dict(self, state):
        return self.master.load_state_dict(state)

    # -- run -------------------------------------------------------------------

    def run(self, max_cycles=None, stop_at_cycle=None,
            snapshot_every=None, snapshot_callback=None):
        master = self.master
        if self.shards == "auto":
            from repro.parsim.autotune import choose_shards

            self.shards, self.auto_decision = choose_shards(
                master, max_cycles=max_cycles)
        if (self.shards <= 1
                or master.halted
                or (stop_at_cycle is not None
                    and master.cycle >= stop_at_cycle)):
            # degenerate cases: the in-process loop is the sharded run.
            # Publish a zeroed stats object with the sharded schema so
            # observe.transport_table and BENCH consumers never need an
            # existence check (no epochs were exchanged, so every
            # transport counter is honestly zero).
            self.transport_stats = zeroed_transport_stats()
            return master.run(
                max_cycles=max_cycles, stop_at_cycle=stop_at_cycle,
                snapshot_every=snapshot_every,
                snapshot_callback=snapshot_callback)
        if master.mmio:
            raise MachineError(
                "the sharded engine cannot simulate machines with MMIO "
                "devices attached (%d present)" % len(master.mmio))
        return _Coordinator(self).run(
            max_cycles, stop_at_cycle, snapshot_every, snapshot_callback)


class _Coordinator:
    """Forks the workers, services gathers, applies them to the master."""

    def __init__(self, sharded):
        self.sharded = sharded
        self.master = sharded.master
        self.bounds = partition_cores(
            self.master.params.num_cores, sharded.shards)
        self.pids = []
        self.up = {}      # shard -> read fd (worker -> parent)
        self.down = {}    # shard -> write fd (parent -> worker)
        self.mesh = None  # shm ring segment (None under the pipe transport)
        self.transport = choose_transport(sharded.transport)
        self.span_ctx = sharded.span_ctx
        self._spans = None
        self._span = None
        if self.span_ctx is not None:
            from repro.observe.spans import SpanRecorder

            self._spans = SpanRecorder()

    def run(self, max_cycles, stop_at_cycle, snapshot_every,
            snapshot_callback):
        master = self.master
        shards = len(self.bounds)
        self.limit = (max_cycles if max_cycles is not None
                      else master.params.max_cycles)
        run_kwargs = {
            "max_cycles": max_cycles,
            "stop_at_cycle": stop_at_cycle,
            "snapshot_every": snapshot_every,
            "want_snapshots": snapshot_callback is not None,
        }
        if self._spans is not None:
            self._span = self._spans.start(
                "shard_coordinate", parent=tuple(self.span_ctx),
                tags={"shards": shards, "transport": self.transport})

        # full mesh: mesh[i][j] = (read, write) pipe carrying i -> j.
        # Under the shm transport the pipes stay open as the control and
        # spill channel; the epoch data plane moves to the ring segment,
        # created here so the forked children inherit the mapping.
        mesh = {
            i: {j: os.pipe() for j in range(shards) if j != i}
            for i in range(shards)
        }
        parent_up = {s: os.pipe() for s in range(shards)}
        parent_down = {s: os.pipe() for s in range(shards)}
        if self.transport == "shm":
            self.mesh = RingMesh(shards)

        try:
            for shard in range(shards):
                pid = os.fork()
                if pid == 0:
                    self._child(shard, mesh, parent_up, parent_down,
                                run_kwargs)
                    os._exit(0)  # unreachable; _child always exits
                self.pids.append(pid)
            # parent keeps only its ends
            for i in mesh:
                for _, (r, w) in mesh[i].items():
                    os.close(r)
                    os.close(w)
            for shard in range(shards):
                r, w = parent_up[shard]
                os.close(w)
                self.up[shard] = r
                r, w = parent_down[shard]
                os.close(r)
                self.down[shard] = w

            return self._serve(snapshot_callback, stop_at_cycle)
        finally:
            if self._span is not None:
                self._span.finish()
                records = self.sharded.span_records or []
                records.extend(self._spans.drain())
                self.sharded.span_records = records
            self._cleanup()

    def _child(self, shard, mesh, parent_up, parent_down, run_kwargs):
        status = 1
        to_parent = None
        try:
            peer_send = {}
            peer_recv = {}
            for i in mesh:
                for j, (r, w) in mesh[i].items():
                    if i == shard:
                        os.close(r)
                        peer_send[j] = w
                    elif j == shard:
                        os.close(w)
                        peer_recv[i] = r
                    else:
                        os.close(r)
                        os.close(w)
            for s, (r, w) in parent_up.items():
                os.close(r)
                if s == shard:
                    to_parent = w
                else:
                    os.close(w)
            for s, (r, w) in parent_down.items():
                os.close(w)
                if s == shard:
                    from_parent = r
                else:
                    os.close(r)
            profile = self.sharded.profile_shard_zero and shard == 0
            span_ctx = self._span.ctx if self._span is not None else None
            _worker_main(self.master, shard, self.bounds, peer_send,
                         peer_recv, to_parent, from_parent, run_kwargs,
                         profile, mesh=self.mesh, span_ctx=span_ctx)
            status = 0
        except BaseException:
            import traceback

            traceback.print_exc()
            # flight recorder: a crashing shard spills its own last-N
            # event ring before electing the crash frame (a SIGKILLed
            # sibling can't — the coordinator spills for the fleet)
            from repro.observe.spans import flight, flight_dir

            flight().note("shard_crash", shard=shard)
            flight().spill(flight_dir(), "shard %d crashed" % shard)
            if to_parent is not None:
                try:
                    _send(to_parent, ("crash", shard, None, None))
                except OSError:
                    pass
        finally:
            os._exit(status)

    def _gather_round(self):
        """One frame from every worker, gathered concurrently.

        ``select()`` across the up-pipes rather than reading them in
        shard order: a crashed worker must be noticed even while its
        peers are stuck mid-epoch (under the shm transport a surviving
        peer spins on a ring slot that will never be filled, so it
        neither crashes nor closes its pipe).  On the first crash frame
        (or EOF) every worker is killed, which unblocks the spinners,
        before the failure is raised to the caller.
        """
        frames = {}
        pending = dict(self.up)
        while pending:
            ready, _, _ = select.select(list(pending.values()), [], [])
            for shard in sorted(pending):
                if pending[shard] not in ready:
                    continue
                frame = _recv_or_fail(pending.pop(shard))
                if frame[0] == "crash":
                    # crash-frame election: spill the coordinator's own
                    # flight ring (the dead worker's ring died with it)
                    from repro.observe.spans import flight, flight_dir

                    flight().note("crash_frame", shard=frame[1],
                                  shards=len(self.bounds),
                                  transport=self.transport)
                    flight().spill(
                        flight_dir(),
                        "shard crash frame (shard=%r)" % (frame[1],))
                    self._kill_workers()
                    raise MachineError(
                        "sharded worker crashed (see the worker's "
                        "traceback on stderr)")
                frames[shard] = frame
        return [frames[shard] for shard in sorted(frames)]

    def _kill_workers(self):
        for pid in self.pids:
            try:
                os.kill(pid, 9)
            except OSError:
                pass

    def _serve(self, snapshot_callback, stop_at_cycle):
        """Read gather rounds until the run ends; apply; decide outcome."""
        while True:
            frames = self._gather_round()
            kinds = {frame[0] for frame in frames}
            if len(kinds) != 1:
                raise MachineError(
                    "sharded workers desynchronised: %r" % sorted(kinds))
            kind, outcome, cycle = frames[0][:3]
            self._apply(frames)
            if kind == "snapshot":
                self.master.cycle = cycle
                snapshot_callback(self.sharded)
                for s in sorted(self.down):
                    _send(self.down[s], "ack")
                continue
            return self._finish(outcome, cycle, stop_at_cycle)

    def _apply(self, frames):
        """Load the gathered shard slices into the master machine."""
        master = self.master
        master._events = []
        shard_stats = []
        shard_spans = []
        for frame in frames:
            payload = frame[3]
            if "transport" in payload:
                shard_stats.append(payload["transport"])
            shard_spans.extend(payload.get("spans") or ())
        if shard_spans:
            records = self.sharded.span_records or []
            records.extend(shard_spans)
            self.sharded.span_records = records
        if shard_stats:
            self.sharded.transport_stats = {
                "transport": self.transport,
                "shards": len(self.bounds),
                "epoch_wait_s": round(
                    sum(s["epoch_wait_s"] for s in shard_stats), 6),
                "epochs": max(s["epochs"] for s in shard_stats),
                "ff_epochs": max(s["ff_epochs"] for s in shard_stats),
                "ff_cycles": max(s["ff_cycles"] for s in shard_stats),
                "per_shard": shard_stats,
            }
        for frame in frames:
            payload = frame[3]
            for index, state in payload["cores"]:
                master.load_core_state_dict(index, state)
            master._halt_key = (
                None if payload["halt_key"] is None
                else tuple(payload["halt_key"]))
            master._halt_at = (
                None if master._halt_key is None else master._halt_key[0])
            master.halt_reason = payload["halt_reason"]
            master._error_key = (
                None if payload["error_key"] is None
                else tuple(payload["error_key"]))
            master._error = payload["error"]

    def _finish(self, outcome, cycle, stop_at_cycle):
        master = self.master
        stats = master.stats
        for pid in self.pids:
            os.waitpid(pid, 0)
        self.pids = []
        if outcome == "halt":
            master.cycle = master._halt_at - 1
            master.halted = True
            stats.cycles = max(stats.cycles, master._halt_at)
            return stats
        if outcome == "pause":
            master.cycle = cycle
            stats.cycles = max(stats.cycles, cycle)
            return stats
        if outcome == "error":
            master.cycle = cycle
            raise MachineError(master._error)
        if outcome == "limit":
            master.cycle = cycle
            raise MachineError(
                "cycle limit exceeded (%d); likely livelock" % self.limit)
        if outcome == "deadlock":
            master.cycle = cycle
            raise DeadlockError(master._deadlock_dump())
        raise MachineError("unknown sharded outcome %r" % (outcome,))

    def _cleanup(self):
        if self.mesh is not None:
            self.mesh.close()
            self.mesh.unlink()
            self.mesh = None
        for fd in list(self.up.values()) + list(self.down.values()):
            try:
                os.close(fd)
            except OSError:
                pass
        self.up = {}
        self.down = {}
        for pid in self.pids:
            try:
                os.kill(pid, 9)
            except OSError:
                pass
            try:
                os.waitpid(pid, 0)
            except OSError:
                pass
        self.pids = []


def _recv_or_fail(fd):
    try:
        return _recv(fd)
    except EOFError:
        return ("crash", None, None, None)
