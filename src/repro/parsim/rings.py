"""Shared-memory ring transport for the sharded engine's epoch frames.

One fixed-geometry ring buffer per *directed* shard pair, all carved out
of a single :mod:`multiprocessing.shared_memory` segment created by the
coordinator before it forks the workers (the forked children inherit the
mapping — no reattach, no name exchange).  A ring replaces the pickled
pipe frame of the original transport for the epoch data plane; the mesh
pipes stay open beside it for control, for oversize-frame spill, and as
the automatic whole-run fallback when shared memory is unavailable.

Protocol (single writer, single reader per ring)
------------------------------------------------

The two sides never share head/tail indices: the epoch protocol is
lock-step, so each side counts frames locally and the ring only needs a
*consumed* counter flowing reader -> writer for backpressure.  Every
slot is guarded by a seqlock word:

* writer, publishing frame ``f`` into slot ``f % slots``::

      seq <- (2f + 1) mod 2^32          # odd: write in progress
      length, crc32, flags, payload
      seq <- (2f + 2) mod 2^32          # even: frame f published

* reader, expecting frame ``f``: spin until ``seq == (2f + 2) mod 2^32``,
  copy the payload, validate the CRC, then re-read the header and
  confirm it did not move.  The CRC is *seeded with the frame's odd
  sequence word*, so it is never 0 and no torn, reordered, or
  transiently fabricated read (a cross-process mmap read has been
  observed to return stale zero bytes for part of a header while the
  underlying memory was valid) can validate by accident: a bad read
  fails the check and the reader simply keeps spinning — re-reading
  the same header converges on the writer's published stores.

* backpressure: the writer stalls while ``f - consumed >= slots``.  The
  consumed counter is published by the reader as a 32-bit value plus its
  bitwise complement; the writer rejects any torn pair.

Frames larger than the slot payload *spill*: the slot carries only the
``SPILL`` flag and the true length, and the bytes travel over the spill
channel (the retained mesh pipe).  Slot sequencing still orders spilled
frames relative to ring frames, and the pipe is FIFO, so delivery order
is untouched.
"""

import os
import struct
import time
import zlib

_U32 = 0xFFFFFFFF

#: slot header: seqlock word, payload length, crc32, flags
_SLOT_HDR = struct.Struct("<IIII")
#: reader->writer consumed counter: value, ~value (torn-read check)
_CONSUMED = struct.Struct("<II")
#: ring header holds just the consumed pair, padded to 64 bytes so the
#: reader-written cache line never false-shares with slot 0
RING_HDR_BYTES = 64

#: frame flag: payload travelled over the spill channel, not the slot
SPILL = 1

DEFAULT_SLOTS = 8
DEFAULT_SLOT_BYTES = 1 << 15  # 32 KiB of payload per slot


def _frame_crc(payload, frame):
    """CRC of *payload* seeded with frame ``f``'s odd seqlock word.

    The seed makes the expected CRC unique per frame and never zero, so
    a header read that fabricates zeros (or resurrects a stale frame)
    can never validate — even for an empty payload.
    """
    return zlib.crc32(payload, (2 * frame + 1) & _U32)


def ring_bytes(slots, slot_bytes):
    """Total bytes one ring occupies in the segment."""
    return RING_HDR_BYTES + slots * (_SLOT_HDR.size + slot_bytes)


def _backoff(spun, poll):
    """One step of a graduated spin-wait; returns the updated counter.

    Pure spin first (the common case resolves in microseconds), then
    GIL-yield, then a short sleep with a *poll* callback so the caller
    can notice a dead peer instead of spinning forever.
    """
    if spun < 200:
        pass
    elif spun < 2000:
        time.sleep(0)
    else:
        if poll is not None:
            poll()
        time.sleep(5e-5)
    return spun + 1


class RingWriter:
    """The producing side of one directed ring."""

    def __init__(self, buf, base, slots, slot_bytes):
        self.buf = buf
        self.base = base
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.stride = _SLOT_HDR.size + slot_bytes
        self.frame = 0  # next frame number to publish
        #: frames diverted to the spill channel (telemetry)
        self.spills = 0
        #: wall seconds spent waiting on ring backpressure (telemetry)
        self.wait_s = 0.0

    def _consumed(self):
        """The reader's consumed count, re-read until untorn."""
        while True:
            value, check = _CONSUMED.unpack_from(self.buf, self.base)
            if check == (~value & _U32):
                return value

    def push(self, payload, spill=None, poll=None):
        """Publish one frame; block while the ring is full.

        *spill* is called with the payload bytes when they exceed the
        slot capacity (``None`` raises instead).  *poll*, when given, is
        invoked periodically during a backpressure stall so the caller
        can detect a dead peer rather than spin forever.
        """
        frame = self.frame
        if ((frame - self._consumed()) & _U32) >= self.slots:
            spun = 0
            t0 = time.perf_counter()
            while ((frame - self._consumed()) & _U32) >= self.slots:
                spun = _backoff(spun, poll)
            self.wait_s += time.perf_counter() - t0
        offset = self.base + RING_HDR_BYTES + (frame % self.slots) * self.stride
        buf = self.buf
        size = len(payload)
        if size > self.slot_bytes:
            if spill is None:
                raise ValueError(
                    "frame of %d bytes exceeds the %d-byte slot and no "
                    "spill channel is attached" % (size, self.slot_bytes))
            crc = _frame_crc(b"", frame)
            _SLOT_HDR.pack_into(buf, offset, (2 * frame + 1) & _U32,
                                size, crc, SPILL)
            _SLOT_HDR.pack_into(buf, offset, (2 * frame + 2) & _U32,
                                size, crc, SPILL)
            spill(payload)
            self.spills += 1
        else:
            crc = _frame_crc(payload, frame)
            _SLOT_HDR.pack_into(buf, offset, (2 * frame + 1) & _U32,
                                size, crc, 0)
            buf[offset + _SLOT_HDR.size:
                offset + _SLOT_HDR.size + size] = payload
            _SLOT_HDR.pack_into(buf, offset, (2 * frame + 2) & _U32,
                                size, crc, 0)
        self.frame = frame + 1


class RingReader:
    """The consuming side of one directed ring."""

    def __init__(self, buf, base, slots, slot_bytes):
        self.buf = buf
        self.base = base
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.stride = _SLOT_HDR.size + slot_bytes
        self.frame = 0  # next frame number to consume
        #: wall seconds spent waiting for the writer (telemetry)
        self.wait_s = 0.0

    def _publish_consumed(self):
        value = self.frame & _U32
        _CONSUMED.pack_into(self.buf, self.base, value, ~value & _U32)

    def pop(self, spill=None, poll=None):
        """Block until the next frame is published; return its payload.

        *spill* is called () -> bytes to fetch an oversize frame from
        the spill channel.  *poll* as in :meth:`RingWriter.push`.
        """
        frame = self.frame
        want = (2 * frame + 2) & _U32
        offset = self.base + RING_HDR_BYTES + (frame % self.slots) * self.stride
        buf = self.buf
        body = offset + _SLOT_HDR.size
        spun = 0
        t0 = None
        while True:
            seq, length, crc, flags = _SLOT_HDR.unpack_from(buf, offset)
            if seq == want:
                if flags & SPILL:
                    if crc != _frame_crc(b"", frame):
                        spun = _backoff(spun, poll)
                        if t0 is None:
                            t0 = time.perf_counter()
                        continue
                    if spill is None:
                        raise ValueError(
                            "peer spilled a %d-byte frame but no spill "
                            "channel is attached" % length)
                    payload = spill()
                else:
                    payload = bytes(buf[body:body + length])
                    hdr_after = _SLOT_HDR.unpack_from(buf, offset)
                    if (hdr_after != (seq, length, crc, flags)
                            or len(payload) != length
                            or _frame_crc(payload, frame) != crc):
                        # torn, in-flight, or a transiently bad read of
                        # valid memory — keep spinning; re-reading the
                        # header converges on the published stores
                        spun = _backoff(spun, poll)
                        if t0 is None:
                            t0 = time.perf_counter()
                        continue
                if t0 is not None:
                    self.wait_s += time.perf_counter() - t0
                self.frame = frame + 1
                self._publish_consumed()
                return payload
            if t0 is None:
                t0 = time.perf_counter()
            spun = _backoff(spun, poll)


class RingMesh:
    """All ``shards * (shards - 1)`` directed rings in one shm segment.

    Created by the coordinator *before* forking; each worker then builds
    its writer/reader views over the inherited mapping with
    :meth:`writer` / :meth:`reader`.  Only the creating (parent) process
    may :meth:`unlink`.
    """

    def __init__(self, shards, slots=None, slot_bytes=None):
        from multiprocessing import shared_memory

        self.shards = shards
        self.slots = slots if slots else int(
            os.environ.get("LBP_SHM_SLOTS") or DEFAULT_SLOTS)
        self.slot_bytes = slot_bytes if slot_bytes else int(
            os.environ.get("LBP_SHM_SLOT_BYTES") or DEFAULT_SLOT_BYTES)
        self._index = {}
        offset = 0
        size = ring_bytes(self.slots, self.slot_bytes)
        for src in range(shards):
            for dst in range(shards):
                if src != dst:
                    self._index[(src, dst)] = offset
                    offset += size
        self.shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        self.shm.buf[:offset] = b"\x00" * offset
        # every ring starts with a valid (0, ~0) consumed pair
        for base in self._index.values():
            _CONSUMED.pack_into(self.shm.buf, base, 0, _U32)

    def writer(self, src, dst):
        return RingWriter(self.shm.buf, self._index[(src, dst)],
                          self.slots, self.slot_bytes)

    def reader(self, src, dst):
        return RingReader(self.shm.buf, self._index[(src, dst)],
                          self.slots, self.slot_bytes)

    def close(self):
        try:
            self.shm.close()
        except Exception:
            pass

    def unlink(self):
        try:
            self.shm.unlink()
        except Exception:
            pass


_AVAILABLE = None


def shm_available():
    """Whether ``multiprocessing.shared_memory`` works on this host.

    Probed once per process by creating (and immediately destroying) a
    one-page segment; containers without a usable /dev/shm fail here and
    the engine falls back to the pipe transport.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE
