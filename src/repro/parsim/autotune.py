"""Traffic-driven shard auto-tuning (``shards="auto"``).

The tuner answers one question: given this machine, this program and
this host, how many shards pay for their epoch overhead?  It runs a
short **calibration prefix** of the workload in-process on a throwaway
clone of the machine, counting every posted event against the candidate
partitions, then scores each candidate by parallel width discounted by
its measured cross-shard traffic:

    score(S) = S / (1 + crossings_per_cycle(S) / num_cores)

Cross-shard traffic is what epochs exist to carry: a candidate whose
partition boundaries cut hot event paths (router hops, neighbour lines,
continuation-value writes) scores closer to 1 and loses to a coarser
cut.  Candidates are powers of two bounded by the host's usable CPUs and
by one core per shard; with a single CPU the tuner short-circuits to 1
shard without calibrating.

The decision record — candidates, crossing counts, scores, the pick and
why — is returned alongside the pick, lands on
``ShardedLBP.auto_decision``, and the experiments CLI copies it into
``ExperimentResults.meta`` so BENCH rows can attribute the choice.
"""

import os

#: calibration prefix length, in cycles (LBP_AUTOTUNE_CYCLES overrides)
DEFAULT_CALIB_CYCLES = 2048


def usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def candidate_shards(num_cores, cpus):
    """Power-of-two shard counts worth considering on this host."""
    candidates = []
    shard = 1
    while shard <= min(num_cores, cpus):
        candidates.append(shard)
        shard *= 2
    return candidates


def measure_crossings(master, calib_cycles, candidates):
    """Run a calibration prefix on a clone; tally boundary crossings.

    Returns ``(cycles_run, {shards: crossings})`` — the number of events
    posted across each candidate partition's shard boundaries during the
    prefix.  The clone starts from the master's current state (so a
    resumed run calibrates on the phase it is actually in) and is thrown
    away afterwards; the master is never touched.
    """
    from repro.machine.processor import LBP
    from repro.parsim.engine import partition_cores

    clone = LBP(master.params, backend=master.backend)
    clone.load(master.program, start=False)
    clone.load_state_dict(master.state_dict())
    start = clone.cycle

    pairs = {}  # (origin_core, dst_core) -> posts
    inner_post = clone.post

    def counting_post(dst, cycle, kind, args):
        key = (clone._origin, dst)
        pairs[key] = pairs.get(key, 0) + 1
        inner_post(dst, cycle, kind, args)

    clone.post = counting_post
    try:
        clone.run(stop_at_cycle=start + calib_cycles)
    except Exception:
        # a prefix that halts/errors/deadlocks still measured traffic
        pass
    cycles_run = max(clone.cycle - start, 1)

    crossings = {}
    num_cores = master.params.num_cores
    for shards in candidates:
        owner = {}
        for index, (lo, hi) in enumerate(partition_cores(num_cores, shards)):
            for core in range(lo, hi):
                owner[core] = index
        crossings[shards] = sum(
            count for (origin, dst), count in pairs.items()
            if owner[origin] != owner[dst])
    return cycles_run, crossings


def choose_shards(master, max_cycles=None):
    """Pick a shard count for *master*; returns ``(shards, decision)``."""
    cpus = usable_cpus()
    num_cores = master.params.num_cores
    candidates = candidate_shards(num_cores, cpus)
    decision = {
        "requested": "auto",
        "cpus": cpus,
        "num_cores": num_cores,
        "candidates": candidates,
    }
    if candidates == [1]:
        decision["shards"] = 1
        decision["source"] = "cpu-count"
        decision["reason"] = (
            "single usable CPU" if cpus <= 1 else "single core")
        return 1, decision

    calib = int(os.environ.get("LBP_AUTOTUNE_CYCLES")
                or DEFAULT_CALIB_CYCLES)
    if max_cycles is not None:
        calib = min(calib, max_cycles)
    try:
        cycles_run, crossings = measure_crossings(master, calib, candidates)
    except Exception as exc:
        # calibration is best-effort: fall back to the widest cut the
        # host can actually run in parallel
        pick = candidates[-1]
        decision["shards"] = pick
        decision["source"] = "cpu-count"
        decision["reason"] = "calibration failed: %s" % (exc,)
        return pick, decision

    scores = {}
    for shards in candidates:
        rate = crossings[shards] / cycles_run / num_cores
        scores[shards] = shards / (1.0 + rate)
    # argmax, ties to the smaller (cheaper) cut
    pick = max(candidates, key=lambda s: (scores[s], -s))
    decision.update({
        "shards": pick,
        "source": "calibration",
        "calib_cycles": cycles_run,
        "crossings": crossings,
        "scores": {s: round(scores[s], 4) for s in candidates},
    })
    return pick, decision
