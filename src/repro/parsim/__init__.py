"""Space-sharded execution of the cycle-accurate LBP simulator.

``ShardedLBP(params, shards=N)`` — or equivalently ``LBP(params,
shards=N)`` — partitions the machine's core line into N contiguous
shards and simulates each shard in its own forked worker process, while
producing *bit-identical* results to the single-process engine: the same
merged event order, the same trace lines, the same statistics, and the
same golden digests.  ``shards="auto"`` lets a traffic-driven calibration
pick the count (:mod:`repro.parsim.autotune`).

The epoch data plane rides shared-memory seqlock rings
(:mod:`repro.parsim.rings`) when the host supports them, falling back to
the original pipe transport automatically; ``LBP_SHARD_TRANSPORT``
(``auto``/``shm``/``pipe``) or ``ShardedLBP(transport=...)`` forces a
choice.  Both transports are bit-identical by construction.  See
:mod:`repro.parsim.engine` for the epoch protocol and DESIGN.md
("Space-sharded cycle-accurate engine", "Making sharding win") for the
determinism argument.
"""

from repro.parsim.engine import (
    EPOCH_WIDTH,
    ShardedLBP,
    choose_transport,
    partition_cores,
)
from repro.parsim.rings import RingMesh, shm_available

__all__ = [
    "EPOCH_WIDTH",
    "RingMesh",
    "ShardedLBP",
    "choose_transport",
    "partition_cores",
    "shm_available",
]
