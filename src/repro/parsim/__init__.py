"""Space-sharded execution of the cycle-accurate LBP simulator.

``ShardedLBP(params, shards=N)`` — or equivalently ``LBP(params,
shards=N)`` — partitions the machine's core line into N contiguous
shards and simulates each shard in its own forked worker process, while
producing *bit-identical* results to the single-process engine: the same
merged event order, the same trace lines, the same statistics, and the
same golden digests.  See :mod:`repro.parsim.engine` for the epoch
protocol and DESIGN.md ("Space-sharded cycle-accurate engine") for the
determinism argument.
"""

from repro.parsim.engine import EPOCH_WIDTH, ShardedLBP, partition_cores

__all__ = ["EPOCH_WIDTH", "ShardedLBP", "partition_cores"]
