"""Bit-exact snapshot/restore of the cycle-accurate LBP simulator.

On-disk format (all integers big-endian)::

    offset  size  field
    0       8     magic  b"LBPSNAP\\x01"
    8       4     snapshot format version (SNAPSHOT_FORMAT_VERSION)
    12      8     body length in bytes
    20      32    SHA-256 digest of the body
    52      ...   body: zlib-compressed canonical JSON payload

The payload carries the simulator version tag, the machine params, the
full program image (:mod:`repro.snapshot.progio`) and the machine's
``state_dict()`` — including the pending event queue, whose entries are
plain ``(cycle, seq, kind, args)`` descriptors (see
``repro.machine.processor.EVENT_HANDLERS``).  ``restore`` verifies the
digest, rebuilds the program, constructs a fresh machine and loads the
state; because the machine is deterministic, the restored run continues
with the identical event trace and cycle count as an uninterrupted one
(pinned by ``tests/integration/test_snapshot_roundtrip.py`` against the
golden digests).

Machines with attached MMIO devices are refused: devices are external
objects whose construction the snapshot cannot reproduce.
"""

import base64
import hashlib
import json
import struct
import zlib

from repro.machine.params import Params
from repro.machine.processor import LBP
from repro.snapshot.progio import program_from_state, program_state

#: binary container version; bump on layout changes
SNAPSHOT_FORMAT_VERSION = 1

#: semantic version of the simulated machine model.  Bump whenever a model
#: change invalidates recorded state — i.e. whenever the golden trace
#: digests (tests/data/golden_traces.json) are intentionally regenerated.
#: Stored in every snapshot and mixed into every cache key.
SIM_VERSION = "lbp-sim-3"

_MAGIC = b"LBPSNAP\x01"
_HEADER = struct.Struct(">IQ")


class SnapshotError(Exception):
    """Malformed, corrupt or incompatible snapshot data."""


class SnapshotUnsupportedError(SnapshotError):
    """The machine cannot be snapshotted (fast simulator, MMIO devices)."""


def trace_digest(events):
    """SHA-256 over the event tuples — same digest the golden traces pin."""
    digest = hashlib.sha256()
    for event in events:
        digest.update(repr(tuple(event)).encode())
    return digest.hexdigest()


# ---- JSON codec with bytes support ------------------------------------------


def _jsonable(value):
    if isinstance(value, (bytes, bytearray)):
        return {"__b64__": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def _unjsonable(value):
    if isinstance(value, dict):
        if len(value) == 1 and "__b64__" in value:
            return base64.b64decode(value["__b64__"])
        return {key: _unjsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_unjsonable(item) for item in value]
    return value


# ---- public API --------------------------------------------------------------


def snapshot(machine):
    """Serialize a cycle-accurate *machine* to bytes (see module doc)."""
    # the sharded engine (repro.parsim.ShardedLBP) is a façade whose
    # gathered state lives in an ordinary master LBP — snapshot that, so
    # sharded and single-process runs produce interchangeable files
    master = getattr(machine, "master", None)
    if isinstance(master, LBP):
        machine = master
    if not isinstance(machine, LBP):
        raise SnapshotUnsupportedError(
            "only the cycle-accurate LBP simulator supports snapshot/restore; "
            "got %s (the fast simulator's quantum scheduler holds "
            "non-serializable in-flight state)" % type(machine).__name__
        )
    if machine.mmio:
        raise SnapshotUnsupportedError(
            "machine has %d MMIO device port(s) attached; devices are "
            "external objects a snapshot cannot reconstruct — detach them "
            "or snapshot a device-free machine" % len(machine.mmio)
        )
    if machine.program is None:
        raise SnapshotError("machine has no program loaded")
    payload = {
        "format": "lbp-snapshot",
        "snapshot_version": SNAPSHOT_FORMAT_VERSION,
        "sim_version": SIM_VERSION,
        "params": machine.params.state_dict(),
        "program": program_state(machine.program),
        "machine": machine.state_dict(),
    }
    body = zlib.compress(
        json.dumps(_jsonable(payload), sort_keys=True,
                   separators=(",", ":")).encode("utf-8"), 6)
    return (_MAGIC + _HEADER.pack(SNAPSHOT_FORMAT_VERSION, len(body))
            + hashlib.sha256(body).digest() + body)


def _decode(blob):
    if len(blob) < len(_MAGIC) + _HEADER.size + 32:
        raise SnapshotError("snapshot truncated (%d bytes)" % len(blob))
    if blob[: len(_MAGIC)] != _MAGIC:
        raise SnapshotError("bad magic: not an LBP snapshot")
    offset = len(_MAGIC)
    version, body_len = _HEADER.unpack_from(blob, offset)
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            "snapshot format version %d not supported (expected %d)"
            % (version, SNAPSHOT_FORMAT_VERSION)
        )
    offset += _HEADER.size
    digest = blob[offset : offset + 32]
    body = blob[offset + 32 : offset + 32 + body_len]
    if len(body) != body_len:
        raise SnapshotError(
            "snapshot body truncated: %d of %d bytes" % (len(body), body_len))
    if hashlib.sha256(body).digest() != digest:
        raise SnapshotError("snapshot digest mismatch: body is corrupt")
    return _unjsonable(json.loads(zlib.decompress(body).decode("utf-8")))


def restore(blob, backend=None):
    """Rebuild the machine serialized by :func:`snapshot` (fresh instance).

    *backend* selects the execution backend of the rebuilt machine
    (``"soa"``/``"interp"``; None → the default).  Snapshots are
    backend-neutral: the byte format is the interpreter layout and the
    SoA backend rebuilds its packed state from it, so a snapshot taken
    under either backend resumes bit-exactly under either.
    """
    payload = _decode(blob)
    if payload.get("sim_version") != SIM_VERSION:
        raise SnapshotError(
            "snapshot was taken by simulator version %r; this is %r — "
            "deterministic resume across model versions is not defined"
            % (payload.get("sim_version"), SIM_VERSION)
        )
    params = Params.from_state_dict(payload["params"])
    program = program_from_state(payload["program"])
    machine = LBP(params, backend=backend)
    machine.load(program, start=False)
    machine.load_state_dict(payload["machine"])
    return machine


def snapshot_info(blob):
    """Header + summary fields without building a machine (for CLI/ls)."""
    payload = _decode(blob)
    machine_state = payload["machine"]
    return {
        "sim_version": payload.get("sim_version"),
        "snapshot_version": payload.get("snapshot_version"),
        "cycle": machine_state["cycle"],
        "halted": machine_state["halted"],
        "pending_events": len(machine_state["events"]),
        "num_cores": payload["params"]["num_cores"],
        "source_name": payload["program"]["source_name"],
    }


def save_snapshot(machine, path):
    """:func:`snapshot` to *path* (atomic: write temp file, then rename)."""
    import os

    blob = snapshot(machine)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
    os.replace(tmp, path)
    return len(blob)


def load_snapshot(path, backend=None):
    """:func:`restore` from *path*."""
    with open(path, "rb") as handle:
        return restore(handle.read(), backend=backend)
