"""Canonical serialization of an assembled :class:`Program` image.

Snapshots must be restorable in a fresh process, so they carry the whole
program (segments, symbols, decoded instructions); the run cache hashes
the same canonical bytes as the program component of its key.
Instructions are stored as explicit ``(addr, mnemonic, rd, rs1, rs2,
imm)`` rows and re-bound to their :class:`InstrSpec` by mnemonic — the
round-trip does not depend on binary encode/decode.
"""

import base64
import json

from repro.asm.program import Program, Segment
from repro.isa.instruction import Instruction
from repro.isa.spec import INSTR_SPECS


def program_state(program):
    """*program* as plain data (bytes for segment payloads)."""
    return {
        "source_name": program.source_name,
        "symbols": dict(program.symbols),
        "segments": [
            {"kind": seg.kind, "bank": seg.bank, "base": seg.base,
             "data": bytes(seg.data)}
            for seg in program.segments
        ],
        "instructions": [
            [addr, ins.mnemonic, ins.rd, ins.rs1, ins.rs2, ins.imm]
            for addr, ins in sorted(program.instructions.items())
        ],
    }


def program_from_state(state):
    """Rebuild a :class:`Program` from :func:`program_state` data."""
    program = Program()
    program.source_name = state["source_name"]
    program.symbols = dict(state["symbols"])
    program.segments = [
        Segment(seg["kind"], seg["bank"], seg["base"], bytearray(seg["data"]))
        for seg in state["segments"]
    ]
    for addr, mnemonic, rd, rs1, rs2, imm in state["instructions"]:
        try:
            spec = INSTR_SPECS[mnemonic]
        except KeyError:
            raise ValueError(
                "snapshot names unknown instruction %r" % (mnemonic,)
            ) from None
        program.instructions[addr] = Instruction(
            mnemonic, rd, rs1, rs2, imm, spec=spec, addr=addr)
    return program


def program_bytes(program):
    """Canonical bytes of *program* — the cache key's program component.

    Deterministic: sorted keys, no whitespace, segment payloads base64.
    """
    state = program_state(program)
    for seg in state["segments"]:
        seg["data"] = base64.b64encode(seg["data"]).decode("ascii")
    return json.dumps(state, sort_keys=True, separators=(",", ":")).encode("utf-8")
