"""Content-addressed run cache: exact memoization of deterministic runs.

Key derivation (see DESIGN.md, "Snapshots and the run cache")::

    key = SHA-256( canonical JSON of {
        program:     SHA-256 of the canonical program bytes,
        params:      Params.state_dict(),
        inputs:      workload inputs (any JSON-serializable value),
        sim_version: SIM_VERSION,
    } )

Because the simulator is deterministic, two runs with equal keys produce
identical results, so a hit can be returned verbatim — memoization is
*exact*, not best-effort.  Changing any component (one program byte, one
latency knob, one workload input, the model version) changes the key and
forces a miss.

Storage layout under the cache root (``LBP_CACHE_DIR`` overrides)::

    objects/<k[:2]>/<key>.json   result entry (value + metadata)
    objects/<k[:2]>/<key>.snap   optional final machine snapshot

Values must survive a JSON round-trip unchanged; :meth:`RunCache.put`
refuses (returns None) otherwise, so a hit is byte-identical to the miss
that produced it.
"""

import hashlib
import json
import os
import shutil

from repro.snapshot.progio import program_bytes
from repro.snapshot.snapshot import SIM_VERSION, trace_digest

_ENTRY_SUFFIX = ".json"
_SNAP_SUFFIX = ".snap"


def default_cache_root():
    """``$LBP_CACHE_DIR``, else ``$XDG_CACHE_HOME/lbp-repro``, else
    ``~/.cache/lbp-repro``."""
    env = os.environ.get("LBP_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(xdg, "lbp-repro")


def _canonical_json(value):
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class RunCache:
    """A content-addressed store of simulation results on local disk."""

    def __init__(self, root=None):
        self.root = root or default_cache_root()
        self.hits = 0
        self.misses = 0

    # ---- keys ---------------------------------------------------------------

    def key_for(self, program=None, params=None, inputs=None,
                sim_version=SIM_VERSION):
        """Content-addressed key (hex SHA-256) for one run.

        *program* is a Program or its canonical bytes; *params* a Params
        or its state dict; *inputs* any JSON-serializable description of
        the workload inputs (sizes, seeds, version names...).
        """
        if program is not None and not isinstance(program, (bytes, bytearray)):
            program = program_bytes(program)
        if params is not None and not isinstance(params, dict):
            params = params.state_dict()
        material = {
            "program": None if program is None
            else hashlib.sha256(bytes(program)).hexdigest(),
            "params": params,
            "inputs": inputs,
            "sim_version": sim_version,
        }
        return hashlib.sha256(_canonical_json(material).encode()).hexdigest()

    def task_key(self, fn, args=(), kwargs=None, sim_version=SIM_VERSION):
        """Key for a runner task: callable identity + arguments + version.

        Used by :func:`repro.eval.runner.run_experiments`; the callable's
        module-qualified name stands in for "lowered program bytes" (the
        task compiles its own program deterministically from *args*).
        """
        material = {
            "fn": "%s.%s" % (fn.__module__,
                             getattr(fn, "__qualname__", fn.__name__)),
            "args": [repr(a) for a in args],
            "kwargs": {k: repr(v) for k, v in sorted((kwargs or {}).items())},
            "sim_version": sim_version,
        }
        return hashlib.sha256(_canonical_json(material).encode()).hexdigest()

    # ---- store --------------------------------------------------------------

    def _entry_path(self, key):
        return os.path.join(self.root, "objects", key[:2], key + _ENTRY_SUFFIX)

    def get(self, key):
        """The stored entry dict for *key*, or None; counts hit/miss."""
        try:
            with open(self._entry_path(key)) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key, value, extra=None, snapshot_bytes=None):
        """Store *value* under *key*; returns the canonical value.

        Returns None (and stores nothing) when *value* does not survive a
        JSON round-trip unchanged — such a result cannot be returned
        byte-identically on a later hit.
        """
        try:
            canonical = json.loads(json.dumps(value))
        except (TypeError, ValueError):
            return None
        if canonical != value:
            return None
        entry = {"key": key, "value": canonical}
        if extra:
            entry.update(extra)
        path = self._entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(entry, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        if snapshot_bytes is not None:
            snap_path = path[: -len(_ENTRY_SUFFIX)] + _SNAP_SUFFIX
            with open(snap_path + ".tmp", "wb") as handle:
                handle.write(snapshot_bytes)
            os.replace(snap_path + ".tmp", snap_path)
        return canonical

    def snapshot_path(self, key):
        """Path of the stored final snapshot for *key*, or None."""
        path = self._entry_path(key)[: -len(_ENTRY_SUFFIX)] + _SNAP_SUFFIX
        return path if os.path.exists(path) else None

    # ---- the content-addressed run ------------------------------------------

    def run_program(self, program, params, inputs=None, max_cycles=None,
                    store_snapshot=True):
        """Run *program* on a cycle-accurate machine through the cache.

        Returns ``(value, hit)`` where value is ``{"summary": ...,
        "trace_digest": ..., "cycles": ..., "retired": ...}``.  On a miss
        the run executes, its final snapshot is stored next to the entry
        (resume/inspect later via :meth:`snapshot_path`), and the entry is
        recorded; on a hit nothing is simulated.
        """
        from repro.machine import LBP
        from repro.snapshot.snapshot import snapshot

        key = self.key_for(program=program, params=params, inputs=inputs)
        entry = self.get(key)
        if entry is not None:
            return entry["value"], True
        machine = LBP(params).load(program)
        stats = machine.run(max_cycles=max_cycles)
        value = {
            "summary": stats.summary(),
            "trace_digest": trace_digest(machine.trace.events),
            "cycles": stats.cycles,
            "retired": stats.retired,
        }
        blob = snapshot(machine) if store_snapshot else None
        stored = self.put(key, value, snapshot_bytes=blob)
        return (stored if stored is not None else value), False

    # ---- maintenance / introspection ----------------------------------------

    def entries(self):
        """All stored entries as (key, entry_bytes, snapshot_bytes) rows."""
        rows = []
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return rows
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(_ENTRY_SUFFIX):
                    continue
                key = name[: -len(_ENTRY_SUFFIX)]
                entry_bytes = os.path.getsize(os.path.join(shard_dir, name))
                snap = os.path.join(shard_dir, key + _SNAP_SUFFIX)
                snap_bytes = os.path.getsize(snap) if os.path.exists(snap) else 0
                rows.append((key, entry_bytes, snap_bytes))
        return rows

    def stats(self):
        rows = self.entries()
        return {
            "root": self.root,
            "entries": len(rows),
            "entry_bytes": sum(r[1] for r in rows),
            "snapshot_bytes": sum(r[2] for r in rows),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self):
        """Delete every stored object; returns how many entries were removed."""
        count = len(self.entries())
        objects = os.path.join(self.root, "objects")
        if os.path.isdir(objects):
            shutil.rmtree(objects)
        return count
