"""Content-addressed run cache: exact memoization of deterministic runs.

Key derivation (see DESIGN.md, "Snapshots and the run cache")::

    key = SHA-256( canonical JSON of {
        program:     SHA-256 of the canonical program bytes,
        params:      Params.state_dict(),
        inputs:      workload inputs (any JSON-serializable value),
        sim_version: SIM_VERSION,
    } )

Because the simulator is deterministic, two runs with equal keys produce
identical results, so a hit can be returned verbatim — memoization is
*exact*, not best-effort.  Changing any component (one program byte, one
latency knob, one workload input, the model version) changes the key and
forces a miss.

Storage layout under the cache root (``LBP_CACHE_DIR`` overrides)::

    objects/<k[:2]>/<key>.json   result entry (value + metadata)
    objects/<k[:2]>/<key>.snap   optional final machine snapshot

Values must survive a JSON round-trip unchanged; :meth:`RunCache.put`
refuses (returns None) otherwise, so a hit is byte-identical to the miss
that produced it.

Writes are atomic and concurrency-safe: every writer stages into a
uniquely named temp file in the destination directory and publishes it
with ``os.replace``.  Concurrent ``put`` of the same key is harmless —
the runs are deterministic, so both writers publish identical bytes and
either replace wins.  That makes the store safe under the fork-pool
experiment runner and the ``repro serve`` worker pool.

The store is *managed*, not append-only: ``get`` bumps the entry's
mtime (recency), and :meth:`RunCache.gc` evicts least-recently-used
entries down to a byte budget and/or a maximum age, counting evictions
for the service's ``/stats`` endpoint.
"""

import hashlib
import itertools
import json
import os
import shutil
import time

from repro.snapshot.progio import program_bytes
from repro.snapshot.snapshot import SIM_VERSION, trace_digest

_ENTRY_SUFFIX = ".json"
_SNAP_SUFFIX = ".snap"
_TMP_MARK = ".tmp"
#: a staging file older than this is a crashed writer's leftover; gc may
#: remove it (no live writer stages for minutes)
_TMP_STALE_S = 300.0
#: labeled upper bounds of the entry-age histogram buckets
_AGE_BUCKETS = (("<1m", 60.0), ("<1h", 3600.0), ("<1d", 86400.0),
                ("<7d", 7 * 86400.0), (">=7d", float("inf")))

_tmp_counter = itertools.count()


def default_cache_root():
    """``$LBP_CACHE_DIR``, else ``$XDG_CACHE_HOME/lbp-repro``, else
    ``~/.cache/lbp-repro``."""
    env = os.environ.get("LBP_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(xdg, "lbp-repro")


def _canonical_json(value):
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class RunCache:
    """A content-addressed store of simulation results on local disk."""

    def __init__(self, root=None):
        self.root = root or default_cache_root()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ---- keys ---------------------------------------------------------------

    def key_for(self, program=None, params=None, inputs=None,
                sim_version=SIM_VERSION):
        """Content-addressed key (hex SHA-256) for one run.

        *program* is a Program or its canonical bytes; *params* a Params
        or its state dict; *inputs* any JSON-serializable description of
        the workload inputs (sizes, seeds, version names...).
        """
        if program is not None and not isinstance(program, (bytes, bytearray)):
            program = program_bytes(program)
        if params is not None and not isinstance(params, dict):
            params = params.state_dict()
        material = {
            "program": None if program is None
            else hashlib.sha256(bytes(program)).hexdigest(),
            "params": params,
            "inputs": inputs,
            "sim_version": sim_version,
        }
        return hashlib.sha256(_canonical_json(material).encode()).hexdigest()

    def task_key(self, fn, args=(), kwargs=None, sim_version=SIM_VERSION):
        """Key for a runner task: callable identity + arguments + version.

        Used by :func:`repro.eval.runner.run_experiments`; the callable's
        module-qualified name stands in for "lowered program bytes" (the
        task compiles its own program deterministically from *args*).
        """
        material = {
            "fn": "%s.%s" % (fn.__module__,
                             getattr(fn, "__qualname__", fn.__name__)),
            "args": [repr(a) for a in args],
            "kwargs": {k: repr(v) for k, v in sorted((kwargs or {}).items())},
            "sim_version": sim_version,
        }
        return hashlib.sha256(_canonical_json(material).encode()).hexdigest()

    # ---- store --------------------------------------------------------------

    def _entry_path(self, key):
        return os.path.join(self.root, "objects", key[:2], key + _ENTRY_SUFFIX)

    def get(self, key):
        """The stored entry dict for *key*, or None; counts hit/miss.

        A hit bumps the entry's mtime — recency of *use*, not of
        creation — which is the order :meth:`gc` evicts in.
        """
        path = self._entry_path(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)
        except OSError:
            pass  # evicted between the read and the touch: still a hit
        return entry

    @staticmethod
    def _publish(path, data):
        """Atomically write *data* (bytes or text) to *path*.

        The staging name is unique per (pid, call), so concurrent
        writers — even of the same key — never clobber each other's
        half-written files; ``os.replace`` makes the publish atomic and
        last-writer-wins (identical bytes either way for a given key:
        the simulator is deterministic).
        """
        tmp = "%s.%d.%d%s" % (path, os.getpid(), next(_tmp_counter), _TMP_MARK)
        mode = "wb" if isinstance(data, (bytes, bytearray)) else "w"
        try:
            with open(tmp, mode) as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put(self, key, value, extra=None, snapshot_bytes=None):
        """Store *value* under *key*; returns the canonical value.

        Returns None (and stores nothing) when *value* does not survive a
        JSON round-trip unchanged — such a result cannot be returned
        byte-identically on a later hit.
        """
        try:
            canonical = json.loads(json.dumps(value))
        except (TypeError, ValueError):
            return None
        if canonical != value:
            return None
        entry = {"key": key, "value": canonical}
        if extra:
            entry.update(extra)
        path = self._entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self._publish(path, json.dumps(entry, sort_keys=True) + "\n")
        if snapshot_bytes is not None:
            snap_path = path[: -len(_ENTRY_SUFFIX)] + _SNAP_SUFFIX
            self._publish(snap_path, bytes(snapshot_bytes))
        return canonical

    def snapshot_path(self, key):
        """Path of the stored final snapshot for *key*, or None."""
        path = self._entry_path(key)[: -len(_ENTRY_SUFFIX)] + _SNAP_SUFFIX
        return path if os.path.exists(path) else None

    # ---- the content-addressed run ------------------------------------------

    def run_program(self, program, params, inputs=None, max_cycles=None,
                    store_snapshot=True):
        """Run *program* on a cycle-accurate machine through the cache.

        Returns ``(value, hit)`` where value is ``{"summary": ...,
        "trace_digest": ..., "cycles": ..., "retired": ...}``.  On a miss
        the run executes, its final snapshot is stored next to the entry
        (resume/inspect later via :meth:`snapshot_path`), and the entry is
        recorded; on a hit nothing is simulated.
        """
        from repro.machine import LBP
        from repro.snapshot.snapshot import snapshot

        key = self.key_for(program=program, params=params, inputs=inputs)
        entry = self.get(key)
        if entry is not None:
            return entry["value"], True
        machine = LBP(params).load(program)
        stats = machine.run(max_cycles=max_cycles)
        value = {
            "summary": stats.summary(),
            "trace_digest": trace_digest(machine.trace.events),
            "cycles": stats.cycles,
            "retired": stats.retired,
        }
        blob = snapshot(machine) if store_snapshot else None
        stored = self.put(key, value, snapshot_bytes=blob)
        return (stored if stored is not None else value), False

    # ---- maintenance / introspection ----------------------------------------

    def entries(self):
        """All stored entries as (key, entry_bytes, snapshot_bytes, mtime)
        rows, key-sorted.  mtime is the last *use* (:meth:`get` bumps it)."""
        rows = []
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return rows
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(_ENTRY_SUFFIX):
                    continue
                key = name[: -len(_ENTRY_SUFFIX)]
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue  # concurrently evicted
                snap = os.path.join(shard_dir, key + _SNAP_SUFFIX)
                snap_bytes = os.path.getsize(snap) if os.path.exists(snap) else 0
                rows.append((key, stat.st_size, snap_bytes, stat.st_mtime))
        return rows

    def stats(self, now=None):
        """Footprint + traffic counters + an entry age histogram.

        ``disk_bytes`` is the full on-disk cost (entries + snapshot
        sidecars); the ``age_histogram`` buckets entries by seconds since
        last use — the input the LRU :meth:`gc` policy works from.
        """
        rows = self.entries()
        now = time.time() if now is None else now
        histogram = {label: 0 for label, _ in _AGE_BUCKETS}
        for row in rows:
            age = max(0.0, now - row[3])
            for label, bound in _AGE_BUCKETS:
                if age < bound:
                    histogram[label] += 1
                    break
        entry_bytes = sum(r[1] for r in rows)
        snapshot_bytes = sum(r[2] for r in rows)
        return {
            "root": self.root,
            "entries": len(rows),
            "entry_bytes": entry_bytes,
            "snapshot_bytes": snapshot_bytes,
            "disk_bytes": entry_bytes + snapshot_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "age_histogram": histogram,
        }

    def _evict(self, key):
        """Remove one entry (and its snapshot sidecar) from disk."""
        path = self._entry_path(key)
        removed = 0
        for victim in (path, path[: -len(_ENTRY_SUFFIX)] + _SNAP_SUFFIX):
            try:
                os.unlink(victim)
                removed += 1
            except OSError:
                pass
        return removed > 0

    def gc(self, max_bytes=None, max_age_s=None, now=None):
        """Evict entries: stale first, then least-recently-used.

        *max_age_s* drops entries not used for that many seconds;
        *max_bytes* then evicts in LRU order (oldest mtime first — a hit
        refreshes an entry's mtime) until entries + snapshots fit the
        budget.  Crashed writers' stale ``.tmp`` staging files are always
        swept.  Returns a summary dict; evictions accumulate on
        ``self.evictions`` (surfaced by ``repro serve``'s ``/stats``).
        """
        now = time.time() if now is None else now
        swept_tmp = 0
        objects = os.path.join(self.root, "objects")
        if os.path.isdir(objects):
            for shard in os.listdir(objects):
                shard_dir = os.path.join(objects, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in os.listdir(shard_dir):
                    if not name.endswith(_TMP_MARK):
                        continue
                    path = os.path.join(shard_dir, name)
                    try:
                        if now - os.stat(path).st_mtime >= _TMP_STALE_S:
                            os.unlink(path)
                            swept_tmp += 1
                    except OSError:
                        pass
        rows = sorted(self.entries(), key=lambda r: (r[3], r[0]))  # LRU first
        evicted = 0
        if max_age_s is not None:
            fresh = []
            for row in rows:
                if now - row[3] >= max_age_s:
                    evicted += self._evict(row[0])
                else:
                    fresh.append(row)
            rows = fresh
        if max_bytes is not None:
            total = sum(r[1] + r[2] for r in rows)
            index = 0
            while total > max_bytes and index < len(rows):
                row = rows[index]
                index += 1
                evicted += self._evict(row[0])
                total -= row[1] + row[2]
            rows = rows[index:]
        self.evictions += evicted
        return {
            "evicted": evicted,
            "swept_tmp": swept_tmp,
            "remaining": len(rows),
            "remaining_bytes": sum(r[1] + r[2] for r in rows),
        }

    def clear(self):
        """Delete every stored object; returns how many entries were removed."""
        count = len(self.entries())
        objects = os.path.join(self.root, "objects")
        if os.path.isdir(objects):
            shutil.rmtree(objects)
        return count
