"""Deterministic snapshot/restore and the content-addressed run cache.

LBP is cycle-deterministic: the whole machine state at any cycle is a
pure function of (program, machine params).  This package turns that
property into infrastructure:

* :mod:`repro.snapshot.snapshot` — bit-exact serialization of a running
  cycle-accurate machine (every component exposes ``state_dict()`` /
  ``load_state_dict()``) into a versioned, digest-stamped on-disk format;
  a restored machine continues with the *identical* event trace and cycle
  count as an uninterrupted run.
* :mod:`repro.snapshot.cache` — a content-addressed run cache keyed by
  SHA-256 of (program bytes, machine params, workload inputs, simulator
  version); because runs are deterministic, memoization is exact, and a
  repeated experiment sweep with unchanged inputs is a cache hit.
* :mod:`repro.snapshot.progio` — canonical program-image serialization
  shared by both (the snapshot must be restorable in a fresh process; the
  cache key needs canonical program bytes).

The fast simulator does not support snapshots (its quantum scheduler
holds non-serializable in-flight state); :func:`snapshot` raises a clear
:class:`SnapshotUnsupportedError` for it.
"""

from repro.snapshot.cache import RunCache, default_cache_root
from repro.snapshot.progio import program_bytes, program_from_state, program_state
from repro.snapshot.snapshot import (
    SIM_VERSION,
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    SnapshotUnsupportedError,
    load_snapshot,
    restore,
    save_snapshot,
    snapshot,
    snapshot_info,
    trace_digest,
)

__all__ = [
    "RunCache",
    "SIM_VERSION",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotUnsupportedError",
    "default_cache_root",
    "load_snapshot",
    "program_bytes",
    "program_from_state",
    "program_state",
    "restore",
    "save_snapshot",
    "snapshot",
    "snapshot_info",
    "trace_digest",
]
