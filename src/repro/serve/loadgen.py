"""Asyncio load generator for the simulation-job service.

Drives thousands of submissions through persistent (keep-alive)
connections, times every request, and summarizes latency percentiles
per request class — the hit/miss split is the one that matters, because
the whole design claims hits are nearly free while misses pay for a
simulation.

The generator is deliberately independent of the server internals: it
speaks the same HTTP the outside world would, so the measured latency
includes parsing, keying, cache lookup and scheduling — everything but
the client's own network stack.
"""

import asyncio
import collections
import json
import math
import time

__all__ = ["percentile", "run_load", "summarize"]


def percentile(samples, q):
    """Nearest-rank percentile of an unsorted sample list (q in 0..100)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


async def _open(address):
    if address.get("unix_path"):
        return await asyncio.open_unix_connection(address["unix_path"])
    return await asyncio.open_connection(address.get("host", "127.0.0.1"),
                                         address["port"])


def _encode_request(body):
    payload = json.dumps(body, sort_keys=True).encode()
    head = ("POST /v1/jobs HTTP/1.1\r\nHost: loadgen\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: %d\r\nConnection: keep-alive\r\n\r\n"
            % len(payload))
    return head.encode("latin-1") + payload


async def _read_response(reader):
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    body = await reader.readexactly(length) if length else b""
    return status, json.loads(body) if body else None


async def _connection_worker(address, queue, samples):
    """One keep-alive connection draining submissions off the shared queue."""
    reader, writer = await _open(address)
    try:
        while True:
            try:
                item = queue.popleft()
            except IndexError:
                return
            body = {"jobs": [item["job"]], "wait": True}
            if item.get("tenant") is not None:
                body["tenant"] = item["tenant"]
            if item.get("priority") is not None:
                body["priority"] = item["priority"]
            t0 = time.perf_counter()
            writer.write(_encode_request(body))
            await writer.drain()
            status, payload = await _read_response(reader)
            latency = time.perf_counter() - t0
            record = (payload or {}).get("jobs", [{}])[0]
            samples.append({
                "kind": item.get("kind", "request"),
                "latency_s": latency,
                "http_status": status,
                "status": record.get("status"),
                "key": record.get("key"),
                # canonical bytes of the result — the byte-identity probe
                "value_bytes": json.dumps(record.get("value"),
                                          sort_keys=True,
                                          separators=(",", ":"))
                if "value" in record else None,
            })
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


async def _run(address, plan, concurrency):
    queue = collections.deque(plan)
    samples = []
    workers = [asyncio.create_task(_connection_worker(address, queue, samples))
               for _ in range(min(concurrency, max(1, len(plan))))]
    await asyncio.gather(*workers)
    return samples


def run_load(address, plan, concurrency=64):
    """Execute *plan* against *address*; returns the raw sample list.

    *address* is ``{"unix_path": ...}`` or ``{"host":..., "port":...}``;
    *plan* items are ``{"kind": label, "job": <wire jobspec>, "tenant":
    ..., "priority": ...}``.  *concurrency* connections drain the plan
    in parallel, each waiting synchronously per request (so at most
    *concurrency* submissions are in flight at once).
    """
    return asyncio.run(_run(address, list(plan), concurrency))


def summarize(samples, wall_s=None):
    """Latency percentiles and error counts per request class.

    Returns ``{kind: {count, errors, p50_ms, p95_ms, p99_ms, mean_ms}}``
    plus an overall ``_total`` row carrying throughput when *wall_s* is
    given.
    """
    by_kind = collections.defaultdict(list)
    errors = collections.Counter()
    for sample in samples:
        by_kind[sample["kind"]].append(sample["latency_s"])
        if sample["http_status"] >= 400 or sample["status"] in (
                "rejected", "failed", "cancelled"):
            errors[sample["kind"]] += 1
    summary = {}
    for kind, latencies in sorted(by_kind.items()):
        summary[kind] = {
            "count": len(latencies),
            "errors": errors[kind],
            "p50_ms": round(percentile(latencies, 50) * 1e3, 3),
            "p95_ms": round(percentile(latencies, 95) * 1e3, 3),
            "p99_ms": round(percentile(latencies, 99) * 1e3, 3),
            "mean_ms": round(sum(latencies) / len(latencies) * 1e3, 3),
        }
    total = [s["latency_s"] for s in samples]
    summary["_total"] = {
        "count": len(total),
        "errors": sum(errors.values()),
        "p50_ms": round(percentile(total, 50) * 1e3, 3) if total else None,
        "p95_ms": round(percentile(total, 95) * 1e3, 3) if total else None,
        "p99_ms": round(percentile(total, 99) * 1e3, 3) if total else None,
    }
    if wall_s:
        summary["_total"]["wall_s"] = round(wall_s, 3)
        summary["_total"]["jobs_per_s"] = round(len(total) / wall_s, 1)
    return summary
