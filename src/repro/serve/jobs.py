"""Job model for the simulation service: specs, keying, single-flight.

A *job* is one (program, params, inputs) simulation request.  Its
identity is the run cache's content key — SHA-256 over canonical program
bytes, machine parameters, workload inputs and the simulator version —
so two tenants submitting the same work, in the same request or hours
apart, name the same object.  That identity drives the two serving
tricks:

* **cache hit** — the key is already stored: answer from disk, nothing
  simulates;
* **single-flight** — the key is already *executing*: attach the new
  request to the in-flight :class:`Job` instead of scheduling a second
  simulation.  N identical concurrent requests cost one run, and every
  waiter receives the byte-identical canonical value.

Determinism is what makes both legal (the Deterministic Consistency
argument): any interleaving of requests yields the same value per key,
so coalescing and memoizing are unobservable to clients.
"""

import asyncio
import collections
import hashlib
import threading

from repro.machine import Params

__all__ = ["Job", "JobSpec", "JobTable", "PRIORITY_CLASSES",
           "build_program", "compiled_program"]

#: scheduling classes, best first; ties break by admission order
PRIORITY_CLASSES = {"interactive": 0, "batch": 1, "bulk": 2}
DEFAULT_PRIORITY = "batch"

#: job lifecycle states
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled")


def build_program(source, filename):
    """Compile (``.c``) or assemble (``.s``/``.S``) *source* to a Program."""
    from repro.asm import assemble
    from repro.compiler import compile_to_program

    if filename.endswith(".s") or filename.endswith(".S"):
        return assemble(source, filename)
    return compile_to_program(source, filename)


_program_memo = {}
_program_memo_lock = threading.Lock()
_PROGRAM_MEMO_CAP = 256


def compiled_program(source, filename):
    """Memoized :func:`build_program` — the hot-path half of keying.

    Serving a warm hit must not pay a compile: the memo makes repeat
    keying a dict lookup.  Forked workers inherit the memo, so a miss
    whose key was just computed in the parent re-uses the parent's
    Program object without recompiling either.
    """
    memo_key = (hashlib.sha256(source.encode()).hexdigest(), filename)
    with _program_memo_lock:
        program = _program_memo.get(memo_key)
    if program is not None:
        return program
    program = build_program(source, filename)
    with _program_memo_lock:
        if len(_program_memo) >= _PROGRAM_MEMO_CAP:
            _program_memo.clear()  # tiny programs; rebuild on demand
        _program_memo[memo_key] = program
    return program


class JobSpec:
    """One validated simulation request.

    Wire shape (all but ``source`` optional)::

        {"source": "...", "filename": "job.c", "params": {"num_cores": 4},
         "inputs": <any JSON>, "max_cycles": 500000000,
         "shards": 2, "backend": "soa"}

    ``params`` are :class:`repro.machine.Params` keyword arguments;
    ``inputs`` is the free-form workload-input component of the cache
    key; ``max_cycles`` bounds the run but — matching
    ``RunCache.run_program`` — does *not* participate in the key (a
    successful run's value is independent of its cycle budget).
    ``shards`` and ``backend`` pick the execution strategy; both are
    bit-exact by construction (the sharded-engine and backend-parity
    invariants), so like ``max_cycles`` they stay out of the key — the
    same work requested interp/soa or sharded/unsharded is one cache
    object.
    """

    __slots__ = ("source", "filename", "params", "inputs", "max_cycles",
                 "shards", "backend")

    def __init__(self, source, filename="job.c", params=None, inputs=None,
                 max_cycles=None, shards=None, backend=None):
        if not isinstance(source, str) or not source:
            raise ValueError("job needs a non-empty 'source' string")
        if not isinstance(filename, str) or "/" in filename:
            raise ValueError("'filename' must be a plain name (suffix "
                             "selects .c compile vs .s assemble)")
        self.source = source
        self.filename = filename
        self.params = dict(params or {})
        self.inputs = inputs
        self.max_cycles = max_cycles
        if shards is not None and (not isinstance(shards, int) or shards < 1):
            raise ValueError("'shards' must be a positive integer")
        if backend is not None and backend not in ("interp", "soa"):
            raise ValueError("'backend' must be 'interp' or 'soa'")
        self.shards = shards
        self.backend = backend

    @classmethod
    def from_wire(cls, payload):
        if not isinstance(payload, dict):
            raise ValueError("each job must be a JSON object")
        unknown = set(payload) - {"source", "filename", "params", "inputs",
                                  "max_cycles", "shards", "backend"}
        if unknown:
            raise ValueError("unknown job field(s): %s"
                             % ", ".join(sorted(unknown)))
        return cls(payload.get("source"),
                   filename=payload.get("filename", "job.c"),
                   params=payload.get("params"),
                   inputs=payload.get("inputs"),
                   max_cycles=payload.get("max_cycles"),
                   shards=payload.get("shards"),
                   backend=payload.get("backend"))

    def machine_params(self):
        """The Params object this spec describes (validates the kwargs)."""
        return Params(**self.params)

    def cache_key(self, cache):
        """The run-cache content key for this spec.

        Identical to what ``RunCache.run_program`` would derive for the
        same (program, params, inputs) — serve jobs and CLI runs share
        cache entries.
        """
        program = compiled_program(self.source, self.filename)
        return cache.key_for(program=program, params=self.machine_params(),
                             inputs=self.inputs)


class Job:
    """One scheduled execution plus everyone waiting on it."""

    __slots__ = ("id", "key", "spec", "tenant", "priority", "state",
                 "value", "error", "progress", "attempts", "coalesced",
                 "done", "cancel_event", "subscribers", "seq", "trace_id",
                 "trace_ctx")

    def __init__(self, job_id, key, spec, tenant, priority, seq):
        self.id = job_id
        self.key = key
        self.spec = spec
        self.tenant = tenant
        self.priority = priority
        self.seq = seq
        self.state = QUEUED
        self.value = None
        self.error = None
        self.progress = None
        self.attempts = 0
        self.coalesced = 0
        self.done = asyncio.Event()
        #: checked by the pool's driver thread between poll slices — a
        #: plain threading.Event so cancellation crosses the loop/thread
        #: boundary without asyncio cancel semantics
        self.cancel_event = threading.Event()
        self.subscribers = []
        #: the creating admission's trace id — the *execution* trace all
        #: coalesced admissions reference — and its full
        #: ``(trace_id, span_id)`` context, propagated by value into the
        #: forked worker (observability only; never part of the cache
        #: key or the result value)
        self.trace_id = None
        self.trace_ctx = None

    @property
    def sort_key(self):
        rank = PRIORITY_CLASSES.get(self.priority,
                                    PRIORITY_CLASSES[DEFAULT_PRIORITY])
        return (rank, self.seq)

    def publish(self, event):
        """Fan one progress/terminal event out to every stream subscriber."""
        if event.get("kind") == "progress":
            self.progress = event
        for queue in list(self.subscribers):
            queue.put_nowait(event)

    def resolve(self, value):
        self.state = DONE
        self.value = value
        self.publish({"kind": "done", "id": self.id, "key": self.key,
                      "value": value})
        self.done.set()

    def fail(self, error, state=FAILED):
        self.state = state
        self.error = error
        self.publish({"kind": state, "id": self.id, "key": self.key,
                      "error": error})
        self.done.set()

    def describe(self):
        """The wire status record for ``GET /v1/jobs/<id>``."""
        record = {"id": self.id, "key": self.key, "state": self.state,
                  "tenant": self.tenant, "priority": self.priority,
                  "attempts": self.attempts, "coalesced": self.coalesced}
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.progress is not None:
            record["progress"] = self.progress
        if self.value is not None:
            record["value"] = self.value
        if self.error is not None:
            record["error"] = self.error
        return record


class JobTable:
    """In-flight jobs by key (single-flight) + a bounded job history.

    The table is the dedupe point: :meth:`admit` returns the existing
    in-flight job for a key when there is one (a *coalesced* admission)
    and mints a new one otherwise.  Completed jobs move to a
    fixed-capacity history so late status/stream requests still resolve.
    """

    def __init__(self, history=1024):
        self.inflight = {}
        self.jobs = collections.OrderedDict()
        self.history = history
        self._next_id = 0
        self.counters = collections.Counter()

    def get(self, job_id):
        return self.jobs.get(job_id)

    def admit(self, spec, key, tenant, priority):
        """(job, created): the single-flight decision for one submission."""
        self.counters["submitted"] += 1
        job = self.inflight.get(key)
        if job is not None:
            job.coalesced += 1
            self.counters["coalesced"] += 1
            return job, False
        self._next_id += 1
        job = Job("j-%d" % self._next_id, key, spec, tenant, priority,
                  seq=self._next_id)
        self.inflight[key] = job
        self.jobs[job.id] = job
        while len(self.jobs) > self.history:
            oldest_id, oldest = next(iter(self.jobs.items()))
            if not oldest.done.is_set():
                break  # never forget a live job, whatever the cap
            del self.jobs[oldest_id]
        return job, True

    def finish(self, job):
        """Drop *job* from the in-flight index (it keeps its history slot).

        From this point a new submission of the same key is a fresh
        admission — it will hit the cache instead of coalescing.
        """
        if self.inflight.get(job.key) is job:
            del self.inflight[job.key]

    def depth(self):
        return sum(1 for job in self.inflight.values()
                   if job.state == QUEUED)

    def running(self):
        return sum(1 for job in self.inflight.values()
                   if job.state == RUNNING)
