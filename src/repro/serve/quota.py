"""Per-tenant token-bucket quotas for the simulation-job service.

Cache hits and coalesced single-flight joins are free — they cost the
service almost nothing, and making them free is the whole economics of
serving over a content-addressed cache.  What the bucket meters is the
expensive thing: *new simulations scheduled on the worker pool*.  One
token buys one execution.

A bucket holds at most ``burst`` tokens and refills continuously at
``rate`` tokens/second (``rate=0`` makes the allowance hard: ``burst``
executions ever).  Time is injected for testability; the default clock
is ``time.monotonic``.
"""

import time

__all__ = ["QuotaExceeded", "QuotaManager", "TokenBucket"]


class QuotaExceeded(Exception):
    """A tenant asked for more executions than its bucket holds."""

    def __init__(self, tenant, retry_after_s):
        super().__init__("quota exceeded for tenant %r (retry in %.3fs)"
                         % (tenant, retry_after_s))
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class TokenBucket:
    """A continuously refilling token bucket.

    ``take(n)`` spends *n* tokens if available, else returns how long
    until they would be; fractional tokens accumulate, so a rate of 0.5
    grants one execution every two seconds.
    """

    def __init__(self, rate, burst, clock=None):
        if burst <= 0:
            raise ValueError("burst must be > 0")
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock or time.monotonic
        self.tokens = self.burst
        self._stamp = self._clock()

    def _refill(self):
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)

    def take(self, n=1):
        """Spend *n* tokens; returns 0.0 on success, else seconds until
        the bucket would hold *n* (``inf`` when it never will)."""
        self._refill()
        if self.tokens + 1e-9 >= n:
            self.tokens -= n
            return 0.0
        shortfall = n - self.tokens
        if self.rate <= 0 or n > self.burst:
            return float("inf")
        return shortfall / self.rate

    def peek(self):
        self._refill()
        return self.tokens


class QuotaManager:
    """Tenant name → bucket, with a configurable default allowance.

    *limits* maps tenant names to ``(rate, burst)`` pairs (or dicts with
    ``rate``/``burst`` keys — the JSON-config shape).  *default* is the
    allowance for tenants not listed; ``None`` means unmetered.
    """

    def __init__(self, limits=None, default=None, clock=None):
        self._clock = clock
        self._specs = {}
        for tenant, spec in (limits or {}).items():
            self._specs[tenant] = self._parse(spec)
        self._default = self._parse(default) if default is not None else None
        self._buckets = {}

    @staticmethod
    def _parse(spec):
        if isinstance(spec, dict):
            return float(spec["rate"]), float(spec["burst"])
        rate, burst = spec
        return float(rate), float(burst)

    def _bucket(self, tenant):
        bucket = self._buckets.get(tenant)
        if bucket is None:
            spec = self._specs.get(tenant, self._default)
            if spec is None:
                return None  # unmetered tenant
            bucket = TokenBucket(spec[0], spec[1], clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def charge(self, tenant, n=1):
        """Spend *n* execution tokens or raise :class:`QuotaExceeded`."""
        bucket = self._bucket(tenant)
        if bucket is None:
            return
        retry_after = bucket.take(n)
        if retry_after:
            raise QuotaExceeded(tenant, retry_after)

    def snapshot(self):
        """{tenant: remaining tokens} for every metered tenant seen."""
        return {tenant: round(bucket.peek(), 3)
                for tenant, bucket in sorted(self._buckets.items())}
