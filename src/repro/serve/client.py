"""A small blocking client for the simulation-job service.

Stdlib-socket HTTP/1.1, no dependencies, same dialect over TCP and unix
sockets.  This is what ``repro submit`` and the integration tests speak;
the load generator (:mod:`repro.serve.loadgen`) has its own asyncio
client for thousand-way concurrency.
"""

import json
import socket

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """A non-2xx response (or a rejected job record)."""

    def __init__(self, status, payload):
        super().__init__("HTTP %s: %s" % (status, payload))
        self.status = status
        self.payload = payload


class ServeClient:
    """One connection-per-request blocking client.

    Address: either ``unix_path=...`` or ``host=.../port=...``.
    """

    def __init__(self, host="127.0.0.1", port=None, unix_path=None,
                 timeout=120.0):
        if port is None and unix_path is None:
            raise ValueError("need a port or a unix socket path")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.timeout = timeout

    # ---- plumbing -----------------------------------------------------------

    def _connect(self):
        if self.unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix_path)
        else:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        return sock

    def _send(self, sock, method, path, payload):
        body = b""
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode()
        head = ("%s %s HTTP/1.1\r\nHost: repro-serve\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: %d\r\nConnection: close\r\n\r\n"
                % (method, path, len(body)))
        sock.sendall(head.encode("latin-1") + body)

    @staticmethod
    def _read_head(reader):
        status_line = reader.readline()
        if not status_line:
            raise ServeError(0, "server closed the connection")
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    def request(self, method, path, payload=None):
        """One request; returns ``(status, parsed-JSON body)``."""
        with self._connect() as sock:
            self._send(sock, method, path, payload)
            reader = sock.makefile("rb")
            status, headers = self._read_head(reader)
            length = headers.get("content-length")
            raw = (reader.read(int(length)) if length is not None
                   else reader.read())
            return status, json.loads(raw) if raw else None

    def _checked(self, method, path, payload=None):
        status, body = self.request(method, path, payload)
        if status >= 400:
            raise ServeError(status, body)
        return body

    # ---- the service API ----------------------------------------------------

    def healthz(self):
        return self._checked("GET", "/healthz")

    def stats(self):
        return self._checked("GET", "/stats")

    def submit(self, jobs, tenant=None, priority=None, wait=True):
        """Submit a batch; returns the per-job record list.

        Raises :class:`ServeError` when the whole batch was rejected
        (e.g. quota).  Individual records may still be ``rejected`` in a
        mixed batch — callers check ``record["status"]``.
        """
        body = {"jobs": list(jobs), "wait": wait}
        if tenant is not None:
            body["tenant"] = tenant
        if priority is not None:
            body["priority"] = priority
        return self._checked("POST", "/v1/jobs", body)["jobs"]

    def submit_one(self, job, **kwargs):
        """Submit one job and return its record (raises on rejection)."""
        record = self.submit([job], **kwargs)[0]
        if record.get("status") == "rejected":
            raise ServeError(record.get("code", 400), record)
        return record

    def job(self, job_id):
        return self._checked("GET", "/v1/jobs/%s" % job_id)

    def cancel(self, job_id):
        return self._checked("POST", "/v1/jobs/%s/cancel" % job_id)

    def stream(self, job_id):
        """Yield the job's NDJSON events (progress..., then terminal)."""
        with self._connect() as sock:
            self._send(sock, "GET", "/v1/jobs/%s/stream" % job_id, None)
            reader = sock.makefile("rb")
            status, _headers = self._read_head(reader)
            if status >= 400:
                raise ServeError(status, json.loads(reader.read() or b"{}"))
            for line in reader:
                line = line.strip()
                if line:
                    yield json.loads(line)
