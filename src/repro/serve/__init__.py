"""`repro serve`: an async simulation-job service over the run cache.

The content-addressed run cache (PR 2) makes identical requests free;
this package adds the serving layer that exploits it at scale — the
same hit/miss + single-flight + bounded-worker-pool shape an inference
stack uses, applied to deterministic simulations:

* :mod:`repro.serve.jobs` — job specs, content keying, the
  single-flight table (N identical concurrent requests → 1 simulation);
* :mod:`repro.serve.quota` — per-tenant token buckets charged per
  *execution* (hits and coalesced joins are free);
* :mod:`repro.serve.pool` — bounded fork pool with per-job timeout,
  bounded retry and cancellation, built on the experiment runner's
  :class:`~repro.eval.runner.ForkedTask`;
* :mod:`repro.serve.worker` — the forked child: run one simulation,
  stream progress (cycle/IPC/top stall) from periodic-snapshot points;
* :mod:`repro.serve.server` — the asyncio HTTP daemon (TCP + unix
  socket), priority scheduling, graceful drain, ``/stats``, the
  Prometheus ``/metrics`` endpoint, and end-to-end request tracing
  (admission spans chained through the forked worker down to per-shard
  epoch spans — see :mod:`repro.observe.spans`);
* :mod:`repro.serve.client` — the blocking client behind
  ``repro submit``;
* :mod:`repro.serve.loadgen` — the load harness that records hit/miss
  latency percentiles into ``BENCH_perf.json``.

Determinism is the correctness argument for all of it (DESIGN.md §11):
every interleaving of requests yields byte-identical values per key, so
memoization and coalescing are unobservable.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, JobSpec, JobTable, PRIORITY_CLASSES
from repro.serve.pool import WorkerPool
from repro.serve.quota import QuotaExceeded, QuotaManager, TokenBucket
from repro.serve.server import ServeConfig, ServerThread, SimServer

__all__ = [
    "Job",
    "JobSpec",
    "JobTable",
    "PRIORITY_CLASSES",
    "QuotaExceeded",
    "QuotaManager",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "SimServer",
    "TokenBucket",
    "WorkerPool",
]
