"""Bounded fork-based worker pool with timeout, retry and cancellation.

The serving daemon is a single asyncio loop; simulations are CPU-bound
Python.  The pool keeps the two apart: each admitted execution forks a
child (:class:`repro.eval.runner.ForkedTask` — the same primitive the
experiment runner's deadline path uses) and a small driver thread relays
its pipe back into the loop.  Concurrency is capped by a semaphore, so
at most ``workers`` simulations run at once regardless of queue depth.

Per attempt the driver enforces a wall-clock deadline (kill + bounded
retry — a timeout may be a loaded host, so one more try is cheap) and a
cancellation flag (kill, no retry — the client changed its mind).
Simulation *errors* are not retried: the machine is deterministic, so a
deadlock or trap would only reproduce.

Where the platform offers no ``fork`` start method the pool degrades to
in-thread execution: results are identical, but a runaway simulation
can then only be abandoned, not killed (documented limitation, same
spirit as the runner's sequential degrade).
"""

import asyncio
import time

from repro.eval.runner import ForkedTask

__all__ = ["PoolCancelled", "PoolTaskError", "PoolTimeout", "WorkerPool"]

#: seconds between cancellation/deadline checks while waiting on a child
_POLL_SLICE = 0.05


class PoolTimeout(Exception):
    """Every allowed attempt blew its deadline."""


class PoolCancelled(Exception):
    """The caller's cancel flag was set while the job waited or ran."""


class PoolTaskError(Exception):
    """The child reported an error (deterministic — never retried).

    ``worker_died`` is True when the child vanished without reporting —
    the crash-flight-recorder case, as opposed to an ordinary
    simulation error the child described itself.
    """

    worker_died = False


class WorkerPool:
    """At most *workers* concurrent forked simulations.

    ``timeout`` is the per-attempt deadline in seconds (None = no
    deadline); after a timeout the job is retried up to ``retries`` more
    times.  ``timeouts`` and ``retries_spent`` accumulate across jobs
    for the service's ``/stats``.
    """

    def __init__(self, workers=2, timeout=None, retries=1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self._semaphore = asyncio.Semaphore(workers)
        self.busy = 0
        self.timeouts = 0
        self.retries_spent = 0
        try:
            import multiprocessing

            multiprocessing.get_context("fork")
            self._has_fork = True
        except ValueError:
            self._has_fork = False

    def _attempt(self, fn, args, kwargs, deadline_s, cancel_event, emit):
        """One forked attempt, driven to completion from a worker thread."""
        if not self._has_fork:
            # degrade: run in this thread; progress flows, deadlines don't
            if cancel_event is not None and cancel_event.is_set():
                raise PoolCancelled()
            if emit is not None:
                kwargs = dict(kwargs)
                kwargs["progress"] = emit
            try:
                return fn(*args, **kwargs)
            except PoolCancelled:
                raise
            except Exception as exc:
                raise PoolTaskError("%s: %s" % (type(exc).__name__, exc))
        task = ForkedTask(fn, args, kwargs,
                          progress_arg="progress" if emit is not None else None)
        deadline = (task.started_at + deadline_s
                    if deadline_s is not None else None)
        finished = False
        try:
            while True:
                if cancel_event is not None and cancel_event.is_set():
                    raise PoolCancelled()
                if deadline is not None and time.monotonic() >= deadline:
                    raise PoolTimeout()
                if not task.poll(_POLL_SLICE):
                    continue
                kind, payload = task.recv()
                if kind == "progress":
                    if emit is not None:
                        emit(payload)
                    continue
                finished = True
                if kind == "ok":
                    return payload
                error = PoolTaskError(payload)
                # a child that vanished (SIGKILL, OOM, interpreter
                # abort) never reported — flag it so the server can
                # spill the flight recorder for post-mortem debugging
                error.worker_died = (isinstance(payload, str)
                                     and payload.startswith("worker died"))
                raise error
        finally:
            if finished:
                task.close()  # child is exiting on its own: just reap
            else:
                task.terminate()

    async def run(self, fn, args=(), kwargs=None, on_progress=None,
                  on_attempt=None, cancel_event=None, timeout=None,
                  retries=None):
        """Run ``fn(*args, **kwargs)`` in a forked child; returns its value.

        *on_progress* (called on the event loop) receives the payloads
        the child streams through its injected ``progress`` callable;
        *on_attempt* fires at the start of every (re)try; *cancel_event*
        (a ``threading.Event``) aborts between poll slices.  Raises
        :class:`PoolTimeout` / :class:`PoolCancelled` /
        :class:`PoolTaskError`.
        """
        loop = asyncio.get_running_loop()
        deadline_s = self.timeout if timeout is None else timeout
        allowed = 1 + (self.retries if retries is None else retries)
        emit = None
        if on_progress is not None:
            def emit(payload):
                loop.call_soon_threadsafe(on_progress, payload)
        async with self._semaphore:
            self.busy += 1
            try:
                for attempt in range(1, allowed + 1):
                    if on_attempt is not None:
                        on_attempt()
                    try:
                        return await asyncio.to_thread(
                            self._attempt, fn, args, dict(kwargs or {}),
                            deadline_s, cancel_event, emit)
                    except PoolTimeout:
                        self.timeouts += 1
                        if attempt == allowed:
                            raise PoolTimeout(
                                "timed out after %gs on each of %d "
                                "attempt(s)" % (deadline_s, attempt))
                        self.retries_spent += 1
            finally:
                self.busy -= 1

    def snapshot(self):
        """Pool counters for the ``/stats`` endpoint."""
        return {"workers": self.workers, "busy": self.busy,
                "timeouts": self.timeouts,
                "retries_spent": self.retries_spent,
                "fork": self._has_fork}
