"""`repro serve`: the asyncio simulation-job daemon.

One event loop owns everything light — accepting connections (TCP and/or
unix socket, same handler), parsing HTTP, keying jobs, cache lookups,
the priority queue — and forks everything heavy onto the bounded worker
pool.  The request path for one submitted job::

    parse -> JobSpec -> content key -> cache.get
        hit  ............................. answer now, nothing simulates
        miss, key in flight ............. coalesce onto the running Job
        miss, new key ................... charge quota, enqueue by priority

Misses execute exactly once per key (single-flight); every submitter of
that key — in the same batch, on other connections, before or after the
run started — receives the one canonical value, byte-identical because
responses are canonical JSON of the cached object.  Determinism makes
the dedupe safe: there is no interleaving of requests under which a
second execution could have answered differently.

Endpoints (JSON in, sorted-key JSON out)::

    GET  /healthz                     liveness
    GET  /stats                       cache/jobs/pool/quota counters
    GET  /metrics                     Prometheus text exposition
    GET  /v1/trace                    drained span records + clock anchor
    POST /v1/jobs                     submit a batch; ?/body "wait" blocks
    GET  /v1/jobs/<id>                job status (+ value when done)
    GET  /v1/jobs/<id>/stream         NDJSON progress events, then terminal
    POST /v1/jobs/<id>/cancel         cancel a queued or running job

Observability (PR 10): every submission mints a trace at admission
(``admission`` span, ``cache_probe``/``quota`` children); a created
job's trace context travels by value into the forked worker, where
``execute``/``compile``/``run`` spans — and, sharded, per-epoch
wait/send/recv spans from the shard processes — are recorded and shipped
back over the existing progress pipe as one ``{"kind": "spans"}``
payload, intercepted here before stream fan-out.  Coalesced admissions
are their own one-span traces tagged with the executing job's trace id.
All of it is observation-only: results, cache bytes and golden digests
are identical with tracing on or off.

Shutdown is a graceful drain: listeners close first (no new work), the
queue runs dry, in-flight responses are written, then the workers stop
and the cache is final-swept (and the span buffer is written to
``--trace-out`` when configured).
"""

import asyncio
import heapq
import json
import os
import threading
import time
import urllib.parse

from repro.serve.jobs import (
    CANCELLED,
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
    QUEUED,
    RUNNING,
    JobSpec,
    JobTable,
)
from repro.observe import prom
from repro.observe.spans import FLIGHT_ENV, SpanRecorder, flight
from repro.serve.pool import PoolCancelled, PoolTaskError, PoolTimeout, WorkerPool
from repro.serve.quota import QuotaExceeded, QuotaManager
from repro.serve.worker import execute_job
from repro.snapshot.cache import RunCache

__all__ = ["ServeConfig", "ServerThread", "SimServer"]

_MAX_HEADER_LINE = 16 * 1024
_MAX_BODY = 32 * 1024 * 1024
#: puts between incremental cache-gc sweeps (when a byte budget is set)
_GC_EVERY_PUTS = 32


class ServeConfig:
    """Everything `repro serve` can be told from the CLI or a test."""

    def __init__(self, host="127.0.0.1", port=None, unix_path=None,
                 workers=2, cache_root=None, max_cache_bytes=None,
                 max_cache_age_s=None, job_timeout=None, retries=1,
                 progress_every=None, quotas=None, default_quota=None,
                 history=1024, trace=True, trace_out=None, flight_dir=None):
        if port is None and unix_path is None:
            raise ValueError("serve needs a TCP port and/or a unix socket")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.workers = workers
        self.cache_root = cache_root
        self.max_cache_bytes = max_cache_bytes
        self.max_cache_age_s = max_cache_age_s
        self.job_timeout = job_timeout
        self.retries = retries
        self.progress_every = progress_every
        self.quotas = quotas
        self.default_quota = default_quota
        self.history = history
        #: span recording on the request path (off = spans-free hot path)
        self.trace = trace
        #: write the drained span buffer here (Perfetto JSON) on drain
        self.trace_out = trace_out
        #: arm the crash flight recorder: dumps land in this directory
        self.flight_dir = flight_dir


class _HttpError(Exception):
    def __init__(self, status, message):
        super().__init__(message)
        self.status = status
        self.payload = {"error": message}


class SimServer:
    """The daemon: listeners + scheduler + pool around one RunCache."""

    def __init__(self, config):
        self.config = config
        self.cache = RunCache(config.cache_root)
        self.table = JobTable(history=config.history)
        self.quotas = QuotaManager(config.quotas, default=config.default_quota)
        self.pool = WorkerPool(config.workers, timeout=config.job_timeout,
                               retries=config.retries)
        self._heap = []
        self._queue_event = asyncio.Event()
        self._worker_tasks = []
        self._servers = []
        self.draining = False
        self.started_at = None
        self.bound_port = None
        self._puts_since_gc = 0
        #: service spans (admission and everything the workers ship back)
        self.spans = SpanRecorder(capacity=16384) if config.trace else None
        #: the newest cycles↔wall clock anchor a worker reported — what
        #: ties core timelines into the merged Perfetto view
        self.last_clock = None
        #: request/execution latency histograms for /metrics
        self.http_seconds = prom.Histogram()
        self.execute_seconds = prom.Histogram()
        if config.flight_dir:
            # exported so forked workers (and their shard children)
            # inherit the spill destination through fork
            os.environ[FLIGHT_ENV] = config.flight_dir

    # ---- lifecycle ----------------------------------------------------------

    async def start(self):
        self.started_at = time.monotonic()
        for _ in range(self.config.workers):
            self._worker_tasks.append(
                asyncio.create_task(self._worker_loop()))
        if self.config.unix_path:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_path))
        if self.config.port is not None:
            server = await asyncio.start_server(
                self._handle_connection, host=self.config.host,
                port=self.config.port)
            self.bound_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)

    async def drain(self):
        """Graceful shutdown: refuse new work, finish accepted work."""
        self.draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._queue_event.set()  # wake idle workers so they can exit
        await asyncio.gather(*self._worker_tasks)
        self._final_gc()
        if self.config.trace_out and self.spans is not None:
            from repro.observe.perfetto import write_chrome_trace

            write_chrome_trace(None, self.config.trace_out,
                               spans=self.spans.records(),
                               clock=self.last_clock)

    def _final_gc(self):
        if (self.config.max_cache_bytes is not None
                or self.config.max_cache_age_s is not None):
            self.cache.gc(max_bytes=self.config.max_cache_bytes,
                          max_age_s=self.config.max_cache_age_s)

    # ---- scheduling ---------------------------------------------------------

    async def _worker_loop(self):
        while True:
            job = await self._next_job()
            if job is None:
                return
            await self._execute(job)

    async def _next_job(self):
        while True:
            while self._heap:
                _, _, job = heapq.heappop(self._heap)
                if job.done.is_set():
                    continue  # cancelled while queued
                return job
            if self.draining:
                return None
            self._queue_event.clear()
            # re-check under the cleared event: a submit between the heap
            # scan and clear() would otherwise be slept through
            if self._heap:
                continue
            await self._queue_event.wait()

    async def _execute(self, job):
        job.state = RUNNING
        spec = job.spec
        self.table.counters["executed"] += 1
        flight().note("execute", job=job.id, key=job.key[:16],
                      tenant=job.tenant)

        def on_attempt():
            job.attempts += 1

        def on_progress(event):
            # span payloads ride the same pipe as progress but are
            # server-internal: absorb them BEFORE stream fan-out (a
            # non-progress kind would terminate client NDJSON streams)
            if event.get("kind") == "spans":
                if self.spans is not None:
                    self.spans.absorb(event.get("spans") or ())
                    if event.get("clock"):
                        self.last_clock = event["clock"]
                return
            job.publish(event)

        started = time.monotonic()
        try:
            value = await self.pool.run(
                execute_job,
                args=(spec.source, spec.filename, spec.params,
                      spec.max_cycles, self.config.progress_every,
                      spec.shards, spec.backend, job.trace_ctx),
                on_progress=on_progress, on_attempt=on_attempt,
                cancel_event=job.cancel_event)
        except PoolCancelled:
            self.table.counters["cancelled"] += 1
            job.fail("cancelled", state=CANCELLED)
        except PoolTimeout as exc:
            self.table.counters["job_timeouts"] += 1
            job.fail("timeout: %s" % exc)
        except PoolTaskError as exc:
            self.table.counters["failed"] += 1
            if exc.worker_died:
                # the child's flight ring died with it — spill the
                # server's own view so the crash is debuggable
                flight().note("worker_died", job=job.id, error=str(exc))
                flight().spill(self.config.flight_dir,
                               "worker died executing %s" % job.id)
            job.fail(str(exc))
        except Exception as exc:  # defensive: a worker bug must not kill the loop
            self.table.counters["failed"] += 1
            job.fail("internal: %r" % (exc,))
        else:
            canonical = self.cache.put(job.key, value, extra={"via": "serve"})
            self.table.counters["completed"] += 1
            job.resolve(canonical if canonical is not None else value)
            self._maybe_gc()
        finally:
            self.execute_seconds.observe(time.monotonic() - started)
            flight().note("job_" + job.state, job=job.id)
            self.table.finish(job)

    def _maybe_gc(self):
        if self.config.max_cache_bytes is None:
            return
        self._puts_since_gc += 1
        if self._puts_since_gc >= _GC_EVERY_PUTS:
            self._puts_since_gc = 0
            self.cache.gc(max_bytes=self.config.max_cache_bytes,
                          max_age_s=self.config.max_cache_age_s)

    # ---- submission ---------------------------------------------------------

    def _submit_one(self, payload, tenant, priority):
        """The single-flight decision for one job; returns a wire record.

        Every submission mints its own trace: the ``admission`` root
        span covers keying through the scheduling decision, with
        ``cache_probe`` (and, for new executions, ``quota``) children.
        A *created* job adopts its admission's trace — the worker-side
        ``execute`` span chains onto it; a *coalesced* admission stays
        its own one-span trace, tagged ``execution_trace`` with the
        running job's trace id so the N:1 fan-in is recoverable.
        """
        spans = self.spans
        admission = None
        if spans is not None:
            admission = spans.start("admission",
                                    tags={"tenant": tenant,
                                          "priority": priority})
        try:
            spec = JobSpec.from_wire(payload)
            try:
                key = spec.cache_key(self.cache)
            except ValueError:
                raise
            except Exception as exc:  # compile/assemble error: client's fault
                raise _HttpError(400, "bad program: %s: %s"
                                 % (type(exc).__name__, exc))
            if spans is not None:
                with spans.span("cache_probe", parent=admission,
                                key=key[:16]):
                    entry = self.cache.get(key)
            else:
                entry = self.cache.get(key)
            if entry is not None:
                self.table.counters["submitted"] += 1
                self.table.counters["hits"] += 1
                if admission is not None:
                    admission.finish(outcome="hit", key=key[:16])
                    admission = None
                return {"key": key, "status": "hit", "value": entry["value"]}
            self.table.counters["misses"] += 1
            if key not in self.table.inflight:
                # charging precedes admission: a rejected job leaves no trace
                try:
                    if spans is not None:
                        with spans.span("quota", parent=admission,
                                        tenant=tenant):
                            self.quotas.charge(tenant)
                    else:
                        self.quotas.charge(tenant)
                except QuotaExceeded as exc:
                    raise _HttpError(429, str(exc))
            job, created = self.table.admit(spec, key, tenant, priority)
            if created:
                if admission is not None:
                    job.trace_id = admission.trace_id
                    job.trace_ctx = admission.ctx
                flight().note("admit", job=job.id, key=key[:16],
                              tenant=tenant)
                heapq.heappush(self._heap, (*job.sort_key, job))
                self._queue_event.set()
            if admission is not None:
                admission.tags["job"] = job.id
                if created:
                    admission.finish(outcome="queued")
                else:
                    # the N:1 coalesce edge: this admission's trace
                    # points at the one execution trace serving it
                    admission.finish(outcome="coalesced",
                                     execution_trace=job.trace_id)
                admission = None
            return {"key": key, "id": job.id,
                    "status": "queued" if created else "coalesced"}
        finally:
            if admission is not None:
                admission.finish(outcome="rejected")

    async def _submit_batch(self, body):
        if not isinstance(body, dict):
            raise _HttpError(400, "body must be a JSON object")
        jobs = body.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            raise _HttpError(400, "'jobs' must be a non-empty list")
        tenant = body.get("tenant", "anonymous")
        priority = body.get("priority", DEFAULT_PRIORITY)
        if priority not in PRIORITY_CLASSES:
            raise _HttpError(400, "unknown priority %r (one of %s)"
                             % (priority, "/".join(sorted(PRIORITY_CLASSES))))
        wait = bool(body.get("wait", True))
        records = []
        for payload in jobs:
            try:
                records.append(self._submit_one(payload, tenant, priority))
            except _HttpError as exc:
                records.append({"status": "rejected", "code": exc.status,
                                "error": exc.payload["error"]})
            except ValueError as exc:
                records.append({"status": "rejected", "code": 400,
                                "error": str(exc)})
        if wait:
            pending = {record["id"] for record in records if "id" in record}
            await asyncio.gather(*(self.table.get(job_id).done.wait()
                                   for job_id in pending))
            for record in records:
                job_id = record.get("id")
                if job_id is None:
                    continue
                job = self.table.get(job_id)
                record["status"] = job.state
                if job.value is not None:
                    record["value"] = job.value
                if job.error is not None:
                    record["error"] = job.error
        rejected = [r for r in records if r.get("status") == "rejected"]
        status = 200
        if rejected and len(rejected) == len(records):
            status = max(r["code"] for r in rejected)
        return status, {"jobs": records}

    # ---- introspection ------------------------------------------------------

    def stats(self):
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3)
            if self.started_at is not None else None,
            "draining": self.draining,
            "queue": {"depth": self.table.depth(),
                      "running": self.table.running()},
            "jobs": {name: self.table.counters[name]
                     for name in ("submitted", "hits", "misses", "coalesced",
                                  "executed", "completed", "failed",
                                  "cancelled", "job_timeouts")},
            "pool": self.pool.snapshot(),
            "cache": self.cache.stats(),
            "quota": self.quotas.snapshot(),
        }

    def metrics_text(self):
        """The Prometheus text exposition for ``GET /metrics``.

        Assembled fresh per scrape from counters the server already
        keeps — rendering reads state, never mutates it, so a scrape
        can't perturb a running job.
        """
        counters = self.table.counters
        pool = self.pool.snapshot()
        cache = self.cache.stats()
        uptime = (time.monotonic() - self.started_at
                  if self.started_at is not None else 0.0)
        families = [
            prom.family(
                "repro_jobs_total", "counter",
                "Job admissions by outcome event",
                [({"event": name}, counters[name])
                 for name in ("submitted", "hits", "misses", "coalesced",
                              "executed", "completed", "failed",
                              "cancelled", "job_timeouts")]),
            prom.family(
                "repro_queue_depth", "gauge",
                "Jobs admitted and waiting for a pool worker",
                [(None, self.table.depth())]),
            prom.family(
                "repro_jobs_running", "gauge",
                "Jobs currently executing in forked workers",
                [(None, self.table.running())]),
            prom.family(
                "repro_pool_workers", "gauge",
                "Configured worker pool size",
                [(None, pool["workers"])]),
            prom.family(
                "repro_pool_busy", "gauge",
                "Pool workers currently occupied",
                [(None, pool["busy"])]),
            prom.family(
                "repro_pool_timeouts_total", "counter",
                "Execution attempts that blew their deadline",
                [(None, pool["timeouts"])]),
            prom.family(
                "repro_pool_retries_total", "counter",
                "Execution attempts retried after a timeout",
                [(None, pool["retries_spent"])]),
            prom.family(
                "repro_cache_entries", "gauge",
                "Run-cache entries on disk",
                [(None, cache["entries"])]),
            prom.family(
                "repro_cache_disk_bytes", "gauge",
                "Run-cache on-disk footprint (entries + snapshots)",
                [(None, cache["disk_bytes"])]),
            prom.family(
                "repro_uptime_seconds", "gauge",
                "Seconds since the daemon started",
                [(None, round(uptime, 3))]),
            prom.family(
                "repro_http_request_seconds", "histogram",
                "HTTP request latency",
                self.http_seconds.samples("repro_http_request_seconds")),
            prom.family(
                "repro_job_execute_seconds", "histogram",
                "Forked execution wall time (admission to result)",
                self.execute_seconds.samples("repro_job_execute_seconds")),
        ]
        if self.spans is not None:
            families.append(prom.family(
                "repro_spans_recorded_total", "counter",
                "Spans started in the server process",
                [(None, self.spans.started)]))
            families.append(prom.family(
                "repro_spans_dropped_total", "counter",
                "Span records evicted from the bounded ring",
                [(None, self.spans.dropped)]))
        return prom.render(families)

    # ---- the HTTP surface ---------------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            # loop shutdown cancels lingering keep-alive connections; the
            # peer is being dropped anyway, so close quietly
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line:
            return None
        if len(line) > _MAX_HEADER_LINE:
            raise ConnectionError("request line too long")
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            raise ConnectionError("malformed request line")
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(line) > _MAX_HEADER_LINE:
                raise ConnectionError("header too long")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY:
            raise ConnectionError("body too large")
        body = await reader.readexactly(length) if length else b""
        split = urllib.parse.urlsplit(target)
        query = {name: values[-1] for name, values
                 in urllib.parse.parse_qs(split.query).items()}
        return {"method": method.upper(), "path": split.path,
                "query": query, "headers": headers, "body": body}

    @staticmethod
    def _write_json(writer, status, payload, keep_alive=True):
        body = (json.dumps(payload, sort_keys=True,
                           separators=(",", ":")) + "\n").encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 429: "Too Many Requests",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "Status")
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: %d\r\n"
                "Connection: %s\r\n\r\n"
                % (status, reason, len(body),
                   "keep-alive" if keep_alive else "close"))
        writer.write(head.encode("latin-1") + body)

    @staticmethod
    def _write_text(writer, status, text, keep_alive=True,
                    content_type="text/plain; version=0.0.4; charset=utf-8"):
        body = text.encode()
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %d\r\n"
                "Connection: %s\r\n\r\n"
                % (status, "OK" if status == 200 else "Status", content_type,
                   len(body), "keep-alive" if keep_alive else "close"))
        writer.write(head.encode("latin-1") + body)

    async def _dispatch(self, request, writer):
        method, path = request["method"], request["path"]
        keep_alive = request["headers"].get("connection", "").lower() != "close"
        started = time.monotonic()
        try:
            return await self._route(request, writer, keep_alive)
        finally:
            self.http_seconds.observe(time.monotonic() - started)

    async def _route(self, request, writer, keep_alive):
        method, path = request["method"], request["path"]
        try:
            if path == "/healthz" and method == "GET":
                self._write_json(writer, 200, {"ok": True,
                                               "draining": self.draining},
                                 keep_alive)
            elif path == "/stats" and method == "GET":
                self._write_json(writer, 200, self.stats(), keep_alive)
            elif path == "/metrics" and method == "GET":
                self._write_text(writer, 200, self.metrics_text(), keep_alive)
            elif path == "/v1/trace" and method == "GET":
                if self.spans is None:
                    raise _HttpError(404, "tracing is disabled")
                self._write_json(writer, 200,
                                 {"spans": self.spans.records(),
                                  "clock": self.last_clock,
                                  "dropped": self.spans.dropped},
                                 keep_alive)
            elif path == "/v1/jobs" and method == "POST":
                if self.draining:
                    raise _HttpError(503, "draining")
                try:
                    body = json.loads(request["body"] or b"{}")
                except ValueError:
                    raise _HttpError(400, "body is not valid JSON")
                if "wait" in request["query"]:
                    body["wait"] = request["query"]["wait"] not in ("0", "false")
                status, payload = await self._submit_batch(body)
                self._write_json(writer, status, payload, keep_alive)
            elif path.startswith("/v1/jobs/"):
                return await self._dispatch_job(request, writer, keep_alive)
            else:
                raise _HttpError(404, "no such endpoint: %s %s"
                                 % (method, path))
        except _HttpError as exc:
            self._write_json(writer, exc.status, exc.payload, keep_alive)
        await writer.drain()
        return keep_alive

    async def _dispatch_job(self, request, writer, keep_alive):
        method, path = request["method"], request["path"]
        parts = path.split("/")  # ['', 'v1', 'jobs', '<id>', maybe-action]
        job_id = parts[3] if len(parts) > 3 else ""
        job = self.table.get(job_id)
        if job is None:
            raise _HttpError(404, "no such job: %s" % (job_id or "?"))
        action = parts[4] if len(parts) > 4 else None
        if action is None and method == "GET":
            self._write_json(writer, 200, job.describe(), keep_alive)
        elif action == "cancel" and method == "POST":
            self._cancel(job)
            self._write_json(writer, 200, job.describe(), keep_alive)
        elif action == "stream" and method == "GET":
            await self._stream(job, writer)
            return False  # close-delimited response
        else:
            raise _HttpError(405, "unsupported: %s %s" % (method, path))
        await writer.drain()
        return keep_alive

    def _cancel(self, job):
        if job.done.is_set():
            return
        job.cancel_event.set()
        if job.state == QUEUED:
            # the heap entry is skipped on pop once done is set
            self.table.counters["cancelled"] += 1
            job.fail("cancelled", state=CANCELLED)
            self.table.finish(job)

    async def _stream(self, job, writer):
        """NDJSON progress stream: close-delimited, ends on the terminal
        event (works on already-finished jobs from history too)."""
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")

        def send(event):
            writer.write((json.dumps(event, sort_keys=True,
                                     separators=(",", ":")) + "\n").encode())

        if job.done.is_set():
            if job.progress is not None:
                send(job.progress)
            send(self._terminal_event(job))
            await writer.drain()
            return
        queue = asyncio.Queue()
        job.subscribers.append(queue)
        try:
            if job.progress is not None:
                send(job.progress)
                await writer.drain()
            while True:
                event = await queue.get()
                send(event)
                await writer.drain()
                if event.get("kind") != "progress":
                    return
        finally:
            if queue in job.subscribers:
                job.subscribers.remove(queue)

    @staticmethod
    def _terminal_event(job):
        event = {"kind": job.state, "id": job.id, "key": job.key}
        if job.value is not None:
            event["value"] = job.value
        if job.error is not None:
            event["error"] = job.error
        return event


class ServerThread:
    """A SimServer on a background thread — embedding for tests/benches.

    Usage::

        with ServerThread(ServeConfig(unix_path=sock)) as handle:
            client = ServeClient(unix_path=sock)
            ...

    ``stop(drain=True)`` (or context exit) drains gracefully on the
    server's own loop and joins the thread.
    """

    def __init__(self, config):
        self.config = config
        self.server = None
        self.loop = None
        self._ready = threading.Event()
        self._failure = None
        self._stop_requested = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")

    def start(self, timeout=10.0):
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serve thread failed to become ready")
        if self._failure is not None:
            raise RuntimeError("serve thread failed: %s" % self._failure)
        return self

    def _run(self):
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            self._failure = exc
            self._ready.set()

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        self.server = SimServer(self.config)
        self._stop_requested = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop_requested.wait()
        await self.server.drain()

    def stop(self, timeout=60.0):
        if self.loop is not None and self._thread.is_alive():
            self.loop.call_soon_threadsafe(self._stop_requested.set)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("serve thread did not drain in %gs" % timeout)

    @property
    def port(self):
        return self.server.bound_port if self.server else None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
