"""The forked worker's half of the job service: run one simulation.

:func:`execute_job` is the module-level callable the pool forks for each
cache miss.  It rebuilds the program (usually a memo hit inherited
through fork from the parent that just keyed the request), runs the
cycle-accurate machine, and returns the same value shape
``RunCache.run_program`` stores — so service entries and CLI entries are
interchangeable cache objects::

    {"summary": {...}, "trace_digest": "...", "cycles": N, "retired": N}

When the caller wires a *progress* channel (see
:class:`repro.eval.runner.ForkedTask`'s ``progress_arg``), the run is
metered (zero-perturbation — PR 5's guarantee is that metrics never
change results) and a compact progress payload is emitted at the same
safe point periodic snapshots use: cycle count, retired, IPC so far and
the dominant stall reason.

When the caller additionally hands a *trace_ctx* — the admission span's
``(trace_id, span_id)``, propagated by value through the fork — the
worker records its own child spans (compile, load, run; and, sharded,
per-epoch wait/send/recv spans merged back from the shard processes)
plus a cycles↔wall clock anchor, and ships them up the same progress
pipe as one ``{"kind": "spans"}`` payload just before returning.  The
server intercepts that payload before stream fan-out, so clients never
see it.  Spans read clocks and nothing else: the result value, the
trace digest and every cached byte are identical with tracing on.
"""

from repro.machine import LBP
from repro.snapshot.snapshot import trace_digest

__all__ = ["execute_job", "job_progress", "job_value"]

#: default cycles between progress emissions
DEFAULT_PROGRESS_EVERY = 100_000


def job_progress(machine):
    """One compact progress payload from a live, metered machine."""
    cycle = machine.cycle
    retired = machine.stats.retired
    payload = {
        "kind": "progress",
        "cycle": cycle,
        "retired": retired,
        "ipc": round(retired / cycle, 4) if cycle else 0.0,
    }
    if machine.metrics is not None:
        from repro.observe.export import build_report

        report = build_report(machine)
        if report["stall_cycles"]:
            top = max(report["stalls"].items(), key=lambda kv: (kv[1], kv[0]))
            payload["top_stall"] = top[0]
            payload["top_stall_cycles"] = top[1]
    return payload


def job_value(machine, stats):
    """The canonical result value (mirrors ``RunCache.run_program``)."""
    return {
        "summary": stats.summary(),
        "trace_digest": trace_digest(machine.trace.events),
        "cycles": stats.cycles,
        "retired": stats.retired,
    }


def execute_job(source, filename, params_kwargs, max_cycles=None,
                progress_every=None, shards=None, backend=None,
                trace_ctx=None, progress=None):
    """Run one job to completion; returns the canonical result value.

    *progress* (injected by the pool) receives :func:`job_progress`
    payloads roughly every *progress_every* cycles; passing it implies a
    metered run so the payloads carry IPC and the top stall reason.
    *shards*/*backend* select the execution strategy (bit-exact either
    way).  *trace_ctx* links this execution into the admission's trace.
    """
    import time

    from repro.serve.jobs import compiled_program

    spans = None
    execute_span = None
    if trace_ctx is not None:
        from repro.observe.spans import SpanRecorder, flight

        spans = SpanRecorder()
        execute_span = spans.start("execute", parent=tuple(trace_ctx))
        flight().note("execute_begin", filename=filename, shards=shards,
                      backend=backend, trace_id=execute_span.trace_id)

    if spans is not None:
        with spans.span("compile", parent=execute_span, filename=filename):
            program = compiled_program(source, filename)
    else:
        program = compiled_program(source, filename)
    from repro.machine import Params

    metered = progress is not None
    machine = LBP(Params(**params_kwargs), shards=shards, backend=backend,
                  metrics=True if metered else None).load(program)
    run_kwargs = {}
    if max_cycles is not None:
        run_kwargs["max_cycles"] = max_cycles
    if metered:
        every = progress_every or DEFAULT_PROGRESS_EVERY
        run_kwargs["snapshot_every"] = every
        run_kwargs["snapshot_callback"] = lambda m: progress(job_progress(m))
    clock = None
    if spans is not None:
        run_span = spans.start("run", parent=execute_span)
        # the sharded engine forwards this context into each shard
        # process and merges their epoch spans back via the final
        # gather payload (engine.span_records)
        machine.span_ctx = run_span.ctx
        run_start = time.monotonic()
        try:
            stats = machine.run(**run_kwargs)
        finally:
            run_span.finish(cycles=machine.cycle)
        from repro.observe.spans import clock_anchor

        # anchor on stats.cycles — the count chrome_trace reports — so
        # the served clock and a deterministic replay agree exactly
        clock = clock_anchor(run_start, max(run_span.end_s - run_start, 0.0),
                             stats.cycles)
        shard_spans = getattr(machine, "span_records", None)
        if shard_spans:
            spans.absorb(shard_spans)
    else:
        stats = machine.run(**run_kwargs)
    value = job_value(machine, stats)
    if spans is not None:
        execute_span.finish(cycles=value["cycles"], retired=value["retired"],
                            trace_digest=value["trace_digest"][:16])
        flight().note("execute_end", cycles=value["cycles"],
                      trace_id=execute_span.trace_id)
        if progress is not None:
            progress({"kind": "spans", "spans": spans.drain(),
                      "clock": clock, "dropped": spans.dropped})
    return value
