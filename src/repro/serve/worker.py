"""The forked worker's half of the job service: run one simulation.

:func:`execute_job` is the module-level callable the pool forks for each
cache miss.  It rebuilds the program (usually a memo hit inherited
through fork from the parent that just keyed the request), runs the
cycle-accurate machine, and returns the same value shape
``RunCache.run_program`` stores — so service entries and CLI entries are
interchangeable cache objects::

    {"summary": {...}, "trace_digest": "...", "cycles": N, "retired": N}

When the caller wires a *progress* channel (see
:class:`repro.eval.runner.ForkedTask`'s ``progress_arg``), the run is
metered (zero-perturbation — PR 5's guarantee is that metrics never
change results) and a compact progress payload is emitted at the same
safe point periodic snapshots use: cycle count, retired, IPC so far and
the dominant stall reason.
"""

from repro.machine import LBP
from repro.snapshot.snapshot import trace_digest

__all__ = ["execute_job", "job_progress", "job_value"]

#: default cycles between progress emissions
DEFAULT_PROGRESS_EVERY = 100_000


def job_progress(machine):
    """One compact progress payload from a live, metered machine."""
    cycle = machine.cycle
    retired = machine.stats.retired
    payload = {
        "kind": "progress",
        "cycle": cycle,
        "retired": retired,
        "ipc": round(retired / cycle, 4) if cycle else 0.0,
    }
    if machine.metrics is not None:
        from repro.observe.export import build_report

        report = build_report(machine)
        if report["stall_cycles"]:
            top = max(report["stalls"].items(), key=lambda kv: (kv[1], kv[0]))
            payload["top_stall"] = top[0]
            payload["top_stall_cycles"] = top[1]
    return payload


def job_value(machine, stats):
    """The canonical result value (mirrors ``RunCache.run_program``)."""
    return {
        "summary": stats.summary(),
        "trace_digest": trace_digest(machine.trace.events),
        "cycles": stats.cycles,
        "retired": stats.retired,
    }


def execute_job(source, filename, params_kwargs, max_cycles=None,
                progress_every=None, progress=None):
    """Run one job to completion; returns the canonical result value.

    *progress* (injected by the pool) receives :func:`job_progress`
    payloads roughly every *progress_every* cycles; passing it implies a
    metered run so the payloads carry IPC and the top stall reason.
    """
    from repro.serve.jobs import compiled_program

    program = compiled_program(source, filename)
    from repro.machine import Params

    metered = progress is not None
    machine = LBP(Params(**params_kwargs),
                  metrics=True if metered else None).load(program)
    run_kwargs = {}
    if max_cycles is not None:
        run_kwargs["max_cycles"] = max_cycles
    if metered:
        every = progress_every or DEFAULT_PROGRESS_EVERY
        run_kwargs["snapshot_every"] = every
        run_kwargs["snapshot_callback"] = lambda m: progress(job_progress(m))
    stats = machine.run(**run_kwargs)
    return job_value(machine, stats)
