"""Deterministic OpenMP: the paper's runtime, as generated PISC assembly.

The runtime replaces libgomp: ``LBP_parallel_start`` distributes a team of
harts over the machine (filling each core's four harts before expanding to
the next core), passing the join address, the stamped join identity, the
worker pointer, the data pointer and the member index from member to
member over the hardware continuation-value links.  The join is the
ordered ``p_ret`` chain — there is no lock, no futex, no OS.

:mod:`repro.detomp.runtime` emits the assembly; the DetC compiler inlines
it into every program that includes ``<det_omp.h>``.
"""

from repro.detomp.runtime import (
    HART_PER_CORE,
    runtime_asm,
    start_stub_asm,
    worker_asm,
)

__all__ = ["HART_PER_CORE", "runtime_asm", "start_stub_asm", "worker_asm"]
