"""Deterministic MPI (the paper's conclusion, §8): ordered message passing.

    "A deterministic version of MPI could even be proposed, built around
    ordered communicators where a sender always precedes its receiver(s)
    (i.e. the sender rank is lower than all its receivers ranks)."

This module generates a small DetC header implementing that sketch on
bare LBP hardware.  A *rank* is a team-member index (member r runs on
core r/4).  Each receiving core owns a mailbox array in its shared bank:
one {flag, value} word pair per slot.  ``dmpi_send`` spins until the
mailbox is free, writes the value, drains its stores with ``p_syncm``
(so the value is globally visible *before* the flag), then raises the
flag; ``dmpi_recv`` polls the flag, reads the value and releases the
mailbox.

Why this is deterministic and deadlock-free:

* each (receiver, slot) mailbox has a single writer and a single reader
  by the communicator discipline, so there are no data races;
* the sender-rank < receiver-rank rule makes the communication graph a
  DAG along the referential sequential order — no cycles, no deadlock,
  and "a data cannot go back in time" holds by construction;
* every wait is an active poll on the non-interruptible machine, so
  run-to-run timing is cycle-identical (tests assert it).

The flag/value ordering is safe without a receiver-side fence: the
sender's ``p_syncm`` orders value-before-flag at the bank, and the
receiver's value load is only fetched after the poll branch resolved, so
it reaches the same bank port after the load that observed the flag.
"""

from repro import memmap

#: byte offset of the mailbox region inside each core's shared bank
MAILBOX_OFFSET = 0x70000

#: number of slots per receiving *rank* (four ranks share a core's bank)
SLOTS_PER_RANK = 64


def mailbox_addr(rank, slot):
    """Address of (flag, value) mailbox *slot* of receiver *rank*."""
    core = rank // memmap.HARTS_PER_CORE
    lane = rank % memmap.HARTS_PER_CORE
    return memmap.global_bank_base(core) + MAILBOX_OFFSET + 8 * (
        lane * SLOTS_PER_RANK + slot % SLOTS_PER_RANK)


def dmpi_header():
    """DetC source defining dmpi_send / dmpi_recv (prepend to programs)."""
    return """
/* ---- Deterministic MPI: ordered communicators on LBP ------------------ */
#define DMPI_GB %(gb)dU
#define DMPI_BOX(rank, slot) \\
    ((int*)(DMPI_GB + (((unsigned)(rank) >> 2) << 20) + %(off)d \\
            + (((rank) & 3) * %(slots)d + (slot) %% %(slots)d) * 8))

/* send to a HIGHER rank (the ordered-communicator rule) */
void dmpi_send(int dst_rank, int slot, int value) {
    int *box = DMPI_BOX(dst_rank, slot);
    while (box[0] != 0)
        ;                       /* previous message not yet consumed */
    box[1] = value;
    __p_syncm();                /* value is visible before the flag */
    box[0] = 1;
}

/* receive into the calling rank's own mailbox */
int dmpi_recv(int my_rank, int slot) {
    int *box = DMPI_BOX(my_rank, slot);
    int value;
    while (box[0] == 0)
        ;                       /* active wait: no interrupt on LBP */
    value = box[1];
    __p_syncm();
    box[0] = 0;                 /* release the mailbox */
    return value;
}
/* ----------------------------------------------------------------------- */
""" % {"gb": memmap.GLOBAL_BASE, "off": MAILBOX_OFFSET, "slots": SLOTS_PER_RANK}


def pipeline_source(ranks, rounds=1):
    """A demo program: rank r receives from r-1, accumulates, sends to r+1.

    The communicator is strictly ascending (sender rank < receiver rank),
    the paper's ordered-communicator rule.  After the team joins, rank
    ``ranks-1``'s result (the sum 1 + 2 + ... + ranks-1 plus the seed)
    is in ``pipeline_out``.
    """
    return dmpi_header() + """
#include <det_omp.h>
#define RANKS %(ranks)d
int pipeline_out;

void stage(int r) {
    int acc;
    if (r == 0)
        acc = 1000;                     /* the seed enters at rank 0 */
    else
        acc = dmpi_recv(r, 0);
    acc += r;
    if (r < RANKS - 1)
        dmpi_send(r + 1, 0, acc);
    else
        pipeline_out = acc;
}

void main() {
    int r;
    #pragma omp parallel for
    for (r = 0; r < RANKS; r++)
        stage(r);
}
""" % {"ranks": ranks}


def pipeline_expected(ranks, seed=1000):
    return seed + sum(range(ranks))
