"""Assembly text of the Deterministic OpenMP runtime.

This is the paper's figures 2, 7 and 8 turned into one concrete,
self-consistent protocol (see DESIGN.md for the two places where the
paper's listings are ambiguous and what we fixed):

* ``LBP_parallel_start(a0=worker, a1=data, a2=nt)`` — create a team of
  *nt* members.  Member *k* runs on hart *k* (core *k/4*): the creating
  hart forks its successor (``p_fc`` three times, then ``p_fn`` to cross
  into the next core), hands it {join address, join identity, worker,
  data, next index, last index} through ``p_swcv``, then runs
  ``worker(data, k)`` itself via ``p_jalr`` — which also starts the forked
  hart at the instruction after the ``p_jalr`` (the ``p_lwcv`` receive
  sequence).  The *last* member tail-jumps to the worker with the original
  join address still in ``ra``, so its ``p_ret`` performs the join.
* each parallel region's *worker* saves ``ra``/``t0`` around the body call
  and ends with ``p_ret``, giving the four ending cases of the paper §4.
* ``_start`` — bare-metal entry: call ``main``, then ``p_ret`` with
  ``ra=0, t0=-1`` (process exit).

Register conventions (enforced by the DetC code generator): ``t0`` is the
team-identity register and ``t6`` the fork-target register; compiled code
never uses them as scratch.
"""

HART_PER_CORE = 4

# CV-area slot offsets used by the fork protocol.
CV_RA = 0
CV_T0 = 4
CV_WORKER = 8
CV_DATA = 12
CV_INDEX = 16
CV_LAST = 20


def runtime_asm():
    """The team-creation routine (one copy per program)."""
    return """
# ---- Deterministic OpenMP runtime ------------------------------------------
# LBP_parallel_start(a0=worker, a1=data, a2=nt)
# clobbers t1-t6; t0 becomes the merged team identity on every member.
        .text
LBP_parallel_start:
        p_set   t0, t0              # stamp: this hart is the join hart
        addi    t2, a2, -1          # t2 = last member index
        li      t1, 0               # t1 = member index
LBP_ps_loop:
        beq     t1, t2, LBP_ps_last
        andi    t3, t1, %d          # hart slot inside the core
        addi    t4, t1, 1           # successor member index
        li      t5, %d
        beq     t3, t5, LBP_ps_next_core
        p_fc    t6                  # fork on current core
        j       LBP_ps_send
LBP_ps_next_core:
        p_fn    t6                  # fork on next core
LBP_ps_send:
        p_swcv  t6, ra, %d          # join address
        p_swcv  t6, t0, %d          # join identity
        p_swcv  t6, a0, %d          # worker
        p_swcv  t6, a1, %d          # data
        p_swcv  t6, t4, %d          # successor index
        p_swcv  t6, t2, %d          # last index
        p_merge t0, t0, t6          # identity: join half | allocated half
        p_syncm                     # CV writes must land before the start
        mv      t5, a0
        mv      a0, a1              # worker(data, index)
        mv      a1, t1
        p_jalr  ra, t0, t5          # run worker here; successor starts below
        # ---- executed by the forked hart ----
        p_lwcv  ra, %d
        p_lwcv  t0, %d
        p_lwcv  a0, %d
        p_lwcv  a1, %d
        p_lwcv  t1, %d
        p_lwcv  t2, %d
        j       LBP_ps_loop
LBP_ps_last:
        mv      t5, a0
        mv      a0, a1              # worker(data, last index)
        mv      a1, t1
        jr      t5                  # tail: worker's p_ret joins via ra/t0
""" % (
        HART_PER_CORE - 1,
        HART_PER_CORE - 1,
        CV_RA, CV_T0, CV_WORKER, CV_DATA, CV_INDEX, CV_LAST,
        CV_RA, CV_T0, CV_WORKER, CV_DATA, CV_INDEX, CV_LAST,
    )


def worker_asm(name, body_label):
    """One parallel region's worker wrapper.

    Saves the join state (``ra``/``t0``) around the body call and ends the
    member with ``p_ret`` — case 2 for the join hart, case 3 for middle
    members, case 4 (send the join) for the last member, which enters with
    the join address still in ``ra``.
    """
    return """
%s:
        addi    sp, sp, -16
        sw      ra, 0(sp)
        sw      t0, 4(sp)
        jal     %s
        lw      ra, 0(sp)
        lw      t0, 4(sp)
        addi    sp, sp, 16
        p_ret
""" % (name, body_label)


def start_stub_asm(main_label="main"):
    """Bare-metal entry: run main, then exit via p_ret(ra=0, t0=-1)."""
    return """
        .text
_start:
        jal     %s
        li      ra, 0
        li      t0, -1
        p_ret                       # ra==0 && t0==-1: process exit
""" % (main_label,)


def omp_globals_asm(bank=0):
    """Runtime globals: the omp_num_threads word."""
    return """
        .bank %d
omp_num_threads:
        .word 1
""" % (bank,)
