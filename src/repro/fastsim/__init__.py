"""Instruction-level timing-approximate LBP simulator.

The cycle-accurate model in :mod:`repro.machine` interprets one pipeline
stage per core per cycle; at the paper's 64-core scale (59 M retired
instructions) that is out of reach for pure Python.  ``fastsim`` executes
the *same* programs functionally, hart by hart, with a calibrated timing
model:

* per-hart issue gaps (2 cycles fetch/decode suspension, operation
  latencies, branch resolution) reproduce the single-hart behaviour;
* a one-issue-per-cycle reservation cursor per core reproduces the
  1-IPC-per-core saturation;
* the same router-tree path model (with per-link reservation cursors)
  reproduces remote-access latency and bandwidth contention;
* team protocol (fork, CV transfer, ordered p_ret chain, join) is modelled
  with blocking events, preserving the referential sequential order.

Harts are scheduled lowest-local-clock-first in small quanta so resource
reservations happen in approximate time order.  Retired-instruction counts
are *exact* (same dynamic instruction stream); cycle counts are validated
against the cycle-accurate simulator in
``tests/integration/test_fastsim_validation.py``.
"""

from repro.fastsim.sim import FastLBP

__all__ = ["FastLBP"]
