"""The fast (instruction-level) LBP simulator.

See the package docstring for the model.  The implementation favours a
flat, dispatch-on-integer interpreter loop: instructions are pre-lowered
to tuples at load time and harts are scheduled smallest-clock-first in
quanta so that resource reservation cursors are exercised in approximate
global time order.
"""

import heapq

from repro import memmap
from repro.isa.semantics import (
    ALU_OPS,
    BRANCH_OPS,
    LOAD_WIDTH,
    STORE_WIDTH,
    join_hart,
    load_value,
    p_merge_value,
    p_set_value,
)
from repro.isa.spec import InstrClass
from repro.machine.params import Params
from repro.machine.router import reply_path, request_path
from repro.machine.stats import MachineStats

_C = InstrClass

# hart states
RUN, FREE, RESERVED, WAITJOIN, RETWAIT, BLOCKED = range(6)


class WindowedPort:
    """A one-slot-per-cycle resource tolerant of out-of-order reservations.

    Harts are simulated in quanta, so reservation requests arrive slightly
    out of global time order; a monotonic cursor (as in the cycle-accurate
    model) would push laggards behind early birds and over-serialise.
    This port counts usage per *window* of W cycles with capacity W, so a
    lagging hart can still claim capacity in a window an earlier-scheduled
    hart only partially used.
    """

    __slots__ = ("used", "window")

    def __init__(self, window=16):
        self.used = {}
        self.window = window

    def reserve(self, earliest):
        window = self.window
        used = self.used
        index = earliest // window
        count = used.get(index, 0)
        while count >= window:
            index += 1
            count = used.get(index, 0)
        used[index] = count + 1
        return max(earliest, index * window)

#: scheduling quantum in cycles: small enough that reservations stay
#: approximately time-ordered, large enough to amortise heap traffic
QUANTUM = 64

#: minimum per-hart issue gap (fetch → decode suspension, paper §5.2)
GAP_MIN = 2
#: extra cycles a taken-or-not branch / indirect jump stalls its hart
BRANCH_GAP = 3


class FastSimError(Exception):
    pass


class FastHart:
    __slots__ = (
        "core_index", "index", "gid", "regs", "pc", "time", "state",
        "retired", "pred", "pred_done", "signal_time", "succ",
        "re_buffers", "pending_join", "ret_action",
    )

    def __init__(self, core_index, index, num_result_buffers):
        self.core_index = core_index
        self.index = index
        self.gid = core_index * memmap.HARTS_PER_CORE + index
        self.regs = [0] * 32
        self.pc = None
        self.time = 0
        self.state = FREE
        self.retired = 0
        self.pred = None
        self.pred_done = False
        self.signal_time = 0
        self.succ = None
        self.re_buffers = [[] for _ in range(num_result_buffers)]
        self.pending_join = None
        self.ret_action = None


class FastLBP:
    """Drop-in (API-compatible subset) fast simulator."""

    def __init__(self, params=None, sanitize=False, metrics=None):
        if sanitize:
            raise NotImplementedError(
                "FastLBP does not support sanitize=True: the referential-"
                "order race detector needs the cycle-accurate machine's "
                "per-instruction observation hooks (rename tags, X_PAR "
                "edge events); run the cycle simulator (LBP) instead"
            )
        if metrics:
            raise NotImplementedError(
                "FastLBP does not support metrics: stall attribution "
                "charges stage-cycles the fast simulator never models; "
                "run the cycle simulator (LBP) instead"
            )
        #: API parity with LBP (always None: no telemetry on the fast sim)
        self.metrics = None
        self.params = params or Params()
        #: API parity with LBP (always None: no detector on the fast sim)
        self.sanitizer = None
        ncores = self.params.num_cores
        self.stats = MachineStats(ncores, self.params.harts_per_core)
        self.harts = [
            FastHart(core, hart, self.params.num_result_buffers)
            for core in range(ncores)
            for hart in range(self.params.harts_per_core)
        ]
        self.local_mem = [bytearray(memmap.LOCAL_SIZE) for _ in range(ncores)]
        self.shared_mem = [bytearray(memmap.GLOBAL_BANK_SIZE) for _ in range(ncores)]
        self.code_mem = bytearray(memmap.CODE_SIZE)
        self.code = {}
        self.issue_ports = [WindowedPort() for _ in range(ncores)]
        self.local_ports = [WindowedPort() for _ in range(ncores)]
        self.shared_local_ports = [WindowedPort() for _ in range(ncores)]
        self.shared_router_ports = [WindowedPort() for _ in range(ncores)]
        self._route_cache = {}
        self._link_ports = {}
        self.mmio = {}
        self.exited = False
        self.end_time = 0
        self._heap = []
        self._seq = 0
        self.program = None

    # ---- snapshot parity -------------------------------------------------------

    def state_dict(self):
        """Fast-sim snapshots are unsupported — fail loudly, not subtly.

        The quantum scheduler interleaves harts at coarse granularity and
        parks closures in its heap; serializing that mid-quantum state
        cannot reproduce the exact interleave on restore.  Snapshot the
        cycle-accurate :class:`repro.machine.LBP` instead.
        """
        raise NotImplementedError(
            "FastLBP does not support snapshot/restore: mid-quantum "
            "scheduler state is not serializable; use the cycle-accurate "
            "LBP simulator (repro.snapshot.snapshot refuses FastLBP too)"
        )

    load_state_dict = state_dict

    # ---- loading ---------------------------------------------------------------

    def load(self, program, start=True):
        self.program = program
        self.code = program.instructions
        for seg in program.code_segments():
            base = seg.base - memmap.CODE_BASE
            self.code_mem[base : base + len(seg.data)] = seg.data
        for seg in program.data_segments():
            if seg.bank >= self.params.num_cores:
                raise FastSimError(
                    "data bank %d does not exist on a %d-core machine"
                    % (seg.bank, self.params.num_cores)
                )
            base = seg.base - memmap.global_bank_base(seg.bank)
            self.shared_mem[seg.bank][base : base + len(seg.data)] = seg.data
        if start:
            boot = self.harts[0]
            boot.regs[2] = memmap.hart_initial_sp(0)
            boot.pc = program.entry
            boot.state = RUN
            self._push(boot)
        return self

    def add_device(self, addr, device):
        self.mmio[addr] = device

    # ---- memory ------------------------------------------------------------------

    def _mem_for(self, core_index, addr):
        """(buffer, offset, owner_core_or_None_for_private)."""
        if addr >= memmap.GLOBAL_BASE:
            owner = (addr - memmap.GLOBAL_BASE) // memmap.GLOBAL_BANK_SIZE
            if owner >= self.params.num_cores:
                raise FastSimError("unmapped global address 0x%x" % addr)
            return self.shared_mem[owner], addr - memmap.global_bank_base(owner), owner
        if addr >= memmap.LOCAL_BASE:
            return self.local_mem[core_index], addr - memmap.LOCAL_BASE, None
        return self.code_mem, addr - memmap.CODE_BASE, None

    def read_word(self, addr):
        buf, offset, _owner = self._mem_for(0, addr)
        return int.from_bytes(buf[offset : offset + 4], "little")

    def write_word(self, addr, value):
        buf, offset, _owner = self._mem_for(0, addr)
        buf[offset : offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def read_local(self, core_index, addr):
        offset = addr - memmap.LOCAL_BASE
        return int.from_bytes(self.local_mem[core_index][offset : offset + 4], "little")

    def _route_ports(self, src, dst):
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        req = tuple(self._link_port(link) for link in request_path(src, dst))
        rep = tuple(self._link_port(link) for link in reply_path(src, dst))
        self._route_cache[key] = (req, rep)
        return req, rep

    def _link_port(self, link):
        port = self._link_ports.get(link)
        if port is None:
            port = self._link_ports[link] = WindowedPort()
        return port

    def _mem_access_time(self, core_index, owner, time, is_load):
        """Completion time of one shared/local access starting at *time*."""
        params = self.params
        if owner is None:  # core-private local bank (or code)
            t_bank = self.local_ports[core_index].reserve(
                time + params.local_mem_latency)
            return t_bank + 1 if is_load else t_bank
        if owner == core_index:
            self.stats.per_core[core_index].local_accesses += 1
            t_bank = self.shared_local_ports[core_index].reserve(
                time + params.local_mem_latency)
            return t_bank + 1 if is_load else t_bank
        self.stats.per_core[core_index].remote_accesses += 1
        req, rep = self._route_ports(core_index, owner)
        t = time
        hop = params.link_hop_latency
        for port in req:
            t = port.reserve(t + hop)
        t_bank = self.shared_router_ports[owner].reserve(
            t + params.bank_access_latency)
        if not is_load:
            return t_bank
        t = t_bank
        for port in rep:
            t = port.reserve(t + hop)
        return t + 1

    # ---- scheduling -----------------------------------------------------------------

    def _push(self, hart):
        self._seq += 1
        heapq.heappush(self._heap, (hart.time, self._seq, hart))

    def run(self, max_cycles=None):
        limit = max_cycles if max_cycles is not None else self.params.max_cycles
        heap = self._heap
        while heap and not self.exited:
            time, _seq, hart = heapq.heappop(heap)
            if hart.state != RUN:
                continue  # stale entry; the hart blocked or ended meanwhile
            if hart.time > limit:
                raise FastSimError("cycle limit exceeded (%d)" % limit)
            self._run_quantum(hart, time + QUANTUM)
            if hart.state == RUN:
                self._push(hart)
        if not self.exited:
            blocked = [h.gid for h in self.harts
                       if h.state in (RETWAIT, BLOCKED, WAITJOIN, RESERVED)]
            raise FastSimError(
                "fastsim deadlock: no runnable hart (waiting: %r)" % blocked)
        self.stats.cycles = self.end_time
        for hart in self.harts:
            self.stats.harts[hart.core_index][hart.index].retired = hart.retired
        return self.stats

    # ---- the interpreter --------------------------------------------------------------

    def _run_quantum(self, hart, horizon):
        code = self.code
        regs = hart.regs
        params = self.params
        issue_port = self.issue_ports[hart.core_index]
        while hart.time < horizon and hart.state == RUN and not self.exited:
            ins = code.get(hart.pc)
            if ins is None:
                raise FastSimError(
                    "hart %d fetches from non-code address %r" % (hart.gid, hart.pc))
            spec = ins.spec
            cls = spec.cls
            hart.retired += 1
            slot = issue_port.reserve(hart.time)
            pc = hart.pc
            next_pc = pc + 4
            gap = GAP_MIN

            if cls == _C.ALU:
                if len(spec.reads) == 2:
                    value = ALU_OPS[ins.mnemonic](regs[ins.rs1], regs[ins.rs2])
                else:
                    value = ALU_OPS[ins.mnemonic](regs[ins.rs1], ins.imm)
                if ins.rd:
                    regs[ins.rd] = value
            elif cls == _C.MULDIV:
                value = ALU_OPS[ins.mnemonic](regs[ins.rs1], regs[ins.rs2])
                if ins.rd:
                    regs[ins.rd] = value
                gap = max(GAP_MIN, params.latency_for(spec))
            elif cls == _C.LOAD:
                addr = (regs[ins.rs1] + ins.imm) & 0xFFFFFFFF
                width = LOAD_WIDTH[ins.mnemonic]
                device = self.mmio.get(addr)
                buf, offset, owner = self._mem_for(hart.core_index, addr)
                if device is not None:
                    raw = device.read(slot) & 0xFFFFFFFF
                else:
                    raw = int.from_bytes(buf[offset : offset + width], "little")
                if ins.rd:
                    regs[ins.rd] = load_value(ins.mnemonic, raw)
                done = self._mem_access_time(hart.core_index, owner, slot, True)
                hart.time = done
                hart.pc = next_pc
                self.stats.harts[hart.core_index][hart.index].loads += 1
                continue
            elif cls == _C.STORE:
                addr = (regs[ins.rs1] + ins.imm) & 0xFFFFFFFF
                width = STORE_WIDTH[ins.mnemonic]
                device = self.mmio.get(addr)
                value = regs[ins.rs2]
                buf, offset, owner = self._mem_for(hart.core_index, addr)
                if device is not None:
                    device.write(slot, value & 0xFFFFFFFF)
                else:
                    buf[offset : offset + width] = (
                        value & ((1 << (8 * width)) - 1)).to_bytes(width, "little")
                self._mem_access_time(hart.core_index, owner, slot, False)
                self.stats.harts[hart.core_index][hart.index].stores += 1
            elif cls == _C.BRANCH:
                if BRANCH_OPS[ins.mnemonic](regs[ins.rs1], regs[ins.rs2]):
                    next_pc = pc + ins.imm
                gap = BRANCH_GAP
            elif cls == _C.JAL:
                if ins.rd:
                    regs[ins.rd] = pc + 4
                next_pc = (pc + ins.imm) & 0xFFFFFFFF
            elif cls == _C.JALR:
                target = (regs[ins.rs1] + ins.imm) & 0xFFFFFFFE
                if ins.rd:
                    regs[ins.rd] = pc + 4
                next_pc = target
                gap = BRANCH_GAP
            elif cls == _C.LUI:
                if ins.rd:
                    regs[ins.rd] = (ins.imm << 12) & 0xFFFFFFFF
            elif cls == _C.AUIPC:
                if ins.rd:
                    regs[ins.rd] = (pc + (ins.imm << 12)) & 0xFFFFFFFF
            elif cls == _C.P_SET:
                value = p_set_value(regs[ins.rs1], hart.core_index, hart.index)
                if ins.rd:
                    regs[ins.rd] = value
            elif cls == _C.P_MERGE:
                if ins.rd:
                    regs[ins.rd] = p_merge_value(regs[ins.rs1], regs[ins.rs2])
            elif cls == _C.P_FC or cls == _C.P_FN:
                core = hart.core_index if cls == _C.P_FC else hart.core_index + 1
                if core >= self.params.num_cores:
                    raise FastSimError("p_fn past the last core (hart %d)" % hart.gid)
                target = self._alloc_hart(core)
                if target is None:
                    raise FastSimError(
                        "no free hart on core %d for hart %d" % (core, hart.gid))
                target.state = RESERVED
                target.regs[2] = memmap.hart_initial_sp(target.index)
                target.pred = hart
                target.pred_done = False
                hart.succ = target
                if ins.rd:
                    regs[ins.rd] = target.gid
                self.stats.per_core[hart.core_index].forks += 1
                self.stats.harts[hart.core_index][hart.index].forks += 1
            elif cls == _C.P_SWCV:
                target = self.harts[regs[ins.rs1] & 0xFFFF]
                addr = memmap.hart_cv_base(target.index) + ins.imm
                offset = addr - memmap.LOCAL_BASE
                self.local_mem[target.core_index][offset : offset + 4] = (
                    regs[ins.rs2] & 0xFFFFFFFF).to_bytes(4, "little")
                gap = params.cv_write_latency
            elif cls == _C.P_LWCV:
                addr = memmap.hart_cv_base(hart.index) + ins.imm
                offset = addr - memmap.LOCAL_BASE
                if ins.rd:
                    regs[ins.rd] = int.from_bytes(
                        self.local_mem[hart.core_index][offset : offset + 4],
                        "little")
                gap = max(GAP_MIN, params.local_mem_latency + 1)
            elif cls == _C.P_SWRE:
                target = self.harts[regs[ins.rs1] & 0xFFFF]
                if target.core_index > hart.core_index:
                    raise FastSimError("p_swre to a later core")
                hops = hart.core_index - target.core_index + 1
                arrival = slot + hops * params.link_hop_latency
                index = ins.imm % len(target.re_buffers)
                target.re_buffers[index].append(arrival_value(arrival, regs[ins.rs2]))
                self.stats.per_core[hart.core_index].re_messages += 1
                if target.state == BLOCKED:
                    target.state = RUN
                    target.time = max(target.time, arrival)
                    self._push(target)
            elif cls == _C.P_LWRE:
                index = ins.imm % len(hart.re_buffers)
                queue = hart.re_buffers[index]
                if not queue:
                    hart.retired -= 1  # re-executed (and re-counted) on wake
                    hart.state = BLOCKED
                    return
                arrival, value = queue.pop(0)
                if ins.rd:
                    regs[ins.rd] = value
                hart.pc = next_pc
                hart.time = max(slot + GAP_MIN, arrival + 1)
                continue
            elif cls == _C.P_JAL:
                self._start_child(hart, regs[ins.rs1] & 0xFFFF, pc + 4, slot)
                if ins.rd:
                    regs[ins.rd] = 0
                next_pc = (pc + ins.imm) & 0xFFFFFFFF
            elif cls == _C.P_JALR:
                if ins.rd == 0:
                    if not self._do_p_ret(hart, regs[ins.rs1], regs[ins.rs2], slot):
                        return
                    continue
                self._start_child(hart, regs[ins.rs1] & 0xFFFF, pc + 4, slot)
                regs[ins.rd] = 0
                next_pc = regs[ins.rs2] & 0xFFFFFFFE
                gap = BRANCH_GAP
            elif cls == _C.P_SYNCM:
                gap = GAP_MIN  # in-order interpreter: accesses already done
            elif cls == _C.SYSTEM:
                if ins.mnemonic == "ebreak":
                    self.exited = True
                    self.end_time = max(self.end_time, slot + 1)
                    return
                raise FastSimError("ecall is not supported on bare-metal LBP")
            elif cls == _C.FENCE:
                pass
            else:
                raise FastSimError("unhandled class %r" % (cls,))

            hart.pc = next_pc
            hart.time = slot + gap

    # ---- team protocol helpers ------------------------------------------------------

    def _alloc_hart(self, core_index):
        base = core_index * memmap.HARTS_PER_CORE
        for offset in range(memmap.HARTS_PER_CORE):
            hart = self.harts[base + offset]
            if hart.state == FREE:
                return hart
        return None

    def _start_child(self, parent, target_gid, pc, slot):
        child = self.harts[target_gid]
        if child.state != RESERVED:
            raise FastSimError(
                "start pc sent to hart %d which was not allocated" % target_gid)
        child.pc = pc
        child.state = RUN
        child.time = max(child.time, slot + 1 + self.params.link_hop_latency)
        self._push(child)

    def _do_p_ret(self, hart, ra, t0, slot):
        """Execute p_ret; returns False when the hart must block (RETWAIT)."""
        if hart.pred is not None and not hart.pred_done:
            hart.retired -= 1  # the p_ret re-executes (and re-counts) on wake
            hart.state = RETWAIT
            hart.ret_action = (ra, t0)
            return False
        hart.pred = None
        hart.pred_done = False
        hart.time = max(hart.time, hart.signal_time, slot + 1)
        # propagate the ending signal in referential order
        succ = hart.succ
        if succ is not None:
            hart.succ = None
            succ.pred_done = True
            succ.signal_time = hart.time + self.params.link_hop_latency
            if succ.state == RETWAIT:
                action = succ.ret_action
                succ.ret_action = None
                succ.state = RUN
                succ.time = max(succ.time, succ.signal_time)
                self._push(succ)

        if ra == 0:
            if t0 == 0xFFFFFFFF:
                self.exited = True
                self.end_time = max(self.end_time, hart.time)
                return False
            if join_hart(t0) == hart.gid:
                hart.state = WAITJOIN
                hart.pc = None
                if hart.pending_join is not None:
                    addr = hart.pending_join
                    hart.pending_join = None
                    hart.pc = addr
                    hart.state = RUN  # the outer loop re-enqueues RUN harts
                return False
            self._free_hart(hart)
            return False
        # case 4: send the join address backward
        target = self.harts[join_hart(t0)]
        if target is hart:
            # single-member team: resume directly at the join address
            self.stats.per_core[hart.core_index].joins += 1
            hart.pc = ra
            hart.time += 1
            return False  # state stays RUN; the outer loop re-enqueues
        hops = abs(hart.core_index - target.core_index) + 1
        arrival = hart.time + hops * self.params.link_hop_latency
        self.stats.per_core[hart.core_index].joins += 1
        self._free_hart(hart)
        if target.state == WAITJOIN:
            target.pc = ra
            target.state = RUN
            target.time = max(target.time, arrival)
            self._push(target)
        else:
            target.pending_join = ra
        return False

    def _free_hart(self, hart):
        hart.state = FREE
        hart.pc = None


def arrival_value(arrival, value):
    return (arrival, value & 0xFFFFFFFF)
