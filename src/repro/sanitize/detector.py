"""The referential-order race detector (vector-clock replay).

Recording
---------
The instrumented machine appends one plain tuple per observation to the
buffer of the *domain* (core) that executed the hook — exactly the
discipline the trace and the space-sharded engine use, so shard-local
buffers are disjoint and :meth:`Sanitizer.observations` merges them into
one stream whose order is independent of the sharding.  Every record
starts with the cycle; records that belong to a hart's instruction carry
the instruction's rename *tag*.

Tags are the referential rank: the core's rename counter is assigned at
decode, which happens in program order per hart, so a hart's tags are
strictly increasing along its program order even when the out-of-order
engine executes (and therefore records) the instructions out of order.
All clock arithmetic below is in tag space for exactly that reason — a
message sent by instruction *t* covers precisely the sender's
instructions with tag <= *t*, no matter in which order they reached the
execute stage.

Record vocabulary (first element always the cycle)::

    (c, "acc",   gid, tag, addr, width, wr, pc)   shared-bank load/store
    (c, "swcv",  gid, tag, target_gid, offset)    p_swcv send
    (c, "lwcv",  gid, tag, offset)                p_lwcv receive
    (c, "swre",  gid, tag, target_gid, slot)      p_swre send
    (c, "refill", target_gid, slot, sender_gid)   result buffer filled
    (c, "lwre",  gid, tag, slot)                  p_lwre consume
    (c, "fork",  gid, tag, child_gid)             p_fc / p_fn allocation
    (c, "jsend", gid, tag, target_gid)            p_jal / p_jalr start send
    (c, "start", gid, tag_threshold)              start pc delivered
    (c, "esig",  gid, tag, succ_gid)              ordered p_ret: signal sent
    (c, "pred",  gid, tag)                        ordered p_ret: signal used
    (c, "jretsend", gid, tag, join_gid)           p_ret case 4: join sent
    (c, "jrecv", gid, tag)                        pending join consumed
    (c, "jstart", gid, tag_threshold)             join resumed a waiting hart

Analysis
--------
Pass 1 walks the merged stream in (cycle, domain) order and pairs every
receive with its send through per-channel FIFOs (the stream order is the
physical causal order: every event-paired receive is recorded at least
one cycle after its send).  Pass 2 replays each hart's operations in tag
(= program) order, blocking a receive until its message's clock is
available — an HB-consistent schedule — maintaining per-hart vector
clocks ``C[hart] -> max covered tag`` and FastTrack-style shadow memory;
a conflicting access pair where neither side's tag is covered by the
other side's clock is a referential-order race.

Synchronization cells (``add_sync``) model the paper's §6 request-word
protocol: plain stores/loads that the program *intends* as cross-hart
signalling (active polling on request words).  Accesses to a declared
sync range are treated as release/acquire operations on the cell instead
of data accesses — the moral equivalent of C11 atomics for a TSan-style
detector.
"""

import heapq

from repro.sanitize.report import Race, RaceReport, _Locator


def _join(clock, msg):
    for gid, tag in msg.items():
        if clock.get(gid, -1) < tag:
            clock[gid] = tag


class Sanitizer:
    """Observation store + replay analysis (one per sanitized machine)."""

    def __init__(self):
        #: domain -> [record, ...] in execution order (cycles non-decreasing)
        self._buffers = {}
        #: [(base, size), ...] byte ranges with release/acquire semantics
        self.sync_ranges = []

    # ---- recording (hot path: one append) ---------------------------------

    def record(self, domain, rec):
        try:
            self._buffers[domain].append(rec)
        except KeyError:
            self._buffers[domain] = [rec]

    def add_sync(self, base, size):
        self.sync_ranges.append((int(base), int(size)))

    def observations(self):
        """All records merged across domains, sharding-independent order."""
        buffers = self._buffers
        return heapq.merge(
            *[buffers[d] for d in sorted(buffers)], key=lambda r: r[0])

    def __len__(self):
        return sum(len(buf) for buf in self._buffers.values())

    # ---- snapshot / shard gathering ---------------------------------------

    def state_dict(self):
        return {
            "buffers": [
                [domain, [list(rec) for rec in records]]
                for domain, records in sorted(self._buffers.items())
            ],
            "sync": [list(r) for r in self.sync_ranges],
        }

    def load_state_dict(self, state):
        self._buffers = {
            domain: [tuple(rec) for rec in records]
            for domain, records in state["buffers"]
        }
        self.sync_ranges = [tuple(r) for r in state["sync"]]

    def domain_state_dict(self, domain):
        return [list(rec) for rec in self._buffers.get(domain, [])]

    def load_domain_state_dict(self, domain, records):
        if records:
            self._buffers[domain] = [tuple(rec) for rec in records]
        else:
            self._buffers.pop(domain, None)

    # ---- analysis ----------------------------------------------------------

    def analyze(self, program, params, sync=None):
        """Replay the observations; return a :class:`RaceReport`."""
        sync_ranges = list(self.sync_ranges)
        if sync:
            sync_ranges.extend((int(b), int(s)) for b, s in sync)
        ops, msgs_total, observations = self._pair()
        races, accesses, blocked = _replay(ops, sync_ranges)
        locator = _Locator(program)
        for race in races:
            for end in (race.a, race.b):
                end["disasm"] = locator.disasm(end["pc"])
                end["symbol"] = locator.symbol(end["pc"])
                end["region"] = locator.region(end["pc"])
        races.sort(key=lambda r: (r.a["cycle"], r.a["gid"], r.a["pc"],
                                  r.b["cycle"], r.b["gid"], r.b["pc"]))
        return RaceReport(races, params, accesses=accesses,
                          observations=observations, blocked=blocked,
                          sync_ranges=sync_ranges)

    def _pair(self):
        """Pass 1: merged-stream walk; per-hart op lists + message pairing.

        Ops (sorted by (tag, phase) later): ``(tag, phase, kind, ...)``
        with phase 0 for instructions and phase 1 for threshold receives
        ("start"/"jstart" apply to everything decoded *after* tag).
        """
        ops = {}
        next_msg = [0]

        def op(gid, entry):
            try:
                ops[gid].append(entry)
            except KeyError:
                ops[gid] = [entry]

        def new_msg():
            next_msg[0] += 1
            return next_msg[0]

        cv_slot = {}       # (target, offset) -> msg  (overwrite: last send)
        re_fifo = {}       # (sender, target, slot) -> [msg, ...]
        re_cur = {}        # (target, slot) -> msg   (the buffered value)
        fork_pending = {}  # child -> msg
        jsend_fifo = {}    # target -> [msg, ...]
        esig_fifo = {}     # succ -> [msg, ...]
        join_fifo = {}     # target -> [msg, ...]
        observations = 0

        for rec in self.observations():
            observations += 1
            kind = rec[1]
            if kind == "acc":
                cycle, _, gid, tag, addr, width, wr, pc = rec
                op(gid, (tag, 0, "acc", cycle, addr, width, wr, pc))
            elif kind == "swcv":
                cycle, _, gid, tag, target, offset = rec
                msg = new_msg()
                cv_slot[(target, offset)] = msg
                op(gid, (tag, 0, "send", msg))
            elif kind == "lwcv":
                cycle, _, gid, tag, offset = rec
                op(gid, (tag, 0, "recv", cv_slot.get((gid, offset))))
            elif kind == "swre":
                cycle, _, gid, tag, target, slot = rec
                msg = new_msg()
                re_fifo.setdefault((gid, target, slot), []).append(msg)
                op(gid, (tag, 0, "send", msg))
            elif kind == "refill":
                cycle, _, target, slot, sender = rec
                fifo = re_fifo.get((sender, target, slot))
                if fifo:
                    re_cur[(target, slot)] = fifo.pop(0)
            elif kind == "lwre":
                cycle, _, gid, tag, slot = rec
                op(gid, (tag, 0, "recv", re_cur.pop((gid, slot), None)))
            elif kind == "fork":
                cycle, _, gid, tag, child = rec
                msg = new_msg()
                fork_pending[child] = msg
                op(gid, (tag, 0, "send", msg))
            elif kind == "jsend":
                cycle, _, gid, tag, target = rec
                msg = new_msg()
                jsend_fifo.setdefault(target, []).append(msg)
                op(gid, (tag, 0, "send", msg))
            elif kind == "start":
                cycle, _, gid, threshold = rec
                op(gid, (threshold, 1, "recv", fork_pending.pop(gid, None)))
                fifo = jsend_fifo.get(gid)
                op(gid, (threshold, 1, "recv", fifo.pop(0) if fifo else None))
            elif kind == "esig":
                cycle, _, gid, tag, succ = rec
                msg = new_msg()
                esig_fifo.setdefault(succ, []).append(msg)
                op(gid, (tag, 0, "send", msg))
            elif kind == "pred":
                cycle, _, gid, tag = rec
                fifo = esig_fifo.get(gid)
                op(gid, (tag, 0, "recv", fifo.pop(0) if fifo else None))
            elif kind == "jretsend":
                cycle, _, gid, tag, target = rec
                msg = new_msg()
                join_fifo.setdefault(target, []).append(msg)
                op(gid, (tag, 0, "send", msg))
            elif kind == "jrecv":
                cycle, _, gid, tag = rec
                fifo = join_fifo.get(gid)
                op(gid, (tag, 0, "recv", fifo.pop(0) if fifo else None))
            elif kind == "jstart":
                cycle, _, gid, threshold = rec
                fifo = join_fifo.get(gid)
                op(gid, (threshold, 1, "recv", fifo.pop(0) if fifo else None))
            else:
                raise ValueError("unknown observation kind %r" % (kind,))

        for gid in ops:
            # stable: records with equal (tag, phase) — the "pred"
            # receive and "esig" send of one p_ret — keep stream order
            ops[gid].sort(key=lambda entry: (entry[0], entry[1]))
        return ops, next_msg[0], observations


def _overlaps_sync(sync_ranges, addr, width):
    for base, size in sync_ranges:
        if addr < base + size and addr + width > base:
            return True
    return False


def _replay(ops, sync_ranges):
    """Pass 2: HB-consistent tag-order replay with shadow memory."""
    clocks = {gid: {} for gid in ops}
    msg_clock = {}
    pos = {gid: 0 for gid in ops}
    shadow_w = {}   # byte addr -> (gid, tag, pc, cycle, base, wr)
    shadow_r = {}   # byte addr -> {gid: (gid, tag, pc, cycle, base, wr)}
    sync_cells = {}  # word index -> clock
    races = {}
    accesses = 0
    order = sorted(ops)

    def report(first, second):
        # canonical endpoint order: chronological, then (gid, tag)
        if (second[3], second[0], second[1]) < (first[3], first[0], first[1]):
            first, second = second, first
        key = (first[2], first[5], second[2], second[5])
        race = races.get(key)
        if race is None:
            races[key] = Race(
                first[4],
                {"gid": first[0], "pc": first[2], "cycle": first[3],
                 "write": bool(first[5])},
                {"gid": second[0], "pc": second[2], "cycle": second[3],
                 "write": bool(second[5])},
            )
        else:
            race.count += 1

    def access(gid, clock, entry):
        tag, _, _, cycle, addr, width, wr, pc = entry
        if _overlaps_sync(sync_ranges, addr, width):
            # release/acquire on the cell, never a data race
            cell = sync_cells.setdefault(addr >> 2, {})
            if wr:
                msg = dict(clock)
                msg[gid] = tag
                _join(cell, msg)
            else:
                _join(clock, cell)
            return
        me = (gid, tag, pc, cycle, addr, wr)
        hit = set()
        for byte in range(addr, addr + width):
            prev = shadow_w.get(byte)
            if (prev is not None and prev[0] != gid
                    and prev[1] > clock.get(prev[0], -1)
                    and prev[:3] not in hit):
                hit.add(prev[:3])
                report(prev, me)
            if wr:
                readers = shadow_r.pop(byte, None)
                if readers:
                    for rgid, rentry in readers.items():
                        if (rgid != gid
                                and rentry[1] > clock.get(rgid, -1)
                                and rentry[:3] not in hit):
                            hit.add(rentry[:3])
                            report(rentry, me)
                shadow_w[byte] = me
            else:
                shadow_r.setdefault(byte, {})[gid] = me

    def run_round(ignore_missing):
        progress = False
        for gid in order:
            lst = ops[gid]
            i = pos[gid]
            clock = clocks[gid]
            while i < len(lst):
                entry = lst[i]
                kind = entry[2]
                if kind == "recv":
                    msg = entry[3]
                    if msg is not None:
                        if msg not in msg_clock:
                            if not ignore_missing:
                                break
                        else:
                            _join(clock, msg_clock[msg])
                elif kind == "send":
                    msg = dict(clock)
                    msg[gid] = entry[0]
                    msg_clock[entry[3]] = msg
                else:
                    access(gid, clock, entry)
                i += 1
                progress = True
            pos[gid] = i
        return progress

    while run_round(False):
        pass
    # a receive whose program-order position precedes the matching send
    # (only possible when the out-of-order engine hoisted the physical
    # send above a blocked receive): finish without the edge
    blocked = sum(len(ops[gid]) - pos[gid] for gid in order)
    if blocked:
        blocked = sum(
            1 for gid in order for entry in ops[gid][pos[gid]:]
            if entry[2] == "recv")
        while run_round(True):
            pass
    accesses = sum(
        1 for gid in ops for entry in ops[gid] if entry[2] == "acc")
    return list(races.values()), accesses, blocked
