"""Dynamic referential-order race detection for the cycle-accurate LBP.

``LBP(sanitize=True)`` attaches a :class:`Sanitizer` to the machine: the
simulation records one small observation tuple per shared-bank access and
per X_PAR happens-before edge (observation only — no events are posted,
no ports are reserved, no trace records are added, so traces stay
bit-exact).  After the run, :meth:`Sanitizer.analyze` replays the merged
observations with per-hart vector clocks and reports every conflicting
same-address access pair that is not ordered by the referential order
(DESIGN.md §8) as a :class:`RaceReport`.
"""

from repro.sanitize.detector import Sanitizer
from repro.sanitize.report import Race, RaceReport

__all__ = ["Sanitizer", "Race", "RaceReport"]
