"""Pure-functional 32-bit integer semantics for RV32IM.

Both simulators (cycle-accurate and fast) evaluate ALU operations through
these functions, so a single implementation defines the architecture's
arithmetic.  Property tests compare them against Python big-int arithmetic.

All values are Python ints in the range [0, 2**32); :func:`to_signed`
converts to the signed view where an operation is signed.
"""

MASK32 = 0xFFFFFFFF


def to_signed(value):
    """Interpret a 32-bit unsigned value as two's-complement signed."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def to_unsigned(value):
    """Truncate any Python int to its 32-bit unsigned representation."""
    return value & MASK32


def _sra(a, b):
    return to_unsigned(to_signed(a) >> (b & 31))


def _mulh(a, b):
    return to_unsigned((to_signed(a) * to_signed(b)) >> 32)


def _mulhsu(a, b):
    return to_unsigned((to_signed(a) * (b & MASK32)) >> 32)


def _mulhu(a, b):
    return to_unsigned(((a & MASK32) * (b & MASK32)) >> 32)


def _div(a, b):
    """RISC-V signed division: round toward zero; div by 0 → -1; overflow wraps."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return MASK32
    if sa == -0x80000000 and sb == -1:
        return 0x80000000
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return to_unsigned(quotient)


def _divu(a, b):
    if b == 0:
        return MASK32
    return (a & MASK32) // (b & MASK32)


def _rem(a, b):
    """RISC-V signed remainder: sign of dividend; rem by 0 → dividend."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return to_unsigned(sa)
    if sa == -0x80000000 and sb == -1:
        return 0
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return to_unsigned(remainder)


def _remu(a, b):
    if b == 0:
        return a & MASK32
    return (a & MASK32) % (b & MASK32)


# rs1/rs2 (or rs1/imm) → 32-bit result, for every computational mnemonic.
ALU_OPS = {
    "add": lambda a, b: (a + b) & MASK32,
    "addi": lambda a, b: (a + b) & MASK32,
    "sub": lambda a, b: (a - b) & MASK32,
    "sll": lambda a, b: (a << (b & 31)) & MASK32,
    "slli": lambda a, b: (a << (b & 31)) & MASK32,
    "slt": lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    "slti": lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    "sltu": lambda a, b: 1 if (a & MASK32) < (b & MASK32) else 0,
    "sltiu": lambda a, b: 1 if (a & MASK32) < (b & MASK32) else 0,
    "xor": lambda a, b: (a ^ b) & MASK32,
    "xori": lambda a, b: (a ^ b) & MASK32,
    "srl": lambda a, b: (a & MASK32) >> (b & 31),
    "srli": lambda a, b: (a & MASK32) >> (b & 31),
    "sra": _sra,
    "srai": _sra,
    "or": lambda a, b: (a | b) & MASK32,
    "ori": lambda a, b: (a | b) & MASK32,
    "and": lambda a, b: (a & b) & MASK32,
    "andi": lambda a, b: (a & b) & MASK32,
    "mul": lambda a, b: (a * b) & MASK32,
    "mulh": _mulh,
    "mulhsu": _mulhsu,
    "mulhu": _mulhu,
    "div": _div,
    "divu": _divu,
    "rem": _rem,
    "remu": _remu,
}

# rs1/rs2 → bool, for conditional branches.
BRANCH_OPS = {
    "beq": lambda a, b: (a & MASK32) == (b & MASK32),
    "bne": lambda a, b: (a & MASK32) != (b & MASK32),
    "blt": lambda a, b: to_signed(a) < to_signed(b),
    "bge": lambda a, b: to_signed(a) >= to_signed(b),
    "bltu": lambda a, b: (a & MASK32) < (b & MASK32),
    "bgeu": lambda a, b: (a & MASK32) >= (b & MASK32),
}


# --- memory access widths ----------------------------------------------------

LOAD_WIDTH = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4, "p_lwcv": 4}
STORE_WIDTH = {"sb": 1, "sh": 2, "sw": 4}
_LOAD_SIGNED = {"lb": 8, "lh": 16}


def load_value(mnemonic, raw):
    """Sign- or zero-extend a raw loaded value per the load mnemonic."""
    bits = _LOAD_SIGNED.get(mnemonic)
    if bits is None:
        return raw & MASK32
    return to_unsigned(raw - (1 << bits) if raw & (1 << (bits - 1)) else raw)


# --- X_PAR identity arithmetic (paper fig. 5) -------------------------------

HART_ID_FLAG = 0x80000000


def p_set_value(rs1, core, hart, harts_per_core=4):
    """``p_set``: stamp the current hart identity into the high half."""
    ident = harts_per_core * core + hart
    return to_unsigned((rs1 & 0x0000FFFF) | (ident << 16) | HART_ID_FLAG)


def p_merge_value(rs1, rs2):
    """``p_merge``: keep rs1's join half, take rs2's allocated half."""
    return to_unsigned((rs1 & 0x7FFF0000) | (rs2 & 0x0000FFFF))


def join_hart(value):
    """Extract the join-hart global index from a stamped identity word."""
    return (value >> 16) & 0x7FFF


def allocated_hart(value):
    """Extract the allocated-hart global index (low half) of an identity."""
    return value & 0xFFFF
