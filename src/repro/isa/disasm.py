"""Textual disassembly of decoded instructions.

The output uses the same GNU-flavoured syntax the assembler accepts, so
``assemble(disassemble(i))`` round-trips (modulo label names, which binary
instructions no longer carry — offsets are printed numerically).
"""

from repro.isa.registers import reg_name
from repro.isa.spec import spec_for


def disassemble(ins):
    """Return the assembly text for one decoded :class:`Instruction`."""
    spec = ins.spec or spec_for(ins.mnemonic)
    shape = spec.operands
    rd = reg_name(ins.rd)
    rs1 = reg_name(ins.rs1)
    rs2 = reg_name(ins.rs2)
    imm = ins.imm

    if shape == "":
        return ins.mnemonic
    if shape == "rd":
        return "%s %s" % (ins.mnemonic, rd)
    if shape == "rd,rs1":
        return "%s %s, %s" % (ins.mnemonic, rd, rs1)
    if shape == "rd,rs1,rs2":
        return "%s %s, %s, %s" % (ins.mnemonic, rd, rs1, rs2)
    if shape == "rd,rs1,imm":
        return "%s %s, %s, %d" % (ins.mnemonic, rd, rs1, imm)
    if shape == "rd,imm":
        return "%s %s, %d" % (ins.mnemonic, rd, imm)
    if shape == "rd,imm(rs1)":
        return "%s %s, %d(%s)" % (ins.mnemonic, rd, imm, rs1)
    if shape == "rs2,imm(rs1)":
        return "%s %s, %d(%s)" % (ins.mnemonic, rs2, imm, rs1)
    if shape == "rs1,rs2,imm":
        return "%s %s, %s, %d" % (ins.mnemonic, rs1, rs2, imm)
    if shape == "rd,label":
        return "%s %s, %d" % (ins.mnemonic, rd, imm)
    if shape == "rs1,rs2,label":
        return "%s %s, %s, %d" % (ins.mnemonic, rs1, rs2, imm)
    if shape == "rd,rs1,label":
        return "%s %s, %s, %d" % (ins.mnemonic, rd, rs1, imm)
    raise AssertionError("unhandled operand shape %r" % (shape,))


def disassemble_program(instructions, base_addr=0):
    """Disassemble a sequence of instructions with addresses.

    Returns a list of ``"addr: text"`` lines.
    """
    lines = []
    for index, ins in enumerate(instructions):
        addr = ins.addr if ins.addr is not None else base_addr + 4 * index
        lines.append("%08x: %s" % (addr, disassemble(ins)))
    return lines
