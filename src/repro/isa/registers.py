"""RISC-V integer register file description and ABI register names."""

REG_COUNT = 32

# Canonical ABI names, indexed by register number (RISC-V psABI).
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

# Registers a callee must preserve (psABI): sp, s0-s11. gp/tp are platform
# registers; LBP bare-metal code does not use them.
CALLEE_SAVED = frozenset([2, 8, 9] + list(range(18, 28)))

# Registers a caller must save around calls: ra, t0-t6, a0-a7.
CALLER_SAVED = frozenset([1, 5, 6, 7] + list(range(10, 18)) + list(range(28, 32)))

# Argument registers a0-a7 in order.
ARG_REGS = tuple(range(10, 18))

_NAME_TO_NUM = {name: num for num, name in enumerate(ABI_NAMES)}
_NAME_TO_NUM.update({"x%d" % n: n for n in range(REG_COUNT)})
_NAME_TO_NUM["fp"] = 8  # frame pointer alias for s0


def reg_num(name):
    """Return the register number for an ABI name, x-name, or alias.

    Raises :class:`KeyError` with a helpful message for unknown names.
    """
    try:
        return _NAME_TO_NUM[name]
    except KeyError:
        raise KeyError("unknown register name %r" % (name,)) from None


def reg_name(num):
    """Return the canonical ABI name for a register number."""
    if not 0 <= num < REG_COUNT:
        raise ValueError("register number out of range: %r" % (num,))
    return ABI_NAMES[num]


def is_register_name(name):
    """Return True when *name* names an integer register."""
    return name in _NAME_TO_NUM
