"""Instruction set architecture: RV32IM base plus the X_PAR (PISC) extension.

This package defines the machine-level contract shared by the assembler,
the compiler back end, both simulators and the disassembler:

* :mod:`repro.isa.registers` — the RISC-V integer register file and ABI names.
* :mod:`repro.isa.instruction` — the decoded-instruction value object.
* :mod:`repro.isa.spec` — one :class:`InstrSpec` per machine instruction
  (RV32I, M extension, and the twelve X_PAR instructions of the paper's
  figure 5), including binary encodings.
* :mod:`repro.isa.encoding` — bit-level encode/decode for the standard
  RISC-V formats (R/I/S/B/U/J) and the X_PAR layouts.
* :mod:`repro.isa.semantics` — pure-functional 32-bit ALU semantics used by
  both simulators and by property tests.
* :mod:`repro.isa.disasm` — textual disassembly.
"""

from repro.isa.instruction import Instruction
from repro.isa.registers import (
    ABI_NAMES,
    REG_COUNT,
    reg_name,
    reg_num,
)
from repro.isa.spec import (
    INSTR_SPECS,
    XPAR_MNEMONICS,
    InstrClass,
    InstrSpec,
    spec_for,
)
from repro.isa.encoding import decode_word, encode_instruction
from repro.isa.disasm import disassemble

__all__ = [
    "ABI_NAMES",
    "INSTR_SPECS",
    "Instruction",
    "InstrClass",
    "InstrSpec",
    "REG_COUNT",
    "XPAR_MNEMONICS",
    "decode_word",
    "disassemble",
    "encode_instruction",
    "reg_name",
    "reg_num",
    "spec_for",
]
