"""Instruction specifications for RV32IM and the X_PAR (PISC) extension.

Every machine instruction known to the toolchain has one :class:`InstrSpec`
here.  The table is the single source of truth for:

* assembler operand syntax (``operands``),
* binary encoding (``fmt``/``opcode``/``funct3``/``funct7``),
* simulator dispatch (``cls``) and timing (``latency``),
* register dataflow (``reads``/``writes_rd``) used by rename/issue.

X_PAR is the paper's figure 5: twelve instructions for hardware forking,
parallel calls, continuation-value and result transmission, identity
manipulation and intra-hart memory ordering.
"""

import enum


class InstrClass(enum.IntEnum):
    """Coarse instruction families used for simulator dispatch."""

    ALU = 0          # register-register and register-immediate integer ops
    MULDIV = 1       # M extension (longer latency)
    LOAD = 2
    STORE = 3
    BRANCH = 4       # conditional branches
    JAL = 5          # direct jump-and-link
    JALR = 6         # indirect jump-and-link
    LUI = 7
    AUIPC = 8
    SYSTEM = 9       # ecall / ebreak
    FENCE = 10
    # --- X_PAR ---
    P_FC = 11        # fork on current core
    P_FN = 12        # fork on next core
    P_SWCV = 13      # send continuation value (forward link)
    P_LWCV = 14      # receive continuation value (local CV area)
    P_SWRE = 15      # send result (backward line)
    P_LWRE = 16      # receive result (blocks on result buffer)
    P_JAL = 17       # parallel direct call
    P_JALR = 18      # parallel indirect call / hart ending (p_ret)
    P_SET = 19       # stamp current hart identity
    P_MERGE = 20     # merge join and allocated identities
    P_SYNCM = 21     # drain in-flight memory accesses


class InstrSpec:
    """Static description of one machine instruction.

    Attributes:
        mnemonic: canonical lower-case mnemonic.
        cls: :class:`InstrClass` for simulator dispatch.
        fmt: encoding format letter (R/I/S/B/U/J).
        opcode/funct3/funct7: encoding discriminators.
        operands: assembler operand shape, one of
            ``""``, ``"rd"``, ``"rd,rs1"``, ``"rd,rs1,rs2"``, ``"rd,rs1,imm"``,
            ``"rd,imm"``, ``"rd,imm(rs1)"``, ``"rs2,imm(rs1)"``,
            ``"rs1,rs2,imm"``, ``"rd,label"`` (jal), ``"rs1,rs2,label"``
            (branches).
        reads: tuple of source-register field names ("rs1"/"rs2").
        writes_rd: whether the instruction produces a register result.
        latency: execution latency in cycles (issue to result ready).
    """

    __slots__ = (
        "mnemonic",
        "cls",
        "fmt",
        "opcode",
        "funct3",
        "funct7",
        "operands",
        "reads",
        "writes_rd",
        "latency",
    )

    def __init__(
        self,
        mnemonic,
        cls,
        fmt,
        opcode,
        funct3=0,
        funct7=0,
        operands="",
        reads=(),
        writes_rd=False,
        latency=1,
    ):
        self.mnemonic = mnemonic
        self.cls = cls
        self.fmt = fmt
        self.opcode = opcode
        self.funct3 = funct3
        self.funct7 = funct7
        self.operands = operands
        self.reads = reads
        self.writes_rd = writes_rd
        self.latency = latency

    def __repr__(self):
        return "InstrSpec(%r)" % (self.mnemonic,)


_OP = 0b0110011
_OP_IMM = 0b0010011
_LOAD = 0b0000011
_STORE = 0b0100011
_BRANCH = 0b1100011
_JAL = 0b1101111
_JALR = 0b1100111
_LUI = 0b0110111
_AUIPC = 0b0010111
_SYSTEM = 0b1110011
_FENCE = 0b0001111
CUSTOM0 = 0b0001011  # X_PAR memory-flavoured instructions
CUSTOM1 = 0b0101011  # X_PAR control-flavoured instructions


def _r(mn, f3, f7, cls=InstrClass.ALU, latency=1):
    return InstrSpec(
        mn, cls, "R", _OP, f3, f7,
        operands="rd,rs1,rs2", reads=("rs1", "rs2"), writes_rd=True,
        latency=latency,
    )


def _i(mn, f3, f7=0):
    return InstrSpec(
        mn, InstrClass.ALU, "I", _OP_IMM, f3, f7,
        operands="rd,rs1,imm", reads=("rs1",), writes_rd=True,
    )


def _load(mn, f3):
    return InstrSpec(
        mn, InstrClass.LOAD, "I", _LOAD, f3,
        operands="rd,imm(rs1)", reads=("rs1",), writes_rd=True,
    )


def _store(mn, f3):
    return InstrSpec(
        mn, InstrClass.STORE, "S", _STORE, f3,
        operands="rs2,imm(rs1)", reads=("rs1", "rs2"),
    )


def _branch(mn, f3):
    return InstrSpec(
        mn, InstrClass.BRANCH, "B", _BRANCH, f3,
        operands="rs1,rs2,label", reads=("rs1", "rs2"),
    )


_SPECS = [
    # --- RV32I ---
    InstrSpec("lui", InstrClass.LUI, "U", _LUI, operands="rd,imm", writes_rd=True),
    InstrSpec("auipc", InstrClass.AUIPC, "U", _AUIPC, operands="rd,imm", writes_rd=True),
    InstrSpec("jal", InstrClass.JAL, "J", _JAL, operands="rd,label", writes_rd=True),
    InstrSpec(
        "jalr", InstrClass.JALR, "I", _JALR, 0b000,
        operands="rd,rs1,imm", reads=("rs1",), writes_rd=True,
    ),
    _branch("beq", 0b000),
    _branch("bne", 0b001),
    _branch("blt", 0b100),
    _branch("bge", 0b101),
    _branch("bltu", 0b110),
    _branch("bgeu", 0b111),
    _load("lb", 0b000),
    _load("lh", 0b001),
    _load("lw", 0b010),
    _load("lbu", 0b100),
    _load("lhu", 0b101),
    _store("sb", 0b000),
    _store("sh", 0b001),
    _store("sw", 0b010),
    _i("addi", 0b000),
    _i("slti", 0b010),
    _i("sltiu", 0b011),
    _i("xori", 0b100),
    _i("ori", 0b110),
    _i("andi", 0b111),
    _i("slli", 0b001, 0b0000000),
    _i("srli", 0b101, 0b0000000),
    _i("srai", 0b101, 0b0100000),
    _r("add", 0b000, 0b0000000),
    _r("sub", 0b000, 0b0100000),
    _r("sll", 0b001, 0b0000000),
    _r("slt", 0b010, 0b0000000),
    _r("sltu", 0b011, 0b0000000),
    _r("xor", 0b100, 0b0000000),
    _r("srl", 0b101, 0b0000000),
    _r("sra", 0b101, 0b0100000),
    _r("or", 0b110, 0b0000000),
    _r("and", 0b111, 0b0000000),
    InstrSpec("fence", InstrClass.FENCE, "I", _FENCE, 0b000, operands=""),
    InstrSpec("ecall", InstrClass.SYSTEM, "I", _SYSTEM, 0b000, funct7=0, operands=""),
    InstrSpec("ebreak", InstrClass.SYSTEM, "I", _SYSTEM, 0b000, funct7=1, operands=""),
    # --- M extension ---
    _r("mul", 0b000, 0b0000001, InstrClass.MULDIV, latency=3),
    _r("mulh", 0b001, 0b0000001, InstrClass.MULDIV, latency=3),
    _r("mulhsu", 0b010, 0b0000001, InstrClass.MULDIV, latency=3),
    _r("mulhu", 0b011, 0b0000001, InstrClass.MULDIV, latency=3),
    _r("div", 0b100, 0b0000001, InstrClass.MULDIV, latency=12),
    _r("divu", 0b101, 0b0000001, InstrClass.MULDIV, latency=12),
    _r("rem", 0b110, 0b0000001, InstrClass.MULDIV, latency=12),
    _r("remu", 0b111, 0b0000001, InstrClass.MULDIV, latency=12),
    # --- X_PAR (paper fig. 5) ---
    InstrSpec(
        "p_lwcv", InstrClass.P_LWCV, "I", CUSTOM0, 0b000,
        operands="rd,imm", writes_rd=True, latency=2,
    ),
    InstrSpec(
        "p_lwre", InstrClass.P_LWRE, "I", CUSTOM0, 0b001,
        operands="rd,imm", writes_rd=True, latency=1,
    ),
    InstrSpec(
        "p_swcv", InstrClass.P_SWCV, "S", CUSTOM0, 0b010,
        operands="rs1,rs2,imm", reads=("rs1", "rs2"), latency=2,
    ),
    InstrSpec(
        "p_swre", InstrClass.P_SWRE, "S", CUSTOM0, 0b011,
        operands="rs1,rs2,imm", reads=("rs1", "rs2"), latency=1,
    ),
    InstrSpec(
        "p_jal", InstrClass.P_JAL, "I", CUSTOM1, 0b000,
        operands="rd,rs1,label", reads=("rs1",), writes_rd=True,
    ),
    InstrSpec(
        "p_jalr", InstrClass.P_JALR, "R", CUSTOM1, 0b001,
        operands="rd,rs1,rs2", reads=("rs1", "rs2"), writes_rd=True,
    ),
    InstrSpec(
        "p_fc", InstrClass.P_FC, "R", CUSTOM1, 0b010, 0b0000000,
        operands="rd", writes_rd=True,
    ),
    InstrSpec(
        "p_fn", InstrClass.P_FN, "R", CUSTOM1, 0b010, 0b0000001,
        operands="rd", writes_rd=True,
    ),
    InstrSpec(
        "p_set", InstrClass.P_SET, "R", CUSTOM1, 0b011,
        operands="rd,rs1", reads=("rs1",), writes_rd=True,
    ),
    InstrSpec(
        "p_merge", InstrClass.P_MERGE, "R", CUSTOM1, 0b100,
        operands="rd,rs1,rs2", reads=("rs1", "rs2"), writes_rd=True,
    ),
    InstrSpec("p_syncm", InstrClass.P_SYNCM, "R", CUSTOM1, 0b101, operands=""),
]

INSTR_SPECS = {spec.mnemonic: spec for spec in _SPECS}

XPAR_MNEMONICS = frozenset(
    spec.mnemonic for spec in _SPECS if spec.cls >= InstrClass.P_FC
)


def spec_for(mnemonic):
    """Return the :class:`InstrSpec` for a mnemonic.

    Raises :class:`KeyError` for unknown mnemonics.
    """
    try:
        return INSTR_SPECS[mnemonic]
    except KeyError:
        raise KeyError("unknown instruction mnemonic %r" % (mnemonic,)) from None
