"""The decoded-instruction value object shared by the whole toolchain.

Instructions are decoded once (at assembly or program-load time) and then
interpreted many times by the simulators, so the object is deliberately a
small ``__slots__`` record rather than anything richer.
"""


class Instruction:
    """One decoded machine instruction.

    Attributes:
        mnemonic: canonical lower-case mnemonic, e.g. ``"addi"`` or ``"p_fc"``.
        rd, rs1, rs2: register numbers (0..31); 0 when the field is unused.
        imm: sign-extended immediate (0 when unused).
        spec: the :class:`repro.isa.spec.InstrSpec` this instruction follows.
        addr: byte address of the instruction once placed in a program image
            (filled by the assembler / loader; ``None`` for free-standing
            instructions).
    """

    __slots__ = ("mnemonic", "rd", "rs1", "rs2", "imm", "spec", "addr")

    def __init__(self, mnemonic, rd=0, rs1=0, rs2=0, imm=0, spec=None, addr=None):
        self.mnemonic = mnemonic
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.spec = spec
        self.addr = addr

    def replace(self, **kwargs):
        """Return a copy with the given fields replaced."""
        fields = {
            "mnemonic": self.mnemonic,
            "rd": self.rd,
            "rs1": self.rs1,
            "rs2": self.rs2,
            "imm": self.imm,
            "spec": self.spec,
            "addr": self.addr,
        }
        fields.update(kwargs)
        return Instruction(**fields)

    def __eq__(self, other):
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.mnemonic == other.mnemonic
            and self.rd == other.rd
            and self.rs1 == other.rs1
            and self.rs2 == other.rs2
            and self.imm == other.imm
        )

    def __hash__(self):
        return hash((self.mnemonic, self.rd, self.rs1, self.rs2, self.imm))

    def __repr__(self):
        return "Instruction(%r, rd=%d, rs1=%d, rs2=%d, imm=%d)" % (
            self.mnemonic,
            self.rd,
            self.rs1,
            self.rs2,
            self.imm,
        )

    def __str__(self):
        from repro.isa.disasm import disassemble

        return disassemble(self)
