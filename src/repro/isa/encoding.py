"""Binary encoding and decoding of RV32IM + X_PAR instructions.

The standard RISC-V formats (R, I, S, B, U, J) follow the unprivileged
specification.  X_PAR instructions live in the *custom-0* (0x0B) and
*custom-1* (0x2B) major opcodes and reuse the standard R/I/S layouts; the
paper does not publish bit layouts, so these are our own (see DESIGN.md
section 5) and are validated by encode/decode round-trip property tests.
"""

from repro.isa.instruction import Instruction
from repro.isa.spec import INSTR_SPECS, spec_for


class EncodingError(ValueError):
    """An instruction or word that cannot be encoded / decoded."""


def _check_reg(value, field):
    if not 0 <= value < 32:
        raise EncodingError("%s out of range: %r" % (field, value))
    return value


def _check_signed(value, bits, what):
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(
            "%s immediate %d does not fit in %d signed bits" % (what, value, bits)
        )
    return value & ((1 << bits) - 1)


def sign_extend(value, bits):
    """Sign-extend the low *bits* bits of *value* to a Python int."""
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def _encode_r(spec, ins):
    return (
        spec.opcode
        | (_check_reg(ins.rd, "rd") << 7)
        | (spec.funct3 << 12)
        | (_check_reg(ins.rs1, "rs1") << 15)
        | (_check_reg(ins.rs2, "rs2") << 20)
        | (spec.funct7 << 25)
    )


def _encode_i(spec, ins):
    if spec.opcode == 0b1110011:  # SYSTEM: imm12 discriminates ecall/ebreak
        return spec.opcode | (spec.funct3 << 12) | (spec.funct7 << 20)
    if spec.mnemonic in ("slli", "srli", "srai"):
        if not 0 <= ins.imm < 32:
            raise EncodingError("shift amount out of range: %d" % ins.imm)
        imm = ins.imm | (spec.funct7 << 5)
    else:
        imm = _check_signed(ins.imm, 12, spec.mnemonic)
    return (
        spec.opcode
        | (_check_reg(ins.rd, "rd") << 7)
        | (spec.funct3 << 12)
        | (_check_reg(ins.rs1, "rs1") << 15)
        | (imm << 20)
    )


def _encode_s(spec, ins):
    imm = _check_signed(ins.imm, 12, spec.mnemonic)
    return (
        spec.opcode
        | ((imm & 0x1F) << 7)
        | (spec.funct3 << 12)
        | (_check_reg(ins.rs1, "rs1") << 15)
        | (_check_reg(ins.rs2, "rs2") << 20)
        | ((imm >> 5) << 25)
    )


def _encode_b(spec, ins):
    if ins.imm % 2:
        raise EncodingError("branch offset must be even: %d" % ins.imm)
    imm = _check_signed(ins.imm, 13, spec.mnemonic)
    return (
        spec.opcode
        | (((imm >> 11) & 0x1) << 7)
        | (((imm >> 1) & 0xF) << 8)
        | (spec.funct3 << 12)
        | (_check_reg(ins.rs1, "rs1") << 15)
        | (_check_reg(ins.rs2, "rs2") << 20)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 12) & 0x1) << 31)
    )


def _encode_u(spec, ins):
    if not 0 <= ins.imm < (1 << 20):
        raise EncodingError("U-type immediate out of range: %d" % ins.imm)
    return spec.opcode | (_check_reg(ins.rd, "rd") << 7) | (ins.imm << 12)


def _encode_j(spec, ins):
    if ins.imm % 2:
        raise EncodingError("jump offset must be even: %d" % ins.imm)
    imm = _check_signed(ins.imm, 21, spec.mnemonic)
    return (
        spec.opcode
        | (_check_reg(ins.rd, "rd") << 7)
        | (((imm >> 12) & 0xFF) << 12)
        | (((imm >> 11) & 0x1) << 20)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 20) & 0x1) << 31)
    )


_ENCODERS = {
    "R": _encode_r,
    "I": _encode_i,
    "S": _encode_s,
    "B": _encode_b,
    "U": _encode_u,
    "J": _encode_j,
}


def encode_instruction(ins):
    """Encode a decoded :class:`Instruction` into a 32-bit word."""
    spec = ins.spec or spec_for(ins.mnemonic)
    try:
        encoder = _ENCODERS[spec.fmt]
    except KeyError:
        raise EncodingError("no encoder for format %r" % (spec.fmt,)) from None
    return encoder(spec, ins)


def _build_decode_table():
    """Index specs by (opcode, funct3, funct7-if-needed) for decoding."""
    table = {}
    for spec in INSTR_SPECS.values():
        if spec.opcode == 0b1110011:
            continue  # SYSTEM decoded by hand (imm12 discriminates)
        if spec.fmt == "U" or spec.fmt == "J":
            key = (spec.opcode, None, None)
        elif spec.fmt == "R":
            key = (spec.opcode, spec.funct3, spec.funct7)
        elif spec.mnemonic in ("slli", "srli", "srai"):
            key = (spec.opcode, spec.funct3, spec.funct7)
        else:
            key = (spec.opcode, spec.funct3, None)
        if key in table:
            raise AssertionError("encoding clash: %s vs %s" % (spec, table[key]))
        table[key] = spec
    return table


_DECODE_TABLE = _build_decode_table()

# Opcodes whose I-format immediate is actually a funct7-discriminated shift.
_SHIFT_FUNCT3 = {(0b0010011, 0b001), (0b0010011, 0b101)}


def decode_word(word, addr=None):
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`EncodingError` for unknown encodings.
    """
    word &= 0xFFFFFFFF
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == 0b1110011:
        imm12 = word >> 20
        mnemonic = {0: "ecall", 1: "ebreak"}.get(imm12)
        if mnemonic is None:
            raise EncodingError("cannot decode SYSTEM word 0x%08x" % word)
        ins = Instruction(mnemonic)
        ins.spec = INSTR_SPECS[mnemonic]
        ins.addr = addr
        return ins

    spec = _DECODE_TABLE.get((opcode, None, None))
    if spec is None:
        spec = _DECODE_TABLE.get((opcode, funct3, funct7))
    if spec is None:
        spec = _DECODE_TABLE.get((opcode, funct3, None))
    if spec is None:
        raise EncodingError("cannot decode word 0x%08x" % word)

    fmt = spec.fmt
    if fmt == "R":
        ins = Instruction(spec.mnemonic, rd=rd, rs1=rs1, rs2=rs2)
    elif fmt == "I":
        if (opcode, funct3) in _SHIFT_FUNCT3:
            imm = rs2  # shamt
        else:
            imm = sign_extend(word >> 20, 12)
        ins = Instruction(spec.mnemonic, rd=rd, rs1=rs1, imm=imm)
    elif fmt == "S":
        imm = sign_extend(((word >> 25) << 5) | rd, 12)
        ins = Instruction(spec.mnemonic, rs1=rs1, rs2=rs2, imm=imm)
    elif fmt == "B":
        imm = (
            (((word >> 31) & 0x1) << 12)
            | (((word >> 7) & 0x1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
        )
        ins = Instruction(spec.mnemonic, rs1=rs1, rs2=rs2, imm=sign_extend(imm, 13))
    elif fmt == "U":
        ins = Instruction(spec.mnemonic, rd=rd, imm=(word >> 12) & 0xFFFFF)
    elif fmt == "J":
        imm = (
            (((word >> 31) & 0x1) << 20)
            | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 0x1) << 11)
            | (((word >> 21) & 0x3FF) << 1)
        )
        ins = Instruction(spec.mnemonic, rd=rd, imm=sign_extend(imm, 21))
    else:
        raise EncodingError("unknown format %r" % (fmt,))
    ins.spec = spec
    ins.addr = addr
    return ins
