"""Parallel experiment runner: deterministic fan-out over simulations.

The evaluation harness is embarrassingly parallel — the five matmul
versions of a figure, determinism repeats, and ablation sweep points are
fully independent simulations.  :func:`run_experiments` fans a task list
out to ``multiprocessing`` workers and merges the results **in task-key
order**, never in completion order, so the merged output is byte-identical
to a sequential run of the same tasks (``jobs=1`` takes a plain in-process
loop with no pickling at all).

Tasks are ``(key, fn, args, kwargs)`` tuples (``args``/``kwargs``
optional).  ``fn`` must be picklable — a module-level callable — and
deterministic; each worker process runs one simulation at a time.

The pool uses the ``fork`` start method: benchmark modules define their
task functions at module level, and fork lets the children resolve them
through the inherited interpreter state without requiring the modules to
be importable by path.  Where ``fork`` is unavailable (non-POSIX), the
runner silently degrades to the sequential path — results are identical
either way, only the wall clock differs.

Caching: pass a :class:`repro.snapshot.RunCache` (or a cache-root path)
as ``cache=`` and every task is first looked up by its content key
(callable identity + arguments + simulator version — determinism makes
the memoization exact); only the misses are dispatched to workers, and
their results are stored for the next sweep.  Cached results pass
through a canonical JSON round-trip on both the hit and the miss path,
so a warm re-run merges byte-identically to the cold run that filled it.
"""

import multiprocessing
import os

__all__ = ["ExperimentResults", "default_jobs", "run_experiments"]


def default_jobs():
    """Worker count when the caller does not choose.

    Resolution order: the ``LBP_JOBS`` environment variable (ignored when
    unset, non-numeric or < 1), then the scheduler affinity mask
    (``os.sched_getaffinity`` — a container pinned to 4 of the host's 64
    CPUs gets 4 workers, not 64), then ``os.cpu_count()``.
    """
    override = os.environ.get("LBP_JOBS")
    if override:
        try:
            jobs = int(override)
        except ValueError:
            jobs = 0
        if jobs >= 1:
            return jobs
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


class ExperimentResults(dict):
    """The merged ``{key: result}`` mapping, plus run provenance.

    ``meta`` records how the results were produced (currently the
    resolved ``jobs`` count).  It intentionally does not participate in
    equality: parallel and sequential runs of the same task list compare
    equal — the determinism contract — even though their job counts
    differ.
    """

    def __init__(self, pairs=(), meta=None):
        super().__init__(pairs)
        self.meta = dict(meta or {})

    def __reduce__(self):
        return (self.__class__, (list(self.items()), self.meta))


def _normalize(tasks):
    normalized = []
    seen = set()
    for task in tasks:
        key, fn = task[0], task[1]
        args = tuple(task[2]) if len(task) > 2 else ()
        kwargs = dict(task[3]) if len(task) > 3 else {}
        if key in seen:
            raise ValueError("duplicate task key %r" % (key,))
        seen.add(key)
        normalized.append((key, fn, args, kwargs))
    return normalized


def _call(task):
    key, fn, args, kwargs = task
    return key, fn(*args, **kwargs)


def _run_all(tasks, jobs):
    """{key: result} for *tasks*, parallel when possible, input-ordered."""
    if not tasks:
        return {}
    jobs = min(jobs, len(tasks))
    if jobs <= 1:
        return {key: fn(*args, **kwargs) for key, fn, args, kwargs in tasks}
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: degrade, stay identical
        return {key: fn(*args, **kwargs) for key, fn, args, kwargs in tasks}
    with context.Pool(processes=jobs) as pool:
        # Pool.map returns in input order — the deterministic merge is
        # by construction, not by sorting completion events
        pairs = pool.map(_call, tasks)
    return dict(pairs)


def run_experiments(tasks, jobs=None, cache=None):
    """Run every task; return ``{key: result}`` in task order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs=1`` (or a single
    task) runs sequentially in-process.  The mapping is insertion-ordered
    by the *input* task order regardless of which worker finishes first,
    so parallel and sequential runs of the same task list merge to
    byte-identical results.

    ``cache`` (a :class:`repro.snapshot.RunCache` or a cache-root path)
    memoizes task results by content key; unchanged tasks are returned
    from the store without simulating.  Results that do not survive a
    JSON round-trip are returned but not cached.

    The returned mapping is an :class:`ExperimentResults`: a plain dict
    of rows plus a ``meta`` attribute recording the resolved ``jobs``
    count for reproducibility (the resolved value, not the clamped
    dispatch width, so warm- and cold-cache runs record the same thing).
    """
    normalized = _normalize(tasks)
    if jobs is None:
        jobs = default_jobs()
    meta = {"jobs": jobs}

    if cache is None:
        return ExperimentResults(_run_all(normalized, jobs), meta=meta)

    if isinstance(cache, str):
        from repro.snapshot.cache import RunCache

        cache = RunCache(cache)

    task_keys = {key: cache.task_key(fn, args, kwargs)
                 for key, fn, args, kwargs in normalized}
    cached = {}
    pending = []
    for task in normalized:
        entry = cache.get(task_keys[task[0]])
        if entry is not None:
            cached[task[0]] = entry["value"]
        else:
            pending.append(task)

    fresh = _run_all(pending, jobs)
    for key, result in fresh.items():
        canonical = cache.put(task_keys[key], result)
        if canonical is not None:
            fresh[key] = canonical

    return ExperimentResults(
        ((key, cached[key] if key in cached else fresh[key])
         for key, _fn, _args, _kwargs in normalized),
        meta=meta)
