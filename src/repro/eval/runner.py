"""Parallel experiment runner: deterministic fan-out over simulations.

The evaluation harness is embarrassingly parallel — the five matmul
versions of a figure, determinism repeats, and ablation sweep points are
fully independent simulations.  :func:`run_experiments` fans a task list
out to ``multiprocessing`` workers and merges the results **in task-key
order**, never in completion order, so the merged output is byte-identical
to a sequential run of the same tasks (``jobs=1`` takes a plain in-process
loop with no pickling at all).

Tasks are ``(key, fn, args, kwargs)`` tuples (``args``/``kwargs``
optional).  ``fn`` must be picklable — a module-level callable — and
deterministic; each worker process runs one simulation at a time.

The pool uses the ``fork`` start method: benchmark modules define their
task functions at module level, and fork lets the children resolve them
through the inherited interpreter state without requiring the modules to
be importable by path.  Where ``fork`` is unavailable (non-POSIX), the
runner silently degrades to the sequential path — results are identical
either way, only the wall clock differs.

Caching: pass a :class:`repro.snapshot.RunCache` (or a cache-root path)
as ``cache=`` and every task is first looked up by its content key
(callable identity + arguments + simulator version — determinism makes
the memoization exact); only the misses are dispatched to workers, and
their results are stored for the next sweep.  Cached results pass
through a canonical JSON round-trip on both the hit and the miss path,
so a warm re-run merges byte-identically to the cold run that filled it.

Timeouts: ``run_experiments(..., timeout=S)`` switches dispatch from
``Pool.map`` to one :class:`ForkedTask` child per task — same fork
semantics, but the parent owns each child individually, so a hung
simulation is killed at its deadline and retried (``retries=N`` bounded
attempts) instead of wedging the whole sweep.  ``ExperimentResults.meta``
records how many ``timeouts`` fired and how many ``retries`` were spent;
a task that exhausts its attempts raises :class:`TaskTimeoutError`.
:class:`ForkedTask` is also the execution primitive behind the
``repro serve`` worker pool (:mod:`repro.serve.pool`), which adds
progress streaming through the same parent-side pipe.
"""

import multiprocessing
import multiprocessing.connection
import os
import time

__all__ = ["ExperimentResults", "ForkedTask", "TaskFailedError",
           "TaskTimeoutError", "default_jobs", "run_experiments"]


def default_jobs():
    """Worker count when the caller does not choose.

    Resolution order: the ``LBP_JOBS`` environment variable (ignored when
    unset, non-numeric or < 1), then the scheduler affinity mask
    (``os.sched_getaffinity`` — a container pinned to 4 of the host's 64
    CPUs gets 4 workers, not 64), then ``os.cpu_count()``.
    """
    override = os.environ.get("LBP_JOBS")
    if override:
        try:
            jobs = int(override)
        except ValueError:
            jobs = 0
        if jobs >= 1:
            return jobs
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


class ExperimentResults(dict):
    """The merged ``{key: result}`` mapping, plus run provenance.

    ``meta`` records how the results were produced (currently the
    resolved ``jobs`` count).  It intentionally does not participate in
    equality: parallel and sequential runs of the same task list compare
    equal — the determinism contract — even though their job counts
    differ.
    """

    def __init__(self, pairs=(), meta=None):
        super().__init__(pairs)
        self.meta = dict(meta or {})

    def __reduce__(self):
        return (self.__class__, (list(self.items()), self.meta))


class TaskTimeoutError(Exception):
    """A task exceeded its per-attempt deadline on every allowed attempt."""

    def __init__(self, key, timeout, attempts):
        super().__init__(
            "task %r timed out after %gs on each of %d attempt(s)"
            % (key, timeout, attempts))
        self.key = key
        self.timeout = timeout
        self.attempts = attempts


class TaskFailedError(Exception):
    """A forked task raised (or its child died) on every allowed attempt."""

    def __init__(self, key, detail, attempts):
        super().__init__("task %r failed on each of %d attempt(s): %s"
                         % (key, attempts, detail))
        self.key = key
        self.detail = detail
        self.attempts = attempts


def _forked_child_main(conn, fn, args, kwargs, progress_arg):
    """Child half of :class:`ForkedTask`: run *fn*, ship one final message.

    The wire protocol is tuples: zero or more ``("progress", payload)``
    (only when the callable asked for a progress channel) followed by
    exactly one ``("ok", value)`` or ``("err", detail)``.  ``os._exit``
    skips the parent's inherited atexit/teardown machinery — the child
    must not flush the parent's state.
    """
    import signal

    # sever the parent's signal plumbing: an asyncio parent registers a
    # wakeup fd and handlers that this fork inherits — a signal landing
    # here (e.g. our own terminate()) would otherwise write into the
    # PARENT's self-pipe and fire the parent's handlers spuriously
    signal.set_wakeup_fd(-1)
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, signal.SIG_DFL)
    status = 0
    try:
        if progress_arg is not None:
            kwargs = dict(kwargs)
            kwargs[progress_arg] = lambda payload: conn.send(
                ("progress", payload))
        conn.send(("ok", fn(*args, **kwargs)))
    except BaseException as exc:  # report, then die: nothing to recover
        status = 1
        try:
            conn.send(("err", "%s: %s" % (type(exc).__name__, exc)))
        except BaseException:
            pass
    finally:
        conn.close()
        os._exit(status)


class ForkedTask:
    """One callable running in a forked child, owned from the parent.

    Unlike a ``Pool`` worker, the child is individually addressable: the
    parent can :meth:`poll`/:meth:`recv` its message stream, enforce a
    deadline, and :meth:`terminate` a hung run without disturbing any
    sibling.  ``progress_arg`` names a keyword argument to inject into
    the callable: a function the child calls to stream progress payloads
    back through the pipe (fork means no pickling of the callable is
    ever needed).

    Raises ValueError where the platform offers no ``fork`` start
    method; callers degrade to in-process execution.
    """

    def __init__(self, fn, args=(), kwargs=None, progress_arg=None,
                 context=None):
        context = context or multiprocessing.get_context("fork")
        self._conn, child_conn = context.Pipe(duplex=False)
        self.process = context.Process(
            target=_forked_child_main,
            args=(child_conn, fn, args, dict(kwargs or {}), progress_arg),
            daemon=True)
        self.started_at = time.monotonic()
        self.process.start()
        child_conn.close()  # parent keeps only the read end

    def fileno(self):
        return self._conn.fileno()

    @property
    def connection(self):
        return self._conn

    def poll(self, timeout=0):
        """True when a message (or EOF) is ready within *timeout* seconds."""
        try:
            return self._conn.poll(timeout)
        except (OSError, EOFError):
            return True  # the recv will surface the broken pipe

    def recv(self):
        """Next ``(kind, payload)`` message; ``("err", ...)`` on a dead
        child that never reported (killed, crashed interpreter)."""
        try:
            return self._conn.recv()
        except (OSError, EOFError):
            return ("err", "worker died without reporting a result "
                           "(exitcode %s)" % (self.process.exitcode,))

    def terminate(self):
        """Kill the child (SIGTERM, then SIGKILL) and reap it."""
        process = self.process
        if process.is_alive():
            process.terminate()
            process.join(1.0)
            if process.is_alive():
                process.kill()
                process.join()
        self.close()

    def close(self):
        self._conn.close()
        self.process.join()


def _run_all_deadlined(tasks, jobs, timeout, retries, meta):
    """Fork-per-task dispatch with per-attempt deadlines, input-ordered.

    Up to *jobs* children run at once; each gets *timeout* seconds per
    attempt and ``retries`` extra attempts after a timeout or crash.
    Results merge by task order, so the output is byte-identical to the
    Pool path and the sequential path.
    """
    results = {}
    queue = list(tasks)  # (key, fn, args, kwargs), retried tasks re-enter
    attempts = {task[0]: 0 for task in tasks}
    active = {}  # ForkedTask -> task tuple
    meta.setdefault("timeouts", 0)
    meta.setdefault("retries", 0)

    from repro.observe.spans import flight, flight_dir

    def reap(forked, task, detail, timed_out):
        forked.terminate()
        if timed_out:
            meta["timeouts"] += 1
        flight().note("task_timeout" if timed_out else "task_crash",
                      task=str(task[0]), attempt=attempts[task[0]])
        if attempts[task[0]] <= retries:
            meta["retries"] += 1
            queue.append(task)
            return
        for straggler in active:
            if straggler is not forked:
                straggler.terminate()
        # retry budget exhausted: spill the flight ring so the sweep's
        # dispatch/timeout history survives the raise (no-op unless
        # LBP_FLIGHT_DIR is set)
        flight().spill(flight_dir(),
                       "task %s out of attempts" % (task[0],))
        if timed_out:
            raise TaskTimeoutError(task[0], timeout, attempts[task[0]])
        raise TaskFailedError(task[0], detail, attempts[task[0]])

    while queue or active:
        while queue and len(active) < jobs:
            task = queue.pop(0)
            attempts[task[0]] += 1
            flight().note("task_dispatch", task=str(task[0]),
                          attempt=attempts[task[0]])
            active[ForkedTask(task[1], task[2], task[3])] = task
        deadline = min(f.started_at for f in active) + timeout
        wait = max(0.0, deadline - time.monotonic())
        ready = multiprocessing.connection.wait(
            [f.connection for f in active], timeout=wait)
        ready_set = set(ready)
        now = time.monotonic()
        for forked in list(active):
            task = active[forked]
            if forked.connection in ready_set:
                kind, payload = forked.recv()
                if kind == "progress":  # informational; task still running
                    continue
                del active[forked]
                if kind == "ok":
                    forked.close()
                    results[task[0]] = payload
                else:  # "err" — crash counts against the retry budget too
                    reap(forked, task, payload, timed_out=False)
            elif now - forked.started_at >= timeout:
                del active[forked]
                reap(forked, task, None, timed_out=True)
    return {key: results[key] for key, _fn, _args, _kwargs in tasks}


def _normalize(tasks):
    normalized = []
    seen = set()
    for task in tasks:
        key, fn = task[0], task[1]
        args = tuple(task[2]) if len(task) > 2 else ()
        kwargs = dict(task[3]) if len(task) > 3 else {}
        if key in seen:
            raise ValueError("duplicate task key %r" % (key,))
        seen.add(key)
        normalized.append((key, fn, args, kwargs))
    return normalized


def _call(task):
    key, fn, args, kwargs = task
    return key, fn(*args, **kwargs)


def _run_all(tasks, jobs, timeout=None, retries=0, meta=None):
    """{key: result} for *tasks*, parallel when possible, input-ordered."""
    if not tasks:
        return {}
    jobs = min(jobs, len(tasks))
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: degrade, stay identical
        context = None
    if timeout is not None and context is not None:
        # deadline enforcement needs individually owned children, even
        # at jobs=1 — a hung simulation must not wedge the sweep
        return _run_all_deadlined(tasks, jobs, timeout, retries,
                                  meta if meta is not None else {})
    if jobs <= 1 or context is None:
        return {key: fn(*args, **kwargs) for key, fn, args, kwargs in tasks}
    with context.Pool(processes=jobs) as pool:
        # Pool.map returns in input order — the deterministic merge is
        # by construction, not by sorting completion events
        pairs = pool.map(_call, tasks)
    return dict(pairs)


def run_experiments(tasks, jobs=None, cache=None, timeout=None, retries=1):
    """Run every task; return ``{key: result}`` in task order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs=1`` (or a single
    task) runs sequentially in-process.  The mapping is insertion-ordered
    by the *input* task order regardless of which worker finishes first,
    so parallel and sequential runs of the same task list merge to
    byte-identical results.

    ``cache`` (a :class:`repro.snapshot.RunCache` or a cache-root path)
    memoizes task results by content key; unchanged tasks are returned
    from the store without simulating.  Results that do not survive a
    JSON round-trip are returned but not cached.

    ``timeout`` (seconds, per attempt) bounds each task: a child that
    blows its deadline is killed and retried up to ``retries`` more
    times, then :class:`TaskTimeoutError` propagates (crashes consume
    the same budget and end in :class:`TaskFailedError`).  ``meta``
    records the ``timeouts`` and ``retries`` actually spent.  Timeouts
    need ``fork``; platforms without it run sequentially, undeadlined.

    The returned mapping is an :class:`ExperimentResults`: a plain dict
    of rows plus a ``meta`` attribute recording the resolved ``jobs``
    count for reproducibility (the resolved value, not the clamped
    dispatch width, so warm- and cold-cache runs record the same thing).
    """
    normalized = _normalize(tasks)
    if jobs is None:
        jobs = default_jobs()
    meta = {"jobs": jobs}

    if cache is None:
        return ExperimentResults(
            _run_all(normalized, jobs, timeout, retries, meta), meta=meta)

    if isinstance(cache, str):
        from repro.snapshot.cache import RunCache

        cache = RunCache(cache)

    task_keys = {key: cache.task_key(fn, args, kwargs)
                 for key, fn, args, kwargs in normalized}
    cached = {}
    pending = []
    for task in normalized:
        entry = cache.get(task_keys[task[0]])
        if entry is not None:
            cached[task[0]] = entry["value"]
        else:
            pending.append(task)

    fresh = _run_all(pending, jobs, timeout, retries, meta)
    for key, result in fresh.items():
        canonical = cache.put(task_keys[key], result)
        if canonical is not None:
            fresh[key] = canonical

    return ExperimentResults(
        ((key, cached[key] if key in cached else fresh[key])
         for key, _fn, _args, _kwargs in normalized),
        meta=meta)
