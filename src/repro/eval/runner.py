"""Parallel experiment runner: deterministic fan-out over simulations.

The evaluation harness is embarrassingly parallel — the five matmul
versions of a figure, determinism repeats, and ablation sweep points are
fully independent simulations.  :func:`run_experiments` fans a task list
out to ``multiprocessing`` workers and merges the results **in task-key
order**, never in completion order, so the merged output is byte-identical
to a sequential run of the same tasks (``jobs=1`` takes a plain in-process
loop with no pickling at all).

Tasks are ``(key, fn, args, kwargs)`` tuples (``args``/``kwargs``
optional).  ``fn`` must be picklable — a module-level callable — and
deterministic; each worker process runs one simulation at a time.

The pool uses the ``fork`` start method: benchmark modules define their
task functions at module level, and fork lets the children resolve them
through the inherited interpreter state without requiring the modules to
be importable by path.  Where ``fork`` is unavailable (non-POSIX), the
runner silently degrades to the sequential path — results are identical
either way, only the wall clock differs.
"""

import multiprocessing
import os

__all__ = ["default_jobs", "run_experiments"]


def default_jobs():
    """Worker count when the caller does not choose: one per CPU."""
    return max(1, os.cpu_count() or 1)


def _normalize(tasks):
    normalized = []
    seen = set()
    for task in tasks:
        key, fn = task[0], task[1]
        args = tuple(task[2]) if len(task) > 2 else ()
        kwargs = dict(task[3]) if len(task) > 3 else {}
        if key in seen:
            raise ValueError("duplicate task key %r" % (key,))
        seen.add(key)
        normalized.append((key, fn, args, kwargs))
    return normalized


def _call(task):
    key, fn, args, kwargs = task
    return key, fn(*args, **kwargs)


def run_experiments(tasks, jobs=None):
    """Run every task; return ``{key: result}`` in task order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs=1`` (or a single
    task) runs sequentially in-process.  The mapping is insertion-ordered
    by the *input* task order regardless of which worker finishes first,
    so parallel and sequential runs of the same task list merge to
    byte-identical results.
    """
    normalized = _normalize(tasks)
    if jobs is None:
        jobs = default_jobs()
    jobs = min(jobs, len(normalized)) if normalized else 1

    if jobs <= 1:
        return {key: fn(*args, **kwargs)
                for key, fn, args, kwargs in normalized}

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: degrade, stay identical
        return {key: fn(*args, **kwargs)
                for key, fn, args, kwargs in normalized}

    with context.Pool(processes=jobs) as pool:
        # Pool.map returns in input order — the deterministic merge is
        # by construction, not by sorting completion events
        pairs = pool.map(_call, normalized)
    return dict(pairs)
