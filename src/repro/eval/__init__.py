"""Evaluation harness: regenerates every figure of the paper's section 7.

:mod:`repro.eval.figures` runs the matmul experiment at any configuration
on either simulator and formats paper-vs-measured tables;
:mod:`repro.eval.paper_data` records the numbers the paper's text states
for figures 19-21 (the HAL preprint renders the histograms as images, so
only the values quoted in prose are available as ground truth);
:mod:`repro.eval.runner` fans independent simulations out to worker
processes with a deterministic task-order merge.
"""

from repro.eval.figures import (
    calibrate_shards,
    format_rows,
    run_matmul_experiment,
    run_matmul_figure,
)
from repro.eval.paper_data import PAPER_FIG19, PAPER_FIG20, PAPER_FIG21
from repro.eval.runner import ExperimentResults, default_jobs, run_experiments

__all__ = [
    "ExperimentResults",
    "PAPER_FIG19",
    "PAPER_FIG20",
    "PAPER_FIG21",
    "calibrate_shards",
    "default_jobs",
    "format_rows",
    "run_experiments",
    "run_matmul_experiment",
    "run_matmul_figure",
]
