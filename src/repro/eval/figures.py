"""Experiment runners + table formatting for the figure benches."""

from repro.compiler import compile_to_program
from repro.fastsim import FastLBP
from repro.machine import LBP, Params
from repro.workloads.matmul import MATMUL_VERSIONS, matmul_source, verify_matmul


def run_matmul_experiment(version, h, num_cores, scale=1, simulator="cycle",
                          max_cycles=500_000_000, shards=None):
    """Compile, run and verify one matmul version; returns a result row.

    *shards* (cycle simulator only) runs the space-sharded engine; the
    results are bit-identical to ``shards=None``, so the row is the same
    either way — only the wall time changes.
    """
    program = compile_to_program(
        matmul_source(version, h, scale=scale), "matmul_%s.c" % version
    )
    params = Params(num_cores=num_cores)
    if simulator == "cycle":
        machine = LBP(params, shards=shards).load(program)
    elif simulator == "fast":
        if shards not in (None, 1):
            raise ValueError("shards requires the cycle simulator")
        machine = FastLBP(params).load(program)
    else:
        raise ValueError("simulator must be 'cycle' or 'fast'")
    stats = machine.run(max_cycles=max_cycles)
    verify_matmul(machine, program, version, h, scale=scale)
    return {
        "version": version,
        "h": h,
        "cores": num_cores,
        "scale": scale,
        "simulator": simulator,
        "cycles": stats.cycles,
        "retired": stats.retired,
        "ipc": round(stats.ipc, 2),
        "local": stats.local_accesses,
        "remote": stats.remote_accesses,
    }


def run_matmul_figure(h, num_cores, scale=1, simulator="cycle",
                      versions=MATMUL_VERSIONS):
    """All versions of one figure; returns {version: row}."""
    return {
        version: run_matmul_experiment(version, h, num_cores, scale, simulator)
        for version in versions
    }


def format_rows(rows, paper=None, title=""):
    """Render measured rows (and paper references when known) as a table."""
    lines = []
    if title:
        lines.append(title)
    header = "%-12s %12s %8s %12s" % ("version", "cycles", "ipc", "retired")
    if paper is not None:
        header += "   | %12s %8s %12s" % ("paper-cyc", "p-ipc", "p-retired")
    lines.append(header)
    lines.append("-" * len(header))
    for version, row in rows.items():
        line = "%-12s %12d %8.2f %12d" % (
            version, row["cycles"], row["ipc"], row["retired"]
        )
        if paper is not None:
            ref = paper["rows"].get(version, {})
            line += "   | %12s %8s %12s" % (
                _fmt(ref.get("cycles")), _fmt(ref.get("ipc")), _fmt(ref.get("retired"))
            )
        lines.append(line)
    if paper is not None and paper.get("relations"):
        lines.append("paper's claims:")
        for relation in paper["relations"]:
            lines.append("  - " + relation)
    return "\n".join(lines)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.2f" % value
    return "%d" % value
