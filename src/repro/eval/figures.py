"""Experiment runners + table formatting for the figure benches."""

from repro.compiler import compile_to_program
from repro.fastsim import FastLBP
from repro.machine import LBP, Params
from repro.workloads.matmul import MATMUL_VERSIONS, matmul_source, verify_matmul


def run_matmul_experiment(version, h, num_cores, scale=1, simulator="cycle",
                          max_cycles=500_000_000, shards=None, metrics=False,
                          backend=None):
    """Compile, run and verify one matmul version; returns a result row.

    *shards* (cycle simulator only) runs the space-sharded engine; the
    results are bit-identical to ``shards=None``, so the row is the same
    either way — only the wall time changes.  *metrics* (cycle simulator
    only; True or a window interval) runs under stall attribution and
    grows the row a ``stalls`` breakdown plus ``stall_cycles`` — the
    "why is it slow" column of the BENCH records.  *backend* selects the
    cycle simulator's execution backend (``"soa"``/``"interp"``; None →
    the default) — again bit-identical either way; the row records which
    one ran.
    """
    program = compile_to_program(
        matmul_source(version, h, scale=scale), "matmul_%s.c" % version
    )
    params = Params(num_cores=num_cores)
    if simulator == "cycle":
        machine = LBP(params, shards=shards, metrics=metrics,
                      backend=backend).load(program)
    elif simulator == "fast":
        if shards not in (None, 1):
            raise ValueError("shards requires the cycle simulator")
        if metrics:
            raise ValueError("metrics requires the cycle simulator")
        if backend is not None:
            raise ValueError("backend requires the cycle simulator")
        machine = FastLBP(params).load(program)
    else:
        raise ValueError("simulator must be 'cycle' or 'fast'")
    stats = machine.run(max_cycles=max_cycles)
    verify_matmul(machine, program, version, h, scale=scale)
    row = {
        "workload": "matmul",
        "version": version,
        "h": h,
        "cores": num_cores,
        "scale": scale,
        "simulator": simulator,
        "cycles": stats.cycles,
        "retired": stats.retired,
        "ipc": round(stats.ipc, 2),
        "local": stats.local_accesses,
        "remote": stats.remote_accesses,
    }
    if simulator == "cycle":
        row["backend"] = machine.backend
    if metrics:
        report = machine.metrics_report()
        row["stalls"] = report["stalls"]
        row["stall_cycles"] = report["stall_cycles"]
        row["link_wait"] = report["link_wait"]
    return row


def calibrate_shards(h, num_cores, scale=1, version="base"):
    """Resolve ``shards="auto"`` for a figure sweep: ``(shards, decision)``.

    Runs the traffic-driven calibration (:mod:`repro.parsim.autotune`)
    once on the figure's *version* workload so every task of the sweep
    shares one concrete shard count — the sweep's cache keys stay stable
    and the decision can be recorded on ``ExperimentResults.meta``.
    """
    from repro.parsim.autotune import choose_shards

    program = compile_to_program(
        matmul_source(version, h, scale=scale), "matmul_%s.c" % version)
    machine = LBP(Params(num_cores=num_cores)).load(program)
    return choose_shards(machine)


def run_matmul_figure(h, num_cores, scale=1, simulator="cycle",
                      versions=MATMUL_VERSIONS):
    """All versions of one figure; returns {version: row}."""
    return {
        version: run_matmul_experiment(version, h, num_cores, scale, simulator)
        for version in versions
    }


def format_rows(rows, paper=None, title=""):
    """Render measured rows (and paper references when known) as a table."""
    lines = []
    if title:
        lines.append(title)
    with_stalls = any("stalls" in row for row in rows.values())
    header = "%-12s %12s %8s %12s" % ("version", "cycles", "ipc", "retired")
    if with_stalls:
        header += "   %-24s" % "top stall"
    if paper is not None:
        header += "   | %12s %8s %12s" % ("paper-cyc", "p-ipc", "p-retired")
    lines.append(header)
    lines.append("-" * len(header))
    for version, row in rows.items():
        line = "%-12s %12d %8.2f %12d" % (
            version, row["cycles"], row["ipc"], row["retired"]
        )
        if with_stalls:
            line += "   %-24s" % _top_stall(row)
        if paper is not None:
            ref = paper["rows"].get(version, {})
            line += "   | %12s %8s %12s" % (
                _fmt(ref.get("cycles")), _fmt(ref.get("ipc")), _fmt(ref.get("retired"))
            )
        lines.append(line)
    if paper is not None and paper.get("relations"):
        lines.append("paper's claims:")
        for relation in paper["relations"]:
            lines.append("  - " + relation)
    return "\n".join(lines)


def _top_stall(row):
    """The dominant stall reason of a metered row, as 'reason xx.x%'."""
    stalls = row.get("stalls")
    if not stalls:
        return "-"
    name, value = max(stalls.items(), key=lambda item: (item[1], item[0]))
    total = row["stall_cycles"] + row["retired"]
    return "%s %.1f%%" % (name, 100.0 * value / total if total else 0.0)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.2f" % value
    return "%d" % value
