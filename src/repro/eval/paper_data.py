"""Ground-truth values quoted in the paper's section 7 prose.

The preprint's histograms (figures 19-21) are images; the text quotes a
subset of their values and several relations.  We record exactly those —
`None` where the paper gives no number — plus the relations each of our
benches asserts (the *shape* of the result).
"""

# Figure 19 — 4-core LBP (16 harts), h = 16 (X 16×8 · Y 8×16)
PAPER_FIG19 = {
    "machine": {"cores": 4, "harts": 16, "h": 16, "peak_ipc": 4},
    "rows": {
        "base": {"cycles": None, "retired": 16722, "ipc": None},
        "copy": {"cycles": None, "retired": None, "ipc": None},
        "distributed": {"cycles": None, "retired": None, "ipc": None},
        "d+c": {"cycles": None, "retired": None, "ipc": None},
        "tiled": {"cycles": None, "retired": None, "ipc": 3.67},
    },
    "relations": [
        "base is the fastest version (about twice faster than tiled)",
        "tiled has the highest IPC (3.67 of peak 4)",
        "inner loop is 7 instructions repeated h^3/2 times",
    ],
}

# Figure 20 — 16-core LBP (64 harts), h = 64
PAPER_FIG20 = {
    "machine": {"cores": 16, "harts": 64, "h": 64, "peak_ipc": 16},
    "rows": {
        "base": {"cycles": None, "retired": None, "ipc": 12.7},
        "copy": {"cycles": None, "retired": None, "ipc": 15.0},  # "over 15"
        "distributed": {"cycles": None, "retired": None, "ipc": None},
        "d+c": {"cycles": None, "retired": None, "ipc": None},
        "tiled": {"cycles": None, "retired": None, "ipc": None},
    },
    "relations": [
        "copy is the fastest version (16% faster than base, >10000 cycles saved)",
        "copy overhead is moderate (~14500 extra instructions, 1.5%)",
    ],
}

# Figure 21 — 64-core LBP (256 harts), h = 256, plus Xeon Phi 7210 tiled
PAPER_FIG21 = {
    "machine": {"cores": 64, "harts": 256, "h": 256, "peak_ipc": 64},
    "rows": {
        "base": {"cycles": 4_140_000, "retired": 59_000_000, "ipc": None},
        "copy": {"cycles": None, "retired": None, "ipc": None},
        "distributed": {"cycles": 2_080_000, "retired": None, "ipc": None},
        "d+c": {"cycles": None, "retired": None, "ipc": None},
        "tiled": {"cycles": 1_180_000, "retired": 73_000_000, "ipc": 61.7},
    },
    "xeon_phi": {"cycles": 391_000, "retired": 32_000_000, "ipc_per_core": 1.28},
    "relations": [
        "tiled is the fastest (2x over distributed, 4x over base)",
        "tiled IPC 61.7 of peak 64 (interconnect sustains the demand)",
        "tiling overhead +23% retired instructions over base",
        "Xeon Phi ~3x fewer cycles, ~2.28x fewer instructions,",
        "but only 21% of its 6-IPC peak vs LBP's 96% of 1-IPC peak",
    ],
}
