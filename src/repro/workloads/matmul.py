"""The paper's matrix-multiplication experiment (section 7, figure 18).

Each run multiplies X (h × h/2) by Y (h/2 × h) into Z (h × h), where *h*
is the hart count (16, 64 or 256 for the 4-, 16- and 64-core machines).
All inputs are 1, so every Z element must equal h/2 — the verification
criterion.  Five versions:

* **base** — everything in shared bank 0, the naive parallel loop;
* **copy** — each thread copies its X line into its local stack first;
* **distributed** — matrices block-distributed over the banks (the
  paper's "four lines of X, two lines of Y and four lines of Z in each
  bank"), placed so each thread's X and Z lines are core-local;
* **d+c** — distributed placement plus the local X-line copy;
* **tiled** — the classic five-nested-loop tiled multiplication with a
  tile-major layout distributed round-robin over the banks (X/Y tiles of
  h/2 elements, Z tiles of h elements, per the paper).

The sources are generated DetC text; scale factors shrink the *work* per
thread (columns of Z computed) without changing placement, so the big
configurations stay simulable in pure Python while keeping the paper's
communication structure (see DESIGN.md substitutions).
"""

from repro import memmap

MATMUL_VERSIONS = ("base", "copy", "distributed", "d+c", "tiled")


def _isqrt(value):
    root = int(value ** 0.5)
    while root * root < value:
        root += 1
    return root


def _params(h):
    if h % 4:
        raise ValueError("h must be a multiple of 4 (harts per core)")
    return {
        "H": h,
        "LX": h, "CX": h // 2,
        "LY": h // 2, "CY": h,
        "LZ": h, "CZ": h,
        "NB": h // 4,          # number of banks = number of cores
        "S": _isqrt(h),        # tile edge
    }


_COMMON_MAIN = """
void main() {
    int t;
    omp_set_num_threads(%(H)d);
    #pragma omp parallel for
    for (t = 0; t < %(H)d; t++)
        thread(t);
}
"""


def _ones_global(name, count, bank=None):
    attr = " __bank(%d)" % bank if bank is not None else ""
    return "int %s[%d]%s = {[0 ... %d] = 1};\n" % (name, count, attr, count - 1)


def _zero_global(name, count, bank=None):
    attr = " __bank(%d)" % bank if bank is not None else ""
    return "int %s[%d]%s;\n" % (name, count, attr)


def _base_source(p, ck_work):
    return (
        "#include <det_omp.h>\n"
        + _ones_global("X", p["LX"] * p["CX"])
        + _ones_global("Y", p["LY"] * p["CY"])
        + _zero_global("Z", p["LZ"] * p["CZ"])
        + """
void thread(int t) {
    int i, j, k, l, tmp;
    for (l = 0, i = t * (%(LZ)d / %(H)d); l < %(LZ)d / %(H)d; l++, i++)
        for (j = 0; j < %(CZ)d; j++) {
            tmp = 0;
            for (k = 0; k < %(CKW)d; k++)
                tmp += *(X + (i * %(CX)d + k)) * *(Y + (k * %(CY)d + j));
            *(Z + (i * %(CZ)d + j)) = tmp;
        }
}
""" % dict(p, CKW=ck_work)
        + _COMMON_MAIN % p
    )


def _copy_source(p, ck_work):
    return (
        "#include <det_omp.h>\n"
        + _ones_global("X", p["LX"] * p["CX"])
        + _ones_global("Y", p["LY"] * p["CY"])
        + _zero_global("Z", p["LZ"] * p["CZ"])
        + """
void thread(int t) {
    int i, j, k, l, tmp;
    int xl[%(CX)d];
    for (l = 0, i = t * (%(LZ)d / %(H)d); l < %(LZ)d / %(H)d; l++, i++) {
        for (k = 0; k < %(CKW)d; k++)
            xl[k] = *(X + (i * %(CX)d + k));
        for (j = 0; j < %(CZ)d; j++) {
            tmp = 0;
            for (k = 0; k < %(CKW)d; k++)
                tmp += xl[k] * *(Y + (k * %(CY)d + j));
            *(Z + (i * %(CZ)d + j)) = tmp;
        }
    }
}
""" % dict(p, CKW=ck_work)
        + _COMMON_MAIN % p
    )


def _distributed_decls(p):
    """Per-bank chunks: 4 X lines, 2 Y lines, 4 Z lines in every bank.

    The interleave is round-robin by line (line i of X in bank i mod NB):
    it spreads traffic evenly over the banks — the paper's stated goal —
    but is *locality-blind* (thread t's lines usually live on another
    core), which is exactly why d+c and tiled improve on it.
    """
    parts = []
    for bank in range(p["NB"]):
        parts.append(_ones_global("XB%d" % bank, (p["LX"] // p["NB"]) * p["CX"], bank))
        parts.append(_ones_global("YB%d" % bank, (p["LY"] // p["NB"]) * p["CY"], bank))
        parts.append(_zero_global("ZB%d" % bank, (p["LZ"] // p["NB"]) * p["CZ"], bank))
    return "".join(parts)


def _distributed_macros(p):
    """Address macros for the round-robin interleaved layout."""
    nb = p["NB"]
    nb_mask = nb - 1
    nb_shift = nb.bit_length() - 1
    xline_bytes = 4 * p["CX"]
    yline_bytes = 4 * p["CY"]
    zline_bytes = 4 * p["CZ"]
    yoff = (p["LX"] // nb) * xline_bytes
    zoff = yoff + (p["LY"] // nb) * yline_bytes
    return """
#define GB %dU
#define XLINE(i) ((int*)(GB + (((unsigned)(i) & %d) << 20) + (((unsigned)(i) >> %d) * %d)))
#define YLINE(k) ((int*)(GB + (((unsigned)(k) & %d) << 20) + %d + (((unsigned)(k) >> %d) * %d)))
#define ZLINE(i) ((int*)(GB + (((unsigned)(i) & %d) << 20) + %d + (((unsigned)(i) >> %d) * %d)))
""" % (
        memmap.GLOBAL_BASE,
        nb_mask, nb_shift, xline_bytes,
        nb_mask, yoff, nb_shift, yline_bytes,
        nb_mask, zoff, nb_shift, zline_bytes,
    )


def _distributed_source(p, ck_work, with_copy):
    if with_copy:
        body = """
void thread(int t) {
    int i, j, k, l, tmp;
    int *zl;
    int xl[%(CX)d];
    for (l = 0, i = t * (%(LZ)d / %(H)d); l < %(LZ)d / %(H)d; l++, i++) {
        int *xp = XLINE(i);
        for (k = 0; k < %(CKW)d; k++)
            xl[k] = xp[k];
        zl = ZLINE(i);
        for (j = 0; j < %(CZ)d; j++) {
            tmp = 0;
            for (k = 0; k < %(CKW)d; k++)
                tmp += xl[k] * YLINE(k)[j];
            zl[j] = tmp;
        }
    }
}
"""
    else:
        body = """
void thread(int t) {
    int i, j, k, l, tmp;
    int *xp;
    int *zl;
    for (l = 0, i = t * (%(LZ)d / %(H)d); l < %(LZ)d / %(H)d; l++, i++) {
        xp = XLINE(i);
        zl = ZLINE(i);
        for (j = 0; j < %(CZ)d; j++) {
            tmp = 0;
            for (k = 0; k < %(CKW)d; k++)
                tmp += xp[k] * YLINE(k)[j];
            zl[j] = tmp;
        }
    }
}
"""
    return (
        "#include <det_omp.h>\n"
        + _distributed_macros(p)
        + _distributed_decls(p)
        + body % dict(p, CKW=ck_work)
        + _COMMON_MAIN % p
    )


def _tiled_decls(p):
    """Per-bank tile stores: 4 X tiles, 4 Y tiles, 4 Z tiles each."""
    h, nb = p["H"], p["NB"]
    xtile = h // 2
    ztile = h
    parts = []
    for bank in range(nb):
        parts.append(_ones_global("XT%d" % bank, (h // nb) * xtile, bank))
        parts.append(_ones_global("YT%d" % bank, (h // nb) * xtile, bank))
        parts.append(_zero_global("ZT%d" % bank, (h // nb) * ztile, bank))
    return "".join(parts)


def _tiled_macros(p):
    h, nb, s = p["H"], p["NB"], p["S"]
    tile_bytes = 4 * (h // 2)
    ztile_bytes = 4 * h
    ytoff = (h // nb) * tile_bytes
    ztoff = 2 * ytoff
    nb_mask = nb - 1
    nb_shift = nb.bit_length() - 1
    return """
#define GB %dU
#define XTILE(id) ((int*)(GB + (((unsigned)(id) & %d) << 20) + (((unsigned)(id) >> %d) * %d)))
#define YTILE(id) ((int*)(GB + (((unsigned)(id) & %d) << 20) + %d + (((unsigned)(id) >> %d) * %d)))
#define ZTILE(t)  ((int*)(GB + (((unsigned)(t) >> 2) << 20) + %d + (((t) & 3) * %d)))
""" % (
        memmap.GLOBAL_BASE,
        nb_mask, nb_shift, tile_bytes,
        nb_mask, ytoff, nb_shift, tile_bytes,
        ztoff, ztile_bytes,
    )


def _tiled_kt_passes(p, scale):
    """Number of k-tile passes at this scale (full scale: S passes)."""
    return max(1, p["S"] // scale)


def _tiled_source(p, scale):
    s = p["S"]
    kt_passes = _tiled_kt_passes(p, scale)
    return (
        "#include <det_omp.h>\n"
        + _tiled_macros(p)
        + _tiled_decls(p)
        + """
/* classic five-loop tiled multiplication.  Tiles are copied into the
 * hart's local stack first: each X tile element is then reused S times
 * and each Y tile element S times from local memory instead of being
 * fetched remotely every multiply — the "saves many long distance
 * communications" of the paper, LBP's cache-less analogue of blocking
 * for a cache.  Scaling reduces the number of k-tile passes, which
 * keeps the copy-to-compute and remote-to-local ratios of the full-size
 * run. */
void thread(int t) {
    int tr = t / %(S)d;
    int tc = t %% %(S)d;
    int kt, i, j, k, tmp;
    int xt[%(TILE)d];
    int yt[%(TILE)d];
    int *zb = ZTILE(t);
    for (kt = 0; kt < %(KT)d; kt++) {
        int *xb = XTILE(tr * %(S)d + kt);
        int *yb = YTILE(kt * %(S)d + tc);
        for (k = 0; k < %(TILE)d; k++)
            xt[k] = xb[k];
        for (k = 0; k < %(TILE)d; k++)
            yt[k] = yb[k];
        for (i = 0; i < %(S)d; i++)
            for (j = 0; j < %(S)d; j++) {
                tmp = zb[i * %(S)d + j];
                for (k = 0; k < %(S)d / 2; k++)
                    tmp += xt[i * (%(S)d / 2) + k] * yt[k * %(S)d + j];
                zb[i * %(S)d + j] = tmp;
            }
    }
}
""" % dict(p, KT=kt_passes, TILE=p["H"] // 2)
        + _COMMON_MAIN % p
    )


def matmul_source(version, h, scale=1):
    """DetC source for one matmul version at hart count *h*.

    ``scale`` > 1 shrinks the inner (K) dimension each thread traverses —
    for the tiled version, the number of k-tile passes.  Placement, team
    structure, and every version's communication-per-multiply ratio are
    unchanged, so the comparison between versions stays fair while big
    configurations stay tractable in pure Python.
    """
    p = _params(h)
    ck_work = max(1, p["CX"] // scale)
    if version == "base":
        return _base_source(p, ck_work)
    if version == "copy":
        return _copy_source(p, ck_work)
    if version == "distributed":
        return _distributed_source(p, ck_work, with_copy=False)
    if version == "d+c":
        return _distributed_source(p, ck_work, with_copy=True)
    if version == "tiled":
        return _tiled_source(p, scale)
    raise ValueError("unknown matmul version %r" % (version,))


def matmul_expected_value(version, h, scale=1):
    """The value every computed Z element holds (all-ones inputs)."""
    p = _params(h)
    if version == "tiled":
        return _tiled_kt_passes(p, scale) * (p["S"] // 2)
    return max(1, p["CX"] // scale)


def matmul_sequential_source(h, scale=1):
    """The same multiplication with a plain sequential loop (no pragma).

    Used by experiment E5 to measure the parallelization overhead in
    retired instructions: same thread function, same call sequence, no
    team creation.
    """
    p = _params(h)
    ck_work = max(1, p["CX"] // scale)
    source = _base_source(p, ck_work)
    return source.replace("    #pragma omp parallel for\n", "")


def _z_sample_addresses(version, h, program, scale):
    """(address, expected) samples covering every thread's output."""
    p = _params(h)
    expected = matmul_expected_value(version, h, scale)
    samples = []
    if version in ("base", "copy"):
        base = program.symbol("Z")
        for i in range(p["LZ"]):
            for j in (0, p["CZ"] - 1):
                samples.append((base + 4 * (i * p["CZ"] + j), expected))
    elif version in ("distributed", "d+c"):
        nb = p["NB"]
        zoff = (p["LX"] // nb) * 4 * p["CX"] + (p["LY"] // nb) * 4 * p["CY"]
        for i in range(p["LZ"]):
            bank_base = memmap.global_bank_base(i % nb)
            line = bank_base + zoff + (i // nb) * 4 * p["CZ"]
            for j in (0, p["CZ"] - 1):
                samples.append((line + 4 * j, expected))
    else:  # tiled
        s = p["S"]
        ztoff = 2 * ((h // p["NB"]) * 4 * (h // 2))
        for t in range(h):
            bank_base = memmap.global_bank_base(t >> 2)
            tile = bank_base + ztoff + (t & 3) * 4 * h
            for i in (0, s - 1):
                for j in (0, s - 1):
                    samples.append((tile + 4 * (i * s + j), expected))
    return samples


def verify_matmul(machine, program, version, h, scale=1):
    """Check the computed Z samples; raises AssertionError on mismatch."""
    for addr, expected in _z_sample_addresses(version, h, program, scale):
        actual = machine.read_word(addr)
        if actual != expected:
            raise AssertionError(
                "matmul %s h=%d: Z word at 0x%x is %d, expected %d"
                % (version, h, addr, actual, expected)
            )
    return True
