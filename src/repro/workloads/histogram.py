"""Histogram with private counters + transposed merge — data-dependent
indexing.

Phase 1: every hart counts its slice into a *private* row of counters,
``priv[t * BINS + D[i]]`` — the store address depends on the **data**,
not the loop index, which no other workload in the suite exercises (a
wrong value anywhere in the seeded input moves a store to a different
word).  Phase 2 runs one thread per *bin*, summing column *b* across all
private rows — a transposed, strided read pattern over words each
written by a different hart.  The privatize-then-reduce shape is exactly
what the race-repair loop (ROADMAP) must synthesize for shared
histograms, so keeping its race-free form pinned here gives that future
pass a reference target.  Self-checking against ``collections.Counter``.
"""

import random

MASK32 = 0xFFFFFFFF


class HistogramWorkload:
    """h-hart histogram of ``h * chunk`` seeded values into ``bins``."""

    def __init__(self, h, chunk=16, bins=8, seed=0):
        self.h = h
        self.chunk = chunk
        self.bins = bins
        self.n = h * chunk
        self.seed = seed
        rng = random.Random(seed)
        self.values = [rng.randrange(bins) for _ in range(self.n)]

    @property
    def source(self):
        return """
#include <det_omp.h>
#define BINS %(bins)d
int D[%(n)d] = {%(values)s};
int priv[%(priv)d];
int hist[BINS];

void count_slice(int t) {
    int i;
    for (i = t * %(chunk)d; i < (t + 1) * %(chunk)d; i++)
        priv[t * BINS + D[i]] += 1;
}

void merge_bin(int b) {
    int t, acc;
    acc = 0;
    for (t = 0; t < %(h)d; t++)
        acc += priv[t * BINS + b];
    hist[b] = acc;
}

void main() {
    int t;
    omp_set_num_threads(%(h)d);
    #pragma omp parallel for
    for (t = 0; t < %(h)d; t++)
        count_slice(t);
    omp_set_num_threads(%(region2)d);
    #pragma omp parallel for
    for (t = 0; t < BINS; t++)
        merge_bin(t);
}
""" % {
            "bins": self.bins, "n": self.n, "h": self.h,
            "chunk": self.chunk, "priv": self.h * self.bins,
            "region2": self.bins,
            "values": ", ".join(str(v) for v in self.values),
        }

    def expected(self):
        counts = [0] * self.bins
        for value in self.values:
            counts[value] += 1
        return counts

    def verify(self, machine, program):
        base = program.symbol("hist")
        expected = self.expected()
        for b in range(self.bins):
            actual = machine.read_word(base + 4 * b)
            if actual != expected[b]:
                raise AssertionError(
                    "histogram: hist[%d] is %d, expected %d"
                    % (b, actual, expected[b]))
        return True


def histogram_source(h, chunk=16, bins=8, seed=0):
    return HistogramWorkload(h, chunk, bins, seed).source
