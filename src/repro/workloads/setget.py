"""The paper's figure-4 two-phase vector workload.

A first parallel loop (*set*) initialises a vector chunk per hart; a
second parallel loop (*get*) consumes the same chunks.  Because teams are
placed identically in both phases and the chunks are placed in the bank
of the core that processes them, **every data access is core-local**, and
the ordering between the phases is enforced purely by the hardware
barrier (the ordered ``p_ret`` chain + join) — no OS, no flush, no
coherence protocol.

Experiment E7 checks both properties: the sums are correct (barrier
works) and the number of remote accesses does not grow with the data size
(locality: only the tiny per-region capture records are remote).
"""

from repro import memmap


def setget_source(h, chunk=64):
    """DetC source: h harts, each setting then getting a *chunk*-word slice."""
    if h % 4:
        raise ValueError("h must be a multiple of 4")
    nb = h // 4
    decls = []
    for bank in range(nb):
        decls.append("int VB%d[%d] __bank(%d);\n" % (bank, 4 * chunk, bank))
        decls.append("int RB%d[4] __bank(%d);\n" % (bank, bank))
    voff = 0
    roff = 4 * 4 * chunk  # results after the 4 chunks
    return (
        "#include <det_omp.h>\n"
        + "".join(decls)
        + """
#define GB %(gb)dU
#define CHUNK(t) ((int*)(GB + (((unsigned)(t) >> 2) << 20) + ((t) & 3) * %(chunk_bytes)d))
#define RES(t)   ((int*)(GB + (((unsigned)(t) >> 2) << 20) + %(roff)d + ((t) & 3) * 4))

void thread_set(int v_unused, int t) {
    int i;
    int *p = CHUNK(t);
    for (i = 0; i < %(chunk)d; i++)
        p[i] = t * 1000 + i;
}

void thread_get(int v_unused, int t) {
    int i, sum;
    int *p = CHUNK(t);
    sum = 0;
    for (i = 0; i < %(chunk)d; i++)
        sum += p[i];
    *RES(t) = sum;
}

void main() {
    int t;
    omp_set_num_threads(%(h)d);
    #pragma omp parallel for
    for (t = 0; t < %(h)d; t++)
        thread_set(0, t);
    #pragma omp parallel for
    for (t = 0; t < %(h)d; t++)
        thread_get(0, t);
}
""" % {
            "gb": memmap.GLOBAL_BASE,
            "chunk": chunk,
            "chunk_bytes": 4 * chunk,
            "roff": roff,
            "h": h,
        }
    )


def expected_sum(t, chunk=64):
    """Reference sum for chunk *t*."""
    return sum(t * 1000 + i for i in range(chunk))


def verify_setget(machine, h, chunk=64):
    """Check every per-chunk sum; raises AssertionError on mismatch."""
    roff = 4 * 4 * chunk
    for t in range(h):
        addr = memmap.global_bank_base(t >> 2) + roff + (t & 3) * 4
        actual = machine.read_word(addr)
        if actual != expected_sum(t, chunk) & 0xFFFFFFFF:
            raise AssertionError(
                "setget: chunk %d sum is %d, expected %d"
                % (t, actual, expected_sum(t, chunk))
            )
    return True
