"""1-D 3-point stencil (Jacobi relaxation) — neighbour-boundary sharing.

Each time step is one parallel region: thread *t* rewrites its slice of
``B`` from ``A`` (or back, on odd steps — double buffering), reading one
cell past each slice edge.  Those boundary reads are the irregular bit:
every step, each hart reads two words most recently written by its
*neighbour* harts in the previous step, with only the region join
ordering the exchange.  Matmul never exercises this
producer-to-consumer neighbour chaining; a misordered join or a stale
epoch frame in the sharded engine shows up here as a wrong relaxation
after a handful of steps.  Self-checking against a Python reference of
the same integer arithmetic.
"""

import random

MASK32 = 0xFFFFFFFF


class StencilWorkload:
    """h threads × ``steps`` Jacobi steps over ``h * width`` cells."""

    def __init__(self, h, width=8, steps=4, seed=0, max_value=256):
        self.h = h
        self.width = width
        self.n = h * width
        self.steps = steps
        self.seed = seed
        rng = random.Random(seed)
        self.values = [rng.randrange(max_value) for _ in range(self.n)]

    @property
    def result_symbol(self):
        return "A" if self.steps % 2 == 0 else "B"

    @property
    def source(self):
        bodies = []
        regions = []
        for direction, src, dst in (("ab", "A", "B"), ("ba", "B", "A")):
            bodies.append("""
void step_%(dir)s(int t) {
    int i, lo, hi;
    lo = t * %(width)d;
    hi = lo + %(width)d;
    if (lo == 0) {
        %(dst)s[0] = %(src)s[0];
        lo = 1;
    }
    if (hi == %(n)d) {
        %(dst)s[%(n_max)d] = %(src)s[%(n_max)d];
        hi = %(n)d - 1;
    }
    for (i = lo; i < hi; i++)
        %(dst)s[i] = (%(src)s[i - 1] + %(src)s[i] + %(src)s[i + 1]) / 3;
}""" % {"dir": direction, "src": src, "dst": dst,
                "width": self.width, "n": self.n, "n_max": self.n - 1})
        for step in range(self.steps):
            direction = "ab" if step % 2 == 0 else "ba"
            regions.append("""
    #pragma omp parallel for
    for (t = 0; t < %(h)d; t++)
        step_%(dir)s(t);""" % {"h": self.h, "dir": direction})
        return """
#include <det_omp.h>
int A[%(n)d] = {%(values)s};
int B[%(n)d];
%(bodies)s

void main() {
    int t;
    omp_set_num_threads(%(h)d);
%(regions)s
}
""" % {
            "n": self.n, "h": self.h,
            "values": ", ".join(str(v) for v in self.values),
            "bodies": "".join(bodies),
            "regions": "".join(regions),
        }

    def expected(self):
        """Python reference: same integer averaging, same step count."""
        cells = list(self.values)
        for _step in range(self.steps):
            nxt = list(cells)
            for i in range(1, self.n - 1):
                nxt[i] = (cells[i - 1] + cells[i] + cells[i + 1]) // 3
            cells = nxt
        return cells

    def verify(self, machine, program):
        base = program.symbol(self.result_symbol)
        expected = self.expected()
        for i in range(self.n):
            actual = machine.read_word(base + 4 * i)
            if actual != expected[i] & MASK32:
                raise AssertionError(
                    "stencil: %s[%d] is %d, expected %d"
                    % (self.result_symbol, i, actual, expected[i]))
        return True


def stencil_source(h, width=8, steps=4, seed=0):
    return StencilWorkload(h, width, steps, seed).source
