"""Parallel merge sort — irregular, phase-structured sharing.

The first family member that is *not* a dense loop nest: phase 1 sorts
per-hart slices in place (insertion sort, data-dependent branch and
shift patterns); then ``log2(h)`` merge passes, each halving the thread
count, ping-pong the data between two buffers.  Every pass reads runs
produced by *two* different harts of the previous phase, so the sharing
pattern widens geometrically — ordered purely by the parallel-region
joins, no locks, no atomics.  Self-checking: the final buffer must equal
``sorted(input)`` computed in Python.
"""

import random

MASK32 = 0xFFFFFFFF


def _is_pow2(value):
    return value > 0 and value & (value - 1) == 0


class SortWorkload:
    """h-hart merge sort of ``h * chunk`` seeded values."""

    def __init__(self, h, chunk=8, seed=0, max_value=100_000):
        if not _is_pow2(h):
            raise ValueError("h must be a power of two (merge-tree passes)")
        self.h = h
        self.chunk = chunk
        self.n = h * chunk
        self.seed = seed
        rng = random.Random(seed)
        self.values = [rng.randrange(max_value) for _ in range(self.n)]
        self.passes = h.bit_length() - 1  # log2(h) merge passes

    @property
    def result_symbol(self):
        """Which buffer holds the sorted data after all passes."""
        return "A" if self.passes % 2 == 0 else "B"

    @property
    def source(self):
        h, chunk, n = self.h, self.chunk, self.n
        merge_fns = []
        regions = []
        for p in range(1, self.passes + 1):
            width = chunk << (p - 1)
            threads = h >> p
            src, dst = ("A", "B") if p % 2 == 1 else ("B", "A")
            merge_fns.append("""
void merge%(p)d(int m) {
    int lo = m * %(two_w)d;
    int mid = lo + %(w)d;
    int hi = mid + %(w)d;
    int i = lo;
    int j = mid;
    int k = lo;
    while (i < mid && j < hi) {
        if (%(src)s[i] <= %(src)s[j]) {
            %(dst)s[k] = %(src)s[i];
            i++;
        } else {
            %(dst)s[k] = %(src)s[j];
            j++;
        }
        k++;
    }
    while (i < mid) { %(dst)s[k] = %(src)s[i]; i++; k++; }
    while (j < hi) { %(dst)s[k] = %(src)s[j]; j++; k++; }
}""" % {"p": p, "w": width, "two_w": 2 * width, "src": src, "dst": dst})
            regions.append("""
    omp_set_num_threads(%(threads)d);
    #pragma omp parallel for
    for (t = 0; t < %(threads)d; t++)
        merge%(p)d(t);""" % {"threads": threads, "p": p})
        return """
#include <det_omp.h>
int A[%(n)d] = {%(values)s};
int B[%(n)d];

void sort_slice(int t) {
    int i, j, v;
    int lo = t * %(chunk)d;
    int hi = lo + %(chunk)d;
    for (i = lo + 1; i < hi; i++) {
        v = A[i];
        j = i - 1;
        while (j >= lo && A[j] > v) {
            A[j + 1] = A[j];
            j--;
        }
        A[j + 1] = v;
    }
}
%(merge_fns)s

void main() {
    int t;
    omp_set_num_threads(%(h)d);
    #pragma omp parallel for
    for (t = 0; t < %(h)d; t++)
        sort_slice(t);
%(regions)s
}
""" % {
            "n": n, "h": h, "chunk": chunk,
            "values": ", ".join(str(v) for v in self.values),
            "merge_fns": "".join(merge_fns),
            "regions": "".join(regions),
        }

    def expected(self):
        return sorted(self.values)

    def verify(self, machine, program):
        base = program.symbol(self.result_symbol)
        expected = self.expected()
        for i in range(self.n):
            actual = machine.read_word(base + 4 * i)
            if actual != expected[i] & MASK32:
                raise AssertionError(
                    "sort: %s[%d] is %d, expected %d"
                    % (self.result_symbol, i, actual, expected[i]))
        return True


def sort_source(h, chunk=8, seed=0):
    return SortWorkload(h, chunk, seed).source
