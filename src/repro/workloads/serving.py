"""A deterministic request/response *server* running on LBP harts.

The in-simulator analogue of serving heavy user traffic: a dedicated
controller hart (the paper's fig. 16-17 I/O-controller placement — last
team member, last core) paces a seeded, pre-generated request schedule
and dispatches each request to a worker hart over the intercore backward
line (``p_swre``); workers block on ``p_lwre``, service the request (a
configurable mix of echo / compute-loop / xor-mix / table-lookup work)
and store the response.  Sustained traffic pushes the ``p_swre``
flow-control machinery exactly the way PR 1's wake-on-drain path is
meant to be pushed: when a worker falls behind, dispatches to its
result-buffer slot queue up and drain in referential order.

Everything is deterministic and **device-free**: the arrival schedule
(inter-arrival gaps, request mix, worker assignment) comes from a seeded
generator at *source-generation* time and is baked into the program as
initialized arrays, so the workload snapshots, shards and golden-digests
like any other program — no MMIO attach, which the snapshot layer and
the sharded engine both refuse.

Observability: the controller stamps a marker store into ``issued[r]``
at dispatch and the serving worker stores the response into
``results[r]``; with tracing enabled the two ``mem_store`` events give
per-request dispatch→completion latency, from which the benchmark layer
derives p50/p99 latency and throughput curves per core count.
"""

import random

MASK32 = 0xFFFFFFFF

#: request kinds and their service semantics (mirrored in C and Python)
KIND_ECHO, KIND_SUM, KIND_XMIX, KIND_LUT = range(4)

#: default request mix: (kind, weight) — mostly light echo/lookup traffic
#: with a tail of heavier compute requests, like a real serving mix
DEFAULT_MIX = ((KIND_ECHO, 4), (KIND_LUT, 3), (KIND_SUM, 2), (KIND_XMIX, 1))

_XMIX_CONST = 23297


class Request:
    __slots__ = ("index", "worker", "kind", "arg", "gap")

    def __init__(self, index, worker, kind, arg, gap):
        self.index = index
        self.worker = worker
        self.kind = kind
        self.arg = arg
        self.gap = gap

    @property
    def payload(self):
        """The 32-bit request word: [idx:14][kind:4][arg:12]."""
        return (self.index << 16) | (self.kind << 12) | self.arg


class ServingWorkload:
    """One serving scenario: schedule + generated source + references.

    ``cores`` fixes the machine (``4*cores - 1`` workers + the
    controller); ``seed`` drives the request mix, arguments, arrival
    gaps and (for ``assignment="random"``) the load-balancing draw.
    """

    def __init__(self, cores, num_requests, seed=0, mix=DEFAULT_MIX,
                 gap_range=(4, 40), assignment="rr"):
        if num_requests >= 1 << 14:
            raise ValueError("request index must fit in 14 bits")
        self.cores = cores
        self.harts = 4 * cores
        self.workers = self.harts - 1
        self.num_requests = num_requests
        self.seed = seed
        rng = random.Random(seed)
        kinds = [kind for kind, _w in mix]
        weights = [weight for _k, weight in mix]
        self.lut = [rng.randrange(1 << 16) for _ in range(16)]
        self.requests = []
        for index in range(num_requests):
            if assignment == "rr":
                worker = index % self.workers
            elif assignment == "random":
                worker = rng.randrange(self.workers)
            else:
                raise ValueError("assignment must be 'rr' or 'random'")
            kind = rng.choices(kinds, weights)[0]
            arg = rng.randrange(4096)
            gap = rng.randrange(gap_range[0], gap_range[1] + 1)
            self.requests.append(Request(index, worker, kind, arg, gap))

    @property
    def race_sync(self):
        """Polling-protocol cells for the race detector: the worker
        registration words are intentionally timing-racy (controller
        polls until every worker has announced its hart id)."""
        return (("reg", self.workers),)

    # ---- generated program ---------------------------------------------------

    @property
    def source(self):
        """DetC source of the full server (workers + controller team)."""
        nr, nw, h = self.num_requests, self.workers, self.harts
        per_worker = [0] * nw
        for request in self.requests:
            per_worker[request.worker] += 1

        def ints(values):
            return ", ".join(str(v) for v in values)

        return """
#include <det_omp.h>
#define NR %(nr)d
#define NW %(nw)d
#define H  %(h)d
int req_worker[NR] = {%(req_worker)s};
int req_payload[NR] = {%(req_payload)s};
int req_gap[NR] = {%(req_gap)s};
int wq[NW] = {%(wq)s};
int lut[16] = {%(lut)s};
int reg[NW] __bank(%(last)d) = {[0 ... %(nw_max)d] = -1};
int issued[NR];
int results[NR];

void worker(int w) {
    int n, req, idx, kind, arg, acc, i;
    reg[w] = __hart_id();
    for (n = 0; n < wq[w]; n++) {
        req = __p_lwre(0);
        idx = (req >> 16) & 16383;
        kind = (req >> 12) & 15;
        arg = req & 4095;
        if (kind == 0)
            acc = arg;
        else if (kind == 1) {
            acc = 0;
            for (i = 0; i <= (arg & 63); i++)
                acc += i * 3 + 1;
        } else if (kind == 2) {
            acc = arg;
            for (i = 0; i < (arg & 31) + 1; i++)
                acc = ((acc << 1) + i) ^ %(xmix)d;
        } else
            acc = lut[arg & 15] + arg;
        results[idx] = acc;
    }
}

void controller(void) {
    int r, w, d;
    int targets[NW];
    for (w = 0; w < NW; w++) {
        while (reg[w] == -1)
            ;                       /* §6 request-word poll, own bank */
        targets[w] = reg[w];
    }
    for (r = 0; r < NR; r++) {
        for (d = 0; d < req_gap[r]; d++)
            ;                       /* seeded inter-arrival pacing */
        issued[r] = r + 1;          /* dispatch timestamp marker */
        __p_swre(targets[req_worker[r]], 0, req_payload[r]);
    }
}

void main() {
    int t;
    omp_set_num_threads(H);
    #pragma omp parallel for
    for (t = 0; t < H; t++) {
        if (t == H - 1)
            controller();
        else
            worker(t);
    }
}
""" % {
            "nr": nr, "nw": nw, "h": h, "nw_max": nw - 1,
            "last": self.cores - 1,
            "req_worker": ints(r.worker for r in self.requests),
            "req_payload": ints(r.payload for r in self.requests),
            "req_gap": ints(r.gap for r in self.requests),
            "wq": ints(per_worker),
            "lut": ints(self.lut),
            "xmix": _XMIX_CONST,
        }

    # ---- reference implementation (self-checking) ----------------------------

    def expected_response(self, request):
        """Reference service function — bit-exact 32-bit mirror of the C."""
        arg = request.arg
        if request.kind == KIND_ECHO:
            return arg
        if request.kind == KIND_SUM:
            acc = 0
            for i in range((arg & 63) + 1):
                acc = (acc + i * 3 + 1) & MASK32
            return acc
        if request.kind == KIND_XMIX:
            acc = arg
            for i in range((arg & 31) + 1):
                acc = ((((acc << 1) & MASK32) + i) & MASK32) ^ _XMIX_CONST
            return acc
        return (self.lut[arg & 15] + arg) & MASK32

    def expected_responses(self):
        return [self.expected_response(r) for r in self.requests]

    def verify(self, machine, program):
        """Check every response word; raises AssertionError on mismatch."""
        base = program.symbol("results")
        for request in self.requests:
            actual = machine.read_word(base + 4 * request.index)
            expected = self.expected_response(request)
            if actual != expected:
                raise AssertionError(
                    "serving: request %d (worker %d kind %d arg %d) "
                    "response is %d, expected %d"
                    % (request.index, request.worker, request.kind,
                       request.arg, actual, expected))
        return True

    # ---- latency/throughput extraction ---------------------------------------

    def latencies(self, machine, program):
        """Per-request (dispatch_cycle, completion_cycle) from the trace.

        Needs ``trace_enabled=True``; the dispatch marker is the
        controller's store into ``issued[r]``, completion is the
        worker's store into ``results[r]``.  Returns a list of
        ``(request, dispatch, completion)`` in request order.
        """
        nr = self.num_requests
        issued_base = program.symbol("issued")
        results_base = program.symbol("results")
        dispatch = {}
        complete = {}
        for cycle, _core, _hart, kind, payload in machine.trace.events:
            if kind != "mem_store":
                continue
            addr = int(payload.split()[1], 16)
            if issued_base <= addr < issued_base + 4 * nr:
                dispatch.setdefault((addr - issued_base) // 4, cycle)
            elif results_base <= addr < results_base + 4 * nr:
                complete.setdefault((addr - results_base) // 4, cycle)
        missing = [i for i in range(nr) if i not in dispatch or i not in complete]
        if missing:
            raise AssertionError(
                "serving: no trace timestamps for requests %r (trace "
                "disabled, or the run did not finish?)" % missing[:8])
        return [(self.requests[i], dispatch[i], complete[i])
                for i in range(nr)]

    def latency_summary(self, machine, program, stats):
        """{p50, p99, max, mean, throughput_rp kc} over the whole run."""
        samples = sorted(done - issue
                         for _r, issue, done in self.latencies(machine, program))
        count = len(samples)

        def pct(q):
            return samples[min(count - 1, int(q * count))]

        return {
            "requests": count,
            "lat_p50": pct(0.50),
            "lat_p99": pct(0.99),
            "lat_max": samples[-1],
            "lat_mean": round(sum(samples) / count, 1),
            "throughput_rpkc": round(1000.0 * count / stats.cycles, 3),
        }


def serving_source(cores, num_requests, seed=0, **kwargs):
    """DetC source of one serving scenario (convenience wrapper)."""
    return ServingWorkload(cores, num_requests, seed=seed, **kwargs).source
