"""Tree reduction — geometrically narrowing cross-hart reads.

Phase 1: every hart sums its own slice into ``partial[t]`` (disjoint
writes).  Then ``log2(h)`` combine passes: pass with stride *s* runs *s*
threads, each folding ``partial[m + s]`` — a word written by a
*different* hart in the previous pass — into ``partial[m]``.  The access
distance halves every pass, so the final passes are pure cross-core
traffic with tiny work per thread: the worst case for any engine that
batches or reorders cross-shard stores, and the sharpest probe of the
join's happens-before edge (read-after-write to the same word across
regions).  Self-checking: ``partial[0]`` must equal ``sum(values)``.
"""

import random

MASK32 = 0xFFFFFFFF


def _is_pow2(value):
    return value > 0 and value & (value - 1) == 0


class ReductionWorkload:
    """h-hart tree sum of ``h * chunk`` seeded values."""

    def __init__(self, h, chunk=16, seed=0, max_value=1 << 20):
        if not _is_pow2(h):
            raise ValueError("h must be a power of two (combine tree)")
        self.h = h
        self.chunk = chunk
        self.n = h * chunk
        self.seed = seed
        rng = random.Random(seed)
        self.values = [rng.randrange(max_value) for _ in range(self.n)]

    @property
    def source(self):
        combine_fns = []
        regions = []
        stride = self.h // 2
        index = 0
        while stride >= 1:
            combine_fns.append("""
void combine%(i)d(int m) {
    partial[m] += partial[m + %(s)d];
}""" % {"i": index, "s": stride})
            regions.append("""
    omp_set_num_threads(%(s)d);
    #pragma omp parallel for
    for (t = 0; t < %(s)d; t++)
        combine%(i)d(t);""" % {"s": stride, "i": index})
            stride //= 2
            index += 1
        return """
#include <det_omp.h>
int V[%(n)d] = {%(values)s};
int partial[%(h)d];
int result;

void leaf(int t) {
    int i, acc;
    acc = 0;
    for (i = t * %(chunk)d; i < (t + 1) * %(chunk)d; i++)
        acc += V[i];
    partial[t] = acc;
}
%(combine_fns)s

void main() {
    int t;
    omp_set_num_threads(%(h)d);
    #pragma omp parallel for
    for (t = 0; t < %(h)d; t++)
        leaf(t);
%(regions)s
    result = partial[0];
}
""" % {
            "n": self.n, "h": self.h, "chunk": self.chunk,
            "values": ", ".join(str(v) for v in self.values),
            "combine_fns": "".join(combine_fns),
            "regions": "".join(regions),
        }

    def expected(self):
        return sum(self.values) & MASK32

    def verify(self, machine, program):
        expected = self.expected()
        for symbol in ("result",):
            actual = machine.read_word(program.symbol(symbol))
            if actual != expected:
                raise AssertionError(
                    "reduction: %s is %d, expected %d"
                    % (symbol, actual, expected))
        return True


def reduction_source(h, chunk=16, seed=0):
    return ReductionWorkload(h, chunk, seed).source
