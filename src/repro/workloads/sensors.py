"""The paper's figure-16 sensor-fusion application.

Four sensors respond in a non-deterministic order; a team of four harts
polls them in parallel (``parallel sections``), the join orders the
fusion after all four inputs, and the fused value goes to an actuator.
LBP takes no interrupt anywhere: inputs are active waits, and the
position of the input code in the static program fixes the semantics —
the fusion of round *r* always combines the four round-*r* samples, no
matter in which order they arrived (referential sequential order).

Sensor devices sit in the last core's shared bank, the actuator in core
0's bank (paper fig. 17's controller placement).
"""

from repro import memmap
from repro.machine.io import Actuator, RandomInput, ScriptedInput, attach_input, attach_output

#: byte offset of the device window inside a shared bank
DEVICE_WINDOW = 0x80000


def sensor_addr(num_cores, index):
    """MMIO base of sensor *index* (in the last core's bank)."""
    return memmap.global_bank_base(num_cores - 1) + DEVICE_WINDOW + 16 * index


def actuator_addr():
    """MMIO base of the actuator (in core 0's bank)."""
    return memmap.global_bank_base(0) + DEVICE_WINDOW


def sensors_source(num_cores, rounds):
    """DetC source of the fusion loop (figure 16, with a bounded loop)."""
    addrs = [sensor_addr(num_cores, i) for i in range(4)]
    act = actuator_addr()
    sections = "\n".join(
        """        #pragma omp section
        { get_sensor%d(); }""" % i for i in range(4)
    )
    getters = "\n".join(
        """
void get_sensor%(i)d(void) {
    while (*(int*)%(status)dU == 0)
        ;                     /* active wait: no interrupt on LBP */
    s[%(i)d] = *(int*)%(value)dU;
}""" % {"i": i, "status": addrs[i], "value": addrs[i] + 4}
        for i in range(4)
    )
    return """
#include <det_omp.h>
int s[4];
int f;
%(getters)s

int fusion(void) {
    return (s[0] + s[1] + s[2] + s[3]) / 4;
}

void main() {
    int r;
    for (r = 0; r < %(rounds)d; r++) {
        #pragma omp parallel sections
        {
%(sections)s
        }
        f = fusion();
        *(int*)%(act_value)dU = f;   /* set_actuator */
    }
}
""" % {
        "getters": getters,
        "sections": sections,
        "rounds": rounds,
        "act_value": act + 4,
    }


def attach_sensors(machine, num_cores, schedules):
    """Attach four input sensors + the actuator; returns (sensors, actuator).

    ``schedules`` is a list of four event lists ``[(ready_cycle, value)]``
    (or already-built device objects, e.g. :class:`RandomInput`).
    """
    sensors = []
    for index, schedule in enumerate(schedules):
        device = schedule if hasattr(schedule, "ready") else ScriptedInput(schedule)
        attach_input(machine, sensor_addr(num_cores, index), device)
        sensors.append(device)
    actuator = attach_output(machine, actuator_addr(), Actuator())
    return sensors, actuator


def expected_fusions(schedules, rounds):
    """Reference fused outputs: round r combines each sensor's r-th value."""
    out = []
    for r in range(rounds):
        total = 0
        for device_events in schedules:
            events = device_events.events if hasattr(device_events, "events") \
                else sorted(device_events)
            total += events[r][1]
        out.append((total & 0xFFFFFFFF) // 4 if total >= 0 else total // 4)
    return out
