"""The paper's §6 I/O architecture: controller harts, request words, DMA.

Figure 17: a dedicated *input controller* hart polls the input devices;
a hart that wants an input writes a request word into the controller's
shared bank (a plain ``sw``), then executes ``p_lwre``; once the device
produces the value, the controller forwards it over the intercore
backward line with ``p_swre``, and the requester's out-of-order engine
wakes the blocked ``p_lwre`` through the result-buffer RAW dependency.
"Once the data is available to the input controller, within a few cycles
it is received by the requesting hart."

The same pattern builds a **DMA unit** (§6 last paragraph): one hart
streams a structured input into the distributed shared banks, then
synchronises each consumer with a ``p_swre``/``p_lwre`` token instead of
an interrupt.

Both generators place the controller as the *last* team member (the
paper puts it on the last core), so every ``p_swre`` travels backward —
"a data cannot go back in time".
"""

from repro import memmap

#: device window inside the controller core's bank
DEVICE_OFFSET = 0x90000


def stream_device_addr(num_cores):
    """MMIO base of the streamed input device (last core's bank)."""
    return memmap.global_bank_base(num_cores - 1) + DEVICE_OFFSET


def controller_source(num_cores, num_workers):
    """Request/response I/O through a controller hart (figure 17).

    ``num_workers`` worker sections each publish their hart id in the
    request array (in the controller's core bank), then block on
    ``p_lwre``.  The controller polls the device once per request, reads
    the value, and ``p_swre``-forwards it to the requester.  Worker w
    stores its received value into ``results[w]``.
    """
    device = stream_device_addr(num_cores)
    total = num_workers + 1
    worker_sections = "\n".join(
        """        #pragma omp section
        { worker(%d); }""" % w for w in range(num_workers)
    )
    return """
#include <det_omp.h>
#define NWORKERS %(workers)d
int requests[NWORKERS] __bank(%(last)d) = {[0 ... %(wmax)d] = -1};
int results[NWORKERS];

void worker(int w) {
    *(requests + w) = __hart_id();      /* request word: who is asking */
    results[w] = __p_lwre(0);           /* blocks until the p_swre lands */
}

void controller(void) {
    int i, who, value;
    for (i = 0; i < NWORKERS; i++) {
        while (*(requests + i) == -1)
            ;                            /* wait for the request word */
        who = *(requests + i);
        while (*(int*)%(status)dU == 0)
            ;                            /* active wait on the device */
        value = *(int*)%(value)dU;
        __p_swre(who, 0, value);         /* backward line, a few cycles */
    }
}

void main() {
    #pragma omp parallel sections
    {
%(sections)s
        #pragma omp section
        { controller(); }
    }
}
""" % {
        "workers": num_workers,
        "wmax": num_workers - 1,
        "last": num_cores - 1,
        "status": device,
        "value": device + 4,
        "sections": worker_sections,
        "total": total,
    }


def dma_source(num_cores, words_per_core):
    """DMA fill + token synchronisation (§6 last paragraph).

    The controller (last team member) streams ``num_cores ×
    words_per_core`` values from the device and scatters them chunk by
    chunk into the banks (the DMA) — consumer c's chunk goes to the bank
    of the core consumer c runs on (member c → core c/4), so after the
    fill each consumer's data is core-local.  The controller then sends
    one completion token per consumer over the backward line; consumer c
    blocks on ``p_lwre``, then sums its local chunk into ``sums[c]``.
    """
    device = stream_device_addr(num_cores)
    consumer_sections = "\n".join(
        """        #pragma omp section
        { consumer(%d); }""" % c for c in range(num_cores)
    )
    return """
#include <det_omp.h>
#define NCONS %(cores)d
#define WORDS %(words)d
#define GB %(gb)dU
#define CHUNK(c) ((int*)(GB + (((unsigned)(c) >> 2) << 20) + %(chunk_off)d \\
                  + ((c) & 3) * (WORDS * 4)))
int tokens[NCONS] __bank(%(last)d) = {[0 ... %(cmax)d] = -1};
int sums[NCONS];

void consumer(int c) {
    int i, acc;
    int *p = CHUNK(c);
    *(tokens + c) = __hart_id();        /* register with the DMA hart */
    __p_lwre(1);                        /* wait for the completion token */
    acc = 0;
    for (i = 0; i < WORDS; i++)
        acc += p[i];                    /* the chunk is core-local now */
    sums[c] = acc;
}

void controller(void) {
    int c, i, value;
    for (c = 0; c < NCONS; c++)         /* the DMA fill */
        for (i = 0; i < WORDS; i++) {
            while (*(int*)%(status)dU == 0)
                ;
            value = *(int*)%(value)dU;
            CHUNK(c)[i] = value;
        }
    __p_syncm();                        /* all DMA stores are in the banks */
    for (c = 0; c < NCONS; c++) {
        while (*(tokens + c) == -1)
            ;
        __p_swre(*(tokens + c), 1, 1);  /* completion token, no interrupt */
    }
}

void main() {
    #pragma omp parallel sections
    {
%(sections)s
        #pragma omp section
        { controller(); }
    }
}
""" % {
        "cores": num_cores,
        "words": words_per_core,
        "cmax": num_cores - 1,
        "last": num_cores - 1,
        "gb": memmap.GLOBAL_BASE,
        "chunk_off": 0x60000,
        "status": device,
        "value": device + 4,
        "sections": consumer_sections,
    }
