"""Workload generators: the paper's evaluation programs plus the
scenario-diversity families, as DetC sources.

Paper programs:

* :mod:`repro.workloads.matmul` — the five matrix-multiplication versions
  of section 7 (base, copy, distributed, d+c, tiled), parametrised by the
  hart count *h*.
* :mod:`repro.workloads.setget` — the two-phase producer/consumer vector
  code of figure 4 (locality + hardware barrier).
* :mod:`repro.workloads.sensors` — the sensor-fusion I/O application of
  figure 16.
* :mod:`repro.workloads.iopatterns` — the §6 controller-hart and DMA
  patterns (figure 17).

Scenario-diversity families (each self-checking against a Python
reference, each pinned by the golden conformance tier — see
``tests/integration/test_workload_conformance.py``):

* :mod:`repro.workloads.serving` — a deterministic request/response
  server on the I/O-controller harts: seeded request schedule baked into
  the program, dispatch over ``p_swre`` dependency chains, per-request
  latency recoverable from the trace.
* :mod:`repro.workloads.sort` — parallel merge sort (per-hart slices +
  log2(h) ping-pong merge passes).
* :mod:`repro.workloads.stencil` — 1-D 3-point Jacobi steps with
  neighbour-boundary sharing between regions.
* :mod:`repro.workloads.reduction` — tree reduction with geometrically
  narrowing cross-hart reads.
* :mod:`repro.workloads.histogram` — private counters + transposed
  merge; data-dependent store addressing.
"""

from repro.workloads.matmul import MATMUL_VERSIONS, matmul_source, verify_matmul
from repro.workloads.histogram import HistogramWorkload, histogram_source
from repro.workloads.reduction import ReductionWorkload, reduction_source
from repro.workloads.serving import ServingWorkload, serving_source
from repro.workloads.sort import SortWorkload, sort_source
from repro.workloads.stencil import StencilWorkload, stencil_source

__all__ = [
    "MATMUL_VERSIONS", "matmul_source", "verify_matmul",
    "ServingWorkload", "serving_source",
    "SortWorkload", "sort_source",
    "StencilWorkload", "stencil_source",
    "ReductionWorkload", "reduction_source",
    "HistogramWorkload", "histogram_source",
]
