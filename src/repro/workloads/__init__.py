"""Workload generators: the paper's evaluation programs, as DetC sources.

* :mod:`repro.workloads.matmul` — the five matrix-multiplication versions
  of section 7 (base, copy, distributed, d+c, tiled), parametrised by the
  hart count *h*.
* :mod:`repro.workloads.setget` — the two-phase producer/consumer vector
  code of figure 4 (locality + hardware barrier).
* :mod:`repro.workloads.sensors` — the sensor-fusion I/O application of
  figure 16.
"""

from repro.workloads.matmul import MATMUL_VERSIONS, matmul_source, verify_matmul

__all__ = ["MATMUL_VERSIONS", "matmul_source", "verify_matmul"]
