"""Prometheus text-format rendering and validation (exposition 0.0.4).

The serve daemon's ``/metrics`` endpoint is assembled here from plain
numbers the server already tracks — no client library, no registry
singletons, no background threads.  The server hands
:func:`render` a list of metric families each scrape; rendering is
pure, so the endpoint can never perturb a running job.

:func:`validate_prometheus_text` is the same checker CI runs against a
live daemon: it enforces the structural rules a real Prometheus scraper
cares about (``# TYPE`` precedes samples, sample syntax, histogram
``le`` buckets monotone and capped by ``+Inf == _count``).
"""

import math
import re

__all__ = ["Histogram", "family", "render", "validate_prometheus_text"]

#: fixed latency buckets (seconds): sub-ms cache hits through 10 s
#: simulations.  Fixed — not adaptive — so rates are comparable across
#: scrapes and across daemon restarts.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics).

    ``observe()`` is O(buckets) with no allocation — cheap enough for
    the request path.  Buckets are cumulative at render time only.
    """

    __slots__ = ("buckets", "counts", "inf_count", "total", "count")

    def __init__(self, buckets=LATENCY_BUCKETS):
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * len(self.buckets)
        self.inf_count = 0
        self.total = 0.0
        self.count = 0

    def observe(self, value):
        value = float(value)
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.inf_count += 1

    def samples(self, name, labels=None):
        """Cumulative ``_bucket``/``_sum``/``_count`` sample rows."""
        rows = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            rows.append((name + "_bucket",
                         _merge_labels(labels, le=_format_bound(bound)),
                         running))
        running += self.inf_count
        rows.append((name + "_bucket", _merge_labels(labels, le="+Inf"),
                     running))
        rows.append((name + "_sum", dict(labels or {}), self.total))
        rows.append((name + "_count", dict(labels or {}), self.count))
        return rows


def _format_bound(bound):
    # 0.25 -> "0.25", 1.0 -> "1.0": repr keeps the shortest float form
    return repr(float(bound))


def _merge_labels(labels, **extra):
    merged = dict(labels or {})
    merged.update(extra)
    return merged


def family(name, kind, help_text, samples):
    """One metric family: *samples* is ``[(suffix_name, labels, value)]``
    for histograms (pre-suffixed) or ``[(labels, value)]`` for
    counters/gauges, where labels may be None."""
    normalized = []
    for sample in samples:
        if len(sample) == 3:
            normalized.append(sample)
        else:
            labels, value = sample
            normalized.append((name, labels, value))
    return {"name": name, "kind": kind, "help": help_text,
            "samples": normalized}


def _escape_help(text):
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value):
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value):
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return repr(value)
        return repr(value)
    return str(value)


def render(families):
    """Render metric families to exposition text (trailing newline)."""
    lines = []
    for fam in families:
        lines.append("# HELP %s %s" % (fam["name"], _escape_help(fam["help"])))
        lines.append("# TYPE %s %s" % (fam["name"], fam["kind"]))
        for name, labels, value in fam["samples"]:
            if labels:
                label_text = ",".join(
                    '%s="%s"' % (key, _escape_label(labels[key]))
                    for key in sorted(labels))
                lines.append("%s{%s} %s" % (name, label_text,
                                            _format_value(value)))
            else:
                lines.append("%s %s" % (name, _format_value(value)))
    return "\n".join(lines) + "\n"


# ---- validation --------------------------------------------------------------

_METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^ ]+)(?:\s+\d+)?$")
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')

_VALID_KINDS = {"counter", "gauge", "histogram", "summary", "untyped"}


def _parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _base_name(name, types):
    """Map a sample name to its declared family (histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def validate_prometheus_text(text):
    """Structurally validate exposition text; raise ValueError on the
    first violation, return the parsed family dict on success.

    Checks: TYPE before samples, valid TYPE kinds, sample-line syntax,
    label syntax, histogram ``le`` buckets strictly orderable with a
    ``+Inf`` bucket equal to ``_count``, cumulative bucket monotonicity,
    and ``_sum``/``_count`` present for every histogram.
    """
    if not text.endswith("\n"):
        raise ValueError("exposition text must end with a newline")
    types = {}
    seen_samples = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise ValueError("line %d: malformed TYPE" % lineno)
            _, _, name, kind = parts
            if not _METRIC_RE.match(name):
                raise ValueError("line %d: bad metric name %r" % (lineno, name))
            if kind not in _VALID_KINDS:
                raise ValueError("line %d: bad TYPE kind %r" % (lineno, kind))
            if name in types:
                raise ValueError("line %d: duplicate TYPE for %s" % (lineno, name))
            if any(_base_name(s, types) == name for s in seen_samples):
                raise ValueError(
                    "line %d: TYPE for %s after its samples" % (lineno, name))
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError("line %d: malformed sample %r" % (lineno, line))
        name = match.group("name")
        labels = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in _split_labels(raw_labels, lineno):
                if not _LABEL_RE.match(pair):
                    raise ValueError(
                        "line %d: malformed label %r" % (lineno, pair))
                key, _, value = pair.partition("=")
                labels[key] = value[1:-1]
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError("line %d: malformed sample value %r"
                             % (lineno, match.group("value")))
        base = _base_name(name, types)
        if base not in types:
            raise ValueError(
                "line %d: sample %s has no preceding TYPE" % (lineno, name))
        seen_samples.setdefault(name, []).append((labels, value))
    _check_histograms(types, seen_samples)
    return {"types": types, "samples": seen_samples}


def _split_labels(raw, lineno):
    """Split `a="x",b="y"` on commas outside quotes."""
    pairs, depth, current = [], False, []
    escaped = False
    for char in raw:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            depth = not depth
            current.append(char)
            continue
        if char == "," and not depth:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    if depth:
        raise ValueError("line %d: unterminated label quote" % lineno)
    return pairs


def _check_histograms(types, seen_samples):
    for name, kind in types.items():
        if kind != "histogram":
            continue
        buckets = seen_samples.get(name + "_bucket", [])
        sums = seen_samples.get(name + "_sum", [])
        counts = seen_samples.get(name + "_count", [])
        if not buckets:
            raise ValueError("histogram %s has no _bucket samples" % name)
        if not sums or not counts:
            raise ValueError("histogram %s missing _sum or _count" % name)
        # group buckets by their non-le labels (one series per label set)
        series = {}
        for labels, value in buckets:
            if "le" not in labels:
                raise ValueError("histogram %s bucket missing le" % name)
            rest = tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le"))
            series.setdefault(rest, []).append((labels["le"], value))
        count_by_series = {
            tuple(sorted(labels.items())): value for labels, value in counts}
        for rest, entries in series.items():
            parsed = [(_parse_value(le), value) for le, value in entries]
            parsed.sort(key=lambda pair: pair[0])
            bounds = [bound for bound, _ in parsed]
            values = [value for _, value in parsed]
            if not math.isinf(bounds[-1]):
                raise ValueError("histogram %s missing +Inf bucket" % name)
            if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                raise ValueError("histogram %s has duplicate le bounds" % name)
            if any(v2 < v1 for v1, v2 in zip(values, values[1:])):
                raise ValueError(
                    "histogram %s buckets not cumulative" % name)
            expected = count_by_series.get(rest)
            if expected is not None and values[-1] != expected:
                raise ValueError(
                    "histogram %s +Inf bucket %s != _count %s"
                    % (name, values[-1], expected))
