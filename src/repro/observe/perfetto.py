"""Chrome trace-event JSON export, loadable in ui.perfetto.dev.

Layout: one *process* per core, one *thread track* per hart (built from
the team-protocol trace events via ``machine/timeline.py``'s lanes), and
one extra "metrics" process carrying counter tracks (IPC, active harts,
memory mix, stall-reason mix) sampled from the windowed metrics.

The exporter emits events lane by lane in ascending hart order with each
lane's events in cycle order, so the output is deterministic and every
track's timestamps are monotonic — the two properties
:func:`validate_chrome_trace` checks (and CI enforces on the uploaded
artifact).  Timestamps are simulated cycles, presented as microseconds
(the trace-event format has no unitless time).
"""

import json

from repro.machine.timeline import build_lanes
from repro.observe.export import build_report
from repro.observe.metrics import STALL_REASONS

#: instant-event names per timeline mark character
_MARK_NAMES = {
    "F": "boot",
    "s": "start",
    "E": "end",
    "J": "join",
    "W": "wait",
    "X": "exit",
    "f": "fork",
}


def chrome_trace(machine):
    """Build the trace-event dict for a finished machine (trace enabled)."""
    params = machine.params
    hpc = params.harts_per_core
    events = machine.trace.events
    lanes, last = build_lanes(events, params.num_harts, hpc)
    out = []
    seen_cores = []
    for lane in lanes:
        if not lane.intervals and not lane.marks:
            continue
        core = lane.gid // hpc
        if core not in seen_cores:
            seen_cores.append(core)
            out.append({
                "ph": "M", "name": "process_name", "pid": core, "tid": 0,
                "args": {"name": "core %d" % core},
            })
        out.append({
            "ph": "M", "name": "thread_name", "pid": core, "tid": lane.gid,
            "args": {"name": "hart %d" % lane.gid},
        })
        track = []
        for begin, end in lane.intervals:
            track.append((begin, 0, {
                "ph": "X", "name": "active", "cat": "hart",
                "pid": core, "tid": lane.gid,
                "ts": begin, "dur": max(end - begin, 1),
            }))
        for cycle, char in lane.marks:
            track.append((cycle, 1, {
                "ph": "i", "s": "t",
                "name": _MARK_NAMES.get(char, char),
                "cat": "team", "pid": core, "tid": lane.gid, "ts": cycle,
            }))
        track.sort(key=lambda item: (item[0], item[1]))
        out.extend(item[2] for item in track)
    if machine.metrics is not None:
        out.extend(_counter_events(machine, pid=params.num_cores))
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.observe",
            "cycles": machine.stats.cycles or last,
            "num_cores": params.num_cores,
            "harts_per_core": hpc,
        },
    }


def _counter_events(machine, pid):
    """Counter tracks from the windowed metrics, one process for all."""
    report = build_report(machine)
    out = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": "metrics (interval %d)" % report["interval"]},
    }]
    for row in report["windows"]:
        ts = row["start"]
        out.append({"ph": "C", "name": "ipc", "pid": pid, "tid": 0,
                    "ts": ts, "args": {"ipc": row["ipc"]}})
        out.append({"ph": "C", "name": "active_harts", "pid": pid, "tid": 0,
                    "ts": ts, "args": {"harts": row["active_harts"]}})
        out.append({"ph": "C", "name": "memory_mix", "pid": pid, "tid": 0,
                    "ts": ts,
                    "args": {"local": row["local"], "remote": row["remote"]}})
        out.append({"ph": "C", "name": "stalls", "pid": pid, "tid": 0,
                    "ts": ts,
                    "args": {name: row["stalls"][name]
                             for name in STALL_REASONS}})
    return out


def validate_chrome_trace(data):
    """Schema check; returns a list of error strings (empty = valid).

    Checks the required keys per event phase and that timestamps are
    monotonically non-decreasing within each (pid, tid) track — exactly
    what the exporter guarantees and the CI observe job enforces.
    """
    errors = []
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ["top level must be a dict with a 'traceEvents' list"]
    events = data["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    last_ts = {}
    for position, event in enumerate(events):
        where = "traceEvents[%d]" % position
        if not isinstance(event, dict):
            errors.append("%s: not an object" % where)
            continue
        for key in ("ph", "name", "pid", "tid"):
            if key not in event:
                errors.append("%s: missing required key %r" % (where, key))
        ph = event.get("ph")
        if ph not in ("M", "X", "i", "C", "B", "E"):
            errors.append("%s: unknown phase %r" % (where, ph))
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append("%s: 'ts' must be a non-negative number" % where)
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    "%s: 'X' events need a non-negative 'dur'" % where)
        track = (event.get("pid"), event.get("tid"))
        previous = last_ts.get(track)
        if previous is not None and ts < previous:
            errors.append(
                "%s: ts %r goes backward on track pid=%r tid=%r (last %r)"
                % (where, ts, track[0], track[1], previous))
        else:
            last_ts[track] = ts
    return errors


def write_chrome_trace(machine, path):
    """Export, validate and write; returns the number of trace events."""
    data = chrome_trace(machine)
    errors = validate_chrome_trace(data)
    if errors:
        raise ValueError(
            "exported trace fails its own schema: " + "; ".join(errors[:5]))
    with open(path, "w") as handle:
        json.dump(data, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return len(data["traceEvents"])
