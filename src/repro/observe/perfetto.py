"""Chrome trace-event JSON export, loadable in ui.perfetto.dev.

Layout: one *process* per core, one *thread track* per hart (built from
the team-protocol trace events via ``machine/timeline.py``'s lanes), and
one extra "metrics" process carrying counter tracks (IPC, active harts,
memory mix, stall-reason mix) sampled from the windowed metrics.

The exporter emits events lane by lane in ascending hart order with each
lane's events in cycle order, so the output is deterministic and every
track's timestamps are monotonic — the two properties
:func:`validate_chrome_trace` checks (and CI enforces on the uploaded
artifact).  Timestamps are simulated cycles, presented as microseconds
(the trace-event format has no unitless time).
"""

import json

from repro.machine.timeline import build_lanes
from repro.observe.export import build_report
from repro.observe.metrics import STALL_REASONS

#: instant-event names per timeline mark character
_MARK_NAMES = {
    "F": "boot",
    "s": "start",
    "E": "end",
    "J": "join",
    "W": "wait",
    "X": "exit",
    "f": "fork",
}


def chrome_trace(machine):
    """Build the trace-event dict for a finished machine (trace enabled)."""
    params = machine.params
    hpc = params.harts_per_core
    events = machine.trace.events
    lanes, last = build_lanes(events, params.num_harts, hpc)
    out = []
    seen_cores = []
    for lane in lanes:
        if not lane.intervals and not lane.marks:
            continue
        core = lane.gid // hpc
        if core not in seen_cores:
            seen_cores.append(core)
            out.append({
                "ph": "M", "name": "process_name", "pid": core, "tid": 0,
                "args": {"name": "core %d" % core},
            })
        out.append({
            "ph": "M", "name": "thread_name", "pid": core, "tid": lane.gid,
            "args": {"name": "hart %d" % lane.gid},
        })
        track = []
        for begin, end in lane.intervals:
            track.append((begin, 0, {
                "ph": "X", "name": "active", "cat": "hart",
                "pid": core, "tid": lane.gid,
                "ts": begin, "dur": max(end - begin, 1),
            }))
        for cycle, char in lane.marks:
            track.append((cycle, 1, {
                "ph": "i", "s": "t",
                "name": _MARK_NAMES.get(char, char),
                "cat": "team", "pid": core, "tid": lane.gid, "ts": cycle,
            }))
        track.sort(key=lambda item: (item[0], item[1]))
        out.extend(item[2] for item in track)
    if machine.metrics is not None:
        out.extend(_counter_events(machine, pid=params.num_cores))
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.observe",
            "cycles": machine.stats.cycles or last,
            "num_cores": params.num_cores,
            "harts_per_core": hpc,
        },
    }


def _counter_events(machine, pid):
    """Counter tracks from the windowed metrics, one process for all."""
    report = build_report(machine)
    out = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": "metrics (interval %d)" % report["interval"]},
    }]
    for row in report["windows"]:
        ts = row["start"]
        out.append({"ph": "C", "name": "ipc", "pid": pid, "tid": 0,
                    "ts": ts, "args": {"ipc": row["ipc"]}})
        out.append({"ph": "C", "name": "active_harts", "pid": pid, "tid": 0,
                    "ts": ts, "args": {"harts": row["active_harts"]}})
        out.append({"ph": "C", "name": "memory_mix", "pid": pid, "tid": 0,
                    "ts": ts,
                    "args": {"local": row["local"], "remote": row["remote"]}})
        out.append({"ph": "C", "name": "stalls", "pid": pid, "tid": 0,
                    "ts": ts,
                    "args": {name: row["stalls"][name]
                             for name in STALL_REASONS}})
    return out


#: pid offset for service-span processes in a merged trace, so real OS
#: pids can never collide with core pids 0..num_cores (metrics track)
_SERVICE_PID_BASE = 100000


def _span_events(spans, t0):
    """Chrome events for service span records, one process per OS pid.

    Timestamps are ``(start_s - t0)`` seconds presented as microseconds;
    *t0* is the merged trace's origin (the earliest instant anywhere in
    the file), so span tracks and anchored core timelines share an axis.
    """
    out = []
    seen_pids = []
    by_pid = {}
    for record in spans:
        if record.get("end_s") is None:
            continue
        by_pid.setdefault(record.get("pid", 0), []).append(record)
    for os_pid in sorted(by_pid):
        pid = _SERVICE_PID_BASE + os_pid
        if os_pid not in seen_pids:
            seen_pids.append(os_pid)
            out.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": "service pid %d" % os_pid},
            })
            out.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": 0,
                "args": {"name": "spans"},
            })
        track = []
        for record in by_pid[os_pid]:
            ts = (record["start_s"] - t0) * 1e6
            dur = max((record["end_s"] - record["start_s"]) * 1e6, 0.001)
            args = {"trace_id": record["trace_id"],
                    "span_id": record["span_id"]}
            if record.get("parent_id"):
                args["parent_id"] = record["parent_id"]
            for key, value in (record.get("tags") or {}).items():
                args[str(key)] = value
            track.append((ts, -dur, {
                "ph": "X", "name": record["name"], "cat": "service",
                "pid": pid, "tid": 0, "ts": round(ts, 3),
                "dur": round(dur, 3), "args": args,
            }))
        # sort by start, longest-first on ties, so containment nests
        track.sort(key=lambda item: (item[0], item[1]))
        out.extend(item[2] for item in track)
    return out


def merged_chrome_trace(machine, spans, clock=None):
    """One Perfetto file holding service spans AND the core timelines.

    *spans* are span records (``SpanRecorder`` dicts); *clock* is the
    :func:`repro.observe.spans.clock_anchor` of the machine's run, used
    to place cycle-stamped core events on the spans' wall-clock axis:
    cycle ``c`` lands at ``anchor + c * wall/cycles`` — an affine map
    that preserves order and containment, so every core event falls
    inside the "run" span that produced it.  Without *clock* (or a
    machine) the file holds the spans alone.

    The merged file is a superset presentation: the core half is the
    ordinary :func:`chrome_trace` output with remapped timestamps, the
    service half is span tracks per OS pid.
    """
    finished = [r for r in spans if r.get("end_s") is not None]
    t0 = min((r["start_s"] for r in finished), default=None)
    if clock is not None:
        t0 = clock["start_s"] if t0 is None else min(t0, clock["start_s"])
    if t0 is None:
        t0 = 0.0
    out = list(_span_events(finished, t0))
    core = None
    if machine is not None and clock is not None:
        core = chrome_trace(machine)
        offset_us = (clock["start_s"] - t0) * 1e6
        scale = (clock["wall_s"] / clock["cycles"]) if clock["cycles"] else 0.0
        scale_us = scale * 1e6
        for event in core["traceEvents"]:
            if "ts" in event:
                event["ts"] = round(offset_us + event["ts"] * scale_us, 3)
            if "dur" in event:
                event["dur"] = round(max(event["dur"] * scale_us, 0.001), 3)
        out.extend(core["traceEvents"])
    data = {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.observe",
            "merged": True,
            "spans": len(finished),
            "clock": dict(clock) if clock is not None else None,
        },
    }
    if core is not None:
        for key in ("cycles", "num_cores", "harts_per_core"):
            data["otherData"][key] = core["otherData"][key]
    return data


def shared_clock_errors(data):
    """Check the merged file's shared-clock claim; [] means it holds.

    Every core/metrics event (pid below the service base) must land
    inside some service "run" span's [ts, ts+dur] interval — the affine
    cycle→wall map is anchored to the run, so containment is exactly
    what "shared clock" means in the merged view.
    """
    errors = []
    runs = [event for event in data.get("traceEvents", ())
            if event.get("cat") == "service" and event.get("name") == "run"]
    if not runs:
        return ["merged trace has no service 'run' span"]
    epsilon = 0.5  # µs of rounding slack
    intervals = [(event["ts"] - epsilon,
                  event["ts"] + event.get("dur", 0) + epsilon)
                 for event in runs]
    for position, event in enumerate(data["traceEvents"]):
        if event.get("ph") == "M" or "ts" not in event:
            continue
        if event.get("pid", 0) >= _SERVICE_PID_BASE:
            continue
        ts = event["ts"]
        end = ts + event.get("dur", 0)
        if not any(lo <= ts and end <= hi for lo, hi in intervals):
            errors.append(
                "traceEvents[%d]: core event %r at ts=%r escapes every "
                "run span" % (position, event.get("name"), ts))
    return errors


def validate_chrome_trace(data):
    """Schema check; returns a list of error strings (empty = valid).

    Checks the required keys per event phase and that timestamps are
    monotonically non-decreasing within each (pid, tid) track — exactly
    what the exporter guarantees and the CI observe job enforces.
    """
    errors = []
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ["top level must be a dict with a 'traceEvents' list"]
    events = data["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    last_ts = {}
    for position, event in enumerate(events):
        where = "traceEvents[%d]" % position
        if not isinstance(event, dict):
            errors.append("%s: not an object" % where)
            continue
        for key in ("ph", "name", "pid", "tid"):
            if key not in event:
                errors.append("%s: missing required key %r" % (where, key))
        ph = event.get("ph")
        if ph not in ("M", "X", "i", "C", "B", "E"):
            errors.append("%s: unknown phase %r" % (where, ph))
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append("%s: 'ts' must be a non-negative number" % where)
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    "%s: 'X' events need a non-negative 'dur'" % where)
        track = (event.get("pid"), event.get("tid"))
        previous = last_ts.get(track)
        if previous is not None and ts < previous:
            errors.append(
                "%s: ts %r goes backward on track pid=%r tid=%r (last %r)"
                % (where, ts, track[0], track[1], previous))
        else:
            last_ts[track] = ts
    return errors


def write_chrome_trace(machine, path, spans=None, clock=None):
    """Export, validate and write; returns the number of trace events.

    Without *spans*/*clock* this is the PR 5 core-timeline export,
    byte-for-byte.  With them it writes the merged service+core file
    (see :func:`merged_chrome_trace`); *machine* may then be None for a
    spans-only file.
    """
    if spans is None and clock is None:
        data = chrome_trace(machine)
    else:
        data = merged_chrome_trace(machine, spans or [], clock)
    errors = validate_chrome_trace(data)
    if errors:
        raise ValueError(
            "exported trace fails its own schema: " + "; ".join(errors[:5]))
    with open(path, "w") as handle:
        json.dump(data, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return len(data["traceEvents"])
