"""Zero-perturbation telemetry: stall attribution, windows, exporters.

Public surface::

    from repro.observe import Metrics
    machine = LBP(params, metrics=Metrics(interval=4096))
    machine.run()
    report = machine.metrics_report()       # build_report(machine)
    print("\\n".join(stall_table(report)))
    write_chrome_trace(machine, "trace.json")   # open in ui.perfetto.dev

Every hook is observation-only (see ``observe/metrics.py``): golden
trace digests are bit-exact with telemetry enabled, and shards=1 vs N
produce byte-identical reports.
"""

from repro.observe.export import (
    build_report,
    report_json,
    stall_table,
    transport_table,
    windows_csv,
    write_report_json,
    write_windows_csv,
)
from repro.observe.metrics import (
    DEFAULT_INTERVAL,
    STALL_REASONS,
    CoreTelemetry,
    Metrics,
)
from repro.observe.perfetto import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "DEFAULT_INTERVAL",
    "STALL_REASONS",
    "CoreTelemetry",
    "Metrics",
    "build_report",
    "report_json",
    "stall_table",
    "transport_table",
    "windows_csv",
    "write_report_json",
    "write_windows_csv",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
