"""Zero-perturbation telemetry: stall attribution, spans, exporters.

Public surface::

    from repro.observe import Metrics
    machine = LBP(params, metrics=Metrics(interval=4096))
    machine.run()
    report = machine.metrics_report()       # build_report(machine)
    print("\\n".join(stall_table(report)))
    write_chrome_trace(machine, "trace.json")   # open in ui.perfetto.dev

Service-plane observability (PR 10) rides the same module: monotonic
span records with by-value trace propagation (``SpanRecorder``),
Prometheus text rendering/validation for the daemon's ``/metrics``
endpoint (``observe.prom``), the merged service+core Perfetto export
(``merged_chrome_trace``), and the crash flight recorder
(``FlightRecorder``).

Every hook is observation-only (see ``observe/metrics.py`` and
``observe/spans.py``): golden trace digests are bit-exact with
telemetry *and* spans enabled, and shards=1 vs N produce byte-identical
reports.
"""

from repro.observe.export import (
    build_report,
    report_json,
    stall_table,
    transport_table,
    windows_csv,
    write_report_json,
    write_windows_csv,
)
from repro.observe.metrics import (
    DEFAULT_INTERVAL,
    STALL_REASONS,
    CoreTelemetry,
    Metrics,
)
from repro.observe.perfetto import (
    chrome_trace,
    merged_chrome_trace,
    shared_clock_errors,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observe.prom import (
    Histogram,
    render,
    validate_prometheus_text,
)
from repro.observe.spans import (
    FlightRecorder,
    Span,
    SpanRecorder,
    clock_anchor,
    flight,
    flight_dir,
    mint_trace_id,
    read_flight_dump,
)

__all__ = [
    "DEFAULT_INTERVAL",
    "STALL_REASONS",
    "CoreTelemetry",
    "FlightRecorder",
    "Histogram",
    "Metrics",
    "Span",
    "SpanRecorder",
    "build_report",
    "chrome_trace",
    "clock_anchor",
    "flight",
    "flight_dir",
    "merged_chrome_trace",
    "mint_trace_id",
    "read_flight_dump",
    "render",
    "report_json",
    "shared_clock_errors",
    "stall_table",
    "transport_table",
    "validate_chrome_trace",
    "validate_prometheus_text",
    "windows_csv",
    "write_chrome_trace",
    "write_report_json",
    "write_windows_csv",
]
