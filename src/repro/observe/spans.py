"""Lightweight spans, trace propagation by value, and the flight recorder.

This is the service-plane half of ``repro.observe``: PR 5's stall
attribution answers "where did the *machine* spend its cycles"; spans
answer "where did a *request* spend its wall-clock" — admission, quota,
cache probe, fork, shard epochs, merge, response — as one correlated
trace across every process a job touches.

Three design rules keep it safe next to the deterministic simulator:

* **observation only** — spans read the wall clock and nothing else;
  span state never enters ``state_dict``, cache keys or cached values,
  so golden digests and shard byte-identity are unchanged with tracing
  on;
* **propagation by value** — a trace context is a plain
  ``(trace_id, span_id)`` tuple handed through ordinary function
  arguments (task specs, fork args, run kwargs).  Nothing is ambient,
  so forked workers and shard processes need no shared registry;
* **near-zero disabled cost** — every instrumentation site guards on
  ``recorder is not None``; with tracing off the hot paths pay one
  attribute test.

Clocks: all span timestamps are ``time.monotonic()`` seconds.  On the
platforms this repo targets ``CLOCK_MONOTONIC`` is system-wide, so
timestamps taken in a forked worker or a shard process are directly
comparable to the parent's — the merged trace needs no skew correction
between processes.  Mapping *simulated cycles* onto that wall clock (so
PR 5 core timelines and service spans share one Perfetto axis) uses a
:func:`clock_anchor` taken around the run; see
:func:`repro.observe.perfetto.chrome_trace`.

The flight recorder is the crash half: a per-process ring of the last N
structured events that costs nothing until something dies, then spills
to a ``.jsonl`` dump so a SIGKILLed worker fleet or a fabricated-read
style war story (DESIGN.md §12) is debuggable post-mortem.
"""

import collections
import json
import os
import time

__all__ = [
    "FlightRecorder",
    "Span",
    "SpanRecorder",
    "clock_anchor",
    "flight",
    "flight_dir",
    "mint_trace_id",
]

#: default ring capacity: enough for every span of a serving burst or
#: the last ~1300 epochs of a sharded run (3 spans per barrier)
DEFAULT_CAPACITY = 4096

#: flight-recorder ring: the last N structured events per process
FLIGHT_CAPACITY = 256

#: environment variable naming the flight-dump directory; set by
#: ``repro serve --flight-dir`` (inherited through fork) or by hand
FLIGHT_ENV = "LBP_FLIGHT_DIR"


def mint_trace_id():
    """A fresh 16-hex trace (or span) id.

    Random, not sequential: ids must be unique across concurrent
    connections and forked processes with no coordination.  Randomness
    here is legal because ids never enter a deterministic surface.
    """
    return os.urandom(8).hex()


class Span:
    """One timed operation inside a trace.

    Spans are mutable while open and become plain dict records on
    :meth:`finish`; the record — not the object — is what crosses
    process boundaries.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start_s",
                 "end_s", "tags", "_recorder")

    def __init__(self, recorder, name, trace_id, parent_id, tags):
        self.trace_id = trace_id
        self.span_id = mint_trace_id()
        self.parent_id = parent_id
        self.name = name
        self.start_s = time.monotonic()
        self.end_s = None
        self.tags = dict(tags) if tags else {}
        self._recorder = recorder

    @property
    def ctx(self):
        """The by-value propagation context: ``(trace_id, span_id)``."""
        return (self.trace_id, self.span_id)

    def tag(self, **tags):
        self.tags.update(tags)
        return self

    def finish(self, **tags):
        """Close the span and commit its record to the recorder's ring."""
        if self.end_s is not None:
            return self
        if tags:
            self.tags.update(tags)
        self.end_s = time.monotonic()
        self._recorder._commit(self)
        return self

    def to_record(self):
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "pid": os.getpid(),
            "tags": self.tags,
        }


class _SpanContext:
    """``with recorder.span(...)`` support without closures on hot paths."""

    __slots__ = ("_span",)

    def __init__(self, span):
        self._span = span

    def __enter__(self):
        return self._span

    def __exit__(self, exc_type, exc, _tb):
        if exc_type is not None:
            self._span.tags["error"] = "%s: %s" % (exc_type.__name__, exc)
        self._span.finish()
        return False


class SpanRecorder:
    """A per-process ring buffer of finished span records.

    The ring bounds memory on long runs (a sharded worker simulating
    millions of epochs keeps the *last* ``capacity`` spans), and
    :meth:`drain` empties it — the drained list is what rides the
    existing result pipes back to the coordinating process.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY):
        self._ring = collections.deque(maxlen=capacity)
        self.dropped = 0
        self.started = 0

    def start(self, name, parent=None, trace_id=None, tags=None):
        """Open a span.

        *parent* is a :class:`Span`, a ``(trace_id, span_id)`` context
        tuple, or None (a new root: *trace_id* or a freshly minted one).
        """
        if parent is not None:
            if isinstance(parent, Span):
                trace_id, parent_id = parent.trace_id, parent.span_id
            else:
                trace_id, parent_id = parent[0], parent[1]
        else:
            parent_id = None
            if trace_id is None:
                trace_id = mint_trace_id()
        self.started += 1
        return Span(self, name, trace_id, parent_id, tags)

    def span(self, name, parent=None, trace_id=None, **tags):
        """Context-manager form: ``with recorder.span("compile", ctx): ...``"""
        return _SpanContext(self.start(name, parent=parent,
                                       trace_id=trace_id, tags=tags))

    def _commit(self, span):
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(span.to_record())

    def absorb(self, records):
        """Merge span records drained from another process's recorder."""
        for record in records:
            if len(self._ring) == self._ring.maxlen:
                self.dropped += 1
            self._ring.append(record)

    def records(self):
        """The finished records, oldest first (ring left intact)."""
        return list(self._ring)

    def drain(self):
        """Return and clear the finished records — the pipe payload."""
        records = list(self._ring)
        self._ring.clear()
        return records

    def __len__(self):
        return len(self._ring)


def clock_anchor(start_s, wall_s, cycles):
    """The cycles↔wall mapping for one simulation run.

    Taken around ``machine.run()``: the run started at monotonic
    *start_s*, lasted *wall_s* seconds, and simulated *cycles* cycles.
    :func:`repro.observe.perfetto.chrome_trace` uses it to place PR 5
    core timelines (cycle-stamped) on the same axis as service spans
    (wall-stamped): cycle ``c`` maps to ``start_s + c * wall_s/cycles``.
    The mapping is an affine presentation choice, not a measurement —
    it preserves order and containment (every cycle lands inside the
    run span), which is exactly what the merged view needs.
    """
    return {
        "start_s": start_s,
        "wall_s": wall_s,
        "cycles": int(cycles) if cycles else 0,
    }


# ---- flight recorder ---------------------------------------------------------


class FlightRecorder:
    """The last N structured events of this process, spillable on crash.

    ``note()`` is cheap enough to leave in per-epoch and per-job paths:
    one dict append into a bounded deque.  Nothing touches the disk
    until :meth:`spill`, which writes one self-describing ``.jsonl``
    dump (header line, then the events oldest-first).
    """

    def __init__(self, capacity=FLIGHT_CAPACITY):
        self.pid = os.getpid()
        self._ring = collections.deque(maxlen=capacity)
        self._seq = 0
        self.spilled = []

    def note(self, kind, **fields):
        self._seq += 1
        event = {"seq": self._seq, "t_mono": time.monotonic(),
                 "kind": kind}
        if fields:
            event.update(fields)
        self._ring.append(event)

    def events(self):
        return list(self._ring)

    def spill(self, directory, reason):
        """Write the ring to ``<directory>/flight-<pid>-<seq>.jsonl``.

        Returns the dump path (None when *directory* is falsy — the
        recorder is armed but spilling is disabled).  Never raises: a
        crash path must not crash harder because the dump failed.
        """
        if not directory:
            return None
        try:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(
                directory, "flight-%d-%d.jsonl" % (self.pid, self._seq))
            with open(path, "w") as handle:
                header = {"flight": 1, "pid": self.pid, "reason": reason,
                          "events": len(self._ring),
                          "wall": time.strftime("%Y-%m-%d %H:%M:%S")}
                handle.write(json.dumps(header, sort_keys=True) + "\n")
                for event in self._ring:
                    handle.write(json.dumps(event, sort_keys=True,
                                            default=repr) + "\n")
            self.spilled.append(path)
            return path
        except OSError:
            return None


_flight = None


def flight():
    """The per-process flight recorder (fork-safe: a child whose pid
    differs from the recorder's gets a fresh ring, not the parent's)."""
    global _flight
    if _flight is None or _flight.pid != os.getpid():
        _flight = FlightRecorder()
    return _flight


def flight_dir():
    """Where crash dumps go: the ``LBP_FLIGHT_DIR`` environment variable
    (set by ``repro serve --flight-dir``, inherited through fork), or
    None — armed-but-disabled."""
    return os.environ.get(FLIGHT_ENV) or None


def read_flight_dump(path):
    """Parse one flight dump back into ``(header, events)``."""
    with open(path) as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines or lines[0].get("flight") != 1:
        raise ValueError("%s is not a flight-recorder dump" % path)
    return lines[0], lines[1:]
