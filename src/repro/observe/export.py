"""Assemble and serialize telemetry reports (table / JSON / CSV).

``build_report`` reads a finished (or paused) machine and produces one
plain-data dict; everything downstream — the CLI table, the JSON dump,
the CSV time series, the Perfetto counter tracks — renders that dict.
Report assembly never mutates telemetry state, so reporting twice (or
reporting, resuming, reporting again) is safe and deterministic.
"""

import json

from repro.observe.metrics import NUM_REASONS, STALL_REASONS


def build_report(machine):
    """One stable-keyed dict with totals, per-core slices and windows."""
    metrics = machine.metrics
    if metrics is None:
        raise ValueError(
            "build_report() needs a machine constructed with LBP(metrics=...)")
    stats = machine.stats
    params = machine.params
    cycles = stats.cycles if stats.cycles else machine.cycle
    retired = stats.retired
    slots = metrics.slots
    stalls_per_core = [list(slot.stalls) for slot in slots]
    totals = [sum(core[i] for core in stalls_per_core)
              for i in range(NUM_REASONS)]
    stall_cycles = sum(totals)
    stage_cycles = params.num_cores * cycles
    return {
        "interval": metrics.interval,
        "num_cores": params.num_cores,
        "harts_per_core": params.harts_per_core,
        "cycles": cycles,
        "retired": retired,
        "ipc": round(stats.ipc, 4),
        "stage_cycles": stage_cycles,
        "stall_cycles": stall_cycles,
        "accounted": stall_cycles + retired == stage_cycles,
        "stalls": dict(zip(STALL_REASONS, totals)),
        "stalls_per_core": stalls_per_core,
        "link_wait": sum(slot.link_wait for slot in slots),
        "link_wait_per_core": [slot.link_wait for slot in slots],
        "local_accesses": stats.local_accesses,
        "remote_accesses": stats.remote_accesses,
        "windows": _merged_windows(machine, metrics, cycles),
    }


def _merged_windows(machine, metrics, cycles):
    """Machine-level window rows: per-core samples merged by window index."""
    interval = metrics.interval
    merged = {}
    for index in range(machine.params.num_cores):
        for row in metrics.core_rows(index, cycles):
            window = row[0]
            agg = merged.get(window)
            if agg is None:
                agg = merged[window] = [0, 0, 0, 0, 0, [0] * NUM_REASONS]
            agg[0] += row[1]
            agg[1] += row[2]
            agg[2] += row[3]
            agg[3] += row[4]
            agg[4] += row[5]
            for i, value in enumerate(row[6]):
                agg[5][i] += value
    rows = []
    for window in sorted(merged):
        retired, active, local, remote, link_wait, stalls = merged[window]
        start = window * interval
        end = min(start + interval, cycles)
        width = end - start
        rows.append({
            "window": window,
            "start": start,
            "end": end,
            "retired": retired,
            "ipc": round(retired / width, 4) if width else 0.0,
            "active_harts": active,
            "local": local,
            "remote": remote,
            "link_wait": link_wait,
            "stalls": dict(zip(STALL_REASONS, stalls)),
        })
    return rows


def report_json(report, compact=False):
    """Stable-keyed JSON text (compact form is the byte-compare format)."""
    if compact:
        return json.dumps(report, sort_keys=True, separators=(",", ":"))
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def stall_table(report):
    """The stall-attribution table as text lines."""
    stage_cycles = report["stage_cycles"]
    lines = [
        "stall attribution: %d cycles x %d cores = %d stage-cycles"
        % (report["cycles"], report["num_cores"], stage_cycles),
    ]
    rows = [("retired", report["retired"])]
    rows += sorted(
        report["stalls"].items(), key=lambda item: (-item[1], item[0]))
    for name, value in rows:
        if value == 0 and name != "retired":
            continue
        share = 100.0 * value / stage_cycles if stage_cycles else 0.0
        lines.append("  %-20s %12d  %5.1f%%" % (name, value, share))
    lines.append(
        "  %-20s %12d  %s" % (
            "total", report["stall_cycles"] + report["retired"],
            "(identity holds)" if report["accounted"]
            else "(MISMATCH vs %d stage-cycles)" % stage_cycles))
    lines.append(
        "  router link-wait: %d cycles of queueing on reserved paths"
        % report["link_wait"])
    return lines


def transport_table(transport_stats):
    """The sharded run's epoch/transport counters as text lines.

    *transport_stats* is ``ShardedLBP.transport_stats`` — the one piece
    of telemetry that deliberately lives OUTSIDE the deterministic
    report: ``epoch_wait`` is wall-clock time the workers spent blocked
    on the epoch barrier (ring spin or pipe read), so it varies run to
    run while the metrics report must stay byte-identical for any shard
    count.  Returns ``[]`` for an in-process (unsharded) run — whether
    that is a missing stats object (plain ``LBP``) or the zeroed
    same-schema object degenerate ``shards=1`` runs now publish.
    """
    if not transport_stats or not transport_stats.get("per_shard"):
        return []
    lines = [
        "epoch transport: %s, %d shards, %d epochs (%d fast-forwarded, "
        "%d cycles skipped)"
        % (transport_stats["transport"], transport_stats["shards"],
           transport_stats["epochs"], transport_stats["ff_epochs"],
           transport_stats["ff_cycles"]),
        "  %-8s %12s %10s %10s" % ("shard", "epoch_wait", "send_wait",
                                   "recv_wait"),
    ]
    for shard in transport_stats["per_shard"]:
        lines.append("  %-8d %11.3fs %9.3fs %9.3fs"
                     % (shard["shard"], shard["epoch_wait_s"],
                        shard.get("send_wait_s", 0.0),
                        shard.get("recv_wait_s", 0.0)))
    return lines


def windows_csv(report):
    """The windowed series as CSV text (one row per window)."""
    header = ["window", "start", "end", "retired", "ipc", "active_harts",
              "local", "remote", "link_wait"] + list(STALL_REASONS)
    lines = [",".join(header)]
    for row in report["windows"]:
        fields = [row["window"], row["start"], row["end"], row["retired"],
                  row["ipc"], row["active_harts"], row["local"],
                  row["remote"], row["link_wait"]]
        fields += [row["stalls"][name] for name in STALL_REASONS]
        lines.append(",".join(str(field) for field in fields))
    return "\n".join(lines) + "\n"


def write_report_json(report, path):
    with open(path, "w") as handle:
        handle.write(report_json(report))


def write_windows_csv(report, path):
    with open(path, "w") as handle:
        handle.write(windows_csv(report))
