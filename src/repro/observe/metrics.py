"""Zero-perturbation telemetry: stall attribution + windowed sampling.

Observation discipline (the PR-4 sanitizer argument, applied again):
every hook in this module only *reads* simulator state and only *writes*
telemetry-owned per-core slots.  No hook posts an event, reserves a port
or link slot, advances a sequence counter, or touches rename/ROB/stat
state — so enabling metrics cannot move a single simulated event, and
golden trace digests are bit-exact with telemetry on or off.

Accounting model: each core offers one commit slot per cycle, so a run of
C cycles on N cores has N*C *stage-cycles*.  Every (core, cycle) pair is
charged exactly once — either a retirement (already counted by
``HartStats.retired``) or one stall reason from :data:`STALL_REASONS` —
which yields the closed identity::

    sum(stall cycles) + retired  ==  num_cores * cycles

Partitionability: all counters live in per-core :class:`CoreTelemetry`
slots (the ``CoreCounters`` pattern from ``machine/stats.py``), each
written only by its owning domain, so the space-sharded engine gathers
telemetry by concatenation and shards=1 vs N reports are byte-identical.
"""

from repro.machine.core import _ORDER
from repro.machine.router import reply_path, request_path

# re-derive the instruction-class ints the classifier dispatches on (the
# same pre-bound-int trick machine/core.py uses)
from repro.isa.spec import InstrClass as _C

_LOAD = int(_C.LOAD)
_STORE = int(_C.STORE)
_P_FC = int(_C.P_FC)
_P_FN = int(_C.P_FN)
_P_SWCV = int(_C.P_SWCV)
_P_LWCV = int(_C.P_LWCV)
_P_SWRE = int(_C.P_SWRE)
_P_LWRE = int(_C.P_LWRE)
_P_SYNCM = int(_C.P_SYNCM)

#: the stall taxonomy (DESIGN.md §9); order is the on-disk layout of the
#: per-core counter vectors — append, never reorder
STALL_REASONS = (
    "fetch_starved",      # no hart of the core holds a decoded instruction
    "operand_wait",       # commit head still waits for producer values
    "issue_wait",         # head ready but lost arbitration / wb buffer busy
    "exec_wait",          # issued, executing (multi-cycle ALU latency)
    "local_mem_wait",     # waiting on a local/own-bank access
    "remote_mem_wait",    # remote access within its uncontended latency
    "router_backpressure",  # remote access past its uncontended latency
    "re_line_wait",       # p_lwre empty / p_swre slot-occupied parking
    "fork_wait",          # p_fc/p_fn waiting for a free hart / fork token
    "barrier_wait",       # p_ret ordered-release: predecessor not done
    "gated_idle",         # core gated off (no pipeline work at all)
)

NUM_REASONS = len(STALL_REASONS)

_FETCH_STARVED = STALL_REASONS.index("fetch_starved")
_OPERAND_WAIT = STALL_REASONS.index("operand_wait")
_ISSUE_WAIT = STALL_REASONS.index("issue_wait")
_EXEC_WAIT = STALL_REASONS.index("exec_wait")
_LOCAL_MEM_WAIT = STALL_REASONS.index("local_mem_wait")
_REMOTE_MEM_WAIT = STALL_REASONS.index("remote_mem_wait")
_ROUTER_BACKPRESSURE = STALL_REASONS.index("router_backpressure")
_RE_LINE_WAIT = STALL_REASONS.index("re_line_wait")
_FORK_WAIT = STALL_REASONS.index("fork_wait")
_BARRIER_WAIT = STALL_REASONS.index("barrier_wait")
_GATED_IDLE = STALL_REASONS.index("gated_idle")

#: default sampling window, in cycles
DEFAULT_INTERVAL = 4096


class CoreTelemetry:
    """One core's telemetry slot — written only by its owning domain."""

    __slots__ = (
        "stalls", "link_wait", "remote_inflight",
        "base_retired", "base_local", "base_remote", "base_link_wait",
        "base_stalls", "samples",
    )

    def __init__(self, harts_per_core):
        #: cumulative stall cycles, indexed like STALL_REASONS
        self.stalls = [0] * NUM_REASONS
        #: cumulative link-reservation delay cycles (router queueing seen
        #: by paths this core initiated; informational, not a stage-cycle)
        self.link_wait = 0
        #: {gid: [uncontended completion eta, ...]} for in-flight remote
        #: accesses — the remote_mem_wait / router_backpressure split
        self.remote_inflight = {}
        # window-base snapshots (deltas against these build each sample)
        self.base_retired = [0] * harts_per_core
        self.base_local = 0
        self.base_remote = 0
        self.base_link_wait = 0
        self.base_stalls = [0] * NUM_REASONS
        #: closed windows: [window, retired, active_harts, local, remote,
        #: link_wait, [stall deltas]] rows, appended in window order
        self.samples = []

    def state_dict(self):
        """JSON-safe (lists + string-free int keys as pairs) plain data."""
        return {
            "stalls": list(self.stalls),
            "link_wait": self.link_wait,
            "remote_inflight": [
                [gid, list(etas)]
                for gid, etas in sorted(self.remote_inflight.items())
            ],
            "base_retired": list(self.base_retired),
            "base_local": self.base_local,
            "base_remote": self.base_remote,
            "base_link_wait": self.base_link_wait,
            "base_stalls": list(self.base_stalls),
            "samples": [
                [row[0], row[1], row[2], row[3], row[4], row[5], list(row[6])]
                for row in self.samples
            ],
        }

    def load_state_dict(self, state):
        self.stalls = list(state["stalls"])
        self.link_wait = state["link_wait"]
        self.remote_inflight = {
            gid: list(etas) for gid, etas in state["remote_inflight"]
        }
        self.base_retired = list(state["base_retired"])
        self.base_local = state["base_local"]
        self.base_remote = state["base_remote"]
        self.base_link_wait = state["base_link_wait"]
        self.base_stalls = list(state["base_stalls"])
        self.samples = [
            [row[0], row[1], row[2], row[3], row[4], row[5], list(row[6])]
            for row in state["samples"]
        ]


class Metrics:
    """Stall attribution + windowed sampler for one machine.

    Construct with ``LBP(params, metrics=Metrics(interval=K))`` (or
    ``metrics=True`` / ``metrics=K`` for the shorthand forms); read the
    results with :meth:`repro.machine.LBP.metrics_report`.
    """

    def __init__(self, interval=DEFAULT_INTERVAL):
        interval = int(interval)
        if interval < 1:
            raise ValueError("metrics interval must be >= 1, got %d" % interval)
        self.interval = interval
        self._machine = None
        self._slots = []
        #: next window edge per core, read on the tick hot path (a plain
        #: list lookup gates the roll call)
        self.edges = []
        self._rtt = {}

    # ---- lifecycle ----------------------------------------------------------

    def bind(self, machine):
        """Attach to *machine* (called by LBP.__init__ / load_state_dict)."""
        self._machine = machine
        num_cores = machine.params.num_cores
        if not self._slots:
            hpc = machine.params.harts_per_core
            self._slots = [CoreTelemetry(hpc) for _ in range(num_cores)]
            self.edges = [self.interval] * num_cores
        return self

    @property
    def slots(self):
        return self._slots

    # ---- snapshot/restore ----------------------------------------------------

    def state_dict(self):
        return {
            "interval": self.interval,
            "edges": list(self.edges),
            "slots": [slot.state_dict() for slot in self._slots],
        }

    def load_state_dict(self, state):
        self.interval = state["interval"]
        self.edges = list(state["edges"])
        hpc = self._machine.params.harts_per_core if self._machine else 4
        self._slots = []
        for slot_state in state["slots"]:
            slot = CoreTelemetry(hpc)
            slot.load_state_dict(slot_state)
            self._slots.append(slot)

    def domain_state_dict(self, index):
        """One core's slice (shard gathering)."""
        return {
            "edge": self.edges[index],
            "slot": self._slots[index].state_dict(),
        }

    def load_domain_state_dict(self, index, state):
        self.edges[index] = state["edge"]
        self._slots[index].load_state_dict(state["slot"])

    # ---- window sampling -----------------------------------------------------

    def _emit(self, index, slot, edge):
        """Close the window ending at *edge* for core *index*."""
        stats = self._machine.stats
        harts = stats.harts[index]
        counters = stats.per_core[index]
        base = slot.base_retired
        retired = [h.retired for h in harts]
        deltas = [now - before for now, before in zip(retired, base)]
        stall_deltas = [
            now - before for now, before in zip(slot.stalls, slot.base_stalls)
        ]
        slot.samples.append([
            edge // self.interval - 1,
            sum(deltas),
            sum(1 for d in deltas if d),
            counters.local_accesses - slot.base_local,
            counters.remote_accesses - slot.base_remote,
            slot.link_wait - slot.base_link_wait,
            stall_deltas,
        ])
        slot.base_retired = retired
        slot.base_local = counters.local_accesses
        slot.base_remote = counters.remote_accesses
        slot.base_link_wait = slot.link_wait
        slot.base_stalls = list(slot.stalls)

    def roll(self, index, cycle):
        """Close every window ending at or before *cycle* (exclusive of
        the charges *cycle* itself is about to make)."""
        edges = self.edges
        interval = self.interval
        slot = self._slots[index]
        edge = edges[index]
        while edge <= cycle:
            self._emit(index, slot, edge)
            edge += interval
        edges[index] = edge

    def _partial_row(self, index, up_to):
        """The still-open trailing window at cycle *up_to* (not recorded:
        report-time only, so reporting never mutates telemetry state)."""
        slot = self._slots[index]
        edge = self.edges[index]
        begin = edge - self.interval
        if up_to <= begin:
            return None
        stats = self._machine.stats
        base = slot.base_retired
        deltas = [
            h.retired - before
            for h, before in zip(stats.harts[index], base)
        ]
        counters = stats.per_core[index]
        return [
            edge // self.interval - 1,
            sum(deltas),
            sum(1 for d in deltas if d),
            counters.local_accesses - slot.base_local,
            counters.remote_accesses - slot.base_remote,
            slot.link_wait - slot.base_link_wait,
            [
                now - before
                for now, before in zip(slot.stalls, slot.base_stalls)
            ],
        ]

    def core_rows(self, index, up_to):
        """Closed windows plus the trailing partial one, for core *index*."""
        rows = list(self._slots[index].samples)
        partial = self._partial_row(index, up_to)
        if partial is not None:
            rows.append(partial)
        return rows

    # ---- charge hooks (observation only) -------------------------------------

    def idle(self, index, cycle, delta):
        """Charge *delta* gated-idle cycles starting at *cycle*.

        Splits the bulk charge at window edges, so a fast-forwarded span
        produces the same samples whether it was skipped in one hop, in
        epoch-clipped chunks (the sharded engine), or cycle by cycle.
        """
        interval = self.interval
        edges = self.edges
        slot = self._slots[index]
        stalls = slot.stalls
        end = cycle + delta
        edge = edges[index]
        while edge <= end:
            if edge > cycle:
                stalls[_GATED_IDLE] += edge - cycle
                cycle = edge
            self._emit(index, slot, edge)
            edge += interval
            edges[index] = edge
        if end > cycle:
            stalls[_GATED_IDLE] += end - cycle

    def stall(self, core, cycle):
        """Charge the one non-retiring stage-cycle of *core* at *cycle*."""
        slot = self._slots[core.index]
        slot.stalls[self._classify(core, cycle, slot)] += 1

    def link_wait(self, index, delay):
        """Router queueing: a path reservation by core *index* was pushed
        *delay* cycles past its uncontended arrival."""
        self._slots[index].link_wait += delay

    def remote_issue(self, index, gid, now, owner):
        """Hart *gid* issued a remote access; *owner* is the destination
        core (None = the forward-link CV write to the next core)."""
        if owner is None:
            params = self._machine.params
            eta = now + 2 * params.link_hop_latency + params.cv_write_latency + 1
        else:
            eta = now + self._remote_rtt(index, owner)
        fifos = self._slots[index].remote_inflight
        fifo = fifos.get(gid)
        if fifo is None:
            fifos[gid] = [eta]
        else:
            fifo.append(eta)

    def remote_done(self, index, gid):
        """The oldest in-flight remote access of hart *gid* completed."""
        fifo = self._slots[index].remote_inflight.get(gid)
        if fifo:
            # tolerate an empty FIFO: a machine resumed from a snapshot
            # taken without metrics has untracked in-flight accesses
            fifo.pop(0)

    def _remote_rtt(self, src, owner):
        """Uncontended round-trip latency src -> owner's bank -> src."""
        rtt = self._rtt.get((src, owner))
        if rtt is None:
            params = self._machine.params
            hops = len(request_path(src, owner)) + len(reply_path(src, owner))
            rtt = hops * params.link_hop_latency + params.bank_access_latency + 1
            self._rtt[(src, owner)] = rtt
        return rtt

    # ---- the classifier ------------------------------------------------------

    def _mem_reason(self, slot, hart, cycle):
        fifo = slot.remote_inflight.get(hart.gid)
        if fifo:
            # past the uncontended eta means contention held it up
            return _ROUTER_BACKPRESSURE if cycle >= fifo[0] else _REMOTE_MEM_WAIT
        return _LOCAL_MEM_WAIT

    def _classify(self, core, cycle, slot):
        """One reason for a busy core that did not commit this cycle.

        The representative is the first hart, in this cycle's commit
        scan order, that holds a ROB head — the instruction the commit
        stage actually looked at and rejected.
        """
        rep = None
        for h in _ORDER[core._rr_commit]:
            hart = core.harts[h]
            if hart.rob:
                rep = hart
                break
        if rep is None:
            return _FETCH_STARVED
        head = rep.rob[0]
        if head.ret_action is not None and head.done:
            # p_ret held at the ordered-release barrier: predecessor's
            # ending signal pending, or own stores still in flight
            if rep.pred is not None and not rep.pred_done:
                return _BARRIER_WAIT
            if rep.outstanding_mem:
                return self._mem_reason(slot, rep, cycle)
            return _BARRIER_WAIT
        entry = None
        for candidate in rep.it:
            if candidate.rob is head:
                entry = candidate
                break
        cls = head.low.cls
        if entry is not None:
            # head not yet issued
            if entry.nwaits:
                return _OPERAND_WAIT
            if cls == _P_LWRE:
                return _RE_LINE_WAIT
            if cls == _P_FC or cls == _P_FN:
                return _FORK_WAIT
            if (cls == _LOAD or cls == _STORE or cls == _P_LWCV
                    or cls == _P_SWCV or cls == _P_SYNCM):
                return self._mem_reason(slot, rep, cycle)
            return _ISSUE_WAIT
        # issued; completion in flight
        if cls == _LOAD or cls == _STORE or cls == _P_LWCV or cls == _P_SWCV:
            return self._mem_reason(slot, rep, cycle)
        if cls == _P_SWRE:
            return _RE_LINE_WAIT
        return _EXEC_WAIT
