"""Deterministic OpenMP and the LBP parallelizing manycore processor.

A full software reproduction of Goossens, Louetsi & Parello's PACT 2021
paper: the PISC/X_PAR instruction-set extension, a two-pass assembler, the
DetC compiler (a C subset with ``#pragma omp`` lowered to hardware hart
teams), a cycle-accurate simulator of the 4-to-64-core LBP machine, a
validated fast simulator for paper-scale runs, the comparison baselines,
and the benchmark harness that regenerates every figure of the paper's
evaluation.

Start with::

    from repro.compiler import compile_to_program
    from repro.machine import LBP, Params

    program = compile_to_program(C_SOURCE_WITH_OMP_PRAGMAS)
    stats = LBP(Params(num_cores=4)).load(program).run()

or the command line: ``python -m repro run prog.c --cores 4``.

See README.md for the tour and DESIGN.md for the architecture.
"""

__version__ = "1.0.0"
