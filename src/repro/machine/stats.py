"""Run statistics: retired instructions, cycles, IPC, memory mix.

The paper's histograms (figs. 19-21) report, per run: number of cycles,
aggregate IPC, and retired instructions.  :class:`MachineStats` collects
those plus the supporting detail (per-hart retirement, local vs remote
memory accesses, forks/joins) used by the locality experiment E7.

Layout: every counter that simulation code *increments* lives in a
per-core :class:`CoreCounters` (or per-hart :class:`HartStats`) slot, and
the machine-wide figures are read-only aggregation properties.  This is
what makes the space-sharded engine (``repro.parsim``) exact: a worker
process owns a contiguous range of cores and only ever touches its own
slots, so gathering shard statistics is concatenation, not reconciliation.
"""


class HartStats:
    __slots__ = ("retired", "loads", "stores", "forks")

    def __init__(self):
        self.retired = 0
        self.loads = 0
        self.stores = 0
        self.forks = 0

    def state_dict(self):
        return {"retired": self.retired, "loads": self.loads,
                "stores": self.stores, "forks": self.forks}

    def load_state_dict(self, state):
        self.retired = state["retired"]
        self.loads = state["loads"]
        self.stores = state["stores"]
        self.forks = state["forks"]


class CoreCounters:
    """Per-core slice of the machine-wide counters (shard-partitionable)."""

    __slots__ = ("local_accesses", "remote_accesses", "forks", "joins",
                 "re_messages", "skipped_cycles")

    def __init__(self):
        self.local_accesses = 0
        self.remote_accesses = 0
        self.forks = 0
        self.joins = 0
        self.re_messages = 0
        #: cycles this core sat idle (gated off by the run loop); counted
        #: per core so the total is independent of how cores are sharded
        self.skipped_cycles = 0

    def state_dict(self):
        return {
            "local_accesses": self.local_accesses,
            "remote_accesses": self.remote_accesses,
            "forks": self.forks,
            "joins": self.joins,
            "re_messages": self.re_messages,
            "skipped_cycles": self.skipped_cycles,
        }

    def load_state_dict(self, state):
        self.local_accesses = state["local_accesses"]
        self.remote_accesses = state["remote_accesses"]
        self.forks = state["forks"]
        self.joins = state["joins"]
        self.re_messages = state["re_messages"]
        self.skipped_cycles = state["skipped_cycles"]


class MachineStats:
    """Aggregated counters for one simulation run."""

    def __init__(self, num_cores, harts_per_core):
        self.num_cores = num_cores
        self.harts_per_core = harts_per_core
        self.cycles = 0
        self.harts = [
            [HartStats() for _ in range(harts_per_core)] for _ in range(num_cores)
        ]
        self.per_core = [CoreCounters() for _ in range(num_cores)]

    def state_dict(self):
        return {
            "cycles": self.cycles,
            "per_core": [c.state_dict() for c in self.per_core],
            "harts": [[h.state_dict() for h in core] for core in self.harts],
        }

    def load_state_dict(self, state):
        self.cycles = state["cycles"]
        for counters, core_state in zip(self.per_core, state["per_core"]):
            counters.load_state_dict(core_state)
        for core, core_state in zip(self.harts, state["harts"]):
            for hart_stats, hart_state in zip(core, core_state):
                hart_stats.load_state_dict(hart_state)

    def core_state_dict(self, index):
        """One core's slice (shard gathering): its counters + hart stats."""
        return {
            "counters": self.per_core[index].state_dict(),
            "harts": [h.state_dict() for h in self.harts[index]],
        }

    def load_core_state_dict(self, index, state):
        self.per_core[index].load_state_dict(state["counters"])
        for hart_stats, hart_state in zip(self.harts[index], state["harts"]):
            hart_stats.load_state_dict(hart_state)

    # ---- machine-wide aggregates (read-only) --------------------------------

    @property
    def local_accesses(self):
        return sum(c.local_accesses for c in self.per_core)

    @property
    def remote_accesses(self):
        return sum(c.remote_accesses for c in self.per_core)

    @property
    def forks(self):
        return sum(c.forks for c in self.per_core)

    @property
    def joins(self):
        return sum(c.joins for c in self.per_core)

    @property
    def re_messages(self):
        return sum(c.re_messages for c in self.per_core)

    @property
    def skipped_core_cycles(self):
        return sum(c.skipped_cycles for c in self.per_core)

    @property
    def retired(self):
        return sum(h.retired for core in self.harts for h in core)

    @property
    def ipc(self):
        """Aggregate machine IPC (sum over cores, as the paper reports)."""
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def ipc_per_core(self):
        return self.ipc / self.num_cores

    def retired_by_core(self):
        return [sum(h.retired for h in core) for core in self.harts]

    def summary(self):
        """One dict with the figures the paper's histograms use."""
        return {
            "cycles": self.cycles,
            "retired": self.retired,
            "ipc": round(self.ipc, 3),
            "ipc_per_core": round(self.ipc_per_core, 4),
            "local_accesses": self.local_accesses,
            "remote_accesses": self.remote_accesses,
            "forks": self.forks,
            "joins": self.joins,
            "skipped_core_cycles": self.skipped_core_cycles,
        }
