"""Run statistics: retired instructions, cycles, IPC, memory mix.

The paper's histograms (figs. 19-21) report, per run: number of cycles,
aggregate IPC, and retired instructions.  :class:`MachineStats` collects
those plus the supporting detail (per-hart retirement, local vs remote
memory accesses, forks/joins) used by the locality experiment E7.
"""


class HartStats:
    __slots__ = ("retired", "loads", "stores", "forks")

    def __init__(self):
        self.retired = 0
        self.loads = 0
        self.stores = 0
        self.forks = 0

    def state_dict(self):
        return {"retired": self.retired, "loads": self.loads,
                "stores": self.stores, "forks": self.forks}

    def load_state_dict(self, state):
        self.retired = state["retired"]
        self.loads = state["loads"]
        self.stores = state["stores"]
        self.forks = state["forks"]


class MachineStats:
    """Aggregated counters for one simulation run."""

    def __init__(self, num_cores, harts_per_core):
        self.num_cores = num_cores
        self.harts_per_core = harts_per_core
        self.cycles = 0
        self.harts = [
            [HartStats() for _ in range(harts_per_core)] for _ in range(num_cores)
        ]
        self.local_accesses = 0
        self.remote_accesses = 0
        self.forks = 0
        self.joins = 0
        self.re_messages = 0
        #: core-cycles the run loop did not tick thanks to active-core
        #: gating (idle cores awaiting a wakeup, plus all-idle jumps)
        self.skipped_core_cycles = 0

    def state_dict(self):
        return {
            "cycles": self.cycles,
            "local_accesses": self.local_accesses,
            "remote_accesses": self.remote_accesses,
            "forks": self.forks,
            "joins": self.joins,
            "re_messages": self.re_messages,
            "skipped_core_cycles": self.skipped_core_cycles,
            "harts": [[h.state_dict() for h in core] for core in self.harts],
        }

    def load_state_dict(self, state):
        self.cycles = state["cycles"]
        self.local_accesses = state["local_accesses"]
        self.remote_accesses = state["remote_accesses"]
        self.forks = state["forks"]
        self.joins = state["joins"]
        self.re_messages = state["re_messages"]
        self.skipped_core_cycles = state["skipped_core_cycles"]
        for core, core_state in zip(self.harts, state["harts"]):
            for hart_stats, hart_state in zip(core, core_state):
                hart_stats.load_state_dict(hart_state)

    @property
    def retired(self):
        return sum(h.retired for core in self.harts for h in core)

    @property
    def ipc(self):
        """Aggregate machine IPC (sum over cores, as the paper reports)."""
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def ipc_per_core(self):
        return self.ipc / self.num_cores

    def retired_by_core(self):
        return [sum(h.retired for h in core) for core in self.harts]

    def summary(self):
        """One dict with the figures the paper's histograms use."""
        return {
            "cycles": self.cycles,
            "retired": self.retired,
            "ipc": round(self.ipc, 3),
            "ipc_per_core": round(self.ipc_per_core, 4),
            "local_accesses": self.local_accesses,
            "remote_accesses": self.remote_accesses,
            "forks": self.forks,
            "joins": self.joins,
            "skipped_core_cycles": self.skipped_core_cycles,
        }
