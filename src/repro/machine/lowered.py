"""Pre-lowered per-PC decode for the cycle-accurate simulator.

The pipeline stages used to re-derive everything they need from the
:class:`~repro.isa.instruction.Instruction` and its spec on every cycle:
instruction class, source-register fields, writes-rd, ALU callable,
latency, access width.  All of that is static per program location (and
per machine, for latencies), so :meth:`repro.machine.processor.LBP.load`
lowers the whole program once and the hot loop works on flat
:class:`LoweredInstr` records — mirroring what ``fastsim`` already does
with tuples.  Lowering changes *no* modelled behaviour: the simulator
must stay bit-exact (see ``tests/integration/test_trace_golden.py``).
"""

from repro.isa.semantics import ALU_OPS, BRANCH_OPS, LOAD_WIDTH, STORE_WIDTH
from repro.isa.spec import InstrClass

_C = InstrClass


class LoweredInstr:
    """One program location, pre-chewed for the pipeline stages.

    Attributes:
        ins: the original :class:`Instruction` (kept for disassembly and
            error reporting; the stages never touch it).
        mnemonic, cls, rd, imm: copied out of the instruction/spec.
        reads: source *register numbers* in operand order (the spec's
            field names already resolved against rs1/rs2).
        writes: True when the instruction produces a register result
            (``spec.writes_rd`` and ``rd != 0`` folded together).
        op: the ALU/branch callable, or None.
        latency: execution latency in cycles (params-resolved).
        width: access width in bytes for loads/stores, else 0.
        re_slot: result-buffer slot for p_swre/p_lwre, else 0.
        is_ebreak / is_ecall: commit-side traps, pre-tested.
    """

    __slots__ = (
        "ins", "mnemonic", "cls", "rd", "imm", "reads", "writes",
        "op", "latency", "width", "re_slot", "is_ebreak", "is_ecall",
    )

    def __init__(self, ins, params):
        spec = ins.spec
        mnemonic = ins.mnemonic
        cls = spec.cls
        self.ins = ins
        self.mnemonic = mnemonic
        self.cls = int(cls)
        self.rd = ins.rd
        self.imm = ins.imm
        self.reads = tuple(
            ins.rs1 if field == "rs1" else ins.rs2 for field in spec.reads
        )
        self.writes = spec.writes_rd and ins.rd != 0
        if cls == _C.ALU or cls == _C.MULDIV:
            self.op = ALU_OPS[mnemonic]
        elif cls == _C.BRANCH:
            self.op = BRANCH_OPS[mnemonic]
        else:
            self.op = None
        self.latency = params.latency_for(spec)
        if cls == _C.LOAD or cls == _C.P_LWCV:
            self.width = LOAD_WIDTH[mnemonic]
        elif cls == _C.STORE:
            self.width = STORE_WIDTH[mnemonic]
        else:
            self.width = 0
        if cls == _C.P_SWRE or cls == _C.P_LWRE:
            self.re_slot = ins.imm % params.num_result_buffers
        else:
            self.re_slot = 0
        self.is_ebreak = mnemonic == "ebreak"
        self.is_ecall = mnemonic == "ecall"

    def __repr__(self):
        return "LoweredInstr(%r)" % (self.ins,)


def lower_program(code, params):
    """{pc: Instruction} -> {pc: LoweredInstr} for one machine's params."""
    return {pc: LoweredInstr(ins, params) for pc, ins in code.items()}
