"""Pre-lowered per-PC decode for the cycle-accurate simulator.

The pipeline stages used to re-derive everything they need from the
:class:`~repro.isa.instruction.Instruction` and its spec on every cycle:
instruction class, source-register fields, writes-rd, ALU callable,
latency, access width.  All of that is static per program location (and
per machine, for latencies), so :meth:`repro.machine.processor.LBP.load`
lowers the whole program once and the hot loop works on flat
:class:`LoweredInstr` records — mirroring what ``fastsim`` already does
with tuples.  Lowering changes *no* modelled behaviour: the simulator
must stay bit-exact (see ``tests/integration/test_trace_golden.py``).
"""

from repro.isa.semantics import ALU_OPS, BRANCH_OPS, LOAD_WIDTH, STORE_WIDTH
from repro.isa.spec import InstrClass

_C = InstrClass

# ---- decode kinds (next-pc determination; see Core.tick / SoACore.tick) -----
#: fall through to pc + 4
DEC_STRAIGHT = 0
#: direct jump: pc + imm known at decode (jal, p_jal)
DEC_JAL = 1
#: next pc resolved at issue — the hart stays suspended (branches, jalr,
#: p_jalr)
DEC_SUSPEND = 2
#: no next pc: halts (ebreak) or traps (ecall) at commit
DEC_SYSTEM = 3
#: fall through, but block further fetch until the p_syncm issues
DEC_SYNCM = 4
#: fall through + post the fork-token request to the next core (p_fn)
DEC_PFN = 5

# ---- issue kinds (readiness checks beyond nwaits == 0) ----------------------
#: no structural constraint beyond source values and the writeback buffer
ISS_PLAIN = 0
#: loads wait for all older stores of their hart to have issued
ISS_LOAD = 1
#: p_lwre waits for its numbered result buffer to be filled
ISS_LWRE = 2
#: p_fc waits for a free hart on this core
ISS_FC = 3
#: p_fn waits for a fork token granted by the next core
ISS_FN = 4
#: p_syncm issues only at the head of the ROB with no outstanding memory
ISS_SYNCM = 5


class LoweredInstr:
    """One program location, pre-chewed for the pipeline stages.

    Attributes:
        ins: the original :class:`Instruction` (kept for disassembly and
            error reporting; the stages never touch it).
        mnemonic, cls, rd, imm: copied out of the instruction/spec.
        reads: source *register numbers* in operand order (the spec's
            field names already resolved against rs1/rs2).
        writes: True when the instruction produces a register result
            (``spec.writes_rd`` and ``rd != 0`` folded together).
        op: the ALU/branch callable, or None.
        latency: execution latency in cycles (params-resolved).
        width: access width in bytes for loads/stores, else 0.
        re_slot: result-buffer slot for p_swre/p_lwre, else 0.
        is_ebreak / is_ecall: commit-side traps, pre-tested.
        nreads / r1 / r2: ``reads`` unrolled for the SoA backend's
            scalarised operand slots (r2 only valid when nreads == 2).
        dec_kind / issue_kind: the ``DEC_*`` / ``ISS_*`` dispatch keys
            above, so the decode and issue stages switch on a
            precomputed int instead of re-classifying ``cls``.
        store_like: True for store/p_swcv — the older-store fence that
            loads wait on at issue.
        trap: commit-side trap code (0 none, 1 ebreak, 2 ecall) — folds
            ``is_ebreak``/``is_ecall`` into one hot-path compare.
    """

    __slots__ = (
        "ins", "mnemonic", "cls", "rd", "imm", "reads", "writes",
        "op", "latency", "width", "re_slot", "is_ebreak", "is_ecall",
        "nreads", "r1", "r2", "dec_kind", "issue_kind", "store_like",
        "trap",
    )

    def __init__(self, ins, params):
        spec = ins.spec
        mnemonic = ins.mnemonic
        cls = spec.cls
        self.ins = ins
        self.mnemonic = mnemonic
        self.cls = int(cls)
        self.rd = ins.rd
        self.imm = ins.imm
        self.reads = tuple(
            ins.rs1 if field == "rs1" else ins.rs2 for field in spec.reads
        )
        self.writes = spec.writes_rd and ins.rd != 0
        if cls == _C.ALU or cls == _C.MULDIV:
            self.op = ALU_OPS[mnemonic]
        elif cls == _C.BRANCH:
            self.op = BRANCH_OPS[mnemonic]
        else:
            self.op = None
        self.latency = params.latency_for(spec)
        if cls == _C.LOAD or cls == _C.P_LWCV:
            self.width = LOAD_WIDTH[mnemonic]
        elif cls == _C.STORE:
            self.width = STORE_WIDTH[mnemonic]
        else:
            self.width = 0
        if cls == _C.P_SWRE or cls == _C.P_LWRE:
            self.re_slot = ins.imm % params.num_result_buffers
        else:
            self.re_slot = 0
        self.is_ebreak = mnemonic == "ebreak"
        self.is_ecall = mnemonic == "ecall"
        reads = self.reads
        self.nreads = len(reads)
        self.r1 = reads[0] if reads else 0
        self.r2 = reads[1] if len(reads) == 2 else 0
        if cls == _C.BRANCH or cls == _C.JALR or cls == _C.P_JALR:
            self.dec_kind = DEC_SUSPEND
        elif cls == _C.JAL or cls == _C.P_JAL:
            self.dec_kind = DEC_JAL
        elif cls == _C.SYSTEM:
            self.dec_kind = DEC_SYSTEM
        elif cls == _C.P_SYNCM:
            self.dec_kind = DEC_SYNCM
        elif cls == _C.P_FN:
            self.dec_kind = DEC_PFN
        else:
            self.dec_kind = DEC_STRAIGHT
        if cls == _C.LOAD or cls == _C.P_LWCV:
            self.issue_kind = ISS_LOAD
        elif cls == _C.P_LWRE:
            self.issue_kind = ISS_LWRE
        elif cls == _C.P_FC:
            self.issue_kind = ISS_FC
        elif cls == _C.P_FN:
            self.issue_kind = ISS_FN
        elif cls == _C.P_SYNCM:
            self.issue_kind = ISS_SYNCM
        else:
            self.issue_kind = ISS_PLAIN
        self.store_like = cls == _C.STORE or cls == _C.P_SWCV
        self.trap = 1 if self.is_ebreak else (2 if self.is_ecall else 0)

    def __repr__(self):
        return "LoweredInstr(%r)" % (self.ins,)


def lower_program(code, params):
    """{pc: Instruction} -> {pc: LoweredInstr} for one machine's params."""
    return {pc: LoweredInstr(ins, params) for pc, ins in code.items()}
