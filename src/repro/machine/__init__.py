"""Cycle-accurate simulator of the LBP parallelizing manycore processor.

The model follows the paper's section 5:

* :mod:`repro.machine.params` — all microarchitectural knobs.
* :mod:`repro.machine.hart` — per-hart state: registers, rename table,
  instruction table, reorder buffer, result buffers.
* :mod:`repro.machine.core` — the five pipeline stages (fetch,
  decode/rename, issue/execute, writeback, commit), each selecting one
  hart per cycle.
* :mod:`repro.machine.memory` / :mod:`repro.machine.router` — banks,
  ports, and the r1/r2/r3 router tree with per-link per-cycle capacity.
* :mod:`repro.machine.processor` — machine assembly, event queue, the
  simulation loop, loading of programs.
* :mod:`repro.machine.io` — non-interruptible I/O: devices, controller
  harts (paper figs. 16-17).
* :mod:`repro.machine.trace` / :mod:`repro.machine.stats` — the cycle
  event trace used by the determinism experiments and run statistics.

Everything is deterministic: arbitration uses fixed rotating priorities,
event queues are ordered by (cycle, sequence number), and devices are
scripted or seeded.
"""

from repro.machine.params import Params
from repro.machine.processor import LBP, DeadlockError, MachineError

__all__ = ["LBP", "DeadlockError", "MachineError", "Params"]
