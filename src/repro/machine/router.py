"""The hierarchical interconnect: r1/r2/r3 router tree and intercore lines.

Topology (paper figs. 9 and 13):

* one **r1** router per group of 4 cores, connected to each core and to
  each of the group's shared banks;
* one **r2** router per group of 4 r1 routers;
* one **r3** root router connecting up to 4 r2 routers;
* a **forward neighbour link** from each core *i* to core *i+1* (forks,
  continuation values, ending-hart signals);
* a **backward line** from each core *i* to core *i-1* (join addresses and
  ``p_swre`` results travel toward lower cores hop by hop).

Every link carries one value per cycle per direction.  Links are modelled
as :class:`~repro.machine.memory.Port` reservation cursors keyed by a
symbolic link id, which yields both bandwidth contention and deterministic
FIFO ordering.  A remote shared-memory access reserves, hop by hop, every
link of its request path, then a bank-port slot, then every link of its
reply path.
"""

from repro.machine.memory import Port


class LinkScheduler:
    """Per-link one-slot-per-cycle reservations over symbolic link ids."""

    def __init__(self, hop_latency=1):
        self.hop_latency = hop_latency
        self._links = {}
        # telemetry sink (observation only — never serialized, rebound by
        # the machine on construction and restore)
        self._metrics = None
        self._core_index = None

    def observe(self, metrics, core_index):
        """Attach (or detach, with None) the telemetry charged with this
        scheduler's queueing delay."""
        self._metrics = metrics
        self._core_index = core_index

    def reserve_path(self, links, start):
        """Reserve consecutive slots along *links*, starting after *start*.

        Returns the cycle at which the message leaves the last link.
        """
        time = start
        hop = self.hop_latency
        for link in links:
            port = self._links.get(link)
            if port is None:
                port = self._links[link] = Port()
            time = port.reserve(time + hop)
        if self._metrics is not None and links:
            delay = time - (start + hop * len(links))
            if delay > 0:
                self._metrics.link_wait(self._core_index, delay)
        return time

    def state_dict(self):
        """Per-link cursors as [[tag, index], next_free] rows (sorted)."""
        return {
            "hop_latency": self.hop_latency,
            "links": [
                [list(link), port.next_free]
                for link, port in sorted(self._links.items())
            ],
        }

    def load_state_dict(self, state):
        self.hop_latency = state["hop_latency"]
        self._links = {}
        for link, next_free in state["links"]:
            port = Port()
            port.next_free = next_free
            self._links[tuple(link)] = port


def request_path(src_core, dst_core):
    """Link ids for a shared-memory request from *src_core* to *dst_core*'s bank.

    Four levels: r1 per 4 cores, r2 per 16, r3 per 64 (one chip), and the
    inter-chip r4 of the paper's figure 15 for machines above 64 cores.
    """
    links = [("c>r1", src_core)]
    if src_core // 4 == dst_core // 4:
        links.append(("r1>m", dst_core))
        return links
    links.append(("r1>r2", src_core // 4))
    if src_core // 16 == dst_core // 16:
        links.append(("r2>r1", dst_core // 4))
        links.append(("r1>m", dst_core))
        return links
    links.append(("r2>r3", src_core // 16))
    if src_core // 64 != dst_core // 64:
        links.append(("r3>r4", src_core // 64))
        links.append(("r4>r3", dst_core // 64))
    links.append(("r3>r2", dst_core // 16))
    links.append(("r2>r1", dst_core // 4))
    links.append(("r1>m", dst_core))
    return links


def reply_path(src_core, dst_core):
    """Link ids for the reply of a request issued by *src_core*."""
    links = [("m>r1", dst_core)]
    if src_core // 4 == dst_core // 4:
        links.append(("r1>c", src_core))
        return links
    links.append(("r1<r2", dst_core // 4))
    if src_core // 16 == dst_core // 16:
        links.append(("r2<r1", src_core // 4))
        links.append(("r1>c", src_core))
        return links
    links.append(("r2<r3", dst_core // 16))
    if src_core // 64 != dst_core // 64:
        links.append(("r3<r4", dst_core // 64))
        links.append(("r4<r3", src_core // 64))
    links.append(("r3<r2", src_core // 16))
    links.append(("r2<r1", src_core // 4))
    links.append(("r1>c", src_core))
    return links


def forward_links(src_core, dst_core):
    """Neighbour-link hops for fork/CV/ending-signal messages.

    Only same-core (no links) or next-core (one hop) transfers exist in
    LBP; anything else is a machine bug.
    """
    if dst_core == src_core:
        return []
    if dst_core == src_core + 1:
        return [("fwd", src_core)]
    raise ValueError(
        "forward link only reaches the next core (%d -> %d)" % (src_core, dst_core)
    )


def backward_links(src_core, dst_core):
    """Backward-line hops from *src_core* down to *dst_core* (dst <= src)."""
    if dst_core > src_core:
        raise ValueError(
            "backward line only reaches prior cores (%d -> %d)" % (src_core, dst_core)
        )
    return [("bwd", core) for core in range(src_core, dst_core, -1)]
