"""The LBP machine: cores, interconnect, event queue, simulation loop.

Determinism: the simulation is single-threaded per domain; every queue is
ordered by (cycle, origin domain, origin sequence); stage arbitration uses
fixed rotating priorities; link and port bandwidth is allocated by
monotonic reservation cursors.  Two runs of the same program on the same
data produce identical cycle-by-cycle event traces — the property the
paper's claim (1) is about, and which `benchmarks/test_determinism.py`
checks.

Partitionability (the space-sharded engine, ``repro.parsim``): every
piece of mutable state belongs to exactly one *domain* — core *i* owns
its pipeline, harts, banks, ports, egress link cursors, event-sequence
and rename-tag counters, and its slice of the statistics and the trace.
Events are addressed ``(cycle, origin, oseq, dst, kind, args)``: the key
``(cycle, origin, oseq)`` is unique and computed only from origin-domain
state, so the merged event order is independent of how domains are
distributed over worker processes.  Cross-domain interactions travel as
events with ≥ 2 cycles of latency (the neighbour links, the backward
line, and the r1/r2/r3 router paths all carry at least one reserved hop
plus delivery) — the *lookahead* that lets workers simulate 2-cycle
epochs independently and exchange messages only at epoch barriers.
"""

import heapq

from repro import memmap
from repro.isa.semantics import load_value
from repro.machine.core import Core
from repro.machine.lowered import LoweredInstr, lower_program
from repro.machine.soa import flush_alu as soa_flush_alu
from repro.machine.memory import Bank
from repro.machine.params import Params
from repro.machine.router import (
    backward_links,
    forward_links,
    reply_path,
    request_path,
)
from repro.machine.stats import MachineStats
from repro.machine.trace import Trace

#: p_swre completion acks ride a virtual credit wire back to the sender
#: (no physical forward path exists for arbitrary core distances)
RE_ACK_LATENCY = 2
#: a halt decision (exit/ebreak committed at cycle t) reaches every
#: domain at t + HALT_LATENCY — never inside the epoch that produced it
HALT_LATENCY = 2


class MachineError(Exception):
    """A machine-level trap: bad address, bad fork, cycle limit..."""


class DeadlockError(MachineError):
    """No hart can make progress and no event is pending."""


# ---- scheduled-event handlers ------------------------------------------------
#
# The event queue holds (cycle, origin, oseq, dst, kind, args) tuples —
# *no closures* — so that in-flight events survive snapshot/restore
# (repro.snapshot): the args of every kind are plain ints/strings/tuples
# and each handler below re-resolves the objects it touches from those.
# Handlers run with the machine as first argument when their cycle is
# reached, and only ever mutate state of the *dst* domain (plus posts of
# follow-up events) — the invariant the sharded engine depends on.


def _normalize_args(args):
    """Event args after a JSON round-trip: lists back to tuples."""
    return tuple(tuple(a) if isinstance(a, list) else a for a in args)


def _resolve_bank(machine, bank_ref):
    """The Bank named by a ('local'|'shared'|'code', core) reference."""
    kind, index = bank_ref
    if kind == "code":
        return machine.code_bank
    mem = machine.cores[index].mem
    return mem.local if kind == "local" else mem.shared


def _rob_by_tag(hart, tag):
    for rob_entry in hart.rob:
        if rob_entry.tag == tag:
            return rob_entry
    raise AssertionError("tag %d not in ROB of hart %d" % (tag, hart.gid))


# ---- intra-domain kinds (requester-local accesses) ---------------------------


def _ev_load_read(machine, bank_ref, addr, width, mnemonic, t_done,
                  core_index, hart_gid):
    """Bank-side read of a local load; fills the hart's result buffer."""
    hart = machine.hart_by_gid(hart_gid)
    device = machine.mmio.get(addr)
    if device is not None:
        raw = device.read(machine.cycle) & 0xFFFFFFFF
    else:
        try:
            raw = _resolve_bank(machine, bank_ref).read(addr, width)
        except IndexError as exc:
            machine.error(str(exc))
            raw = 0
    hart.rb.fill(load_value(mnemonic, raw), t_done)
    machine.trace.record(
        machine.cycle, core_index, hart.index, "mem_load",
        "addr 0x%x -> 0x%x" % (addr, hart.rb.value),
    )


def _ev_load_done(machine, hart_gid):
    machine.hart_by_gid(hart_gid).outstanding_mem -= 1


def _ev_store_write(machine, bank_ref, addr, value, width,
                    core_index, hart_gid, tag):
    hart = machine.hart_by_gid(hart_gid)
    device = machine.mmio.get(addr)
    if device is not None:
        device.write(machine.cycle, value & 0xFFFFFFFF)
    else:
        try:
            _resolve_bank(machine, bank_ref).write(addr, value, width)
        except IndexError as exc:
            machine.error(str(exc))
    hart.outstanding_mem -= 1
    _rob_by_tag(hart, tag).done = True
    machine.trace.record(
        machine.cycle, core_index, hart.index, "mem_store",
        "addr 0x%x <- 0x%x" % (addr, value & 0xFFFFFFFF),
    )


def _ev_cv_write(machine, target_core_index, addr, value,
                 core_index, hart_gid, target_gid, offset, tag):
    """Same-core p_swcv: bank write and sender completion in one event."""
    machine.cores[target_core_index].mem.local.write(addr, value, 4)
    hart = machine.hart_by_gid(hart_gid)
    hart.outstanding_mem -= 1
    _rob_by_tag(hart, tag).done = True
    machine.trace.record(
        machine.cycle, core_index, hart.index, "cv_write",
        "hart %d off %d <- 0x%x" % (target_gid, offset, value & 0xFFFFFFFF),
    )


# ---- remote shared-memory protocol (request / bank op / reply) ---------------


def _ev_rreq_load(machine, src, hart_gid, owner, addr, width, mnemonic):
    """A load request arrives at the owning core's router port."""
    owner_core = machine.cores[owner]
    t_bank = owner_core.mem.shared_router_port.reserve(
        machine.cycle + machine.params.bank_access_latency)
    t_back = owner_core.links.reserve_path(reply_path(src, owner), t_bank)
    machine.post(owner, t_bank, "bank_read",
                 (src, hart_gid, owner, addr, width, mnemonic, t_back + 1))


def _ev_bank_read(machine, src, hart_gid, owner, addr, width, mnemonic,
                  t_done):
    device = machine.mmio.get(addr)
    if device is not None:
        raw = device.read(machine.cycle) & 0xFFFFFFFF
    else:
        try:
            raw = machine.cores[owner].mem.shared.read(addr, width)
        except IndexError as exc:
            machine.error(str(exc))
            raw = 0
    machine.post(src, t_done, "rrep_load",
                 (src, hart_gid, addr, load_value(mnemonic, raw)))


def _ev_rrep_load(machine, src, hart_gid, addr, value):
    hart = machine.hart_by_gid(hart_gid)
    hart.rb.fill(value, machine.cycle)
    hart.outstanding_mem -= 1
    if machine.metrics is not None:
        machine.metrics.remote_done(src, hart_gid)
    machine.trace.record(
        machine.cycle, src, hart.index, "mem_load",
        "addr 0x%x -> 0x%x" % (addr, hart.rb.value),
    )


def _ev_rreq_store(machine, src, hart_gid, owner, addr, value, width, tag):
    owner_core = machine.cores[owner]
    t_bank = owner_core.mem.shared_router_port.reserve(
        machine.cycle + machine.params.bank_access_latency)
    t_ack = owner_core.links.reserve_path(reply_path(src, owner), t_bank) + 1
    machine.post(owner, t_bank, "bank_write", (owner, addr, value, width))
    machine.post(src, t_ack, "rack_store", (src, hart_gid, addr, value, tag))


def _ev_bank_write(machine, owner, addr, value, width):
    device = machine.mmio.get(addr)
    if device is not None:
        device.write(machine.cycle, value & 0xFFFFFFFF)
        return
    try:
        machine.cores[owner].mem.shared.write(addr, value, width)
    except IndexError as exc:
        machine.error(str(exc))


def _ev_rack_store(machine, src, hart_gid, addr, value, tag):
    hart = machine.hart_by_gid(hart_gid)
    hart.outstanding_mem -= 1
    if machine.metrics is not None:
        machine.metrics.remote_done(src, hart_gid)
    _rob_by_tag(hart, tag).done = True
    machine.trace.record(
        machine.cycle, src, hart.index, "mem_store",
        "addr 0x%x <- 0x%x" % (addr, value & 0xFFFFFFFF),
    )


# ---- cross-core continuation-value writes (p_swcv over the forward link) -----


def _ev_rreq_cv(machine, src, hart_gid, target_gid, offset, value, tag):
    hpc = machine.params.harts_per_core
    target_core = machine.cores[target_gid // hpc]
    t_bank = target_core.mem.local_port.reserve(machine.cycle)
    addr = memmap.hart_cv_base(target_gid % hpc) + offset
    machine.post(target_core.index, t_bank, "cv_apply",
                 (target_core.index, addr, value))
    t_ack = target_core.links.reserve_path(
        backward_links(target_core.index, src), t_bank) + 1
    machine.post(src, t_ack, "rack_cv",
                 (src, hart_gid, target_gid, offset, value, tag))


def _ev_cv_apply(machine, core_index, addr, value):
    machine.cores[core_index].mem.local.write(addr, value, 4)


def _ev_rack_cv(machine, src, hart_gid, target_gid, offset, value, tag):
    hart = machine.hart_by_gid(hart_gid)
    hart.outstanding_mem -= 1
    if machine.metrics is not None:
        machine.metrics.remote_done(src, hart_gid)
    _rob_by_tag(hart, tag).done = True
    machine.trace.record(
        machine.cycle, src, hart.index, "cv_write",
        "hart %d off %d <- 0x%x" % (target_gid, offset, value & 0xFFFFFFFF),
    )


# ---- backward-line result messages (p_swre) ----------------------------------


def _ev_re_deliver(machine, core_index, hart_gid, target_gid, slot, value,
                   tag, parked):
    """p_swre arrival at the target's result buffer (see schedule_re_send)."""
    target = machine.hart_by_gid(target_gid)
    if target.re_buffers[slot] is not None:
        desc = (core_index, hart_gid, target_gid, slot, value, tag)
        waiters = target.re_waiters[slot]
        if parked:
            # a fresh arrival won the drained slot first: keep this
            # delivery at the head (it is the oldest)
            waiters.insert(0, desc)
        else:
            waiters.append(desc)
        return
    target.re_buffers[slot] = value & 0xFFFFFFFF
    if machine.sanitizer is not None:
        machine.sanitizer.record(
            target.core.index,
            (machine.cycle, "refill", target_gid, slot, hart_gid))
    machine.post(core_index, machine.cycle + RE_ACK_LATENCY, "re_ack",
                 (core_index, hart_gid, target_gid, slot, value, tag))


def _ev_re_ack(machine, core_index, hart_gid, target_gid, slot, value, tag):
    hart = machine.hart_by_gid(hart_gid)
    _rob_by_tag(hart, tag).done = True
    machine.stats.per_core[core_index].re_messages += 1
    machine.trace.record(
        machine.cycle, core_index, hart.index, "re_send",
        "hart %d buf %d <- 0x%x" % (target_gid, slot, value & 0xFFFFFFFF),
    )


# ---- fork token protocol (p_fn over the forward link) ------------------------


def _ev_fork_req(machine, target_core_index, src_core_index, parent_gid):
    """A p_fn hart-allocation request arrives at the next core."""
    core = machine.cores[target_core_index]
    if not core.fork_queue:
        child = core.alloc_free_hart()
        if child is not None:
            machine.grant_fork(core, child, src_core_index, parent_gid)
            return
    core.fork_queue.append((src_core_index, parent_gid))


def _ev_fork_grant(machine, parent_gid, child_gid):
    machine.hart_by_gid(parent_gid).fork_tokens.append(child_gid)


# ---- team lifecycle messages -------------------------------------------------


def _ev_start_pc(machine, target_gid, pc):
    target = machine.hart_by_gid(target_gid)
    if not target.reserved:
        machine.error(
            "start pc sent to hart %d which was not allocated" % target_gid
        )
        return
    target.start(pc, machine.cycle)
    machine.trace.record(
        machine.cycle, target.core.index, target.index, "start",
        "pc 0x%x" % pc,
    )
    if machine.sanitizer is not None:
        # threshold: every instruction this hart decodes from here on
        # gets a rename tag greater than the core's current counter
        machine.sanitizer.record(
            target.core.index,
            (machine.cycle, "start", target_gid, target.core._tag))


def _ev_ending_signal(machine, core_index, hart_index, succ_gid):
    succ = machine.hart_by_gid(succ_gid)
    succ.pred_done = True
    # the line names the *sender* core but is recorded by the receiving
    # domain — the explicit domain keeps shard buffers disjoint
    machine.trace.record(
        machine.cycle, core_index, hart_index, "ending_signal",
        "to hart %d" % succ_gid, domain=succ.core.index,
    )


def _ev_join(machine, target_gid, addr):
    target = machine.hart_by_gid(target_gid)
    machine.trace.record(
        machine.cycle, target.core.index, target.index, "join",
        "resume 0x%x" % addr,
    )
    if target.waiting_join:
        target.start(addr, machine.cycle)
        if machine.sanitizer is not None:
            machine.sanitizer.record(
                target.core.index,
                (machine.cycle, "jstart", target_gid, target.core._tag))
    else:
        target.pending_join = addr


#: event kind -> handler; the kinds (and their arg tuples) are the on-disk
#: vocabulary of the snapshot format — extend, never repurpose
EVENT_HANDLERS = {
    "load_read": _ev_load_read,
    "load_done": _ev_load_done,
    "store_write": _ev_store_write,
    "cv_write": _ev_cv_write,
    "rreq_load": _ev_rreq_load,
    "bank_read": _ev_bank_read,
    "rrep_load": _ev_rrep_load,
    "rreq_store": _ev_rreq_store,
    "bank_write": _ev_bank_write,
    "rack_store": _ev_rack_store,
    "rreq_cv": _ev_rreq_cv,
    "cv_apply": _ev_cv_apply,
    "rack_cv": _ev_rack_cv,
    "re_deliver": _ev_re_deliver,
    "re_ack": _ev_re_ack,
    "fork_req": _ev_fork_req,
    "fork_grant": _ev_fork_grant,
    "start_pc": _ev_start_pc,
    "ending_signal": _ev_ending_signal,
    "join": _ev_join,
}


#: process-wide default execution backend, used when ``LBP(backend=None)``:
#: "soa" (machine/soa.py, the fast struct-of-arrays core — bit-exact with
#: the interpreter) or "interp" (machine/core.py).  Falls back to
#: "interp" with a warning when numpy is unavailable.
DEFAULT_BACKEND = "soa"

_warned_numpy_fallback = False


def resolve_backend(backend):
    """Normalise a ``backend=`` argument to "soa" or "interp"."""
    global _warned_numpy_fallback
    if backend is None:
        backend = DEFAULT_BACKEND
    if backend not in ("soa", "interp"):
        raise ValueError(
            "unknown backend %r (expected 'soa' or 'interp')" % (backend,))
    if backend == "soa":
        from repro.machine.soa import HAVE_NUMPY

        if not HAVE_NUMPY:
            if not _warned_numpy_fallback:
                import warnings

                warnings.warn(
                    "numpy is not installed; falling back to the interp "
                    "backend (slower, same results)", RuntimeWarning,
                    stacklevel=2)
                _warned_numpy_fallback = True
            backend = "interp"
    return backend


class LBP:
    """One simulated LBP processor instance.

    ``LBP(params, shards=N)`` with N > 1 constructs the space-sharded
    engine (:class:`repro.parsim.ShardedLBP`) instead — same program
    interface, bit-identical results, N worker processes.

    ``backend`` selects the execution core: "soa" (default; see
    repro.machine.soa) or "interp" — both produce bit-identical traces,
    stats and snapshots, so the choice is pure performance.
    """

    def __new__(cls, params=None, trace=None, shards=None, sanitize=False,
                metrics=None, backend=None):
        if cls is LBP and shards is not None and shards != 1:
            from repro.parsim import ShardedLBP

            return ShardedLBP(params, trace=trace, shards=shards,
                              sanitize=sanitize, metrics=metrics,
                              backend=backend)
        return super().__new__(cls)

    def __init__(self, params=None, trace=None, shards=None, sanitize=False,
                 metrics=None, backend=None):
        self.params = params or Params()
        self.stats = MachineStats(self.params.num_cores, self.params.harts_per_core)
        # explicit None test: an empty Trace is falsy (len() == 0)
        self.trace = trace if trace is not None else Trace(
            self.params.trace_enabled)
        #: referential-order race detector (observation only; the hooks
        #: never post events or reserve ports, so traces stay bit-exact)
        if sanitize:
            from repro.sanitize import Sanitizer

            self.sanitizer = Sanitizer()
        else:
            self.sanitizer = None
        #: stall attribution + windowed sampler (observation only, like
        #: the sanitizer: telemetry never perturbs the simulation)
        self.metrics = None
        #: number of cores whose ``active`` gating flag is set; kept in
        #: lockstep with the flags by Core.activate and the run loop
        self._num_active = 0
        #: the SoA backend's deferred ALU issues for the current cycle
        #: (always empty for interp cores; see repro.machine.soa.flush_alu)
        self._alu_pending = []
        self.backend = resolve_backend(backend)
        if self.backend == "soa":
            from repro.machine.soa import SoACore as core_cls
        else:
            core_cls = Core
        self.cores = [core_cls(i, self) for i in range(self.params.num_cores)]
        if metrics:
            from repro.observe import Metrics

            if isinstance(metrics, Metrics):
                self._attach_metrics(metrics)
            elif metrics is True:
                self._attach_metrics(Metrics())
            else:
                self._attach_metrics(Metrics(interval=int(metrics)))
        self.code = {}
        #: {pc: LoweredInstr} built at load time (machine/lowered.py)
        self.lowered = {}
        self.code_bank = Bank(memmap.CODE_BASE, memmap.CODE_SIZE, "code")
        self.mmio = {}
        self.cycle = 0
        self.halted = False
        self.halt_reason = None
        self._halt_at = None
        self._halt_key = None
        self._events = []
        self._error = None
        self._error_key = None
        #: domain currently executing (event handler's dst, or the core
        #: being ticked) — the origin stamped on posted events
        self._origin = 0
        #: sharded-engine hooks: when _owned is a set, posts to other
        #: domains are diverted to _outbox instead of the local heap
        self._owned = None
        self._outbox = []
        self.program = None

    # ---- construction ------------------------------------------------------

    def load(self, program, start=True):
        """Load a :class:`~repro.asm.program.Program` and start hart 0."""
        self.program = program
        self.code = program.instructions
        self.lowered = lower_program(self.code, self.params)
        for seg in program.code_segments():
            self.code_bank.load_image(seg.base - memmap.CODE_BASE, seg.data)
        for seg in program.data_segments():
            if seg.bank >= self.params.num_cores:
                raise MachineError(
                    "data bank %d does not exist on a %d-core machine"
                    % (seg.bank, self.params.num_cores)
                )
            bank = self.cores[seg.bank].mem.shared
            bank.load_image(seg.base - bank.base, seg.data)
        if start:
            boot = self.cores[0].harts[0]
            boot.regs[2] = memmap.hart_initial_sp(0)
            boot.start(program.entry, -1)
        return self

    def add_device(self, addr, device):
        """Map a device at global address *addr* (word-granular MMIO)."""
        self.mmio[addr] = device

    def _attach_metrics(self, metrics):
        """Bind (or unbind, with None) the telemetry object: the machine
        attribute the tick hot path reads, plus each core's link-scheduler
        observer (router backpressure attribution)."""
        self.metrics = metrics
        if metrics is not None:
            metrics.bind(self)
        for core in self.cores:
            core.links.observe(metrics, core.index)

    # ---- snapshot/restore ----------------------------------------------------

    def state_dict(self):
        """Complete machine state as plain data (see repro.snapshot).

        Excludes the program image inputs (code/lowered are rebuilt by
        :meth:`load`) and MMIO devices (externally attached; the snapshot
        layer refuses machines with devices).
        """
        return {
            "cycle": self.cycle,
            "halted": self.halted,
            "halt_reason": self.halt_reason,
            "halt_at": self._halt_at,
            "halt_key": None if self._halt_key is None else list(self._halt_key),
            "error": self._error,
            "error_key": None if self._error_key is None else list(self._error_key),
            "events": [
                [cycle, origin, oseq, dst, kind, list(args)]
                for cycle, origin, oseq, dst, kind, args in sorted(self._events)
            ],
            "code_bank": self.code_bank.state_dict(),
            "stats": self.stats.state_dict(),
            "trace": self.trace.state_dict(),
            "sanitize": (None if self.sanitizer is None
                         else self.sanitizer.state_dict()),
            "observe": (None if self.metrics is None
                        else self.metrics.state_dict()),
            "cores": [core.state_dict() for core in self.cores],
        }

    def load_state_dict(self, state):
        """Restore :meth:`state_dict` state onto a machine that has the
        same params and the same program already loaded (start=False)."""
        self.cycle = state["cycle"]
        self.halted = state["halted"]
        self.halt_reason = state["halt_reason"]
        self._halt_at = state["halt_at"]
        self._halt_key = (
            None if state["halt_key"] is None else tuple(state["halt_key"]))
        self._error = state["error"]
        self._error_key = (
            None if state["error_key"] is None else tuple(state["error_key"]))
        self._events = [
            (cycle, origin, oseq, dst, kind, _normalize_args(args))
            for cycle, origin, oseq, dst, kind, args in state["events"]
        ]
        heapq.heapify(self._events)
        for event in self._events:
            if event[4] not in EVENT_HANDLERS:
                raise ValueError(
                    "unknown event kind %r in snapshot" % (event[4],))
        self.code_bank.load_state_dict(state["code_bank"])
        self.stats.load_state_dict(state["stats"])
        self.trace.load_state_dict(state["trace"])
        san_state = state.get("sanitize")
        if san_state is not None:
            from repro.sanitize import Sanitizer

            self.sanitizer = Sanitizer()
            self.sanitizer.load_state_dict(san_state)
        else:
            # the observation history starts at cycle 0; a machine resumed
            # from an unsanitized snapshot cannot be sanitized mid-run
            self.sanitizer = None
        obs_state = state.get("observe")
        if obs_state is not None:
            from repro.observe import Metrics

            if self.metrics is None:
                self._attach_metrics(Metrics())
            self.metrics.load_state_dict(obs_state)
        else:
            # same rule as the sanitizer: the charge history starts at
            # cycle 0, so an unmetered snapshot resumes unmetered
            self._attach_metrics(None)
        for core, core_state in zip(self.cores, state["cores"]):
            core.load_state_dict(core_state)
        self._num_active = sum(1 for core in self.cores if core.active)

    def core_state_dict(self, index):
        """One domain's full slice: core + stats counters + trace buffer +
        pending events addressed to it (shard gathering)."""
        return {
            "core": self.cores[index].state_dict(),
            "stats": self.stats.core_state_dict(index),
            "trace": self.trace.domain_state_dict(index),
            "sanitize": (None if self.sanitizer is None
                         else self.sanitizer.domain_state_dict(index)),
            "observe": (None if self.metrics is None
                        else self.metrics.domain_state_dict(index)),
            "events": [
                [cycle, origin, oseq, dst, kind, list(args)]
                for cycle, origin, oseq, dst, kind, args in sorted(self._events)
                if dst == index
            ],
        }

    def load_core_state_dict(self, index, state):
        self.cores[index].load_state_dict(state["core"])
        self.stats.load_core_state_dict(index, state["stats"])
        self.trace.load_domain_state_dict(index, state["trace"])
        san_state = state.get("sanitize")
        if self.sanitizer is not None and san_state is not None:
            self.sanitizer.load_domain_state_dict(index, san_state)
        obs_state = state.get("observe")
        if self.metrics is not None and obs_state is not None:
            self.metrics.load_domain_state_dict(index, obs_state)
        self._events = [
            event for event in self._events if event[3] != index
        ]
        self._events.extend(
            (cycle, origin, oseq, dst, kind, _normalize_args(args))
            for cycle, origin, oseq, dst, kind, args in state["events"]
        )
        heapq.heapify(self._events)
        self._num_active = sum(1 for core in self.cores if core.active)

    # ---- small services used by cores ---------------------------------------

    def core_after(self, core):
        index = core.index + 1
        return self.cores[index] if index < len(self.cores) else None

    def core_index_of(self, gid):
        return gid // self.params.harts_per_core

    def hart_by_gid(self, gid):
        core_index, hart_index = divmod(gid, self.params.harts_per_core)
        if core_index >= len(self.cores):
            self.error("hart id %d does not exist" % gid)
            return self.cores[0].harts[0]
        return self.cores[core_index].harts[hart_index]

    def _valid_gid(self, gid):
        if gid // self.params.harts_per_core >= len(self.cores):
            self.error("hart id %d does not exist" % gid)
            return False
        return True

    def post(self, dst, cycle, kind, args):
        """Enqueue event *kind* for domain *dst* (see EVENT_HANDLERS).

        The key (cycle, origin, oseq) is computed from the posting
        domain's own counter, so it is identical no matter which worker
        process runs the origin domain.
        """
        core = self.cores[self._origin]
        core._seq += 1
        event = (cycle, core.index, core._seq, dst, kind, args)
        if self._owned is not None and dst not in self._owned:
            self._outbox.append(event)
        else:
            heapq.heappush(self._events, event)

    def halt(self, reason):
        """Commit-side exit/ebreak: the machine stops HALT_LATENCY later.

        The delay gives every domain (in any sharding) the same final
        cycle; the first call wins, which equals the minimum
        (cycle, domain) since commits are visited in that order.
        """
        key = (self.cycle + HALT_LATENCY, self._origin)
        if self._halt_key is None or key < self._halt_key:
            self._halt_key = key
            self._halt_at = key[0]
            self.halt_reason = reason

    def error(self, message):
        key = (self.cycle, self._origin)
        if self._error_key is None or key < self._error_key:
            self._error_key = key
            self._error = "cycle %d: %s" % (self.cycle, message)

    def fetch_instruction(self, pc, hart):
        low = self.lowered.get(pc)
        if low is None:
            self.error(
                "hart %d fetches from non-code address 0x%x" % (hart.gid, pc)
            )
            low = self.lowered_at(pc)
        return low

    def lowered_at(self, pc):
        """The lowered instruction at *pc*, or the fault-path ebreak.

        The fallback mirrors :meth:`fetch_instruction` without recording
        an error — state restore uses it to rebuild pipeline entries that
        were fetched from a non-code address (the machine is already on
        its way to a MachineError when that state exists)."""
        low = self.lowered.get(pc)
        if low is None:
            from repro.isa.instruction import Instruction
            from repro.isa.spec import INSTR_SPECS

            low = LoweredInstr(
                Instruction("ebreak", spec=INSTR_SPECS["ebreak"]), self.params)
        return low

    def cv_address(self, hart, offset):
        return memmap.hart_cv_base(hart.index) + offset

    # ---- memory accesses -----------------------------------------------------

    def schedule_load(self, core, hart, entry, low, addr):
        width = low.width
        now = self.cycle
        params = self.params
        if memmap.is_local(addr):
            t_bank = core.mem.local_port.reserve(now + params.local_mem_latency)
            bank, bank_ref = core.mem.local, ("local", core.index)
            remote = False
        elif memmap.is_code(addr):
            t_bank = now + params.local_mem_latency
            bank, bank_ref = self.code_bank, ("code", 0)
            remote = False
        else:
            owner = memmap.owner_core_of(addr, params.num_cores)
            if owner is None:
                self.error("access to unmapped address 0x%x" % addr)
                owner = core.index
            if owner == core.index:
                t_bank = core.mem.shared_local_port.reserve(
                    now + params.local_mem_latency)
                bank, bank_ref = core.mem.shared, ("shared", owner)
                self.stats.per_core[core.index].local_accesses += 1
                remote = False
            else:
                bank = self.cores[owner].mem.shared
                self.stats.per_core[core.index].remote_accesses += 1
                remote = True
        hart.rb.occupy(entry.tag, low.rd, entry.rob)
        hart.outstanding_mem += 1
        self.trace.record(
            now, core.index, hart.index, "mem_load_req",
            "addr 0x%x bank %s" % (addr, bank.name),
        )
        if (self.sanitizer is not None and addr >= memmap.GLOBAL_BASE
                and addr not in self.mmio):
            self.sanitizer.record(
                core.index,
                (now, "acc", hart.gid, entry.tag, addr, width, 0, entry.pc))
        if remote:
            if self.metrics is not None:
                self.metrics.remote_issue(core.index, hart.gid, now, owner)
            t_up = core.links.reserve_path(request_path(core.index, owner), now)
            self.post(owner, t_up, "rreq_load",
                      (core.index, hart.gid, owner, addr, width, low.mnemonic))
        else:
            t_done = t_bank + 1
            self.post(core.index, t_bank, "load_read",
                      (bank_ref, addr, width, low.mnemonic, t_done,
                       core.index, hart.gid))
            self.post(core.index, t_done, "load_done", (hart.gid,))

    def schedule_store(self, core, hart, entry, low, addr, value):
        width = low.width
        now = self.cycle
        params = self.params
        if memmap.is_local(addr):
            t_bank = core.mem.local_port.reserve(now + params.local_mem_latency)
            bank, bank_ref = core.mem.local, ("local", core.index)
            remote = False
        elif memmap.is_code(addr):
            t_bank = now + params.local_mem_latency
            bank, bank_ref = self.code_bank, ("code", 0)
            remote = False
        else:
            owner = memmap.owner_core_of(addr, params.num_cores)
            if owner is None:
                self.error("access to unmapped address 0x%x" % addr)
                owner = core.index
            if owner == core.index:
                t_bank = core.mem.shared_local_port.reserve(
                    now + params.local_mem_latency)
                bank, bank_ref = core.mem.shared, ("shared", owner)
                self.stats.per_core[core.index].local_accesses += 1
                remote = False
            else:
                bank = self.cores[owner].mem.shared
                self.stats.per_core[core.index].remote_accesses += 1
                remote = True
        hart.outstanding_mem += 1
        self.trace.record(
            now, core.index, hart.index, "mem_store_req",
            "addr 0x%x bank %s" % (addr, bank.name),
        )
        if (self.sanitizer is not None and addr >= memmap.GLOBAL_BASE
                and addr not in self.mmio):
            self.sanitizer.record(
                core.index,
                (now, "acc", hart.gid, entry.tag, addr, width, 1, entry.pc))
        if remote:
            if self.metrics is not None:
                self.metrics.remote_issue(core.index, hart.gid, now, owner)
            t_up = core.links.reserve_path(request_path(core.index, owner), now)
            self.post(owner, t_up, "rreq_store",
                      (core.index, hart.gid, owner, addr, value, width,
                       entry.tag))
        else:
            self.post(core.index, t_bank, "store_write",
                      (bank_ref, addr, value, width,
                       core.index, hart.gid, entry.tag))

    # ---- X_PAR messages -------------------------------------------------------

    def schedule_cv_write(self, core, hart, entry, target_gid, offset, value):
        """p_swcv: write into the allocated hart's CV area (forward link)."""
        if not self._valid_gid(target_gid):
            return
        target_core_index = target_gid // self.params.harts_per_core
        now = self.cycle
        if self.sanitizer is not None:
            self.sanitizer.record(
                core.index,
                (now, "swcv", hart.gid, entry.tag, target_gid, offset))
        if target_core_index == core.index:
            t_bank = core.mem.local_port.reserve(
                now + self.params.cv_write_latency)
            addr = memmap.hart_cv_base(
                target_gid % self.params.harts_per_core) + offset
            hart.outstanding_mem += 1
            self.post(core.index, t_bank, "cv_write",
                      (core.index, addr, value,
                       core.index, hart.gid, target_gid, offset, entry.tag))
        elif target_core_index == core.index + 1:
            if self.metrics is not None:
                self.metrics.remote_issue(core.index, hart.gid, now, None)
            t_link = core.links.reserve_path(
                forward_links(core.index, target_core_index), now)
            hart.outstanding_mem += 1
            self.post(target_core_index,
                      t_link + self.params.cv_write_latency, "rreq_cv",
                      (core.index, hart.gid, target_gid, offset, value,
                       entry.tag))
        else:
            self.error(
                "forward link only reaches the next core (%d -> %d)"
                % (core.index, target_core_index))

    def schedule_re_send(self, core, hart, entry, target_gid, index, value):
        """p_swre: send a result backward to a prior hart's result buffer.

        Flow control: a delivery that finds the slot occupied *parks* in
        the target hart's per-slot waiter queue and is re-scheduled when
        the consumer drains the slot (:meth:`wake_re_waiters`).  The
        sender's p_swre completes when the delivery ack returns.
        """
        if not self._valid_gid(target_gid):
            return
        target_core_index = target_gid // self.params.harts_per_core
        if target_core_index > core.index:
            self.error(
                "p_swre from hart %d to a later core (hart %d)"
                % (hart.gid, target_gid)
            )
            return
        links = backward_links(core.index, target_core_index)
        t_arrive = core.links.reserve_path(links, self.cycle) + 1
        slot = index % self.params.num_result_buffers
        if self.sanitizer is not None:
            self.sanitizer.record(
                core.index,
                (self.cycle, "swre", hart.gid, entry.tag, target_gid, slot))
        self.post(target_core_index, t_arrive, "re_deliver",
                  (core.index, hart.gid, target_gid, slot, value,
                   entry.tag, False))

    def wake_re_waiters(self, target, slot=None):
        """Re-schedule the oldest parked p_swre delivery for a drained slot.

        Called by the consumer side (p_lwre execute) with the drained
        *slot*, and on hart re-allocation (reserve_for_fork resets every
        slot) with ``slot=None`` — both run in the target's own domain.
        """
        slots = range(len(target.re_waiters)) if slot is None else (slot,)
        for index in slots:
            waiters = target.re_waiters[index]
            if waiters:
                desc = waiters.pop(0)
                self.post(target.core.index, self.cycle + 1, "re_deliver",
                          tuple(desc) + (True,))

    # ---- fork token protocol ---------------------------------------------------

    def send_fork_req(self, core, hart):
        """p_fn at decode: ask the next core for a hart (token on grant)."""
        target = self.core_after(core)
        if target is None:
            # teams only expand along the line of cores (paper §5.1); a
            # fork past the last core can never succeed
            self.error(
                "p_fn on the last core (hart %d): "
                "no next core to fork on" % hart.gid)
            return
        t = core.links.reserve_path(
            forward_links(core.index, target.index), self.cycle)
        self.post(target.index, t + 1, "fork_req",
                  (target.index, core.index, hart.gid))

    def grant_fork(self, core, child, src_core_index, parent_gid):
        """Allocate *child* on *core* for the requesting parent hart."""
        child.reserve_for_fork(parent_gid)
        self.wake_re_waiters(child)
        t = core.links.reserve_path(
            backward_links(core.index, src_core_index), self.cycle) + 1
        self.post(src_core_index, t, "fork_grant", (parent_gid, child.gid))

    # ---- team lifecycle messages ----------------------------------------------

    def send_start_pc(self, core, hart, target_gid, pc):
        """p_jal/p_jalr: start the allocated hart at *pc* (forward link)."""
        if not self._valid_gid(target_gid):
            return
        target_core_index = target_gid // self.params.harts_per_core
        if target_core_index == core.index:
            links = []
        elif target_core_index == core.index + 1:
            links = forward_links(core.index, target_core_index)
        else:
            self.error(
                "forward link only reaches the next core (%d -> %d)"
                % (core.index, target_core_index))
            return
        t = core.links.reserve_path(links, self.cycle) if links else self.cycle
        self.post(target_core_index, t + 1, "start_pc", (target_gid, pc))

    def send_ending_signal(self, core, hart, succ_gid):
        """The ordered-release chain between team members."""
        succ_core_index = succ_gid // self.params.harts_per_core
        if succ_core_index == core.index:
            links = []
        else:
            links = forward_links(core.index, succ_core_index)
        t = core.links.reserve_path(links, self.cycle) if links else self.cycle
        self.post(succ_core_index, t + 1, "ending_signal",
                  (core.index, hart.index, succ_gid))

    def send_join(self, core, hart, join_gid, addr):
        """p_ret case 4: the join address travels the backward line."""
        if not self._valid_gid(join_gid):
            return
        target_core_index = join_gid // self.params.harts_per_core
        if target_core_index > core.index:
            self.error(
                "join from hart %d to a later core (hart %d)" % (hart.gid, join_gid)
            )
            return
        links = backward_links(core.index, target_core_index)
        t = core.links.reserve_path(links, self.cycle) + 1
        self.post(target_core_index, t, "join", (join_gid, addr))

    # ---- the simulation loop ---------------------------------------------------

    def run(self, max_cycles=None, stop_at_cycle=None,
            snapshot_every=None, snapshot_callback=None):
        """Run until exit/ebreak; returns :class:`MachineStats`.

        Raises :class:`DeadlockError` when nothing can ever progress and
        :class:`MachineError` on traps or when *max_cycles* is exceeded.

        *stop_at_cycle* pauses the simulation (without halting the
        machine) at the first loop iteration whose cycle is >= the given
        value — before that cycle's events and pipeline stages run — so
        the machine can be snapshotted and later resumed by calling
        :meth:`run` again; the continuation is cycle-for-cycle identical
        to an uninterrupted run.  *snapshot_every* / *snapshot_callback*
        invoke ``snapshot_callback(machine)`` at the same safe point
        roughly every *snapshot_every* cycles.
        """
        limit = max_cycles if max_cycles is not None else self.params.max_cycles
        events = self._events
        cores = self.cores
        stats = self.stats
        per_core = stats.per_core
        metrics = self.metrics
        heappop = heapq.heappop
        handlers = EVENT_HANDLERS
        progress_mark = (0, 0)
        next_progress_check = 4096
        cycle = self.cycle
        next_snapshot = None
        if snapshot_every is not None and snapshot_callback is not None:
            next_snapshot = cycle + snapshot_every
        while not self.halted:
            if self._halt_at is not None and cycle >= self._halt_at:
                # machine.cycle stays the last *simulated* cycle index
                self.cycle = self._halt_at - 1
                self.halted = True
                break
            if stop_at_cycle is not None and cycle >= stop_at_cycle:
                self.cycle = cycle
                stats.cycles = max(stats.cycles, cycle)
                return stats
            if next_snapshot is not None and cycle >= next_snapshot:
                self.cycle = cycle
                snapshot_callback(self)
                next_snapshot = cycle + snapshot_every
            if cycle >= next_progress_check:
                mark = (stats.retired, sum(core._seq for core in cores))
                if (mark == progress_mark and not events
                        and self._halt_at is None):
                    raise DeadlockError(self._deadlock_dump())
                progress_mark = mark
                next_progress_check = cycle + 4096
            if cycle > limit:
                raise MachineError(
                    "cycle limit exceeded (%d); likely livelock" % limit
                )
            while events and events[0][0] <= cycle:
                event = heappop(events)
                self._origin = event[3]
                handlers[event[4]](self, *event[5])
            # active-core gating: only cores with runnable pipeline work
            # tick; wakeups (Hart.start) re-set the flag, and iteration
            # stays in fixed core-index order so arbitration, event seqs
            # and traces are identical to the ungated loop.  Idle cycles
            # are charged to each gated-off core so the totals do not
            # depend on sharding.
            for core in cores:
                if core.active:
                    self._origin = core.index
                    if not core.tick():
                        core.active = False
                        self._num_active -= 1
                else:
                    per_core[core.index].skipped_cycles += 1
                    if metrics is not None:
                        metrics.idle(core.index, cycle, 1)
            if self._alu_pending:
                # end-of-cycle opcode-grouped pass over the SoA cores'
                # deferred ALU issues (results only become observable at
                # next cycle's writeback, so batching is unobservable)
                soa_flush_alu(self)
            if self._error is not None:
                raise MachineError(self._error)
            cycle += 1
            if self._num_active == 0:
                # every core is quiescent: fast-forward to the next event
                # (in-flight traffic) or the pending halt, else deadlock
                target = events[0][0] if events else None
                if self._halt_at is not None and (
                        target is None or self._halt_at < target):
                    target = self._halt_at
                if target is None:
                    raise DeadlockError(self._deadlock_dump())
                if target > cycle:
                    delta = target - cycle
                    for counters in per_core:
                        counters.skipped_cycles += delta
                    if metrics is not None:
                        for index in range(len(cores)):
                            metrics.idle(index, cycle, delta)
                    cycle = target
            self.cycle = cycle
        if self._halt_at is not None:
            stats.cycles = max(stats.cycles, self._halt_at)
        else:
            stats.cycles = max(stats.cycles, self.cycle)
        return stats

    def _deadlock_dump(self):
        lines = ["deadlock at cycle %d:" % self.cycle]
        for core in self.cores:
            for hart in core.harts:
                if hart.waiting_join or hart.reserved or not hart.is_idle():
                    lines.append(
                        "  hart %d: pc=%r waiting_join=%r reserved=%r it=%d rob=%d"
                        % (
                            hart.gid, hart.pc, hart.waiting_join,
                            hart.reserved, len(hart.it), len(hart.rob),
                        )
                    )
        return "\n".join(lines)

    # ---- race detection -------------------------------------------------------

    def race_report(self, sync=None):
        """Analyze the recorded observations (``sanitize=True`` runs only).

        *sync* is an optional iterable of ``(base, size)`` byte ranges to
        treat as synchronization cells (release/acquire, like the
        paper's §6 request words) in addition to any ranges already
        declared on the sanitizer; returns a
        :class:`repro.sanitize.RaceReport`.
        """
        if self.sanitizer is None:
            raise MachineError(
                "race_report() needs a machine constructed with "
                "LBP(sanitize=True)")
        return self.sanitizer.analyze(self.program, self.params, sync=sync)

    # ---- telemetry ------------------------------------------------------------

    def metrics_report(self):
        """The stall-attribution + windowed-metrics report dict
        (``metrics=...`` runs only; see repro.observe.build_report)."""
        if self.metrics is None:
            raise MachineError(
                "metrics_report() needs a machine constructed with "
                "LBP(metrics=...)")
        from repro.observe import build_report

        return build_report(self)

    # ---- debugging / inspection --------------------------------------------------

    def read_word(self, addr):
        """Read a data word directly (for tests and result extraction)."""
        if memmap.is_local(addr):
            raise MachineError("local addresses are per-core; use read_local")
        owner = memmap.owner_core_of(addr, self.params.num_cores)
        if owner is None:
            raise MachineError("unmapped address 0x%x" % addr)
        return self.cores[owner].mem.shared.read(addr, 4)

    def write_word(self, addr, value):
        owner = memmap.owner_core_of(addr, self.params.num_cores)
        if owner is None:
            raise MachineError("unmapped address 0x%x" % addr)
        self.cores[owner].mem.shared.write(addr, value, 4)

    def read_local(self, core_index, addr):
        return self.cores[core_index].mem.local.read(addr, 4)
