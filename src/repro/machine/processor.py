"""The LBP machine: cores, interconnect, event queue, simulation loop.

Determinism: the simulation is single-threaded; every queue is ordered by
(cycle, insertion sequence); stage arbitration uses fixed rotating
priorities; link and port bandwidth is allocated by monotonic reservation
cursors.  Two runs of the same program on the same data produce identical
cycle-by-cycle event traces — the property the paper's claim (1) is about,
and which `benchmarks/test_determinism.py` checks.
"""

import heapq

from repro import memmap
from repro.isa.semantics import load_value
from repro.machine.core import Core
from repro.machine.lowered import LoweredInstr, lower_program
from repro.machine.memory import Bank
from repro.machine.params import Params
from repro.machine.router import (
    LinkScheduler,
    backward_links,
    forward_links,
    reply_path,
    request_path,
)
from repro.machine.stats import MachineStats
from repro.machine.trace import Trace


class MachineError(Exception):
    """A machine-level trap: bad address, bad fork, cycle limit..."""


class DeadlockError(MachineError):
    """No hart can make progress and no event is pending."""


# ---- scheduled-event handlers ------------------------------------------------
#
# The event queue holds (cycle, seq, kind, args) tuples — *no closures* —
# so that in-flight events survive snapshot/restore (repro.snapshot): the
# args of every kind are plain ints/strings/tuples and each handler below
# re-resolves the objects it touches from those.  Handlers run with the
# machine as first argument when their cycle is reached.


def _normalize_args(args):
    """Event args after a JSON round-trip: lists back to tuples."""
    return tuple(tuple(a) if isinstance(a, list) else a for a in args)


def _resolve_bank(machine, bank_ref):
    """The Bank named by a ('local'|'shared'|'code', core) reference."""
    kind, index = bank_ref
    if kind == "code":
        return machine.code_bank
    mem = machine.cores[index].mem
    return mem.local if kind == "local" else mem.shared


def _rob_by_tag(hart, tag):
    for rob_entry in hart.rob:
        if rob_entry.tag == tag:
            return rob_entry
    raise AssertionError("tag %d not in ROB of hart %d" % (tag, hart.gid))


def _ev_load_read(machine, bank_ref, addr, width, mnemonic, t_done,
                  core_index, hart_gid):
    """Bank-side read of an in-flight load; fills the hart's result buffer."""
    hart = machine.hart_by_gid(hart_gid)
    device = machine.mmio.get(addr)
    if device is not None:
        raw = device.read(machine.cycle) & 0xFFFFFFFF
    else:
        try:
            raw = _resolve_bank(machine, bank_ref).read(addr, width)
        except IndexError as exc:
            machine.error(str(exc))
            raw = 0
    hart.rb.fill(load_value(mnemonic, raw), t_done)
    machine.trace.record(
        machine.cycle, core_index, hart.index, "mem_load",
        "addr 0x%x -> 0x%x" % (addr, hart.rb.value),
    )


def _ev_load_done(machine, hart_gid):
    machine.hart_by_gid(hart_gid).outstanding_mem -= 1


def _ev_store_write(machine, bank_ref, addr, value, width,
                    core_index, hart_gid, tag):
    hart = machine.hart_by_gid(hart_gid)
    device = machine.mmio.get(addr)
    if device is not None:
        device.write(machine.cycle, value & 0xFFFFFFFF)
    else:
        try:
            _resolve_bank(machine, bank_ref).write(addr, value, width)
        except IndexError as exc:
            machine.error(str(exc))
    hart.outstanding_mem -= 1
    _rob_by_tag(hart, tag).done = True
    machine.trace.record(
        machine.cycle, core_index, hart.index, "mem_store",
        "addr 0x%x <- 0x%x" % (addr, value & 0xFFFFFFFF),
    )


def _ev_cv_write(machine, target_core_index, addr, value,
                 core_index, hart_gid, target_gid, offset, tag):
    machine.cores[target_core_index].mem.local.write(addr, value, 4)
    hart = machine.hart_by_gid(hart_gid)
    hart.outstanding_mem -= 1
    _rob_by_tag(hart, tag).done = True
    machine.trace.record(
        machine.cycle, core_index, hart.index, "cv_write",
        "hart %d off %d <- 0x%x" % (target_gid, offset, value & 0xFFFFFFFF),
    )


def _ev_re_deliver(machine, core_index, hart_gid, target_gid, slot, value,
                   tag, parked):
    """p_swre arrival at the target's result buffer (see schedule_re_send)."""
    target = machine.hart_by_gid(target_gid)
    if target.re_buffers[slot] is not None:
        desc = (core_index, hart_gid, target_gid, slot, value, tag)
        waiters = target.re_waiters[slot]
        if parked:
            # a fresh arrival won the drained slot first: keep this
            # delivery at the head (it is the oldest)
            waiters.insert(0, desc)
        else:
            waiters.append(desc)
        return
    target.re_buffers[slot] = value & 0xFFFFFFFF
    hart = machine.hart_by_gid(hart_gid)
    _rob_by_tag(hart, tag).done = True
    machine.stats.re_messages += 1
    machine.trace.record(
        machine.cycle, core_index, hart.index, "re_send",
        "hart %d buf %d <- 0x%x" % (target_gid, slot, value & 0xFFFFFFFF),
    )


def _ev_start_pc(machine, target_gid, pc):
    target = machine.hart_by_gid(target_gid)
    if not target.reserved:
        machine.error(
            "start pc sent to hart %d which was not allocated" % target_gid
        )
        return
    target.start(pc, machine.cycle)
    machine.trace.record(
        machine.cycle, target.core.index, target.index, "start",
        "pc 0x%x" % pc,
    )


def _ev_ending_signal(machine, core_index, hart_index, succ_gid):
    machine.hart_by_gid(succ_gid).pred_done = True
    machine.trace.record(
        machine.cycle, core_index, hart_index, "ending_signal",
        "to hart %d" % succ_gid,
    )


def _ev_join(machine, target_gid, addr):
    target = machine.hart_by_gid(target_gid)
    machine.trace.record(
        machine.cycle, target.core.index, target.index, "join",
        "resume 0x%x" % addr,
    )
    if target.waiting_join:
        target.start(addr, machine.cycle)
    else:
        target.pending_join = addr


#: event kind -> handler; the kinds (and their arg tuples) are the on-disk
#: vocabulary of the snapshot format — extend, never repurpose
EVENT_HANDLERS = {
    "load_read": _ev_load_read,
    "load_done": _ev_load_done,
    "store_write": _ev_store_write,
    "cv_write": _ev_cv_write,
    "re_deliver": _ev_re_deliver,
    "start_pc": _ev_start_pc,
    "ending_signal": _ev_ending_signal,
    "join": _ev_join,
}


class LBP:
    """One simulated LBP processor instance."""

    def __init__(self, params=None, trace=None):
        self.params = params or Params()
        self.stats = MachineStats(self.params.num_cores, self.params.harts_per_core)
        # explicit None test: an empty Trace is falsy (len() == 0)
        self.trace = trace if trace is not None else Trace(
            self.params.trace_enabled)
        #: number of cores whose ``active`` gating flag is set; kept in
        #: lockstep with the flags by Core.activate and the run loop
        self._num_active = 0
        self.cores = [Core(i, self) for i in range(self.params.num_cores)]
        self.links = LinkScheduler(self.params.link_hop_latency)
        self.code = {}
        #: {pc: LoweredInstr} built at load time (machine/lowered.py)
        self.lowered = {}
        self.code_bank = Bank(memmap.CODE_BASE, memmap.CODE_SIZE, "code")
        self.mmio = {}
        self.cycle = 0
        self.halted = False
        self.halt_reason = None
        self._events = []
        self._seq = 0
        self._tag = 0
        self._error = None
        self.program = None

    # ---- construction ------------------------------------------------------

    def load(self, program, start=True):
        """Load a :class:`~repro.asm.program.Program` and start hart 0."""
        self.program = program
        self.code = program.instructions
        self.lowered = lower_program(self.code, self.params)
        for seg in program.code_segments():
            self.code_bank.load_image(seg.base - memmap.CODE_BASE, seg.data)
        for seg in program.data_segments():
            if seg.bank >= self.params.num_cores:
                raise MachineError(
                    "data bank %d does not exist on a %d-core machine"
                    % (seg.bank, self.params.num_cores)
                )
            bank = self.cores[seg.bank].mem.shared
            bank.load_image(seg.base - bank.base, seg.data)
        if start:
            boot = self.cores[0].harts[0]
            boot.regs[2] = memmap.hart_initial_sp(0)
            boot.start(program.entry, -1)
        return self

    def add_device(self, addr, device):
        """Map a device at global address *addr* (word-granular MMIO)."""
        self.mmio[addr] = device

    # ---- snapshot/restore ----------------------------------------------------

    def state_dict(self):
        """Complete machine state as plain data (see repro.snapshot).

        Excludes the program image inputs (code/lowered are rebuilt by
        :meth:`load`) and MMIO devices (externally attached; the snapshot
        layer refuses machines with devices).
        """
        return {
            "cycle": self.cycle,
            "halted": self.halted,
            "halt_reason": self.halt_reason,
            "seq": self._seq,
            "tag": self._tag,
            "error": self._error,
            "events": [
                [cycle, seq, kind, list(args)]
                for cycle, seq, kind, args in sorted(self._events)
            ],
            "code_bank": self.code_bank.state_dict(),
            "links": self.links.state_dict(),
            "stats": self.stats.state_dict(),
            "trace": self.trace.state_dict(),
            "cores": [core.state_dict() for core in self.cores],
        }

    def load_state_dict(self, state):
        """Restore :meth:`state_dict` state onto a machine that has the
        same params and the same program already loaded (start=False)."""
        self.cycle = state["cycle"]
        self.halted = state["halted"]
        self.halt_reason = state["halt_reason"]
        self._seq = state["seq"]
        self._tag = state["tag"]
        self._error = state["error"]
        self._events = [
            (cycle, seq, kind, _normalize_args(args))
            for cycle, seq, kind, args in state["events"]
        ]
        heapq.heapify(self._events)
        for cycle, seq, kind, args in self._events:
            if kind not in EVENT_HANDLERS:
                raise ValueError("unknown event kind %r in snapshot" % (kind,))
        self.code_bank.load_state_dict(state["code_bank"])
        self.links.load_state_dict(state["links"])
        self.stats.load_state_dict(state["stats"])
        self.trace.load_state_dict(state["trace"])
        for core, core_state in zip(self.cores, state["cores"]):
            core.load_state_dict(core_state)
        self._num_active = sum(1 for core in self.cores if core.active)

    # ---- small services used by cores ---------------------------------------

    def next_tag(self):
        self._tag += 1
        return self._tag

    def core_after(self, core):
        index = core.index + 1
        return self.cores[index] if index < len(self.cores) else None

    def hart_by_gid(self, gid):
        core_index, hart_index = divmod(gid, self.params.harts_per_core)
        if core_index >= len(self.cores):
            self.error("hart id %d does not exist" % gid)
            return self.cores[0].harts[0]
        return self.cores[core_index].harts[hart_index]

    def schedule(self, cycle, kind, args):
        """Enqueue event *kind* (see EVENT_HANDLERS) with serializable *args*."""
        self._seq += 1
        heapq.heappush(self._events, (cycle, self._seq, kind, args))

    def halt(self, reason):
        self.halted = True
        self.halt_reason = reason
        self.stats.cycles = self.cycle + 1

    def error(self, message):
        if self._error is None:
            self._error = "cycle %d: %s" % (self.cycle, message)

    def fetch_instruction(self, pc, hart):
        low = self.lowered.get(pc)
        if low is None:
            self.error(
                "hart %d fetches from non-code address 0x%x" % (hart.gid, pc)
            )
            from repro.isa.instruction import Instruction
            from repro.isa.spec import INSTR_SPECS

            low = LoweredInstr(
                Instruction("ebreak", spec=INSTR_SPECS["ebreak"]), self.params)
        return low

    def cv_address(self, hart, offset):
        return memmap.hart_cv_base(hart.index) + offset

    # ---- memory accesses -----------------------------------------------------

    def _route_access(self, core, addr):
        """(bank, bank_ref, t_bank, t_done, remote) for one access.

        *bank_ref* is the serializable ('local'|'shared'|'code', core)
        name of the bank, used by the event-queue handlers.
        """
        now = self.cycle
        params = self.params
        if memmap.is_local(addr):
            port = core.mem.local_port
            t_bank = port.reserve(now + params.local_mem_latency)
            return core.mem.local, ("local", core.index), t_bank, t_bank + 1, False
        if memmap.is_code(addr):
            return self.code_bank, ("code", 0), now + params.local_mem_latency, \
                now + params.local_mem_latency + 1, False
        owner = memmap.owner_core_of(addr, params.num_cores)
        if owner is None:
            self.error("access to unmapped address 0x%x" % addr)
            owner = core.index
        if owner == core.index:
            port = core.mem.shared_local_port
            t_bank = port.reserve(now + params.local_mem_latency)
            self.stats.local_accesses += 1
            return core.mem.shared, ("shared", owner), t_bank, t_bank + 1, False
        self.stats.remote_accesses += 1
        t_up = self.links.reserve_path(request_path(core.index, owner), now)
        owner_core = self.cores[owner]
        t_bank = owner_core.mem.shared_router_port.reserve(
            t_up + params.bank_access_latency
        )
        t_back = self.links.reserve_path(reply_path(core.index, owner), t_bank)
        return owner_core.mem.shared, ("shared", owner), t_bank, t_back + 1, True

    def schedule_load(self, core, hart, entry, low, addr):
        width = low.width
        bank, bank_ref, t_bank, t_done, remote = self._route_access(core, addr)
        hart.rb.occupy(entry.tag, low.rd, entry.rob)
        hart.outstanding_mem += 1
        self.trace.record(
            self.cycle, core.index, hart.index, "mem_load_req",
            "addr 0x%x bank %s" % (addr, bank.name),
        )
        self.schedule(t_bank, "load_read",
                      (bank_ref, addr, width, low.mnemonic, t_done,
                       core.index, hart.gid))
        self.schedule(t_done, "load_done", (hart.gid,))

    def schedule_store(self, core, hart, entry, low, addr, value):
        width = low.width
        bank, bank_ref, t_bank, _t_done, remote = self._route_access(core, addr)
        hart.outstanding_mem += 1
        self.trace.record(
            self.cycle, core.index, hart.index, "mem_store_req",
            "addr 0x%x bank %s" % (addr, bank.name),
        )
        self.schedule(t_bank, "store_write",
                      (bank_ref, addr, value, width,
                       core.index, hart.gid, entry.tag))

    # ---- X_PAR messages -------------------------------------------------------

    def schedule_cv_write(self, core, hart, entry, target_gid, offset, value):
        """p_swcv: write into the allocated hart's CV area (forward link)."""
        target = self.hart_by_gid(target_gid)
        target_core = target.core
        try:
            links = forward_links(core.index, target_core.index)
        except ValueError as exc:
            self.error(str(exc))
            links = []
        now = self.cycle
        t_link = self.links.reserve_path(links, now) if links else now
        t_bank = target_core.mem.local_port.reserve(
            t_link + self.params.cv_write_latency
        )
        addr = memmap.hart_cv_base(target.index) + offset
        hart.outstanding_mem += 1
        self.schedule(t_bank, "cv_write",
                      (target_core.index, addr, value,
                       core.index, hart.gid, target_gid, offset, entry.tag))

    def schedule_re_send(self, core, hart, entry, target_gid, index, value):
        """p_swre: send a result backward to a prior hart's result buffer.

        Flow control: a delivery that finds the slot occupied *parks* in
        the target hart's per-slot waiter queue and is re-scheduled when
        the consumer drains the slot (:meth:`wake_re_waiters`) — instead
        of the former busy-retry that re-enqueued itself every cycle.
        """
        target = self.hart_by_gid(target_gid)
        if target.core.index > core.index:
            self.error(
                "p_swre from hart %d to a later core (hart %d)"
                % (hart.gid, target_gid)
            )
            return
        links = backward_links(core.index, target.core.index)
        t_arrive = self.links.reserve_path(links, self.cycle) + 1
        slot = index % len(target.re_buffers)
        self.schedule(t_arrive, "re_deliver",
                      (core.index, hart.gid, target_gid, slot, value,
                       entry.tag, False))

    def wake_re_waiters(self, target, slot=None):
        """Re-schedule the oldest parked p_swre delivery for a drained slot.

        Called by the consumer side (p_lwre execute) with the drained
        *slot*, and on hart re-allocation (reserve_for_fork resets every
        slot) with ``slot=None``.  The woken delivery runs in the next
        cycle's event phase — the same cycle the old busy-retry would
        have succeeded on.
        """
        slots = range(len(target.re_waiters)) if slot is None else (slot,)
        for index in slots:
            waiters = target.re_waiters[index]
            if waiters:
                desc = waiters.pop(0)
                self.schedule(self.cycle + 1, "re_deliver",
                              tuple(desc) + (True,))

    def send_start_pc(self, core, hart, target_gid, pc):
        """p_jal/p_jalr: start the allocated hart at *pc* (forward link)."""
        target = self.hart_by_gid(target_gid)
        try:
            links = forward_links(core.index, target.core.index)
        except ValueError as exc:
            self.error(str(exc))
            return
        t = self.links.reserve_path(links, self.cycle) if links else self.cycle
        self.schedule(t + 1, "start_pc", (target_gid, pc))

    def send_ending_signal(self, core, hart, succ):
        """The ordered-release chain between team members."""
        if succ.core.index == core.index:
            links = []
        else:
            links = forward_links(core.index, succ.core.index)
        t = self.links.reserve_path(links, self.cycle) if links else self.cycle
        self.schedule(t + 1, "ending_signal", (core.index, hart.index, succ.gid))

    def send_join(self, core, hart, join_gid, addr):
        """p_ret case 4: the join address travels the backward line."""
        target = self.hart_by_gid(join_gid)
        if target.core.index > core.index:
            self.error(
                "join from hart %d to a later core (hart %d)" % (hart.gid, join_gid)
            )
            return
        links = backward_links(core.index, target.core.index)
        t = self.links.reserve_path(links, self.cycle) + 1
        self.schedule(t, "join", (join_gid, addr))

    # ---- the simulation loop ---------------------------------------------------

    def run(self, max_cycles=None, stop_at_cycle=None,
            snapshot_every=None, snapshot_callback=None):
        """Run until exit/ebreak; returns :class:`MachineStats`.

        Raises :class:`DeadlockError` when nothing can ever progress and
        :class:`MachineError` on traps or when *max_cycles* is exceeded.

        *stop_at_cycle* pauses the simulation (without halting the
        machine) at the first loop iteration whose cycle is >= the given
        value — before that cycle's events and pipeline stages run — so
        the machine can be snapshotted and later resumed by calling
        :meth:`run` again; the continuation is cycle-for-cycle identical
        to an uninterrupted run.  *snapshot_every* / *snapshot_callback*
        invoke ``snapshot_callback(machine)`` at the same safe point
        roughly every *snapshot_every* cycles.
        """
        limit = max_cycles if max_cycles is not None else self.params.max_cycles
        events = self._events
        cores = self.cores
        num_cores = len(cores)
        stats = self.stats
        heappop = heapq.heappop
        handlers = EVENT_HANDLERS
        progress_mark = (0, 0)
        next_progress_check = 4096
        cycle = self.cycle
        next_snapshot = None
        if snapshot_every is not None and snapshot_callback is not None:
            next_snapshot = cycle + snapshot_every
        while not self.halted:
            if stop_at_cycle is not None and cycle >= stop_at_cycle:
                self.cycle = cycle
                stats.cycles = max(stats.cycles, cycle)
                return stats
            if next_snapshot is not None and cycle >= next_snapshot:
                self.cycle = cycle
                snapshot_callback(self)
                next_snapshot = cycle + snapshot_every
            if cycle >= next_progress_check:
                snapshot = (stats.retired, self._seq)
                if snapshot == progress_mark and not events:
                    raise DeadlockError(self._deadlock_dump())
                progress_mark = snapshot
                next_progress_check = cycle + 4096
            if cycle > limit:
                raise MachineError(
                    "cycle limit exceeded (%d); likely livelock" % limit
                )
            while events and events[0][0] <= cycle:
                event = heappop(events)
                handlers[event[2]](self, *event[3])
            if self.halted:
                break
            # active-core gating: only cores with runnable pipeline work
            # tick; wakeups (Hart.start) re-set the flag, and iteration
            # stays in fixed core-index order so arbitration, event seqs
            # and traces are identical to the ungated loop.
            ticked = self._num_active
            for core in cores:
                if core.active:
                    if not core.tick():
                        core.active = False
                        self._num_active -= 1
            stats.skipped_core_cycles += num_cores - ticked
            if self._error is not None:
                raise MachineError(self._error)
            if self.halted:
                break
            cycle += 1
            if self._num_active == 0:
                # every core is quiescent: fast-forward to the next event
                # (in-flight memory/protocol traffic), or report deadlock
                if events:
                    next_cycle = events[0][0]
                    if next_cycle > cycle:
                        stats.skipped_core_cycles += (
                            (next_cycle - cycle) * num_cores)
                        cycle = next_cycle
                else:
                    raise DeadlockError(self._deadlock_dump())
            self.cycle = cycle
        self.stats.cycles = max(self.stats.cycles, self.cycle)
        return self.stats

    def _deadlock_dump(self):
        lines = ["deadlock at cycle %d:" % self.cycle]
        for core in self.cores:
            for hart in core.harts:
                if hart.waiting_join or hart.reserved or not hart.is_idle():
                    lines.append(
                        "  hart %d: pc=%r waiting_join=%r reserved=%r it=%d rob=%d"
                        % (
                            hart.gid, hart.pc, hart.waiting_join,
                            hart.reserved, len(hart.it), len(hart.rob),
                        )
                    )
        return "\n".join(lines)

    # ---- debugging / inspection --------------------------------------------------

    def read_word(self, addr):
        """Read a data word directly (for tests and result extraction)."""
        if memmap.is_local(addr):
            raise MachineError("local addresses are per-core; use read_local")
        owner = memmap.owner_core_of(addr, self.params.num_cores)
        if owner is None:
            raise MachineError("unmapped address 0x%x" % addr)
        return self.cores[owner].mem.shared.read(addr, 4)

    def write_word(self, addr, value):
        owner = memmap.owner_core_of(addr, self.params.num_cores)
        if owner is None:
            raise MachineError("unmapped address 0x%x" % addr)
        self.cores[owner].mem.shared.write(addr, value, 4)

    def read_local(self, core_index, addr):
        return self.cores[core_index].mem.local.read(addr, 4)
