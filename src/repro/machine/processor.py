"""The LBP machine: cores, interconnect, event queue, simulation loop.

Determinism: the simulation is single-threaded; every queue is ordered by
(cycle, insertion sequence); stage arbitration uses fixed rotating
priorities; link and port bandwidth is allocated by monotonic reservation
cursors.  Two runs of the same program on the same data produce identical
cycle-by-cycle event traces — the property the paper's claim (1) is about,
and which `benchmarks/test_determinism.py` checks.
"""

import heapq

from repro import memmap
from repro.isa.semantics import load_value
from repro.machine.core import Core
from repro.machine.lowered import LoweredInstr, lower_program
from repro.machine.memory import Bank
from repro.machine.params import Params
from repro.machine.router import (
    LinkScheduler,
    backward_links,
    forward_links,
    reply_path,
    request_path,
)
from repro.machine.stats import MachineStats
from repro.machine.trace import Trace


class MachineError(Exception):
    """A machine-level trap: bad address, bad fork, cycle limit..."""


class DeadlockError(MachineError):
    """No hart can make progress and no event is pending."""


class LBP:
    """One simulated LBP processor instance."""

    def __init__(self, params=None, trace=None):
        self.params = params or Params()
        self.stats = MachineStats(self.params.num_cores, self.params.harts_per_core)
        self.trace = trace or Trace(self.params.trace_enabled)
        #: number of cores whose ``active`` gating flag is set; kept in
        #: lockstep with the flags by Core.activate and the run loop
        self._num_active = 0
        self.cores = [Core(i, self) for i in range(self.params.num_cores)]
        self.links = LinkScheduler(self.params.link_hop_latency)
        self.code = {}
        #: {pc: LoweredInstr} built at load time (machine/lowered.py)
        self.lowered = {}
        self.code_bank = Bank(memmap.CODE_BASE, memmap.CODE_SIZE, "code")
        self.mmio = {}
        self.cycle = 0
        self.halted = False
        self.halt_reason = None
        self._events = []
        self._seq = 0
        self._tag = 0
        self._error = None
        self.program = None

    # ---- construction ------------------------------------------------------

    def load(self, program, start=True):
        """Load a :class:`~repro.asm.program.Program` and start hart 0."""
        self.program = program
        self.code = program.instructions
        self.lowered = lower_program(self.code, self.params)
        for seg in program.code_segments():
            self.code_bank.load_image(seg.base - memmap.CODE_BASE, seg.data)
        for seg in program.data_segments():
            if seg.bank >= self.params.num_cores:
                raise MachineError(
                    "data bank %d does not exist on a %d-core machine"
                    % (seg.bank, self.params.num_cores)
                )
            bank = self.cores[seg.bank].mem.shared
            bank.load_image(seg.base - bank.base, seg.data)
        if start:
            boot = self.cores[0].harts[0]
            boot.regs[2] = memmap.hart_initial_sp(0)
            boot.start(program.entry, -1)
        return self

    def add_device(self, addr, device):
        """Map a device at global address *addr* (word-granular MMIO)."""
        self.mmio[addr] = device

    # ---- small services used by cores ---------------------------------------

    def next_tag(self):
        self._tag += 1
        return self._tag

    def core_after(self, core):
        index = core.index + 1
        return self.cores[index] if index < len(self.cores) else None

    def hart_by_gid(self, gid):
        core_index, hart_index = divmod(gid, self.params.harts_per_core)
        if core_index >= len(self.cores):
            self.error("hart id %d does not exist" % gid)
            return self.cores[0].harts[0]
        return self.cores[core_index].harts[hart_index]

    def schedule(self, cycle, fn):
        self._seq += 1
        heapq.heappush(self._events, (cycle, self._seq, fn))

    def halt(self, reason):
        self.halted = True
        self.halt_reason = reason
        self.stats.cycles = self.cycle + 1

    def error(self, message):
        if self._error is None:
            self._error = "cycle %d: %s" % (self.cycle, message)

    def fetch_instruction(self, pc, hart):
        low = self.lowered.get(pc)
        if low is None:
            self.error(
                "hart %d fetches from non-code address 0x%x" % (hart.gid, pc)
            )
            from repro.isa.instruction import Instruction
            from repro.isa.spec import INSTR_SPECS

            low = LoweredInstr(
                Instruction("ebreak", spec=INSTR_SPECS["ebreak"]), self.params)
        return low

    def cv_address(self, hart, offset):
        return memmap.hart_cv_base(hart.index) + offset

    # ---- memory accesses -----------------------------------------------------

    def _route_access(self, core, addr):
        """(bank, t_bank, reply_start→t_done fn, remote) for one access."""
        now = self.cycle
        params = self.params
        if memmap.is_local(addr):
            port = core.mem.local_port
            t_bank = port.reserve(now + params.local_mem_latency)
            return core.mem.local, t_bank, t_bank + 1, False
        if memmap.is_code(addr):
            return self.code_bank, now + params.local_mem_latency, \
                now + params.local_mem_latency + 1, False
        owner = memmap.owner_core_of(addr, params.num_cores)
        if owner is None:
            self.error("access to unmapped address 0x%x" % addr)
            owner = core.index
        if owner == core.index:
            port = core.mem.shared_local_port
            t_bank = port.reserve(now + params.local_mem_latency)
            self.stats.local_accesses += 1
            return core.mem.shared, t_bank, t_bank + 1, False
        self.stats.remote_accesses += 1
        t_up = self.links.reserve_path(request_path(core.index, owner), now)
        owner_core = self.cores[owner]
        t_bank = owner_core.mem.shared_router_port.reserve(
            t_up + params.bank_access_latency
        )
        t_back = self.links.reserve_path(reply_path(core.index, owner), t_bank)
        return owner_core.mem.shared, t_bank, t_back + 1, True

    def schedule_load(self, core, hart, entry, low, addr):
        width = low.width
        bank, t_bank, t_done, remote = self._route_access(core, addr)
        hart.rb.occupy(entry.tag, low.rd, entry.rob)
        hart.outstanding_mem += 1
        mnemonic = low.mnemonic
        self.trace.record(
            self.cycle, core.index, hart.index, "mem_load_req",
            "addr 0x%x bank %s" % (addr, bank.name),
        )

        def do_read():
            device = self.mmio.get(addr)
            if device is not None:
                raw = device.read(self.cycle) & 0xFFFFFFFF
            else:
                try:
                    raw = bank.read(addr, width)
                except IndexError as exc:
                    self.error(str(exc))
                    raw = 0
            hart.rb.fill(load_value(mnemonic, raw), t_done)
            self.trace.record(
                self.cycle, core.index, hart.index, "mem_load",
                "addr 0x%x -> 0x%x" % (addr, hart.rb.value),
            )

        def done():
            hart.outstanding_mem -= 1

        self.schedule(t_bank, do_read)
        self.schedule(t_done, done)

    def schedule_store(self, core, hart, entry, low, addr, value):
        width = low.width
        bank, t_bank, _t_done, remote = self._route_access(core, addr)
        hart.outstanding_mem += 1
        rob_entry = entry.rob
        self.trace.record(
            self.cycle, core.index, hart.index, "mem_store_req",
            "addr 0x%x bank %s" % (addr, bank.name),
        )

        def do_write():
            device = self.mmio.get(addr)
            if device is not None:
                device.write(self.cycle, value & 0xFFFFFFFF)
            else:
                try:
                    bank.write(addr, value, width)
                except IndexError as exc:
                    self.error(str(exc))
            hart.outstanding_mem -= 1
            rob_entry.done = True
            self.trace.record(
                self.cycle, core.index, hart.index, "mem_store",
                "addr 0x%x <- 0x%x" % (addr, value & 0xFFFFFFFF),
            )

        self.schedule(t_bank, do_write)

    # ---- X_PAR messages -------------------------------------------------------

    def schedule_cv_write(self, core, hart, entry, target_gid, offset, value):
        """p_swcv: write into the allocated hart's CV area (forward link)."""
        target = self.hart_by_gid(target_gid)
        target_core = target.core
        try:
            links = forward_links(core.index, target_core.index)
        except ValueError as exc:
            self.error(str(exc))
            links = []
        now = self.cycle
        t_link = self.links.reserve_path(links, now) if links else now
        t_bank = target_core.mem.local_port.reserve(
            t_link + self.params.cv_write_latency
        )
        addr = memmap.hart_cv_base(target.index) + offset
        hart.outstanding_mem += 1
        rob_entry = entry.rob

        def do_write():
            target_core.mem.local.write(addr, value, 4)
            hart.outstanding_mem -= 1
            rob_entry.done = True
            self.trace.record(
                self.cycle, core.index, hart.index, "cv_write",
                "hart %d off %d <- 0x%x" % (target_gid, offset, value & 0xFFFFFFFF),
            )

        self.schedule(t_bank, do_write)

    def schedule_re_send(self, core, hart, entry, target_gid, index, value):
        """p_swre: send a result backward to a prior hart's result buffer.

        Flow control: a delivery that finds the slot occupied *parks* in
        the target hart's per-slot waiter queue and is re-scheduled when
        the consumer drains the slot (:meth:`wake_re_waiters`) — instead
        of the former busy-retry that re-enqueued itself every cycle.
        """
        target = self.hart_by_gid(target_gid)
        if target.core.index > core.index:
            self.error(
                "p_swre from hart %d to a later core (hart %d)"
                % (hart.gid, target_gid)
            )
            return
        links = backward_links(core.index, target.core.index)
        t_arrive = self.links.reserve_path(links, self.cycle) + 1
        rob_entry = entry.rob
        slot = index % len(target.re_buffers)

        def deliver(parked=False):
            if target.re_buffers[slot] is not None:
                waiters = target.re_waiters[slot]
                if parked:
                    # a fresh arrival won the drained slot first: keep
                    # this delivery at the head (it is the oldest)
                    waiters.insert(0, deliver)
                else:
                    waiters.append(deliver)
                return
            target.re_buffers[slot] = value & 0xFFFFFFFF
            rob_entry.done = True
            self.stats.re_messages += 1
            self.trace.record(
                self.cycle, core.index, hart.index, "re_send",
                "hart %d buf %d <- 0x%x" % (target_gid, slot, value & 0xFFFFFFFF),
            )

        self.schedule(t_arrive, deliver)

    def wake_re_waiters(self, target, slot=None):
        """Re-schedule the oldest parked p_swre delivery for a drained slot.

        Called by the consumer side (p_lwre execute) with the drained
        *slot*, and on hart re-allocation (reserve_for_fork resets every
        slot) with ``slot=None``.  The woken delivery runs in the next
        cycle's event phase — the same cycle the old busy-retry would
        have succeeded on.
        """
        slots = range(len(target.re_waiters)) if slot is None else (slot,)
        for index in slots:
            waiters = target.re_waiters[index]
            if waiters:
                deliver = waiters.pop(0)
                self.schedule(self.cycle + 1, lambda fn=deliver: fn(parked=True))

    def send_start_pc(self, core, hart, target_gid, pc):
        """p_jal/p_jalr: start the allocated hart at *pc* (forward link)."""
        target = self.hart_by_gid(target_gid)
        try:
            links = forward_links(core.index, target.core.index)
        except ValueError as exc:
            self.error(str(exc))
            return
        t = self.links.reserve_path(links, self.cycle) if links else self.cycle

        def start():
            if not target.reserved:
                self.error(
                    "start pc sent to hart %d which was not allocated" % target_gid
                )
                return
            target.start(pc, self.cycle)
            self.trace.record(
                self.cycle, target.core.index, target.index, "start",
                "pc 0x%x" % pc,
            )

        self.schedule(t + 1, start)

    def send_ending_signal(self, core, hart, succ):
        """The ordered-release chain between team members."""
        if succ.core.index == core.index:
            links = []
        else:
            links = forward_links(core.index, succ.core.index)
        t = self.links.reserve_path(links, self.cycle) if links else self.cycle

        def signal():
            succ.pred_done = True
            self.trace.record(
                self.cycle, core.index, hart.index, "ending_signal",
                "to hart %d" % succ.gid,
            )

        self.schedule(t + 1, signal)

    def send_join(self, core, hart, join_gid, addr):
        """p_ret case 4: the join address travels the backward line."""
        target = self.hart_by_gid(join_gid)
        if target.core.index > core.index:
            self.error(
                "join from hart %d to a later core (hart %d)" % (hart.gid, join_gid)
            )
            return
        links = backward_links(core.index, target.core.index)
        t = self.links.reserve_path(links, self.cycle) + 1

        def deliver():
            self.trace.record(
                self.cycle, target.core.index, target.index, "join",
                "resume 0x%x" % addr,
            )
            if target.waiting_join:
                target.start(addr, self.cycle)
            else:
                target.pending_join = addr

        self.schedule(t, deliver)

    # ---- the simulation loop ---------------------------------------------------

    def run(self, max_cycles=None):
        """Run until exit/ebreak; returns :class:`MachineStats`.

        Raises :class:`DeadlockError` when nothing can ever progress and
        :class:`MachineError` on traps or when *max_cycles* is exceeded.
        """
        limit = max_cycles if max_cycles is not None else self.params.max_cycles
        events = self._events
        cores = self.cores
        num_cores = len(cores)
        stats = self.stats
        heappop = heapq.heappop
        progress_mark = (0, 0)
        next_progress_check = 4096
        cycle = self.cycle
        while not self.halted:
            if cycle >= next_progress_check:
                snapshot = (stats.retired, self._seq)
                if snapshot == progress_mark and not events:
                    raise DeadlockError(self._deadlock_dump())
                progress_mark = snapshot
                next_progress_check = cycle + 4096
            if cycle > limit:
                raise MachineError(
                    "cycle limit exceeded (%d); likely livelock" % limit
                )
            while events and events[0][0] <= cycle:
                heappop(events)[2]()
            if self.halted:
                break
            # active-core gating: only cores with runnable pipeline work
            # tick; wakeups (Hart.start) re-set the flag, and iteration
            # stays in fixed core-index order so arbitration, event seqs
            # and traces are identical to the ungated loop.
            ticked = self._num_active
            for core in cores:
                if core.active:
                    if not core.tick():
                        core.active = False
                        self._num_active -= 1
            stats.skipped_core_cycles += num_cores - ticked
            if self._error is not None:
                raise MachineError(self._error)
            if self.halted:
                break
            cycle += 1
            if self._num_active == 0:
                # every core is quiescent: fast-forward to the next event
                # (in-flight memory/protocol traffic), or report deadlock
                if events:
                    next_cycle = events[0][0]
                    if next_cycle > cycle:
                        stats.skipped_core_cycles += (
                            (next_cycle - cycle) * num_cores)
                        cycle = next_cycle
                else:
                    raise DeadlockError(self._deadlock_dump())
            self.cycle = cycle
        self.stats.cycles = max(self.stats.cycles, self.cycle)
        return self.stats

    def _deadlock_dump(self):
        lines = ["deadlock at cycle %d:" % self.cycle]
        for core in self.cores:
            for hart in core.harts:
                if hart.waiting_join or hart.reserved or not hart.is_idle():
                    lines.append(
                        "  hart %d: pc=%r waiting_join=%r reserved=%r it=%d rob=%d"
                        % (
                            hart.gid, hart.pc, hart.waiting_join,
                            hart.reserved, len(hart.it), len(hart.rob),
                        )
                    )
        return "\n".join(lines)

    # ---- debugging / inspection --------------------------------------------------

    def read_word(self, addr):
        """Read a data word directly (for tests and result extraction)."""
        if memmap.is_local(addr):
            raise MachineError("local addresses are per-core; use read_local")
        owner = memmap.owner_core_of(addr, self.params.num_cores)
        if owner is None:
            raise MachineError("unmapped address 0x%x" % addr)
        return self.cores[owner].mem.shared.read(addr, 4)

    def write_word(self, addr, value):
        owner = memmap.owner_core_of(addr, self.params.num_cores)
        if owner is None:
            raise MachineError("unmapped address 0x%x" % addr)
        self.cores[owner].mem.shared.write(addr, value, 4)

    def read_local(self, core_index, addr):
        return self.cores[core_index].mem.local.read(addr, 4)
