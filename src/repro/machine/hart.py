"""Per-hart microarchitectural state.

A hart (hardware thread, RISC-V terminology) owns: a pc (which may be
*empty* — a free hart), a one-entry fetch buffer, a rename table over a
per-hart register file, an instruction table (the out-of-order waiting
station), a reorder buffer committing in order, the single writeback
result buffer that serialises multicycle results, and the numbered
``p_swre``/``p_lwre`` result buffers.

The hart also carries the team-protocol links (predecessor/successor used
by the ordered ``p_ret`` commit chain) and the fork reservation flag.
"""

from repro import memmap


class ITEntry:
    """One instruction waiting (or executing) in the instruction table."""

    __slots__ = ("tag", "ins", "pc", "vals", "waits", "issued")

    def __init__(self, tag, ins, pc, vals, waits):
        self.tag = tag
        self.ins = ins
        self.pc = pc
        #: source values, aligned with ins.spec.reads (None while waiting)
        self.vals = vals
        #: producer tags awaited, aligned with vals (None when value present)
        self.waits = waits
        self.issued = False

    def sources_ready(self):
        return all(wait is None for wait in self.waits)


class ROBEntry:
    """One reorder-buffer slot."""

    __slots__ = ("tag", "ins", "done", "ret_action")

    def __init__(self, tag, ins):
        self.tag = tag
        self.ins = ins
        self.done = False
        #: for p_ret: ("exit"|"wait"|"end"|"join", join_hart, join_addr)
        self.ret_action = None


class ResultBuffer:
    """The hart's single writeback buffer (one in-flight result)."""

    __slots__ = ("busy", "tag", "reg", "value", "ready_at")

    def __init__(self):
        self.busy = False
        self.tag = None
        self.reg = 0
        self.value = None
        self.ready_at = 0

    def occupy(self, tag, reg):
        self.busy = True
        self.tag = tag
        self.reg = reg
        self.value = None
        self.ready_at = 0

    def fill(self, value, ready_at):
        self.value = value & 0xFFFFFFFF
        self.ready_at = ready_at

    def release(self):
        self.busy = False
        self.tag = None
        self.value = None


class Hart:
    """All state of one hardware thread."""

    __slots__ = (
        "core", "index", "gid",
        "regs", "rename",
        "pc", "awaiting_nextpc", "fetch_ready_at", "syncm_block",
        "fetch_buf",
        "it", "rob", "rb",
        "re_buffers",
        "outstanding_mem",
        "reserved", "waiting_join", "pending_join",
        "pred", "pred_done", "succ",
        "stats",
    )

    def __init__(self, core, index, num_result_buffers, stats):
        self.core = core
        self.index = index
        self.gid = core.index * memmap.HARTS_PER_CORE + index
        self.regs = [0] * 32
        self.rename = [None] * 32
        self.pc = None
        self.awaiting_nextpc = False
        self.fetch_ready_at = 0
        self.syncm_block = False
        self.fetch_buf = None
        self.it = []
        self.rob = []
        self.rb = ResultBuffer()
        self.re_buffers = [None] * num_result_buffers
        self.outstanding_mem = 0
        self.reserved = False
        self.waiting_join = False
        self.pending_join = None
        self.pred = None
        self.pred_done = False
        self.succ = None
        self.stats = stats

    # ---- lifecycle --------------------------------------------------------

    def is_free(self):
        """Can this hart be allocated by p_fc/p_fn?"""
        return (
            self.pc is None
            and not self.reserved
            and not self.waiting_join
            and self.fetch_buf is None
            and not self.it
            and not self.rob
            and not self.rb.busy
        )

    def is_idle(self):
        """No work at all (used for deadlock detection)."""
        return (
            self.pc is None
            and self.fetch_buf is None
            and not self.it
            and not self.rob
            and not self.rb.busy
            and self.outstanding_mem == 0
        )

    def reserve_for_fork(self, parent):
        """Allocation by p_fc/p_fn: reset protocol state, set initial sp."""
        self.reserved = True
        self.rename = [None] * 32
        self.regs[2] = memmap.hart_initial_sp(self.index)  # sp
        self.re_buffers = [None] * len(self.re_buffers)
        self.pred = parent
        self.pred_done = False
        parent.succ = self

    def start(self, pc, cycle):
        """Begin fetching at *pc* (fork start or join resume)."""
        self.pc = pc
        self.reserved = False
        self.waiting_join = False
        self.awaiting_nextpc = False
        self.syncm_block = False
        self.fetch_ready_at = cycle + 1

    def end(self):
        """The hart ends (p_ret cases 2 and 4): becomes free."""
        self.pc = None
        self.awaiting_nextpc = False
        self.syncm_block = False
        self.reserved = False
        self.waiting_join = False

    # ---- rename-side helpers ----------------------------------------------

    def read_source(self, reg):
        """(value, wait_tag): the committed value or the producer tag."""
        if reg == 0:
            return 0, None
        tag = self.rename[reg]
        if tag is None:
            return self.regs[reg], None
        return None, tag

    def writeback(self, tag, reg, value):
        """Apply a completed result to the register file and wake waiters.

        The architectural register is updated only when this producer is
        still the *latest* rename of the register; an older producer that
        writes back after a newer one (possible with out-of-order issue)
        must not clobber the newer value.  Its value still reaches the
        consumers that captured its tag, via the broadcast below.
        """
        if reg != 0 and self.rename[reg] == tag:
            self.regs[reg] = value & 0xFFFFFFFF
            self.rename[reg] = None
        for entry in self.it:
            for slot, wait in enumerate(entry.waits):
                if wait == tag:
                    entry.waits[slot] = None
                    entry.vals[slot] = value & 0xFFFFFFFF

    def drop_rename(self, reg, tag):
        """Forget a rename mapping for a producer that writes nothing."""
        if reg != 0 and self.rename[reg] == tag:
            self.rename[reg] = None
